// Correctness tests for DovetailSort: sortedness, permutation, stability,
// option ablations, adversarial and degenerate inputs, both key widths,
// with and without values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using dovetail::dovetail_sort;
using dovetail::kv32;
using dovetail::kv64;
using dovetail::sort_options;
namespace gen = dovetail::gen;

namespace {

// Small parameters force deep recursion even on small test inputs.
sort_options deep_options() {
  sort_options o;
  o.gamma = 4;
  o.base_case = 32;
  return o;
}

template <typename Rec>
void check_against_reference(std::vector<Rec> data, const sort_options& opt) {
  auto key = [](const Rec& r) { return r.key; };
  std::vector<Rec> ref = data;
  std::stable_sort(ref.begin(), ref.end(), [&](const Rec& a, const Rec& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<Rec>(data), key, opt);
  ASSERT_EQ(data.size(), ref.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i].key, ref[i].key) << "at index " << i;
    ASSERT_EQ(data[i].value, ref[i].value) << "stability broken at " << i;
  }
}

}  // namespace

TEST(DovetailSort, EmptyAndTiny) {
  std::vector<std::uint32_t> v;
  dovetail_sort(std::span<std::uint32_t>(v));
  EXPECT_TRUE(v.empty());
  v = {5};
  dovetail_sort(std::span<std::uint32_t>(v));
  EXPECT_EQ(v, (std::vector<std::uint32_t>{5}));
  v = {9, 3};
  dovetail_sort(std::span<std::uint32_t>(v));
  EXPECT_EQ(v, (std::vector<std::uint32_t>{3, 9}));
}

TEST(DovetailSort, AllEqualKeysPreserveOrder) {
  std::vector<kv32> v(5000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = {42, (std::uint32_t)i};
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, AlreadySortedAndReversed) {
  std::vector<kv32> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {(std::uint32_t)i, (std::uint32_t)i};
  check_against_reference(v, deep_options());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {(std::uint32_t)(v.size() - i), (std::uint32_t)i};
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, KeysAtTypeExtremes) {
  std::vector<kv32> v;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    v.push_back({0u, 3 * i});
    v.push_back({0xFFFFFFFFu, 3 * i + 1});
    v.push_back({0x80000000u, 3 * i + 2});
  }
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, KeysAtTypeExtremes64) {
  std::vector<kv64> v;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    v.push_back({0ull, 3 * i});
    v.push_back({~0ull, 3 * i + 1});
    v.push_back({1ull << 63, 3 * i + 2});
  }
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, TwoDistinctKeysHeavy) {
  std::vector<kv32> v(40000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {i % 3 == 0 ? 7u : 123456789u, (std::uint32_t)i};
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, SingleHeavyKeyAmongUniform) {
  std::vector<kv32> v(50000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i % 2 == 0)
      v[i] = {55555u, (std::uint32_t)i};
    else
      v[i] = {(std::uint32_t)dovetail::par::hash64(i), (std::uint32_t)i};
  }
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, DefaultOptionsLargeUniform) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e9, "u"},
                                       200000, 3);
  check_against_reference(v, {});
}

TEST(DovetailSort, DefaultOptionsLargeZipf) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.2, "z"},
                                       200000, 4);
  check_against_reference(v, {});
}

TEST(DovetailSort, DeepRecursionZipf64) {
  auto v = gen::generate_records<kv64>({gen::dist_kind::zipfian, 1.0, "z"},
                                       100000, 5);
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, BExpAdversarial32) {
  for (double t : {10.0, 100.0, 300.0}) {
    auto v = gen::generate_records<kv32>({gen::dist_kind::bexp, t, "b"},
                                         80000, 6);
    check_against_reference(v, deep_options());
  }
}

TEST(DovetailSort, BExpAdversarial64) {
  auto v = gen::generate_records<kv64>({gen::dist_kind::bexp, 50, "b"},
                                       80000, 7);
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, PlainModeNoHeavyDetection) {
  auto o = deep_options();
  o.detect_heavy = false;
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.5, "z"},
                                       100000, 8);
  check_against_reference(v, o);
}

TEST(DovetailSort, PlMergeMode) {
  auto o = deep_options();
  o.use_dt_merge = false;
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.5, "z"},
                                       100000, 9);
  check_against_reference(v, o);
}

TEST(DovetailSort, NoRangeDetection) {
  auto o = deep_options();
  o.skip_leading_bits = false;
  auto v = gen::generate_records<kv32>({gen::dist_kind::exponential, 10, "e"},
                                       100000, 10);
  check_against_reference(v, o);
}

TEST(DovetailSort, SmallKeyRangeUsesOverflowPath) {
  // Keys in [0, 100): leading bits skipped; a few outliers go to the
  // overflow bucket.
  std::vector<kv32> v(60000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint32_t k = (std::uint32_t)(dovetail::par::hash64(i) % 100);
    if (i % 9999 == 0) k = 0xFFFF0000u + (std::uint32_t)i;  // outliers
    v[i] = {k, (std::uint32_t)i};
  }
  check_against_reference(v, deep_options());
}

TEST(DovetailSort, KeysOnlyInterface) {
  auto keys = gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::exponential, 5, "e"}, 150000, 11);
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  dovetail_sort(std::span<std::uint32_t>(keys));
  EXPECT_EQ(keys, ref);
}

TEST(DovetailSort, DeterministicAcrossRuns) {
  auto v1 = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.2, "z"},
                                        50000, 12);
  auto v2 = v1;
  dovetail_sort(std::span<kv32>(v1), dovetail::key_of_kv32, deep_options());
  dovetail_sort(std::span<kv32>(v2), dovetail::key_of_kv32, deep_options());
  EXPECT_TRUE(std::equal(v1.begin(), v1.end(), v2.begin()));
}

TEST(DovetailSort, GammaSweepCorrect) {
  auto base = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.0, "z"},
                                          60000, 13);
  for (int gamma : {2, 3, 5, 8, 10, 12}) {
    sort_options o;
    o.gamma = gamma;
    o.base_case = 64;
    check_against_reference(base, o);
  }
}

TEST(DovetailSort, ThetaSweepCorrect) {
  auto base = gen::generate_records<kv32>(
      {gen::dist_kind::exponential, 7, "e"}, 60000, 14);
  for (std::size_t theta : {2ul, 16ul, 256ul, 4096ul, 1ul << 16}) {
    sort_options o;
    o.gamma = 6;
    o.base_case = theta;
    check_against_reference(base, o);
  }
}

TEST(DovetailSort, SeedVariationStillCorrect) {
  auto base = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.5, "z"},
                                          60000, 15);
  for (std::uint64_t seed : {1ull, 99ull, 123456789ull}) {
    sort_options o = deep_options();
    o.seed = seed;
    check_against_reference(base, o);
  }
}

TEST(DovetailSort, OddSizesAroundPowersOfTwo) {
  for (std::size_t n :
       {31ul, 32ul, 33ul, 1023ul, 1024ul, 1025ul, 65535ul, 65537ul}) {
    auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.0, "z"},
                                         n, 16 + n);
    check_against_reference(v, deep_options());
  }
}
