// Robustness tests across modules: scheduler oversubscription, nested
// parallelism patterns, sampler statistical shapes, samplesort option
// edges, and in-place radix digit sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "dovetail/baselines/inplace_radix_sort.hpp"
#include "dovetail/baselines/sample_sort.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

TEST(Robustness, OversubscribedSchedulerStillCorrect) {
  // More workers than cores: correctness must not depend on the ratio.
  par::scheduler::set_num_workers(8);
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.2, "z"},
                                       150000, 61);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
  par::scheduler::set_num_workers(par::scheduler::default_num_workers());
}

TEST(Robustness, NestedParallelForInsidePardo) {
  std::atomic<long> total{0};
  par::pardo(
      [&] {
        par::parallel_for(0, 10000,
                          [&](std::size_t i) { total += static_cast<long>(i); });
      },
      [&] {
        par::parallel_for(0, 10000, [&](std::size_t i) {
          total += static_cast<long>(i);
        });
      });
  EXPECT_EQ(total.load(), 2L * 49995000L);
}

TEST(Robustness, DeeplyNestedSortsInParallel) {
  // Several independent sorts running concurrently under one parallel_for
  // (the pattern the per-zone recursion uses internally).
  std::vector<std::vector<kv32>> inputs(8);
  for (std::size_t k = 0; k < inputs.size(); ++k)
    inputs[k] = gen::generate_records<kv32>(
        {gen::dist_kind::exponential, 5, "e"}, 40000, 62 + k);
  par::parallel_for(
      0, inputs.size(),
      [&](std::size_t k) {
        dovetail_sort(std::span<kv32>(inputs[k]), key_of_kv32);
      },
      1);
  for (const auto& v : inputs) {
    ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
    ASSERT_TRUE(
        dtt::stable_by_index_value(std::span<const kv32>(v), key_of_kv32));
  }
}

TEST(Robustness, ExponentialGeneratorMeanMatchesRate) {
  // Exp-λ rounds -ln(U)/(1e-5 λ) down; mean of the underlying continuous
  // variable is 1/(1e-5 λ). Check the pre-hash values via a small lambda.
  const double lambda_mult = 5;  // rate 5e-5 -> mean 20000
  double sum = 0;
  const std::size_t n = 200000;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = par::rand_double(99, i);
    sum += -std::log1p(-u) / (1e-5 * lambda_mult);
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 20000.0, 500.0);
}

TEST(Robustness, ZipfTopRankShareGrowsWithS) {
  // Rank-1 share under the bounded-Pareto approximation grows sharply in s.
  auto rank1_share = [](double s) {
    const std::size_t n = 100000;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = gen::zipf_key(7, i, s, 1000000, 64);
      if (k == par::hash64(1)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(n);
  };
  EXPECT_GT(rank1_share(1.5), 5 * rank1_share(0.8));
}

TEST(Robustness, SampleSortOversampleEdge) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e5, "u"},
                                       60000, 63);
  baseline::sample_sort_by_key(
      std::span<kv32>(v), key_of_kv32,
      {.stable = true, .oversample = 1, .base_case = 1024});
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  EXPECT_TRUE(
      dtt::stable_by_index_value(std::span<const kv32>(v), key_of_kv32));
}

TEST(Robustness, SampleSortBaseCaseBoundary) {
  for (std::size_t n : {16383ul, 16384ul, 16385ul}) {
    auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.0, "z"},
                                         n, 64);
    baseline::sample_sort_by_key(std::span<kv32>(v), key_of_kv32,
                                 {.stable = true});
    ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  }
}

TEST(Robustness, InplaceRadixGammaSweep) {
  auto base = gen::generate_records<kv32>({gen::dist_kind::bexp, 50, "b"},
                                          80000, 65);
  auto key = key_of_kv32;
  const auto fp = dtt::multiset_hash(std::span<const kv32>(base), key);
  for (int gamma : {2, 6, 8, 11}) {
    auto v = base;
    baseline::inplace_radix_sort(std::span<kv32>(v), key,
                                 {.gamma = gamma, .base_case = 128});
    ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key));
    ASSERT_EQ(dtt::multiset_hash(std::span<const kv32>(v), key), fp);
  }
}

TEST(Robustness, RepeatedSetNumWorkersUnderLoad) {
  for (int p : {1, 2, 4, 2, 1, 3}) {
    par::scheduler::set_num_workers(p);
    std::atomic<long> sum{0};
    par::parallel_for(0, 50000,
                      [&](std::size_t i) { sum += static_cast<long>(i); });
    ASSERT_EQ(sum.load(), 1249975000L) << "p=" << p;
  }
  par::scheduler::set_num_workers(par::scheduler::default_num_workers());
}

TEST(Robustness, SortingViewsOfLargerBuffer) {
  // Sorting a sub-span must not touch surrounding elements.
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e5, "u"},
                                       100000, 66);
  const kv32 first = v.front();
  const kv32 last = v.back();
  dovetail_sort(std::span<kv32>(v).subspan(1, v.size() - 2), key_of_kv32);
  EXPECT_EQ(v.front(), first);
  EXPECT_EQ(v.back(), last);
  EXPECT_TRUE(dtt::sorted_by_key(
      std::span<const kv32>(v).subspan(1, v.size() - 2), key_of_kv32));
}
