// Parallel front-door tests — the workspace_pool, the per-call worker
// limit, and concurrent sorts through dovetail::sort:
//   * workspace_pool contract — checkout/checkin round trips park and
//     rehydrate the same arena (pool_hits), overflow past capacity
//     discards instead of growing, handles are move-only RAII, and the
//     counters always satisfy checkouts == hits + creations — including
//     under a many-thread checkout/checkin stress;
//   * scoped_worker_limit — composes by min, effective_workers() reflects
//     the innermost cap, and a limit of 1 forces pardo's serial path
//     (both branches on the calling worker);
//   * concurrent sorts — N foreign std::threads each sorting with its own
//     workspace, and the shared-pool variant where every thread leases its
//     arena from one workspace_pool: all outputs record-exact and stable,
//     and a second warm round performs zero pool creations (the
//     zero-steady-state-allocation property);
//   * determinism — byte-identical outputs across num_threads ∈ {1, 2, 4}
//     and across parallel_wide_refine on/off, for flat and wide keys;
//   * the dispatch record — sort_stats.chosen_parallelism/effective_workers
//     mirror the decision: 1 below parallel_crossover_n or under a
//     num_threads=1 cap, the worker count above it.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;

namespace {

using u128 = unsigned __int128;

// Every test that resizes the global pool restores it on exit; gtest runs
// tests in one process, so a leaked size would leak into later suites.
struct worker_count_guard {
  ~worker_count_guard() {
    par::scheduler::set_num_workers(par::scheduler::default_num_workers());
  }
};

gen::distribution unif_dist() { return {gen::dist_kind::uniform, 1e7, "U"}; }
gen::distribution zipf_dist() { return {gen::dist_kind::zipfian, 1.2, "Z"}; }

}  // namespace

// ---------------------------------------------------------------------------
// workspace_pool contract.

TEST(WorkspacePool, CheckoutCheckinRoundTrip) {
  workspace_pool pool(2);
  EXPECT_EQ(pool.capacity(), 2u);

  sort_workspace* first = nullptr;
  {
    workspace_pool::handle h = pool.checkout();
    ASSERT_TRUE(h);
    first = h.get();
    // Use the arena like a sort would, so the round trip carries state.
    h->record_buffer<kv64>(1024);
  }  // checkin on destruction
  EXPECT_EQ(pool.creations(), 1u);
  EXPECT_EQ(pool.pool_hits(), 0u);

  workspace_pool::handle h2 = pool.checkout();
  EXPECT_EQ(h2.get(), first) << "a parked arena must be rehydrated";
  EXPECT_EQ(pool.pool_hits(), 1u);
  EXPECT_EQ(pool.creations(), 1u);
  EXPECT_EQ(pool.checkouts(), 2u);
}

TEST(WorkspacePool, OverflowPastCapacityDiscards) {
  workspace_pool pool(1);
  workspace_pool::handle a = pool.checkout();
  workspace_pool::handle b = pool.checkout();  // capacity is 1: both created
  EXPECT_EQ(pool.creations(), 2u);
  a.release();
  b.release();  // only one slot: the second checkin must discard
  EXPECT_EQ(pool.discards(), 1u);
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
}

TEST(WorkspacePool, HandleIsMoveOnlyRaii) {
  workspace_pool pool(2);
  workspace_pool::handle h = pool.checkout();
  sort_workspace* raw = h.get();
  workspace_pool::handle moved = std::move(h);
  EXPECT_FALSE(h);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(moved.get(), raw);
  moved.release();
  EXPECT_FALSE(moved);
  moved.release();  // idempotent
  EXPECT_EQ(pool.checkouts(), 1u);
}

TEST(WorkspacePool, DefaultCapacityTracksScheduler) {
  workspace_pool pool;
  EXPECT_EQ(pool.capacity(),
            static_cast<std::size_t>(par::scheduler::default_num_workers()));
  EXPECT_GE(workspace_pool::shared().capacity(), 1u);
}

TEST(WorkspacePool, ConcurrentCheckoutStress) {
  workspace_pool pool(4);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIters; ++i) {
        workspace_pool::handle h = pool.checkout();
        // Touch the arena: a racing handoff of the same workspace to two
        // threads would corrupt the record buffer (and trip TSan).
        const std::span<kv32> buf = h->record_buffer<kv32>(64);
        buf[0] = {static_cast<std::uint32_t>(i), 0};
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.checkouts(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
  // Warm steady state: one more round trip must be a hit, not a creation.
  const std::uint64_t created = pool.creations();
  { workspace_pool::handle h = pool.checkout(); }
  EXPECT_EQ(pool.creations(), created);
}

// ---------------------------------------------------------------------------
// scoped_worker_limit and effective_workers.

TEST(ScopedWorkerLimit, ComposesByMin) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  EXPECT_EQ(par::effective_workers(), 4);
  {
    par::scoped_worker_limit outer(2);
    EXPECT_EQ(par::effective_workers(), 2);
    {
      par::scoped_worker_limit inner(3);  // wider than outer: no effect
      EXPECT_EQ(par::effective_workers(), 2);
    }
    {
      par::scoped_worker_limit inner(1);
      EXPECT_EQ(par::effective_workers(), 1);
    }
    EXPECT_EQ(par::effective_workers(), 2);
  }
  EXPECT_EQ(par::effective_workers(), 4);
  {
    par::scoped_worker_limit zero(0);  // 0 = no cap
    EXPECT_EQ(par::effective_workers(), 4);
  }
}

TEST(ScopedWorkerLimit, LimitOneForcesSerialPardo) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  par::scoped_worker_limit cap(1);
  std::thread::id left, right;
  par::pardo([&] { left = std::this_thread::get_id(); },
             [&] { right = std::this_thread::get_id(); });
  EXPECT_EQ(left, right) << "limit 1 must run both branches inline";
  EXPECT_EQ(left, std::this_thread::get_id());
}

TEST(ScopedWorkerLimit, ParallelForStillCoversEveryIndex) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  par::scoped_worker_limit cap(2);
  std::vector<std::uint8_t> hit(10'000, 0);
  par::parallel_for(0, hit.size(), [&](std::size_t i) { hit[i] += 1; });
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(),
                          [](std::uint8_t v) { return v == 1; }));
}

// ---------------------------------------------------------------------------
// Concurrent sorts from foreign threads.

TEST(ConcurrentSorts, OwnWorkspacePerThread) {
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 40'000;
  std::vector<std::thread> threads;
  // NOT vector<bool>: its packed bits share a word, so per-thread writes
  // to distinct elements would be a real data race (TSan flags it). Plain
  // bools are distinct memory locations, and join() orders the reads.
  std::array<bool, kThreads> ok{};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ok] {
      auto input =
          gen::generate_records<kv64>(unif_dist(), kN, 100 + t);
      const std::uint64_t fp = dtt::multiset_hash(
          std::span<const kv64>(input), key_of_kv64);
      sort_workspace ws;
      auto_sort_options opt;
      opt.workspace = &ws;
      dovetail::sort(std::span<kv64>(input), key_of_kv64, opt);
      ok[t] = dtt::sorted_by_key(std::span<const kv64>(input),
                                 key_of_kv64) &&
              dtt::stable_by_index_value(std::span<const kv64>(input),
                                         key_of_kv64) &&
              fp == dtt::multiset_hash(std::span<const kv64>(input),
                                       key_of_kv64);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_TRUE(ok[t]) << "thread " << t << " produced a wrong order";
}

TEST(ConcurrentSorts, SharedPoolLeasesAndWarmReuse) {
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 30'000;
  workspace_pool pool(kThreads);

  // array<bool>, not vector<bool> — see OwnWorkspacePerThread.
  const auto round = [&pool](int seed_base, std::array<bool, kThreads>& ok) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, seed_base, &pool, &ok] {
        auto input = gen::generate_records<kv64>(zipf_dist(), kN,
                                                 seed_base + t);
        workspace_pool::handle ws = pool.checkout();
        auto_sort_options opt;
        opt.workspace = ws.get();
        dovetail::sort(std::span<kv64>(input), key_of_kv64, opt);
        ok[t] = dtt::sorted_by_key(std::span<const kv64>(input),
                                   key_of_kv64) &&
                dtt::stable_by_index_value(std::span<const kv64>(input),
                                           key_of_kv64);
      });
    }
    for (auto& th : threads) th.join();
  };

  // Deterministic warm-up: hold kThreads handles at once so exactly
  // kThreads arenas exist and all of them park. (Letting the first sort
  // round warm the pool instead would be flaky: staggered threads can
  // serially reuse one arena, parking fewer workspaces than the next
  // round's peak concurrency.)
  {
    std::vector<workspace_pool::handle> warm;
    warm.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) warm.push_back(pool.checkout());
  }
  const std::uint64_t created_warm = pool.creations();
  EXPECT_EQ(created_warm, static_cast<std::uint64_t>(kThreads));

  std::array<bool, kThreads> ok1{}, ok2{};
  round(500, ok1);
  round(900, ok2);
  EXPECT_EQ(pool.creations(), created_warm)
      << "concurrent sorts on a warm pool must not allocate new arenas";
  EXPECT_GE(pool.pool_hits(), static_cast<std::uint64_t>(2 * kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok1[t]);
    EXPECT_TRUE(ok2[t]);
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts and refine modes.

TEST(Determinism, IdenticalOutputAcrossNumThreads) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  const auto input = gen::generate_records<kv64>(zipf_dist(), 120'000, 7);

  std::vector<std::vector<kv64>> outs;
  for (const int p : {1, 2, 4}) {
    std::vector<kv64> work = input;
    sort_workspace ws;
    auto_sort_options opt;
    opt.workspace = &ws;
    opt.num_threads = p;
    dovetail::sort(std::span<kv64>(work), key_of_kv64, opt);
    outs.push_back(std::move(work));
  }
  EXPECT_EQ(outs[0], outs[1]);
  EXPECT_EQ(outs[0], outs[2]);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv64>(outs[0]),
                                 key_of_kv64));
}

TEST(Determinism, SortOptionsNumThreadsFrontDoor) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  const auto input = gen::generate_records<kv64>(unif_dist(), 80'000, 11);

  std::vector<std::vector<kv64>> outs;
  for (const int p : {1, 4}) {
    std::vector<kv64> work = input;
    sort_options opt;
    opt.num_threads = p;
    dovetail_sort(std::span<kv64>(work), key_of_kv64, opt);
    outs.push_back(std::move(work));
  }
  EXPECT_EQ(outs[0], outs[1]);
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const kv64>(outs[0]),
                                         key_of_kv64));
}

TEST(Determinism, WideRefinePoolAndSerialAgree) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  // 4 entropy bits in word 0: 16 fat segments, all larger than the shrunken
  // base case below — every one takes the refine path.
  const auto input =
      gen::generate_wide_records<u128>(zipf_dist(), 40'000, 3, 4);

  workspace_pool pool(4);
  std::vector<std::vector<tkv<u128>>> outs;
  for (const bool pooled : {true, false}) {
    std::vector<tkv<u128>> work = input;
    sort_workspace ws;
    auto_sort_options opt;
    opt.workspace = &ws;
    opt.pool = &pool;
    opt.policy.wide_segment_base_case = 512;
    opt.policy.parallel_wide_refine = pooled;
    dovetail::sort(std::span<tkv<u128>>(work), key_of_tkv<u128>, opt);
    outs.push_back(std::move(work));
  }
  EXPECT_EQ(outs[0], outs[1])
      << "pool-backed refine must reproduce the serial refine exactly";
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const tkv<u128>>(outs[0]),
                                         key_of_tkv<u128>));
  // With more than one worker the pooled pass must actually have leased
  // segment arenas from the explicit pool.
  EXPECT_GT(pool.checkouts(), 0u);
}

TEST(Determinism, WideNumThreadsOneNeverTouchesThePool) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  // num_threads = 1 promises exact serial execution for the WHOLE call.
  // The refine driver runs between the per-segment sort_unsigned calls
  // (which install their own caps), so the wide entry points must install
  // the per-call cap themselves — otherwise a 1-thread wide sort would
  // still lease pool arenas and fork refine tasks on a 4-worker pool.
  const auto input =
      gen::generate_wide_records<u128>(zipf_dist(), 40'000, 3, 4);
  std::vector<tkv<u128>> work = input;
  workspace_pool pool(4);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.pool = &pool;
  opt.num_threads = 1;
  opt.policy.wide_segment_base_case = 512;
  dovetail::sort(std::span<tkv<u128>>(work), key_of_tkv<u128>, opt);
  EXPECT_EQ(pool.checkouts(), 0u)
      << "a num_threads=1 wide sort must take the serial refine path";
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const tkv<u128>>(work),
                                         key_of_tkv<u128>));
}

// ---------------------------------------------------------------------------
// The recorded dispatch decision.

TEST(DispatchRecord, SerialBelowCrossoverParallelAbove) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);

  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;

  // Below the crossover: one worker, whatever the pool size. The plan's
  // scoped limit wraps the kernel, so the engine's effective_workers
  // snapshot records the width it actually ran at — 1 — not the pool size.
  auto small = gen::generate_records<kv64>(unif_dist(), 4'096, 21);
  dovetail::sort(std::span<kv64>(small), key_of_kv64, opt);
  EXPECT_EQ(st.chosen_parallelism.load(), 1u);
  EXPECT_EQ(st.effective_workers.load(), 1u);

  // Above it: the full effective worker count.
  auto large = gen::generate_records<kv64>(
      unif_dist(), opt.policy.parallel_crossover_n * 4, 22);
  dovetail::sort(std::span<kv64>(large), key_of_kv64, opt);
  EXPECT_EQ(st.chosen_parallelism.load(), 4u);

  // A per-call cap of 1 pins the decision (and the record) to serial.
  opt.num_threads = 1;
  auto capped = gen::generate_records<kv64>(
      unif_dist(), opt.policy.parallel_crossover_n * 4, 23);
  dovetail::sort(std::span<kv64>(capped), key_of_kv64, opt);
  EXPECT_EQ(st.chosen_parallelism.load(), 1u);
  EXPECT_EQ(st.effective_workers.load(), 1u);
}

TEST(DispatchRecord, PolicyNumThreadsCapsThePlan) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  dispatch_policy policy;
  EXPECT_EQ(policy.plan_parallelism(policy.parallel_crossover_n), 1);
  EXPECT_EQ(policy.plan_parallelism(policy.parallel_crossover_n + 1), 4);
  policy.num_threads = 2;
  EXPECT_EQ(policy.plan_parallelism(policy.parallel_crossover_n + 1), 2);
}
