// Tests for the unified distribution engine (distribute.hpp) and its
// reusable sort_workspace arena (workspace.hpp):
//  * slab leasing: first checkout allocates, repeats are freelist hits;
//  * repeated dovetail_sort calls on one workspace reach a steady state
//    with ZERO fresh allocations (the engine's no-hot-path-malloc
//    property), observable through the new sort_stats counters;
//  * `direct` and `buffered` scatter strategies produce byte-identical
//    stable output across the option matrix; `unstable` produces the same
//    offsets and per-bucket multisets;
//  * the single-bucket short-circuit copies without building id arrays or
//    counting matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/core/counting_sort.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/semisort.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/unstable_counting_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

std::vector<kv32> random_records(std::size_t n, std::uint32_t key_bound,
                                 std::uint64_t seed) {
  std::vector<kv32> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<std::uint32_t>(par::rand_range(seed, i, key_bound)),
            static_cast<std::uint32_t>(i)};
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Workspace mechanics.

TEST(Workspace, LeaseAllocatesOnceThenReuses) {
  sort_workspace ws;
  {
    sort_workspace::lease l = ws.acquire(1000);
    auto s = l.carve<std::size_t>(100);
    s[0] = 42;  // writable
    EXPECT_GE(l.capacity(), 1000u);
  }
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(ws.reuses(), 0u);
  {
    // Same pow2 size class (1024): must be a freelist hit.
    sort_workspace::lease l = ws.acquire(600);
  }
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(ws.reuses(), 1u);
  {
    // Different size class: fresh allocation.
    sort_workspace::lease l = ws.acquire(5000);
  }
  EXPECT_EQ(ws.allocations(), 2u);
  // trim() drops the freelists; the next checkout allocates again.
  ws.trim();
  {
    sort_workspace::lease l = ws.acquire(600);
  }
  EXPECT_EQ(ws.allocations(), 3u);
}

TEST(Workspace, RecordBufferGrowsMonotonicallyAndReuses) {
  sort_workspace ws;
  auto b1 = ws.record_buffer<kv32>(1000);
  EXPECT_EQ(b1.size(), 1000u);
  const std::uint64_t allocs = ws.allocations();
  auto b2 = ws.record_buffer<kv32>(500);  // fits: reuse, same storage
  EXPECT_EQ(static_cast<void*>(b2.data()), static_cast<void*>(b1.data()));
  EXPECT_EQ(ws.allocations(), allocs);
  EXPECT_GT(ws.reuses(), 0u);
  auto b3 = ws.record_buffer<kv64>(100000);  // outgrows: one realloc
  EXPECT_EQ(b3.size(), 100000u);
  EXPECT_EQ(ws.allocations(), allocs + 1);
}

TEST(Workspace, CountersFlowIntoSortStats) {
  sort_workspace ws;
  sort_stats st;
  { sort_workspace::lease l = ws.acquire(1 << 12, &st); }
  { sort_workspace::lease l = ws.acquire(1 << 12, &st); }
  EXPECT_EQ(st.workspace_allocations.load(), 1u);
  EXPECT_EQ(st.workspace_reuses.load(), 1u);
  EXPECT_GE(st.workspace_bytes_allocated.load(), std::uint64_t{1} << 12);
}

// ---------------------------------------------------------------------------
// The tentpole property: repeated sorts on one workspace stop allocating.

TEST(Workspace, RepeatedDovetailSortAllocationFreeAfterWarmup) {
  const std::size_t n = 300000;
  const auto base = gen::generate_records<kv32>(
      {gen::dist_kind::zipfian, 1.2, "z"}, n, 11);
  sort_workspace ws;
  sort_stats st;
  sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;

  // Run until five consecutive sorts perform zero fresh allocations.
  // (Scheduling can shift slab demand between early runs; the steady state
  // must still arrive quickly.)
  int zero_streak = 0;
  std::uint64_t reuses_at_streak_start = 0;
  for (int iter = 0; iter < 25 && zero_streak < 5; ++iter) {
    const std::uint64_t before = st.workspace_allocations.load();
    if (zero_streak == 0) reuses_at_streak_start = st.workspace_reuses.load();
    auto v = base;
    dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
    ASSERT_TRUE(std::is_sorted(
        v.begin(), v.end(),
        [](const kv32& a, const kv32& b) { return a.key < b.key; }));
    zero_streak =
        st.workspace_allocations.load() == before ? zero_streak + 1 : 0;
  }
  EXPECT_EQ(zero_streak, 5) << "workspace never reached zero-allocation "
                               "steady state within 25 sorts";
  // The allocation-free sorts were served entirely by reuse.
  EXPECT_GT(st.workspace_reuses.load(), reuses_at_streak_start);
}

TEST(Workspace, SemisortSharesTheEngineAndWorkspace) {
  const std::size_t n = 150000;
  auto base = gen::generate_records<kv32>(
      {gen::dist_kind::uniform, 200, "u"}, n, 13);
  sort_workspace ws;
  sort_stats st;
  sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  auto v = base;
  semisort(std::span<kv32>(v), key_of_kv32, opt);
  // Distribution ran through the engine with workspace-backed scratch.
  EXPECT_GT(st.scatter_direct_calls.load() + st.scatter_buffered_calls.load(),
            0u);
  EXPECT_GT(st.workspace_allocations.load() + st.workspace_reuses.load(), 0u);
  // Equal keys are adjacent: each key starts exactly one run.
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < n;) {
    const std::uint32_t k = v[i].key;
    ASSERT_TRUE(seen.insert(k).second)
        << "key " << k << " split into two groups";
    while (i < n && v[i].key == k) ++i;
  }
}

// ---------------------------------------------------------------------------
// Scatter strategies: identical stable output.

TEST(ScatterStrategies, DirectAndBufferedByteIdenticalInDistribute) {
  for (std::size_t nb : {2ul, 17ul, 256ul, 4096ul, 1ul << 17}) {
    const std::size_t n = nb >= (1ul << 17) ? 120000 : 80000;
    const auto in = random_records(n, static_cast<std::uint32_t>(4 * nb), 7);
    auto bucket_of = [nb](const kv32& r) -> std::size_t { return r.key % nb; };
    std::vector<kv32> out_direct(n), out_buffered(n), out_auto(n);
    std::vector<std::size_t> off_direct(nb + 1), off_buffered(nb + 1),
        off_auto(nb + 1);
    distribute_options o;
    o.strategy = scatter_strategy::direct;
    distribute(std::span<const kv32>(in), std::span<kv32>(out_direct), nb,
               bucket_of, std::span<std::size_t>(off_direct), o);
    o.strategy = scatter_strategy::buffered;
    distribute(std::span<const kv32>(in), std::span<kv32>(out_buffered), nb,
               bucket_of, std::span<std::size_t>(off_buffered), o);
    o.strategy = scatter_strategy::automatic;
    distribute(std::span<const kv32>(in), std::span<kv32>(out_auto), nb,
               bucket_of, std::span<std::size_t>(off_auto), o);
    ASSERT_EQ(off_direct, off_buffered) << "nb=" << nb;
    ASSERT_EQ(off_direct, off_auto) << "nb=" << nb;
    ASSERT_TRUE(std::equal(out_direct.begin(), out_direct.end(),
                           out_buffered.begin()))
        << "nb=" << nb;
    ASSERT_TRUE(
        std::equal(out_direct.begin(), out_direct.end(), out_auto.begin()))
        << "nb=" << nb;
  }
}

TEST(ScatterStrategies, DovetailSortIdenticalAcrossOptionsMatrix) {
  auto zipf = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.3, "z"},
                                          60000, 91);
  auto ref = zipf;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  for (bool heavy : {true, false}) {
    for (bool dtm : {true, false}) {
      for (int gamma : {3, 8}) {
        sort_options o;
        o.detect_heavy = heavy;
        o.use_dt_merge = dtm;
        o.gamma = gamma;
        std::vector<kv32> results[3];
        const scatter_strategy strategies[3] = {scatter_strategy::direct,
                                                scatter_strategy::buffered,
                                                scatter_strategy::automatic};
        for (int s = 0; s < 3; ++s) {
          o.scatter = strategies[s];
          results[s] = zipf;
          dovetail_sort(std::span<kv32>(results[s]), key_of_kv32, o);
          for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_EQ(results[s][i].key, ref[i].key)
                << "strategy " << s << " i=" << i;
            ASSERT_EQ(results[s][i].value, ref[i].value)
                << "strategy " << s << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(ScatterStrategies, LsdBaselineIdenticalAcrossStrategies) {
  auto in = random_records(120000, 0xFFFFFFFFu, 23);
  std::vector<kv32> direct = in, buffered = in;
  baseline::lsd_options lo;
  lo.scatter = scatter_strategy::direct;
  baseline::lsd_radix_sort(std::span<kv32>(direct), key_of_kv32, lo);
  lo.scatter = scatter_strategy::buffered;
  baseline::lsd_radix_sort(std::span<kv32>(buffered), key_of_kv32, lo);
  ASSERT_TRUE(std::equal(direct.begin(), direct.end(), buffered.begin()));
  ASSERT_TRUE(std::is_sorted(
      direct.begin(), direct.end(),
      [](const kv32& a, const kv32& b) { return a.key < b.key; }));
}

TEST(ScatterStrategies, UnstableSameOffsetsAndBucketMultisets) {
  const std::size_t n = 100000, nb = 128;
  const auto in = random_records(n, 1u << 28, 31);
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 128; };
  std::vector<kv32> stable_out(n), unstable_out(n);
  auto off_s = counting_sort(std::span<const kv32>(in),
                             std::span<kv32>(stable_out), nb, bucket_of);
  auto off_u = unstable_counting_sort(std::span<const kv32>(in),
                                      std::span<kv32>(unstable_out), nb,
                                      bucket_of);
  ASSERT_EQ(off_s, off_u);
  auto by_rec = [](const kv32& a, const kv32& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  };
  for (std::size_t k = 0; k < nb; ++k) {
    std::vector<kv32> s(stable_out.begin() + off_s[k],
                        stable_out.begin() + off_s[k + 1]);
    std::vector<kv32> u(unstable_out.begin() + off_u[k],
                        unstable_out.begin() + off_u[k + 1]);
    std::sort(s.begin(), s.end(), by_rec);
    std::sort(u.begin(), u.end(), by_rec);
    ASSERT_EQ(s.size(), u.size()) << k;
    for (std::size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(s[i].key, u[i].key) << k << "/" << i;
      ASSERT_EQ(s[i].value, u[i].value) << k << "/" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine edge cases.

TEST(Distribute, SingleBucketShortCircuits) {
  const std::size_t n = 50000;
  const auto in = random_records(n, 1u << 30, 37);
  std::vector<kv32> out(n);
  sort_stats st;
  distribute_options o;
  o.stats = &st;
  std::vector<std::size_t> offs(2);
  distribute(std::span<const kv32>(in), std::span<kv32>(out), 1,
             [](const kv32&) -> std::size_t { return 0; },
             std::span<std::size_t>(offs), o);
  EXPECT_EQ(offs[0], 0u);
  EXPECT_EQ(offs[1], n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i].value, i);  // stable
  // Short-circuit: no scatter pass, no workspace traffic.
  EXPECT_EQ(st.scatter_direct_calls.load() + st.scatter_buffered_calls.load() +
                st.scatter_unstable_calls.load(),
            0u);
  EXPECT_EQ(st.workspace_allocations.load() + st.workspace_reuses.load(), 0u);
}

TEST(Distribute, StrategyCountersReportResolvedStrategy) {
  const std::size_t n = 100000;
  const auto in = random_records(n, 1u << 20, 41);
  std::vector<kv32> out(n);
  std::vector<std::size_t> offs(257);
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key & 255; };
  sort_stats st;
  distribute_options o;
  o.stats = &st;
  o.strategy = scatter_strategy::buffered;
  distribute(std::span<const kv32>(in), std::span<kv32>(out), 256, bucket_of,
             std::span<std::size_t>(offs), o);
  EXPECT_EQ(st.scatter_buffered_calls.load(), 1u);
  o.strategy = scatter_strategy::unstable;
  distribute(std::span<const kv32>(in), std::span<kv32>(out), 256, bucket_of,
             std::span<std::size_t>(offs), o);
  EXPECT_EQ(st.scatter_unstable_calls.load(), 1u);
  // automatic on a dense 256-bucket instance resolves to buffered.
  o.strategy = scatter_strategy::automatic;
  distribute(std::span<const kv32>(in), std::span<kv32>(out), 256, bucket_of,
             std::span<std::size_t>(offs), o);
  EXPECT_EQ(st.scatter_buffered_calls.load(), 2u);
}

TEST(Distribute, NonTriviallyCopyableRecordsStillSupported) {
  // The old counting_sort accepted any copy-assignable record; the engine
  // must keep that contract (`buffered` is never selected for such types
  // and its memcpy path stays uninstantiated).
  struct srec {
    std::uint32_t key;
    std::string payload;  // non-trivially-copyable
  };
  const std::size_t n = 5000, nb = 16;
  std::vector<srec> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::hash64(i)), std::to_string(i)};
  auto bucket_of = [](const srec& r) -> std::size_t { return r.key % 16; };
  std::vector<srec> out(n);
  auto offs = counting_sort(std::span<const srec>(in), std::span<srec>(out),
                            nb, bucket_of);
  ASSERT_EQ(offs.back(), n);
  std::size_t prev_in_bucket = 0;
  for (std::size_t k = 0; k < nb; ++k) {
    for (std::size_t i = offs[k]; i < offs[k + 1]; ++i) {
      ASSERT_EQ(bucket_of(out[i]), k);
      const std::size_t orig = std::stoul(out[i].payload);
      if (i > offs[k]) ASSERT_LT(prev_in_bucket, orig);  // stable
      prev_in_bucket = orig;
    }
  }
}

TEST(Distribute, HistogramMatchesOffsets) {
  const std::size_t n = 80000, nb = 300;
  const auto in = random_records(n, 1u << 24, 43);
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 300; };
  std::vector<kv32> out(n);
  auto offs = counting_sort(std::span<const kv32>(in), std::span<kv32>(out),
                            nb, bucket_of);
  std::vector<std::size_t> counts(nb);
  distribute_histogram(std::span<const kv32>(in), nb, bucket_of,
                       std::span<std::size_t>(counts));
  for (std::size_t k = 0; k < nb; ++k)
    ASSERT_EQ(counts[k], offs[k + 1] - offs[k]) << k;
}
