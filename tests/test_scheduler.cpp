// Unit tests for the fork-join work-stealing scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace par = dovetail::par;

TEST(Scheduler, StartsWithAtLeastOneWorker) {
  EXPECT_GE(par::num_workers(), 1);
}

TEST(Scheduler, PardoRunsBothBranches) {
  int a = 0, b = 0;
  par::pardo([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, NestedPardoComputesFibonacci) {
  // fib with explicit forking exercises deep nesting and stealing.
  struct fib_t {
    static std::uint64_t go(int n) {
      if (n < 2) return static_cast<std::uint64_t>(n);
      std::uint64_t x = 0, y = 0;
      if (n < 16) return go(n - 1) + go(n - 2);
      par::pardo([&] { x = go(n - 1); }, [&] { y = go(n - 2); });
      return x + y;
    }
  };
  EXPECT_EQ(fib_t::go(28), 317811u);
}

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, ParallelForEmptyAndSingleton) {
  int count = 0;
  par::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  par::parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, ParallelForGranularityOne) {
  std::atomic<long> sum{0};
  par::parallel_for(
      0, 1000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 1);
  EXPECT_EQ(sum.load(), 499500);
}

TEST(Scheduler, ExceptionFromRightBranchPropagates) {
  EXPECT_THROW(
      par::pardo([] {}, [] { throw std::runtime_error("right"); }),
      std::runtime_error);
}

TEST(Scheduler, ExceptionFromLeftBranchPropagates) {
  EXPECT_THROW(
      par::pardo([] { throw std::runtime_error("left"); }, [] {}),
      std::runtime_error);
}

TEST(Scheduler, ExceptionStillJoinsRightBranch) {
  std::atomic<bool> right_ran{false};
  try {
    par::pardo([] { throw std::runtime_error("left"); },
               [&] { right_ran = true; });
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(right_ran.load());
}

TEST(Scheduler, SetNumWorkersRestartsPool) {
  par::scheduler::set_num_workers(1);
  EXPECT_EQ(par::num_workers(), 1);
  std::atomic<long> sum{0};
  par::parallel_for(0, 10000,
                    [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 49995000);
  par::scheduler::set_num_workers(par::scheduler::default_num_workers());
  EXPECT_GE(par::num_workers(), 1);
  sum = 0;
  par::parallel_for(0, 10000,
                    [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 49995000);
}

TEST(Scheduler, ManyForksStressTest) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> leaves{0};
    par::parallel_for(
        0, 2000, [&](std::size_t) { leaves.fetch_add(1); }, 1);
    ASSERT_EQ(leaves.load(), 2000);
  }
}
