// Wide (multi-word) key engine tests — the codec word contracts of
// key_codec.hpp and the segmented-MSD refine driver of wide_sort.hpp
// through every public entry point:
//   * codec contract — word sequences order lexicographically iff the keys
//     order (pair<u64,u64>, __uint128_t, __int128, >64-bit tuples with a
//     word-straddling component), and the string prefix codec is an
//     order-preserving coarsening with big-endian bytes;
//   * sort correctness — record-exact vs std::stable_sort across all
//     dispatch sizes (0..50k spans every front-door branch) and across
//     segment shapes: all-equal word 0, all-distinct word 0 (singleton
//     segments, zero refinement), heavy duplicates, equal-prefix strings
//     resolved beyond the materialized prefix (embedded NULs included;
//     the adversarial corpus battery lives in test_string_engine.cpp);
//   * stability — duplicate wide keys keep increasing witness values;
//   * sort_by_key / rank on wide keys;
//   * zero-alloc warm reuse — a second identical wide sort performs no
//     workspace allocation (fused u128/pair paths and the string pair
//     path's leases);
//   * the wide_segment_base_case policy knob routes big segments back
//     through the front door (exercised with a tiny base case).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/wide_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;

using u128 = unsigned __int128;
using pair64 = std::pair<std::uint64_t, std::uint64_t>;

namespace {

std::uint64_t rnd(std::uint64_t i) {
  return par::hash64(i * 0x9E3779B9ull + 13);
}

// Lexicographic comparison of two keys' word sequences.
template <typename K>
bool words_less(const K& a, const K& b) {
  using WT = wide_key_traits<K>;
  for (std::size_t w = 0; w < WT::word_count; ++w) {
    const auto wa = WT::word(a, w);
    const auto wb = WT::word(b, w);
    if (wa != wb) return wa < wb;
  }
  return false;
}

template <typename K>
bool words_equal(const K& a, const K& b) {
  using WT = wide_key_traits<K>;
  for (std::size_t w = 0; w < WT::word_count; ++w)
    if (WT::word(a, w) != WT::word(b, w)) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Static contract.

static_assert(!sortable_key<pair64>);         // no longer a static_assert trap
static_assert(wide_sortable_key<pair64>);     // ...but a wide codec instead
static_assert(any_sortable_key<pair64>);
static_assert(wide_sortable_key<u128>);
static_assert(wide_sortable_key<__int128>);
static_assert(wide_sortable_key<std::string>);
static_assert(wide_sortable_key<std::string_view>);
static_assert(!sortable_key<std::string>);
// Narrow composites keep the PR-4 single-word form untouched.
static_assert(sortable_key<std::pair<std::uint32_t, std::uint32_t>>);
static_assert(!wide_sortable_key<std::pair<std::uint32_t, std::uint32_t>>);
// Word counts / logical widths.
static_assert(wide_key_traits<pair64>::word_count == 2);
static_assert(wide_key_traits<pair64>::encoded_bits == 128);
static_assert(wide_key_traits<u128>::word_count == 2);
static_assert(
    wide_key_traits<std::tuple<std::uint64_t, std::uint64_t,
                               std::uint32_t>>::word_count == 3);
static_assert(
    wide_key_traits<std::tuple<std::uint64_t, std::uint64_t,
                               std::uint32_t>>::encoded_bits == 160);
// A 96-bit mixed composite: 2 words, the u64 component straddles nothing,
// the low 32 bits share word 1 with it.
static_assert(
    wide_key_traits<std::pair<std::uint64_t, std::int32_t>>::word_count ==
    2);
static_assert(
    wide_key_traits<std::pair<std::uint64_t, std::int32_t>>::encoded_bits ==
    96);
// Single-word keys present a one-word view.
static_assert(wide_key_traits<std::uint32_t>::word_count == 1);
static_assert(wide_key_traits<float>::exhaustive);
// Codec kinds and cheapness surface through the wide view.
static_assert(wide_key_traits<pair64>::kind == codec_kind::composite);
static_assert(wide_key_traits<u128>::kind == codec_kind::identity);
static_assert(wide_key_traits<__int128>::kind == codec_kind::sign_flip);
static_assert(wide_key_traits<std::string>::kind ==
              codec_kind::string_prefix);
static_assert(wide_key_traits<pair64>::cheap);
static_assert(wide_key_traits<std::string>::cheap);
// The string codec is the only non-exhaustive built-in.
static_assert(!wide_key_traits<std::string>::exhaustive);
static_assert(wide_key_traits<pair64>::exhaustive);
// Still rejected outright: key types with no codec at all.
static_assert(!any_sortable_key<std::vector<int>>);
// A composite with a prefix-coded (variable-length) component is the
// genuinely unencodable case and stays a COMPILE-TIME error with the
// "cannot be bit-concatenated" static_assert; verified manually:
//   g++ -std=c++20 -Isrc -fsyntax-only -x c++ - <<< \
//     '#include "dovetail/core/key_codec.hpp"
//      int main() { (void)dovetail::key_codec<std::pair<
//        std::string, std::uint64_t>>::encode_word({"a", 1}, 0); }'

// ---------------------------------------------------------------------------
// Codec word contracts.

TEST(WideKeyCodec, PairU64WordsMatchLexOrder) {
  const std::uint64_t edges[] = {0u, 1u, 0x7FFFFFFFFFFFFFFFull,
                                 0x8000000000000000ull,
                                 0xFFFFFFFFFFFFFFFFull};
  std::vector<pair64> keys;
  for (const auto a : edges)
    for (const auto b : edges) keys.push_back({a, b});
  for (std::uint64_t i = 0; i < 20000; ++i)
    keys.push_back({rnd(2 * i) & 0xFF, rnd(2 * i + 1)});
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    const pair64& a = keys[i];
    const pair64& b = keys[i + 1];
    ASSERT_EQ(a < b, words_less(a, b));
    ASSERT_EQ(a == b, words_equal(a, b));
  }
  // High word dominates; ties break on the low word.
  EXPECT_TRUE(words_less<pair64>({1, ~0ull}, {2, 0}));
  EXPECT_TRUE(words_less<pair64>({2, 3}, {2, 4}));
}

TEST(WideKeyCodec, U128AndI128Words) {
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const u128 a = (static_cast<u128>(rnd(4 * i)) << 64) | rnd(4 * i + 1);
    const u128 b = (static_cast<u128>(rnd(4 * i + 2) & 0x3) << 64) |
                   rnd(4 * i + 3);
    ASSERT_EQ(a < b, words_less(a, b));
    const auto sa = static_cast<__int128>(a);
    const auto sb = static_cast<__int128>(b);
    ASSERT_EQ(sa < sb, words_less(sa, sb));
    ASSERT_EQ(-sa < sb, words_less(-sa, sb));
  }
  // Sign-flip edges: INT128_MIN encodes below zero encodes below max.
  const __int128 lo = static_cast<__int128>(static_cast<u128>(1) << 127);
  const __int128 hi = static_cast<__int128>((static_cast<u128>(1) << 127) - 1);
  EXPECT_TRUE(words_less<__int128>(lo, __int128{0}));
  EXPECT_TRUE(words_less<__int128>(__int128{0}, hi));
  EXPECT_TRUE(words_less<__int128>(__int128{-1}, __int128{0}));
}

TEST(WideKeyCodec, WideTupleStraddlesWordBoundaries) {
  // 160-bit tuple: word 0 = top 32 bits (the u64 hi's upper half), words
  // 1-2 carry the straddled remainder. Compare against std::tuple's own
  // lexicographic order.
  using T = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const T a{rnd(6 * i), rnd(6 * i + 1),
              static_cast<std::uint32_t>(rnd(6 * i + 2))};
    const T b{rnd(6 * i + 3) & 0xFFFF, rnd(6 * i + 4),
              static_cast<std::uint32_t>(rnd(6 * i + 5))};
    ASSERT_EQ(a < b, words_less(a, b));
    ASSERT_EQ(a == b, words_equal(a, b));
  }
  // Signed component participates with its sign-flip encoding.
  using S = std::pair<std::uint64_t, std::int32_t>;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const S a{rnd(3 * i) & 0x7, static_cast<std::int32_t>(rnd(3 * i + 1))};
    const S b{rnd(3 * i + 2) & 0x7,
              static_cast<std::int32_t>(rnd(3 * i + 1) + i % 3)};
    ASSERT_EQ(a < b, words_less(a, b));
  }
}

TEST(WideKeyCodec, StringPrefixIsOrderPreservingCoarsening) {
  // 7+1 packing: 7 content bytes big-endian in the high 56 bits (first
  // byte most significant), min(7, remaining length) in the low byte.
  EXPECT_EQ(key_codec<std::string>::encode_word(std::string("ab"), 0),
            0x6162000000000002ull);
  // Word 1 starts at byte 7: "abcdefghi" has 'h','i' left, count 2.
  EXPECT_EQ(key_codec<std::string>::encode_word(std::string("abcdefghi"), 1),
            0x6869000000000002ull);
  EXPECT_EQ(key_codec<std::string>::encode_word(std::string("x"), 1), 0u);
  // Exactly 7 bytes fills the window: count saturates at 7 and the word
  // reports "continues" — the next window then shows count 0.
  const std::uint64_t full =
      key_codec<std::string>::encode_word(std::string("abcdefg"), 0);
  EXPECT_EQ(full, 0x6162636465666707ull);
  EXPECT_TRUE(key_codec<std::string>::word_continues(full));
  EXPECT_FALSE(key_codec<std::string>::word_continues(
      key_codec<std::string>::encode_word(std::string("abcdefg"), 0, 7)));
  // The offset form re-windows the key: offset 7 word 0 == offset 0 word 1.
  EXPECT_EQ(
      key_codec<std::string>::encode_word(std::string("abcdefghi"), 0, 7),
      key_codec<std::string>::encode_word(std::string("abcdefghi"), 1));
  // A string ending inside a window sorts below any extension: the count
  // byte breaks the padded-content tie ("abc" < "abc\0" in key order).
  EXPECT_LT(key_codec<std::string>::encode_word(std::string("abc"), 0),
            key_codec<std::string>::encode_word(std::string("abc\0", 4), 0));
  // s < t  =>  words(s) <= words(t), across lengths, NULs and prefixes.
  std::vector<std::string> pool = {"",      "a",    std::string("a\0", 2),
                                   "ab",    "abc",  "abcdefgh",
                                   "abcdefghi", "abcdefghijklmnop",
                                   "abcdefghijklmnopq", "b"};
  for (std::uint64_t i = 0; i < 5000; ++i)
    pool.push_back(gen::string_key_from(rnd(i)));
  for (std::size_t i = 0; i < pool.size(); ++i)
    for (std::size_t j = i + 1; j < std::min(pool.size(), i + 40); ++j) {
      const auto& s = pool[i];
      const auto& t = pool[j];
      if (s < t)
        ASSERT_FALSE(words_less(t, s)) << "'" << s << "' vs '" << t << "'";
      else if (t < s)
        ASSERT_FALSE(words_less(s, t)) << "'" << s << "' vs '" << t << "'";
    }
}

// ---------------------------------------------------------------------------
// Sort correctness: record-exact vs std::stable_sort.

namespace {

template <typename K>
void expect_matches_stable_sort(std::vector<tkv<K>> v,
                                const auto_sort_options& opt) {
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const tkv<K>& a, const tkv<K>& b) {
                     return a.key < b.key;
                   });
  dovetail::sort(std::span<tkv<K>>(v), key_of_tkv<K>, opt);
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_TRUE(v[i].key == ref[i].key) << "key differs at " << i;
    ASSERT_EQ(v[i].value, ref[i].value) << "stability broken at " << i;
  }
}

const std::size_t kDispatchSizes[] = {0,   1,    2,    5,     100,
                                      511, 513,  4096, 20000, 50000};

}  // namespace

TEST(WideSort, U128AllDispatchSizesAndShapes) {
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  const gen::distribution d{gen::dist_kind::zipfian, 1.2, "Zipf-1.2"};
  for (const std::size_t n : kDispatchSizes) {
    for (const int hi_bits : {0, 8, 64}) {
      expect_matches_stable_sort<u128>(
          gen::generate_wide_records<u128>(d, n, 1, hi_bits), opt);
    }
  }
}

TEST(WideSort, PairU64AllDispatchSizesAndShapes) {
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  const gen::distribution d{gen::dist_kind::uniform, 1e5, "Unif-1e5"};
  for (const std::size_t n : kDispatchSizes) {
    for (const int hi_bits : {0, 8, 64}) {
      expect_matches_stable_sort<pair64>(
          gen::generate_wide_records<pair64>(d, n, 2, hi_bits), opt);
    }
  }
}

TEST(WideSort, HeavyDuplicatesAndAllEqual) {
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  // 3 distinct keys over 40k records (heavy-duplicate regime at word 0).
  std::vector<tkv<u128>> v(40000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i].key = gen::wide_key_from<u128>(rnd(i) % 3, 64);
    v[i].value = static_cast<std::uint32_t>(i);
  }
  expect_matches_stable_sort<u128>(v, opt);
  // All keys fully equal: the sort must be the identity permutation.
  std::vector<tkv<u128>> eq(10000);
  for (std::size_t i = 0; i < eq.size(); ++i) {
    eq[i].key = (static_cast<u128>(42) << 64) | 7;
    eq[i].value = static_cast<std::uint32_t>(i);
  }
  sort_stats st;
  opt.stats = &st;
  dovetail::sort(std::span<tkv<u128>>(eq), key_of_tkv<u128>, opt);
  for (std::size_t i = 0; i < eq.size(); ++i)
    ASSERT_EQ(eq[i].value, i);
  opt.stats = nullptr;
}

TEST(WideSort, RefineStatsReflectSegmentStructure) {
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  // All-distinct word 0 (hi_bits = 64 over an effectively duplicate-free
  // stream — Unif-1e7 would produce ~125 birthday-coincident full keys at
  // this n, and duplicate keys legitimately form equal-word segments):
  // singleton segments only, so the word-0 pass finishes the sort with
  // zero refinement.
  const gen::distribution d{gen::dist_kind::uniform, 1e15, "Unif-1e15"};
  auto v = gen::generate_wide_records<u128>(d, 50000, 3, 64);
  dovetail::sort(std::span<tkv<u128>>(v), key_of_tkv<u128>, opt);
  EXPECT_EQ(st.refine_rounds.load(), 0u);
  EXPECT_EQ(st.wide_segments.load(), 0u);
  // All-equal word 0 (hi_bits = 0): exactly one top-level segment, one
  // refine round on the low word. The word-0 pass sees a constant key —
  // the run-merge kernel — and chosen_kernel must agree with the kernel
  // dovetail::sort RETURNS (the root dispatch), not with whatever the
  // refined segment's own dispatch chose.
  v = gen::generate_wide_records<u128>(d, 50000, 4, 0);
  const sort_kernel k =
      dovetail::sort(std::span<tkv<u128>>(v), key_of_tkv<u128>, opt);
  EXPECT_EQ(st.refine_rounds.load(), 1u);
  EXPECT_EQ(st.wide_segments.load(), 1u);
  EXPECT_EQ(st.codec_encoded_bits.load(), 128u);
  EXPECT_EQ(st.codec_kind_id.load(),
            1 + static_cast<std::uint64_t>(codec_kind::identity));
  EXPECT_EQ(st.entry_point.load(),
            1 + static_cast<std::uint64_t>(sort_entry::sort));
  EXPECT_EQ(k, sort_kernel::run_merge);
  ASSERT_TRUE(chosen_kernel_of(st).has_value());
  EXPECT_EQ(*chosen_kernel_of(st), k);
}

TEST(WideSort, TinyBaseCaseForcesFrontDoorRefinement) {
  // Shrink the comparison-sort base case so equal-prefix segments go back
  // through the radix front door even at test sizes.
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  opt.policy.wide_segment_base_case = 64;
  const gen::distribution d{gen::dist_kind::exponential, 7, "Exp-7"};
  for (const int hi_bits : {0, 4}) {
    expect_matches_stable_sort<u128>(
        gen::generate_wide_records<u128>(d, 30000, 5, hi_bits), opt);
  }
  EXPECT_GE(st.refine_rounds.load(), 1u);
}

TEST(WideSort, StringsFullLexicographicOrder) {
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  const gen::distribution d{gen::dist_kind::zipfian, 1.0, "Zipf-1"};
  for (const std::size_t n : kDispatchSizes) {
    auto s = gen::generate_string_keys(d, n, 6);
    auto ref = s;
    std::stable_sort(ref.begin(), ref.end());
    dovetail::sort(std::span<std::string>(s), opt);
    ASSERT_EQ(s, ref) << "n=" << n;
  }
}

TEST(WideSort, StringEdgeCasesBeyondPrefix) {
  // Ties on the whole materialized prefix (14 content bytes) resolved
  // beyond it, embedded NULs, strict prefixes, and lengths straddling the
  // word boundary.
  std::vector<std::string> s = {
      "", "a", std::string("a\0", 2), std::string("a\0b", 3),
      "aaaaaaaaaaaaaa",        // exactly the materialized window
      "aaaaaaaaaaaaaaaa",      // two bytes past it
      "aaaaaaaaaaaaaaaaX",     // beyond-prefix difference...
      "aaaaaaaaaaaaaaaaA",     // ...in both directions
      "aaaaaaaaaaaaaa" + std::string("\0", 1),  // NUL just past the window
      "aaaaaaab", "aaaaaaa", "zzzz",
  };
  // Replicate with witness duplicates and shuffle deterministically.
  std::vector<std::string> v;
  for (int rep = 0; rep < 50; ++rep)
    for (const auto& x : s) v.push_back(x);
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[rnd(i) % i]);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end());
  dovetail::sort(std::span<std::string>(v));
  ASSERT_EQ(v, ref);
}

TEST(WideSort, StringStabilityViaRank) {
  // Stability on strings is only observable through rank: equal keys must
  // keep increasing input indices.
  const gen::distribution d{gen::dist_kind::uniform, 100, "Unif-100"};
  const auto s = gen::generate_string_keys(d, 20000, 7, 4);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  const auto perm = dovetail::rank(
      std::span<const std::string>(s.data(), s.size()), opt);
  std::vector<index_t> ref(s.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = i;
  std::stable_sort(ref.begin(), ref.end(),
                   [&](index_t a, index_t b) { return s[a] < s[b]; });
  ASSERT_EQ(perm, ref);
}

// ---------------------------------------------------------------------------
// SoA + argsort entry points.

TEST(WideSort, SortByKeyU128AndStrings) {
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  const gen::distribution d{gen::dist_kind::exponential, 5, "Exp-5"};
  {
    auto recs = gen::generate_wide_records<u128>(d, 30000, 8, 8);
    std::vector<u128> keys(recs.size());
    std::vector<std::uint32_t> vals(recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      keys[i] = recs[i].key;
      vals[i] = static_cast<std::uint32_t>(i);
    }
    auto ref = recs;
    std::stable_sort(ref.begin(), ref.end(),
                     [](const tkv<u128>& a, const tkv<u128>& b) {
                       return a.key < b.key;
                     });
    dovetail::sort_by_key(std::span<u128>(keys),
                          std::span<std::uint32_t>(vals), opt);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(keys[i] == ref[i].key);
      ASSERT_EQ(vals[i], ref[i].value);
    }
    EXPECT_EQ(st.entry_point.load(),
              1 + static_cast<std::uint64_t>(sort_entry::sort_by_key));
  }
  {
    auto keys = gen::generate_string_keys(d, 20000, 9);
    std::vector<std::uint32_t> vals(keys.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
      vals[i] = static_cast<std::uint32_t>(i);
    std::vector<index_t> perm(keys.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      return keys[a] < keys[b];
    });
    auto kref = keys;
    dovetail::sort_by_key(std::span<std::string>(keys),
                          std::span<std::uint32_t>(vals), opt);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(keys[i], kref[perm[i]]);
      ASSERT_EQ(vals[i], static_cast<std::uint32_t>(perm[i]));
    }
  }
}

TEST(WideSort, RankDoesNotMutateAndMatchesStableSort) {
  const gen::distribution d{gen::dist_kind::zipfian, 1.5, "Zipf-1.5"};
  const auto recs = gen::generate_wide_records<pair64>(d, 30000, 10, 8);
  const auto copy = recs;
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  const auto perm = dovetail::rank(
      std::span<const tkv<pair64>>(recs.data(), recs.size()),
      key_of_tkv<pair64>, opt);
  ASSERT_EQ(recs.size(), copy.size());
  for (std::size_t i = 0; i < recs.size(); ++i)
    ASSERT_TRUE(recs[i].key == copy[i].key && recs[i].value == copy[i].value);
  std::vector<index_t> ref(recs.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = i;
  std::stable_sort(ref.begin(), ref.end(), [&](index_t a, index_t b) {
    return recs[a].key < recs[b].key;
  });
  ASSERT_EQ(perm, ref);
}

// ---------------------------------------------------------------------------
// Workspace discipline.

TEST(WideSort, ZeroAllocWarmReuse) {
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  const gen::distribution d{gen::dist_kind::uniform, 1e5, "Unif-1e5"};
  const auto pristine = gen::generate_wide_records<u128>(d, 60000, 11, 8);
  auto v = pristine;
  dovetail::sort(std::span<tkv<u128>>(v), key_of_tkv<u128>, opt);  // warm-up
  const std::uint64_t a0 = st.workspace_allocations.load();
  v = pristine;
  dovetail::sort(std::span<tkv<u128>>(v), key_of_tkv<u128>, opt);
  EXPECT_EQ(st.workspace_allocations.load(), a0)
      << "warm wide sort allocated from the workspace";
  // The pair path's leases (word-index pairs + segment tables) also reuse.
  const auto sp = gen::generate_string_keys(d, 20000, 12);
  auto s = sp;
  dovetail::sort(std::span<std::string>(s), opt);  // warm-up for this shape
  const std::uint64_t a1 = st.workspace_allocations.load();
  s = sp;
  dovetail::sort(std::span<std::string>(s), opt);
  EXPECT_EQ(st.workspace_allocations.load(), a1)
      << "warm string sort allocated workspace slabs";
  // The continuation recursion too: a long-common-prefix corpus with a
  // tiny base case drives several re-encode rounds through the same
  // leased tables (serial refine keeps every lease on this workspace, so
  // the count is deterministic), and a warm repeat must add nothing.
  opt.policy.wide_segment_base_case = 64;
  opt.policy.parallel_wide_refine = false;
  const auto lp = gen::generate_lcp_string_keys(d, 20000, 13, 64);
  s = lp;
  dovetail::sort(std::span<std::string>(s), opt);  // warm-up for this shape
  EXPECT_GE(st.wide_continuation_rounds.load(), 3u);
  EXPECT_EQ(st.wide_tiebreak_fallbacks.load(), 0u);
  const std::uint64_t a2 = st.workspace_allocations.load();
  s = lp;
  dovetail::sort(std::span<std::string>(s), opt);
  EXPECT_EQ(st.workspace_allocations.load(), a2)
      << "warm continuation sort allocated workspace slabs";
}
