// Standalone property tests for DTMerge (Alg 3), exercising both the
// light-smaller and heavy-smaller branches, the overlapping (two-flip) and
// disjoint move paths, and stability — validated against a reference merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dt_merge.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using dovetail::dt_merge;
using dovetail::kv32;
using dovetail::pl_merge;
namespace par = dovetail::par;

namespace {

constexpr auto key_fn = [](const kv32& r) { return r.key; };

// Build a zone: sorted light bucket (keys drawn from `light_keys`, never a
// heavy key), then heavy buckets in key order. Values record global input
// order so stability is checkable.
struct zone_case {
  std::vector<kv32> zone;
  std::size_t light_size;
  std::vector<std::size_t> heavy_sizes;
};

zone_case build_case(std::size_t num_light,
                     const std::vector<std::pair<std::uint32_t, std::size_t>>&
                         heavy /* key -> count */,
                     std::uint64_t seed) {
  zone_case c;
  std::vector<std::uint32_t> hset;
  for (auto& [k, cnt] : heavy) hset.push_back(k);
  std::vector<std::uint32_t> lkeys;
  for (std::size_t i = 0; lkeys.size() < num_light; ++i) {
    auto k = static_cast<std::uint32_t>(par::rand_range(seed, i, 1000));
    if (std::find(hset.begin(), hset.end(), k) == hset.end())
      lkeys.push_back(k);
  }
  std::sort(lkeys.begin(), lkeys.end());
  std::uint32_t v = 0;
  for (auto k : lkeys) c.zone.push_back({k, v++});
  c.light_size = num_light;
  for (auto& [k, cnt] : heavy) {
    c.heavy_sizes.push_back(cnt);
    for (std::size_t i = 0; i < cnt; ++i) c.zone.push_back({k, v++});
  }
  return c;
}

void check_merge(zone_case c, bool use_dt) {
  // Reference: stable sort by key of the whole zone. Light values are
  // assigned in sorted order and heavy buckets are in key order, so a
  // stable sort reproduces exactly what a correct dovetail merge must give.
  auto expect = c.zone;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const kv32& a, const kv32& b) { return a.key < b.key; });
  std::vector<kv32> tmp(c.zone.size());
  if (use_dt)
    dt_merge(std::span<kv32>(c.zone), c.light_size,
             std::span<const std::size_t>(c.heavy_sizes), key_fn,
             std::span<kv32>(tmp));
  else
    pl_merge(std::span<kv32>(c.zone), c.light_size, key_fn,
             std::span<kv32>(tmp));
  ASSERT_EQ(c.zone.size(), expect.size());
  for (std::size_t i = 0; i < c.zone.size(); ++i) {
    ASSERT_EQ(c.zone[i].key, expect[i].key) << "key mismatch at " << i;
    ASSERT_EQ(c.zone[i].value, expect[i].value) << "stability broken at " << i;
  }
}

}  // namespace

TEST(DTMerge, NoHeavyBucketsIsNoop) {
  auto c = build_case(100, {}, 1);
  check_merge(c, true);
}

TEST(DTMerge, EmptyLightBucket) {
  auto c = build_case(0, {{5, 50}, {9, 30}}, 2);
  check_merge(c, true);
}

TEST(DTMerge, HeavyLargerSingleBucket) {
  check_merge(build_case(20, {{500, 200}}, 3), true);
}

TEST(DTMerge, HeavyLargerManyBuckets) {
  check_merge(build_case(50, {{10, 40}, {300, 80}, {700, 60}, {999, 20}}, 4),
              true);
}

TEST(DTMerge, LightLargerSingleBucket) {
  check_merge(build_case(500, {{123, 30}}, 5), true);
}

TEST(DTMerge, LightLargerManyBuckets) {
  check_merge(build_case(800, {{10, 5}, {300, 40}, {700, 25}, {999, 10}}, 6),
              true);
}

TEST(DTMerge, HeavyKeySmallerThanAllLight) {
  check_merge(build_case(300, {{0, 50}}, 7), true);
  check_merge(build_case(30, {{0, 300}}, 8), true);
}

TEST(DTMerge, HeavyKeyLargerThanAllLight) {
  check_merge(build_case(300, {{1000000, 50}}, 9), true);
  check_merge(build_case(30, {{1000000, 300}}, 10), true);
}

TEST(DTMerge, OverlapForcedLeftwardFlip) {
  // One huge heavy bucket whose destination overlaps its source.
  check_merge(build_case(10, {{500, 5000}}, 11), true);
}

TEST(DTMerge, OverlapForcedRightwardFlip) {
  // One huge light chunk shifted right by a small heavy bucket.
  check_merge(build_case(5000, {{0, 3}}, 12), true);
}

TEST(DTMerge, EqualSplitSizes) {
  check_merge(build_case(100, {{500, 100}}, 13), true);
}

TEST(DTMerge, PlMergeBaselineAgrees) {
  check_merge(build_case(500, {{10, 40}, {300, 80}, {700, 60}}, 14), false);
  check_merge(build_case(40, {{10, 400}, {300, 800}}, 15), false);
}

// Randomized sweep over bucket configurations: both branches, many shapes.
class DTMergeRandom : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sweep, DTMergeRandom, ::testing::Range(0, 40));

TEST_P(DTMergeRandom, MatchesReference) {
  const std::uint64_t seed = 100 + static_cast<std::uint64_t>(GetParam());
  const std::size_t num_light = par::rand_range(seed, 0, 2000);
  const std::size_t m = par::rand_range(seed, 1, 12);
  std::vector<std::pair<std::uint32_t, std::size_t>> heavy;
  std::uint32_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {
    k += 1 + static_cast<std::uint32_t>(par::rand_range(seed, 10 + i, 120));
    heavy.push_back(
        {k, 1 + static_cast<std::size_t>(par::rand_range(seed, 50 + i, 500))});
  }
  check_merge(build_case(num_light, heavy, seed), true);
  check_merge(build_case(num_light, heavy, seed), false);
}
