// DovetailSort across key widths (8/16/32/64-bit) and record shapes
// (key-only, small pair, wide payload) — the API is templated on both, and
// the digit logic must be correct at every key width boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;

namespace {

template <typename K>
void check_keys_only(std::size_t n, std::uint64_t key_bound,
                     std::uint64_t seed) {
  std::vector<K> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<K>(par::rand_range(seed, i, key_bound));
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  dovetail_sort(std::span<K>(v));
  EXPECT_EQ(v, ref);
}

}  // namespace

TEST(KeyWidths, Uint8Keys) {
  check_keys_only<std::uint8_t>(100000, 256, 1);
  check_keys_only<std::uint8_t>(100000, 4, 2);  // heavy duplicates
}

TEST(KeyWidths, Uint16Keys) {
  check_keys_only<std::uint16_t>(150000, 65536, 3);
  check_keys_only<std::uint16_t>(150000, 100, 4);
}

TEST(KeyWidths, Uint32FullRangeIncludingMax) {
  std::vector<std::uint32_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::uint32_t>(par::hash64(i));
  v[0] = 0xFFFFFFFFu;
  v[1] = 0;
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  dovetail_sort(std::span<std::uint32_t>(v));
  EXPECT_EQ(v, ref);
}

TEST(KeyWidths, Uint64FullRangeIncludingMax) {
  std::vector<std::uint64_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = par::hash64(i);
  v[0] = ~0ull;
  v[1] = 0;
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  dovetail_sort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, ref);
}

TEST(KeyWidths, NarrowKeyInWideType) {
  // 64-bit type but only 10 significant bits: the overflow-bucket range
  // detection must collapse the recursion to a couple of levels.
  std::vector<std::uint64_t> v(200000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = par::hash64(i) & 0x3FF;
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  dovetail_sort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, ref);
}

// ---------------------------------------------------------------------------

namespace {

// A realistic "row" record: 8-byte key, 24-byte payload.
struct wide_record {
  std::uint64_t key;
  std::array<std::uint64_t, 3> payload;
  friend bool operator==(const wide_record&, const wide_record&) = default;
};
static_assert(sizeof(wide_record) == 32);

}  // namespace

TEST(Payloads, WideRecordsSortStably) {
  const std::size_t n = 120000;
  std::vector<wide_record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = par::rand_range(7, i, 1000);  // heavy dups
    v[i] = {k, {i, par::hash64(i), k ^ i}};
  }
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const wide_record& a, const wide_record& b) {
                     return a.key < b.key;
                   });
  dovetail_sort(std::span<wide_record>(v),
                [](const wide_record& r) { return r.key; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], ref[i]) << i;
}

TEST(Payloads, KeyDerivedFromPayloadFunction) {
  // Key function computing a derived key (not a stored field).
  struct item {
    std::uint32_t a;
    std::uint32_t b;
  };
  const std::size_t n = 80000;
  std::vector<item> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<std::uint32_t>(par::hash64(i) % 500),
            static_cast<std::uint32_t>(i)};
  auto key = [](const item& r) {
    return static_cast<std::uint64_t>(r.a) * 2 + 1;  // derived, monotone in a
  };
  dovetail_sort(std::span<item>(v), key);
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(v[i - 1].a, v[i].a);
    if (v[i - 1].a == v[i].a) {
      ASSERT_LT(v[i - 1].b, v[i].b);  // stability via payload index
    }
  }
}

TEST(Payloads, PairOfKeyAndPointerSizedValue) {
  const std::size_t n = 60000;
  std::vector<kv64> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {par::rand_range(9, i, 32), i};  // 32 distinct keys
  dovetail_sort(std::span<kv64>(v), key_of_kv64);
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].value, v[i].value);
    }
  }
}
