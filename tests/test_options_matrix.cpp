// Full cross-product of DovetailSort's option space on two contrasting
// distributions: every combination of heavy detection, merge algorithm,
// overflow handling, digit width and base case must produce the identical
// stable result. This guards against interactions between features (e.g.
// overflow buckets created while heavy keys exist in the same zone).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

struct matrix_param {
  bool detect_heavy;
  bool use_dt_merge;
  bool skip_leading_bits;
  int gamma;
  std::size_t base_case;
};

std::string param_name(const ::testing::TestParamInfo<matrix_param>& info) {
  const auto& p = info.param;
  return std::string(p.detect_heavy ? "heavy" : "plain") + "_" +
         (p.use_dt_merge ? "dtm" : "plm") + "_" +
         (p.skip_leading_bits ? "ovf" : "noovf") + "_g" +
         std::to_string(p.gamma) + "_t" + std::to_string(p.base_case);
}

std::vector<matrix_param> make_matrix() {
  std::vector<matrix_param> out;
  for (bool heavy : {true, false})
    for (bool dtm : {true, false})
      for (bool ovf : {true, false})
        for (int gamma : {3, 8})
          for (std::size_t theta : {32ul, 4096ul})
            out.push_back({heavy, dtm, ovf, gamma, theta});
  return out;
}

}  // namespace

class OptionsMatrix : public ::testing::TestWithParam<matrix_param> {};
INSTANTIATE_TEST_SUITE_P(All, OptionsMatrix,
                         ::testing::ValuesIn(make_matrix()), param_name);

TEST_P(OptionsMatrix, ZipfHeavyDuplicates) {
  const auto& p = GetParam();
  sort_options o;
  o.detect_heavy = p.detect_heavy;
  o.use_dt_merge = p.use_dt_merge;
  o.skip_leading_bits = p.skip_leading_bits;
  o.gamma = p.gamma;
  o.base_case = p.base_case;
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.3, "z"},
                                       60000, 91);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, ref[i].key) << i;
    ASSERT_EQ(v[i].value, ref[i].value) << i;
  }
}

TEST_P(OptionsMatrix, SmallRangeWithOutliers) {
  const auto& p = GetParam();
  sort_options o;
  o.detect_heavy = p.detect_heavy;
  o.use_dt_merge = p.use_dt_merge;
  o.skip_leading_bits = p.skip_leading_bits;
  o.gamma = p.gamma;
  o.base_case = p.base_case;
  std::vector<kv32> v(60000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint32_t k = static_cast<std::uint32_t>(par::hash64(i) % 300);
    if (i % 7777 == 0) k = 0xFF000000u | static_cast<std::uint32_t>(i);
    v[i] = {k, static_cast<std::uint32_t>(i)};
  }
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, ref[i].key) << i;
    ASSERT_EQ(v[i].value, ref[i].value) << i;
  }
}
