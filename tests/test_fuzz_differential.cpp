// Randomized differential testing: for a sweep of deterministic seeds,
// build an input by mixing distribution fragments (sorted runs, constant
// runs, random blocks, bit-patterned keys), pick random-but-valid sort
// options, and compare DovetailSort byte-for-byte against
// std::stable_sort. Every failure is reproducible from the seed. The wide
// arm (FuzzDifferentialWide) runs the same discipline over 128-bit keys
// through dovetail::sort's refine-by-segment driver, mixing chunks whose
// word-0 entropy ranges from constant to fully random. The string arm
// (FuzzDifferentialLcpString) drives the variable-length string engine
// over random long-common-prefix corpora, demanding the MSD continuation
// and its tie-break ablation both match the reference. The streaming arm
// (FuzzDifferentialStream) feeds the SAME mixed inputs through
// stream_sorter under a random chunking plan and demands byte-identity
// with both std::stable_sort and the one-shot front door.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/order_stats.hpp"
#include "dovetail/core/stream_sort.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace par = dovetail::par;

namespace {

std::vector<kv32> build_mixed_input(std::uint64_t seed) {
  const std::size_t n = 20000 + par::rand_range(seed, 0, 80000);
  std::vector<kv32> v;
  v.reserve(n);
  std::uint64_t chunk_id = 1;
  while (v.size() < n) {
    const std::size_t len =
        std::min(n - v.size(),
                 static_cast<std::size_t>(1 + par::rand_range(seed, chunk_id,
                                                              5000)));
    const std::uint64_t kind = par::rand_range(seed, chunk_id + 1000000, 6);
    const std::uint64_t base = par::rand_at(seed, chunk_id + 2000000);
    for (std::size_t i = 0; i < len; ++i) {
      std::uint32_t key = 0;
      switch (kind) {
        case 0:  // constant run (heavy key)
          key = static_cast<std::uint32_t>(base);
          break;
        case 1:  // ascending run
          key = static_cast<std::uint32_t>(base + i);
          break;
        case 2:  // descending run
          key = static_cast<std::uint32_t>(base - i);
          break;
        case 3:  // random
          key = static_cast<std::uint32_t>(
              par::rand_at(seed, chunk_id * 101 + i));
          break;
        case 4:  // few distinct values
          key = static_cast<std::uint32_t>(
              base + par::rand_range(seed, chunk_id * 103 + i, 3) * 977);
          break;
        default:  // bit-sparse keys (BExp-ish)
          key = static_cast<std::uint32_t>(base) &
                static_cast<std::uint32_t>(par::rand_at(seed,
                                                        chunk_id * 107 + i)) &
                static_cast<std::uint32_t>(par::rand_at(seed,
                                                        chunk_id * 109 + i));
          break;
      }
      v.push_back({key, static_cast<std::uint32_t>(v.size())});
    }
    ++chunk_id;
  }
  return v;
}

sort_options random_options(std::uint64_t seed) {
  sort_options o;
  o.gamma = static_cast<int>(2 + par::rand_range(seed, 11, 11));  // 2..12
  o.base_case = std::size_t{1} << par::rand_range(seed, 12, 15);  // 1..2^14
  o.detect_heavy = par::rand_range(seed, 13, 2) == 0;
  o.use_dt_merge = par::rand_range(seed, 14, 2) == 0;
  o.skip_leading_bits = par::rand_range(seed, 15, 2) == 0;
  o.seed = par::rand_at(seed, 16);
  return o;
}

}  // namespace

class FuzzDifferential : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0, 48));

TEST_P(FuzzDifferential, MatchesStdStableSort) {
  const auto seed = static_cast<std::uint64_t>(1000 + GetParam());
  auto v = build_mixed_input(seed);
  const sort_options opt = random_options(seed);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, ref[i].key)
        << "seed=" << seed << " i=" << i << " gamma=" << opt.gamma
        << " theta=" << opt.base_case << " heavy=" << opt.detect_heavy
        << " dtm=" << opt.use_dt_merge << " ovf=" << opt.skip_leading_bits;
    ASSERT_EQ(v[i].value, ref[i].value)
        << "stability broken; seed=" << seed << " i=" << i;
  }
}

namespace {

// Wide-key fuzz record: a 128-bit key through the refine driver
// (wide_sort.hpp) with a stability witness.
struct kv128 {
  unsigned __int128 key;
  std::uint32_t value;
};

// Mixed 128-bit inputs built from the same fragment vocabulary as the
// 32-bit arm, with the word-0 entropy varying per chunk: constant high
// words (one giant equal-prefix segment), shared high words (many small
// segments), fully random keys (singleton segments), ascending runs.
std::vector<kv128> build_mixed_wide_input(std::uint64_t seed) {
  const std::size_t n = 20000 + par::rand_range(seed, 1, 60000);
  std::vector<kv128> v;
  v.reserve(n);
  std::uint64_t chunk_id = 1;
  while (v.size() < n) {
    const std::size_t len = std::min(
        n - v.size(),
        static_cast<std::size_t>(1 + par::rand_range(seed, chunk_id, 4000)));
    const std::uint64_t kind = par::rand_range(seed, chunk_id + 1000000, 5);
    const std::uint64_t base = par::rand_at(seed, chunk_id + 2000000);
    for (std::size_t i = 0; i < len; ++i) {
      std::uint64_t hi = 0;
      std::uint64_t lo = 0;
      switch (kind) {
        case 0:  // constant key (heavy duplicate across both words)
          hi = base;
          lo = base ^ 0xABCD;
          break;
        case 1:  // constant high word, random low word (one big segment)
          hi = base & 0xFFFF;
          lo = par::rand_at(seed, chunk_id * 131 + i);
          break;
        case 2:  // few distinct high words, few low words (nested dups)
          hi = base + par::rand_range(seed, chunk_id * 137 + i, 3);
          lo = par::rand_range(seed, chunk_id * 139 + i, 5) * 7919;
          break;
        case 3:  // ascending in the low word
          hi = base & 0xFF;
          lo = base + i;
          break;
        default:  // fully random (word 0 separates almost everything)
          hi = par::rand_at(seed, chunk_id * 149 + i);
          lo = par::rand_at(seed, chunk_id * 151 + i);
          break;
      }
      v.push_back({(static_cast<unsigned __int128>(hi) << 64) | lo,
                   static_cast<std::uint32_t>(v.size())});
    }
    ++chunk_id;
  }
  return v;
}

}  // namespace

class FuzzDifferentialWide : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialWide,
                         ::testing::Range(0, 24));

TEST_P(FuzzDifferentialWide, MatchesStdStableSort) {
  const auto seed = static_cast<std::uint64_t>(7000 + GetParam());
  auto v = build_mixed_wide_input(seed);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const kv128& a, const kv128& b) {
                     return a.key < b.key;
                   });
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  // Odd seeds shrink the comparison base case so the refine rounds go
  // back through the radix front door instead of finishing by comparison.
  if (seed % 2 == 1) opt.policy.wide_segment_base_case = 256;
  dovetail::sort(std::span<kv128>(v),
                 [](const kv128& r) { return r.key; }, opt);
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_TRUE(v[i].key == ref[i].key)
        << "seed=" << seed << " i=" << i;
    ASSERT_EQ(v[i].value, ref[i].value)
        << "stability broken; seed=" << seed << " i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Long-common-prefix string arm: the variable-length string engine
// (wide_sort.hpp's MSD continuation) against both its own tie-break
// ablation and std::stable_sort. Each seed draws a common prefix of
// random length 0..256 over the FULL byte alphabet (NUL and 0xFF
// included), then mixes per-key shapes: truncations inside the prefix
// (strict-prefix adversaries), exact prefix duplicates, and tails of
// random length/entropy — shared across a small id space on some kinds so
// duplicate full keys occur too.

namespace {

std::vector<std::string> build_lcp_string_input(std::uint64_t seed) {
  const std::size_t plen = par::rand_range(seed, 21, 257);  // 0..256
  std::string prefix(plen, '\0');
  for (std::size_t i = 0; i < plen; ++i)
    prefix[i] = static_cast<char>(par::rand_at(seed, 500000 + i) & 0xFF);
  const std::size_t n = 2000 + par::rand_range(seed, 22, 20000);
  std::vector<std::string> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t kind = par::rand_range(seed, 600000 + i, 8);
    std::string s;
    if (kind == 0) {  // truncated inside the prefix
      s.assign(prefix, 0, par::rand_range(seed, 700000 + i, plen + 1));
    } else if (kind == 1) {  // exact prefix duplicate
      s = prefix;
    } else {  // prefix + tail; kinds 2-4 draw the tail from a 50-wide id
              // space (duplicate full keys), kinds 5-7 fully random
      s = prefix;
      const std::uint64_t tail_id =
          kind < 5 ? par::rand_range(seed, 800000 + i, 50)
                   : par::rand_at(seed, 800000 + i);
      const std::size_t tlen = par::rand_range(seed, 900000 + tail_id, 40);
      for (std::size_t t = 0; t < tlen; ++t)
        s += static_cast<char>(par::rand_at(seed, tail_id * 131 + t) & 0xFF);
    }
    v.push_back(std::move(s));
  }
  return v;
}

}  // namespace

class FuzzDifferentialLcpString : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialLcpString,
                         ::testing::Range(0, 24));

TEST_P(FuzzDifferentialLcpString, ContinuationAndAblationMatchReference) {
  const auto seed = static_cast<std::uint64_t>(9000 + GetParam());
  const auto input = build_lcp_string_input(seed);
  auto ref = input;
  std::stable_sort(ref.begin(), ref.end());
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  // Odd seeds shrink the comparison base case so the continuation recurses
  // several windows deep; a third of the seeds cap per-call parallelism
  // (1 = exact serial path).
  if (seed % 2 == 1) opt.policy.wide_segment_base_case = 256;
  if (seed % 3 == 0) opt.num_threads = (seed % 6 == 0) ? 4 : 1;
  auto cont = input;
  opt.policy.wide_continuation = true;
  dovetail::sort(std::span<std::string>(cont), opt);
  auto abl = input;
  opt.policy.wide_continuation = false;
  dovetail::sort(std::span<std::string>(abl), opt);
  ASSERT_EQ(cont, ref) << "continuation diverged; seed=" << seed;
  ASSERT_EQ(abl, ref) << "tie-break ablation diverged; seed=" << seed;
}

// ---------------------------------------------------------------------------
// Streaming arm: random chunking of the same mixed fuzz inputs through
// stream_sorter. Chunk boundaries are independent of the fragment
// boundaries inside build_mixed_input, so runs/constants/random blocks get
// split across pushes in every way the seeds reach. Every few seeds also
// bound pending runs, exercising push-time compaction.

class FuzzDifferentialStream : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialStream,
                         ::testing::Range(0, 24));

TEST_P(FuzzDifferentialStream, MatchesStableSortAndOneShot) {
  const auto seed = static_cast<std::uint64_t>(3000 + GetParam());
  const auto input = build_mixed_input(seed);

  auto ref = input;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  auto one_shot = input;
  {
    sort_workspace ws;
    auto_sort_options opt;
    opt.workspace = &ws;
    dovetail::sort(std::span<kv32>(one_shot), key_of_kv32, opt);
  }

  stream_options sopt;
  if (seed % 3 == 0)
    sopt.max_pending_runs = 2 + par::rand_range(seed, 17, 6);  // 2..7
  stream_sorter<kv32, decltype(key_of_kv32)> s(sopt, key_of_kv32);
  const std::size_t max_chunk =
      1 + par::rand_range(seed, 18, 9000);  // 1..9000
  std::size_t off = 0, i = 0;
  while (off < input.size()) {
    const std::size_t c = std::min(
        input.size() - off,
        static_cast<std::size_t>(par::rand_range(
            seed, 400000 + i++, static_cast<std::uint64_t>(max_chunk + 1))));
    s.push(std::span<const kv32>(input.data() + off, c));
    off += c;
  }
  const auto got = s.finish();

  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    ASSERT_EQ(got[j].key, ref[j].key)
        << "seed=" << seed << " i=" << j << " max_chunk=" << max_chunk;
    ASSERT_EQ(got[j].value, ref[j].value)
        << "stability broken; seed=" << seed << " i=" << j;
  }
  // And bit-for-bit the one-shot front door, the contract stream_sort.hpp
  // documents.
  ASSERT_TRUE(std::equal(got.begin(), got.end(), one_shot.begin(),
                         [](const kv32& a, const kv32& b) {
                           return a.key == b.key && a.value == b.value;
                         }))
      << "seed=" << seed;
}

// ---------------------------------------------------------------------------
// Query arm: the rank-window selection driver (order_stats.hpp) over the
// same mixed fuzz inputs. Each seed draws a query shape — top-k of either
// side, nth_element, partial_sort — plus a random select_base_case, and
// demands the result windows match the std::stable_sort reference byte
// for byte (keys AND the index values, so stability at the window
// boundary is checked, not just key order).

class FuzzDifferentialQuery : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialQuery,
                         ::testing::Range(0, 24));

TEST_P(FuzzDifferentialQuery, WindowsMatchStableSortSlices) {
  const auto seed = static_cast<std::uint64_t>(11000 + GetParam());
  const auto input = build_mixed_input(seed);
  const std::size_t n = input.size();
  auto ref = input;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  // Odd seeds shrink the selection base case so pruned recursion goes
  // several digit levels deep; a third of the seeds cap parallelism.
  if (seed % 2 == 1)
    opt.policy.select_base_case = std::size_t{1}
                                  << par::rand_range(seed, 31, 8);  // 1..128
  if (seed % 3 == 0) opt.num_threads = (seed % 6 == 0) ? 4 : 1;
  const std::size_t k = 1 + par::rand_range(seed, 32, n);  // 1..n
  {
    auto v = input;
    const auto out = top_k(std::span<kv32>(v), k, key_of_kv32,
                           rank_side::smallest, opt);
    ASSERT_EQ(out.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i].key, ref[i].key) << "seed=" << seed << " i=" << i;
      ASSERT_EQ(out[i].value, ref[i].value)
          << "stability broken; seed=" << seed << " i=" << i;
    }
  }
  {
    auto v = input;
    const auto out = top_k(std::span<kv32>(v), k, key_of_kv32,
                           rank_side::largest, opt);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i].key, ref[n - k + i].key) << "seed=" << seed;
      ASSERT_EQ(out[i].value, ref[n - k + i].value) << "seed=" << seed;
    }
  }
  {
    const std::size_t nth = par::rand_range(seed, 33, n);
    auto v = input;
    const kv32& r = dovetail::nth_element(std::span<kv32>(v), nth,
                                          key_of_kv32, opt);
    ASSERT_EQ(r.key, ref[nth].key) << "seed=" << seed << " nth=" << nth;
    ASSERT_EQ(r.value, ref[nth].value) << "seed=" << seed << " nth=" << nth;
  }
  {
    const std::size_t m = par::rand_range(seed, 34, n + 1);
    auto v = input;
    dovetail::partial_sort(std::span<kv32>(v), m, key_of_kv32, opt);
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(v[i].key, ref[i].key) << "seed=" << seed << " i=" << i;
      ASSERT_EQ(v[i].value, ref[i].value) << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(FuzzDifferential64, MixedInputs64Bit) {
  for (std::uint64_t seed = 5000; seed < 5012; ++seed) {
    const std::size_t n = 30000 + par::rand_range(seed, 0, 50000);
    std::vector<kv64> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix narrow and wide keys within one input.
      const std::uint64_t wide = par::rand_at(seed, i);
      const std::uint64_t k = (i % 3 == 0) ? (wide & 0xFFFF) : wide;
      v[i] = {k, i};
    }
    auto ref = v;
    std::stable_sort(ref.begin(), ref.end(),
                     [](const kv64& a, const kv64& b) { return a.key < b.key; });
    dovetail_sort(std::span<kv64>(v), key_of_kv64, random_options(seed));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(v[i].key, ref[i].key) << "seed=" << seed;
      ASSERT_EQ(v[i].value, ref[i].value) << "seed=" << seed;
    }
  }
}

// --- in-place arm ----------------------------------------------------------
// The unstable block-permutation kernel (core/inplace_sort.hpp) under the
// same mixed inputs and seed discipline. The contract is weaker than the
// stable arms' byte-identity, and the checks match it exactly:
//   * records with payload: the output is a permutation of the input whose
//     key sequence is IDENTICAL to the stable reference's (sortedness with
//     exact multiplicities), and no (key, value) pair is lost;
//   * pure keys: the sorted sequence is unique, so the output must be
//     byte-identical to the reference after all.
class FuzzDifferentialInplace : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialInplace,
                         ::testing::Range(0, 24));

TEST_P(FuzzDifferentialInplace, PermutationWithReferenceKeySequence) {
  const auto seed = static_cast<std::uint64_t>(9000 + GetParam());
  auto v = build_mixed_input(seed);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });

  // Randomized-but-valid kernel parameters, reproducible from the seed.
  inplace_sort_options iopt;
  iopt.gamma = static_cast<int>(2 + par::rand_range(seed, 21, 11));  // 2..12
  iopt.base_case = std::size_t{1} << par::rand_range(seed, 22, 15);
  iopt.block_bytes = std::size_t{256} << par::rand_range(seed, 23, 5);
  inplace_sort(std::span<kv32>(v), key_of_kv32, iopt);

  ASSERT_EQ(v.size(), ref.size());
  std::uint64_t h_got = 0;
  std::uint64_t h_ref = 0;
  const auto mix = [](const kv32& r) {
    std::uint64_t x =
        (std::uint64_t{r.key} << 32) | (r.value ^ 0x9E3779B9u);
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
  };
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, ref[i].key)
        << "key sequence diverges; seed=" << seed << " i=" << i
        << " gamma=" << iopt.gamma << " base=" << iopt.base_case
        << " blk=" << iopt.block_bytes;
    h_got += mix(v[i]);
    h_ref += mix(ref[i]);
  }
  // Same (key, value) multiset: the permutation lost or duplicated nothing.
  ASSERT_EQ(h_got, h_ref) << "record multiset changed; seed=" << seed;
}

TEST_P(FuzzDifferentialInplace, PureKeysByteIdenticalToReference) {
  const auto seed = static_cast<std::uint64_t>(9100 + GetParam());
  const auto input = build_mixed_input(seed);
  std::vector<std::uint32_t> keys(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) keys[i] = input[i].key;
  std::vector<std::uint32_t> ref = keys;
  std::sort(ref.begin(), ref.end());

  // Through the front door: pure keys need no stability::relaxed.
  auto_sort_options opt;
  opt.policy = policy::always(sort_kernel::inplace);
  ASSERT_EQ(dovetail::sort(std::span<std::uint32_t>(keys), opt),
            sort_kernel::inplace);
  ASSERT_EQ(keys, ref) << "seed=" << seed;
}
