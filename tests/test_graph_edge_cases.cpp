// Edge-case tests for the CSR graph representation and transpose: self
// loops, parallel edges, single-sink stars (one vertex with the entire
// in-degree — the extreme heavy-key case), empty graphs, and vertices with
// no edges at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dovetail/apps/graph.hpp"
#include "dovetail/core/dovetail_sort.hpp"

using namespace dovetail;
using app::csr_graph;
using app::edge;

namespace {
constexpr auto dt = [](auto span, auto key) { dovetail_sort(span, key); };
}

TEST(GraphEdgeCases, SelfLoopsSurviveTranspose) {
  std::vector<edge> edges = {{0, 0}, {1, 1}, {2, 2}, {1, 0}};
  auto g = app::build_csr(3, edges, dt);
  auto gt = app::transpose(g, dt);
  ASSERT_EQ(gt.num_edges(), 4u);
  // Self loops stay: in-neighbours of v include v itself.
  EXPECT_EQ(gt.neighbors(0).size(), 2u);  // 0<-0, 0<-1
  EXPECT_EQ(gt.neighbors(1).size(), 1u);
  EXPECT_EQ(gt.neighbors(2).size(), 1u);
}

TEST(GraphEdgeCases, ParallelEdgesPreservedWithMultiplicity) {
  std::vector<edge> edges = {{0, 1}, {0, 1}, {0, 1}, {2, 1}};
  auto g = app::build_csr(3, edges, dt);
  auto gt = app::transpose(g, dt);
  ASSERT_EQ(gt.neighbors(1).size(), 4u);
  // Stable: three copies of source 0 precede source 2.
  EXPECT_EQ(gt.neighbors(1)[0], 0u);
  EXPECT_EQ(gt.neighbors(1)[2], 0u);
  EXPECT_EQ(gt.neighbors(1)[3], 2u);
}

TEST(GraphEdgeCases, StarGraphSingleSink) {
  // Every edge points at vertex 7: the most extreme duplicate-key input.
  const std::uint32_t v = 1000;
  std::vector<edge> edges;
  for (std::uint32_t u = 0; u < v; ++u)
    if (u != 7) edges.push_back({u, 7});
  auto g = app::build_csr(v, edges, dt);
  auto gt = app::transpose(g, dt);
  ASSERT_EQ(gt.neighbors(7).size(), v - 1);
  // Stable transpose lists sources in ascending order.
  for (std::size_t i = 1; i < gt.neighbors(7).size(); ++i)
    ASSERT_LT(gt.neighbors(7)[i - 1], gt.neighbors(7)[i]);
  for (std::uint32_t u = 0; u < v; ++u) {
    if (u != 7) {
      ASSERT_EQ(gt.neighbors(u).size(), 0u);
    }
  }
}

TEST(GraphEdgeCases, IsolatedVerticesKeepEmptyRanges) {
  std::vector<edge> edges = {{2, 5}};
  auto g = app::build_csr(10, edges, dt);
  auto gt = app::transpose(g, dt);
  for (std::uint32_t u = 0; u < 10; ++u) {
    const std::size_t expect = (u == 5) ? 1 : 0;
    ASSERT_EQ(gt.neighbors(u).size(), expect) << u;
  }
  ASSERT_EQ(gt.offsets.front(), 0u);
  ASSERT_EQ(gt.offsets.back(), 1u);
}

TEST(GraphEdgeCases, SingleVertexGraph) {
  std::vector<edge> edges = {{0, 0}, {0, 0}};
  auto g = app::build_csr(1, edges, dt);
  auto gt = app::transpose(g, dt);
  EXPECT_EQ(gt.num_vertices, 1u);
  EXPECT_EQ(gt.neighbors(0).size(), 2u);
}

TEST(GraphEdgeCases, CsrRoundTripThroughEdgeList) {
  std::vector<edge> edges = {{3, 1}, {0, 2}, {3, 0}, {1, 1}};
  auto g = app::build_csr(4, edges, dt);
  auto back = app::csr_to_edges(g);
  // Edge list comes back grouped by source; same multiset of edges.
  auto canon = [](std::vector<edge> e) {
    std::sort(e.begin(), e.end(), [](const edge& a, const edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    return e;
  };
  EXPECT_EQ(canon(back), canon(edges));
}
