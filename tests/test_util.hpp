// Shared helpers for the test suite: sortedness, permutation (multiset
// equality) and stability checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

namespace dtt {

template <typename Rec, typename KeyFn>
bool sorted_by_key(std::span<const Rec> a, const KeyFn& key) {
  for (std::size_t i = 1; i < a.size(); ++i)
    if (key(a[i - 1]) > key(a[i])) return false;
  return true;
}

// Order-independent multiset fingerprint over full records (key + value).
template <typename Rec, typename KeyFn>
std::uint64_t multiset_hash(std::span<const Rec> a, const KeyFn& key) {
  std::uint64_t h = 0;
  for (const Rec& r : a) {
    std::uint64_t x = dovetail::par::hash64(
        static_cast<std::uint64_t>(key(r)) * 0x100000001B3ull);
    if constexpr (requires { r.value; })
      x = dovetail::par::hash64(x ^ static_cast<std::uint64_t>(r.value));
    h += x;
  }
  return h;
}

// For records whose value is the original input index: equal keys must keep
// increasing values (stability).
template <typename Rec, typename KeyFn>
bool stable_by_index_value(std::span<const Rec> a, const KeyFn& key) {
  for (std::size_t i = 1; i < a.size(); ++i)
    if (key(a[i - 1]) == key(a[i]) && a[i - 1].value >= a[i].value)
      return false;
  return true;
}

}  // namespace dtt
