// Tests for the unified benchmark harness (bench/harness.hpp) and the JSON
// schema machinery (bench/bench_json.hpp):
//   * a registered scenario runs and produces a report that passes the
//     BENCH_suite.json schema validator (the same code path CI gates on);
//   * an incorrect sorter is caught by the std::sort cross-check, and a
//     "fail" result is rejected by the schema (it can never be committed);
//   * warm runs perform zero workspace allocations (the timed-phase
//     allocation counter the harness exposes per scenario);
//   * filters, named-distribution lookup, and JSON parser round-trips.
#include <gtest/gtest.h>

#include <span>
#include <string>

#include "bench/harness.hpp"
#include "bench/scenarios_service.hpp"
#include "dovetail/core/dovetail_sort.hpp"

namespace {

using dovetail::kv32;

dtb::run_config small_config() {
  dtb::run_config cfg;
  cfg.n = 20'000;
  cfg.reps = 2;
  cfg.warmups = 1;
  cfg.thread_counts = {1};
  return cfg;
}

const dovetail::gen::distribution kZipf{dovetail::gen::dist_kind::zipfian,
                                        1.0, "Zipf-1"};

dtb::scenario make_dtsort_scenario(const char* name) {
  dtb::scenario s;
  s.bench = "unit";
  s.name = name;
  s.paper = "unit test";
  s.row = "Zipf-1";
  s.col = "DTSort";
  s.labels = {{"dist", "Zipf-1"}, {"algo", "DTSort"}, {"width", "32"}};
  s.run = [](const dtb::run_config& rc) {
    const auto& input = dtb::cached_input<kv32>(kZipf, rc.n);
    return dtb::run_timed_sort(
        rc, input,
        [](std::span<kv32> sp, dovetail::sort_stats* st,
           dovetail::sort_workspace* ws) {
          dovetail::sort_options opt;
          opt.stats = st;
          opt.workspace = ws;
          dovetail::dovetail_sort(sp, dovetail::key_of_kv32, opt);
        });
  };
  return s;
}

TEST(BenchHarness, ScenarioProducesSchemaValidJson) {
  const dtb::run_config cfg = small_config();
  const dtb::scenario s = make_dtsort_scenario("unit/json/DTSort");
  dtb::scenario_result res = s.run(cfg);
  EXPECT_EQ(res.check, "pass") << res.check_detail;
  ASSERT_EQ(res.times_s.size(), 2u);
  EXPECT_GT(res.median_s(), 0.0);
  EXPECT_LE(res.min_s(), res.median_s());
  EXPECT_LE(res.median_s(), res.max_s());
  EXPECT_GE(res.stddev_s(), 0.0);

  std::vector<std::pair<const dtb::scenario*, dtb::scenario_result>> runs;
  runs.emplace_back(&s, res);
  const std::string text = dtb::make_report(cfg, "unit report", runs).dump();

  dtb::json::value root;
  std::string err;
  ASSERT_TRUE(dtb::json::parse(text, root, err)) << err;
  EXPECT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;

  // The entry carries the fields the trajectory tooling depends on.
  const auto& entry = root.find("results")->as_array().at(0);
  EXPECT_EQ(entry.find("name")->as_string(), "unit/json/DTSort");
  EXPECT_EQ(entry.find("check")->as_string(), "pass");
  EXPECT_DOUBLE_EQ(entry.find("real_time_ms")->as_number(),
                   entry.find("median_ms")->as_number());
  EXPECT_GT(entry.find("throughput_mrec_s")->as_number(), 0.0);
}

TEST(BenchHarness, IncorrectSorterFailsCheckAndSchema) {
  const dtb::run_config cfg = small_config();
  dtb::scenario s;
  s.bench = "unit";
  s.name = "unit/broken";
  s.paper = "unit test";
  s.labels = {{"algo", "Broken"}};
  s.run = [](const dtb::run_config& rc) {
    const auto& input = dtb::cached_input<kv32>(kZipf, rc.n);
    return dtb::run_timed_sort(
        rc, input,
        [](std::span<kv32> sp, dovetail::sort_stats*,
           dovetail::sort_workspace*) {
          sp[0].key = sp[1].key + 1;  // "sorter" that corrupts one record
        });
  };
  dtb::scenario_result res = s.run(cfg);
  EXPECT_EQ(res.check, "fail");
  EXPECT_FALSE(res.check_detail.empty());

  // A report containing a failed check must not validate — CI can never
  // accept a BENCH_suite.json with a broken sorter in it.
  std::vector<std::pair<const dtb::scenario*, dtb::scenario_result>> runs;
  runs.emplace_back(&s, res);
  const std::string text = dtb::make_report(cfg, "unit report", runs).dump();
  dtb::json::value root;
  std::string err;
  ASSERT_TRUE(dtb::json::parse(text, root, err)) << err;
  EXPECT_FALSE(dtb::json::validate_bench_schema(root, err));
}

TEST(BenchHarness, UnsortedOutputIsCaught) {
  const dtb::run_config cfg = small_config();
  const auto& input = dtb::cached_input<kv32>(kZipf, cfg.n);
  // Identity "sorter": a permutation (fingerprint passes) that is almost
  // surely not sorted — the std::sort cross-check must flag it.
  auto res = dtb::run_timed_sort(
      cfg, input,
      [](std::span<kv32>, dovetail::sort_stats*, dovetail::sort_workspace*) {
      });
  EXPECT_EQ(res.check, "fail");
}

TEST(BenchHarness, WarmRunsDoZeroWorkspaceAllocations) {
  dtb::run_config cfg = small_config();
  cfg.warmups = 1;  // one warm-up sizes the shared arena for this n
  cfg.reps = 3;
  const dtb::scenario s = make_dtsort_scenario("unit/warm/DTSort");
  const dtb::scenario_result res = s.run(cfg);
  EXPECT_EQ(res.check, "pass") << res.check_detail;
  ASSERT_TRUE(res.stats.count("ws_alloc_timed"));
  EXPECT_EQ(res.stats.at("ws_alloc_timed"), 0.0)
      << "timed (warm) runs must not allocate workspace memory";
  EXPECT_GT(res.stats.at("ws_reuse_timed"), 0.0);
}

TEST(BenchHarness, FiltersSelectByFamilyDistAlgoWidth) {
  const dtb::scenario s = make_dtsort_scenario("unit/filter/DTSort");
  dtb::run_config cfg = small_config();
  EXPECT_TRUE(dtb::scenario_matches(s, cfg));
  cfg.bench_filter = "unit";
  cfg.dist_filter = "Zipf";
  cfg.algo_filter = "DTSort";
  cfg.width_filter = 32;
  EXPECT_TRUE(dtb::scenario_matches(s, cfg));
  cfg.algo_filter = "LSD";
  EXPECT_FALSE(dtb::scenario_matches(s, cfg));
  cfg.algo_filter = "";
  cfg.width_filter = 64;
  EXPECT_FALSE(dtb::scenario_matches(s, cfg));
  cfg.width_filter = 0;
  cfg.bench_filter = "table3";
  EXPECT_FALSE(dtb::scenario_matches(s, cfg));
}

TEST(BenchHarness, NamedDistributionLookup) {
  namespace gen = dovetail::gen;
  const auto unif = gen::find_distribution("Unif-1e7");
  ASSERT_TRUE(unif.has_value());
  EXPECT_EQ(unif->kind, gen::dist_kind::uniform);
  EXPECT_DOUBLE_EQ(unif->param, 1e7);
  EXPECT_EQ(unif->name, "Unif-1e7");

  const auto zipf = gen::find_distribution("Zipf-1.2");
  ASSERT_TRUE(zipf.has_value());
  EXPECT_EQ(zipf->kind, gen::dist_kind::zipfian);
  EXPECT_DOUBLE_EQ(zipf->param, 1.2);

  const auto bexp = gen::find_distribution("BExp-30");
  ASSERT_TRUE(bexp.has_value());
  EXPECT_EQ(bexp->kind, gen::dist_kind::bexp);

  EXPECT_FALSE(gen::find_distribution("Gauss-3").has_value());
  EXPECT_FALSE(gen::find_distribution("Unif-").has_value());
  EXPECT_FALSE(gen::find_distribution("Unif-abc").has_value());
  EXPECT_FALSE(gen::find_distribution("nodash").has_value());

  // Failures are distinguishable: the error names the exact problem, so a
  // bench_suite --dist typo fails loudly instead of matching nothing.
  std::string err;
  EXPECT_FALSE(gen::find_distribution("Gauss-3", &err).has_value());
  EXPECT_NE(err.find("unknown distribution family 'Gauss'"),
            std::string::npos)
      << err;
  err.clear();
  EXPECT_FALSE(gen::find_distribution("Unif-abc", &err).has_value());
  EXPECT_NE(err.find("bad parameter 'abc'"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(gen::find_distribution("nodash", &err).has_value());
  EXPECT_NE(err.find("Family-param"), std::string::npos) << err;
  err.clear();
  EXPECT_TRUE(gen::find_distribution("zipf-1.2", &err).has_value());
  EXPECT_TRUE(err.empty());

  // Every paper instance's name round-trips through the lookup.
  for (const auto& d : gen::paper_distributions()) {
    const auto parsed = gen::find_distribution(d.name);
    ASSERT_TRUE(parsed.has_value()) << d.name;
    EXPECT_EQ(parsed->kind, d.kind) << d.name;
    EXPECT_DOUBLE_EQ(parsed->param, d.param) << d.name;
  }
}

TEST(BenchJson, ParserRoundTripAndErrors) {
  dtb::json::value root;
  std::string err;
  ASSERT_TRUE(dtb::json::parse(
      R"({"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}})", root, err))
      << err;
  EXPECT_EQ(root.find("a")->as_array().size(), 5u);
  EXPECT_DOUBLE_EQ(root.find("a")->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(root.find("a")->as_array()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(root.find("b")->find("c")->as_number(), -300.0);

  // Round-trip: dump then re-parse yields the same structure.
  dtb::json::value again;
  ASSERT_TRUE(dtb::json::parse(root.dump(), again, err)) << err;
  EXPECT_DOUBLE_EQ(again.find("b")->find("c")->as_number(), -300.0);

  EXPECT_FALSE(dtb::json::parse("{", root, err));
  EXPECT_FALSE(dtb::json::parse("[1,]", root, err));
  EXPECT_FALSE(dtb::json::parse("{\"a\":1} extra", root, err));
  EXPECT_FALSE(dtb::json::parse("\"unterminated", root, err));
  // Malformed numbers must be parse errors, not crashes.
  EXPECT_FALSE(dtb::json::parse("[-]", root, err));
  EXPECT_FALSE(dtb::json::parse(".", root, err));
  EXPECT_FALSE(dtb::json::parse("[1e]", root, err));
  EXPECT_FALSE(dtb::json::parse("[1e999]", root, err)) << "out of range";
}

TEST(BenchJson, SchemaRejectsMalformedReports) {
  const dtb::run_config cfg = small_config();
  const dtb::scenario s = make_dtsort_scenario("unit/schema/DTSort");
  std::vector<std::pair<const dtb::scenario*, dtb::scenario_result>> runs;
  runs.emplace_back(&s, s.run(cfg));
  const std::string good = dtb::make_report(cfg, "unit", runs).dump();

  dtb::json::value root;
  std::string err;
  ASSERT_TRUE(dtb::json::parse(good, root, err));
  ASSERT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;

  // Break it in targeted ways. value copies are deep, so mutating
  // `broken` must leave `root` valid.
  auto broken = root;
  broken.as_object().erase("context");
  EXPECT_FALSE(dtb::json::validate_bench_schema(broken, err));
  EXPECT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;

  ASSERT_TRUE(dtb::json::parse(good, broken, err));
  broken.as_object()["schema_version"] = dtb::json::value(2);
  EXPECT_FALSE(dtb::json::validate_bench_schema(broken, err));

  ASSERT_TRUE(dtb::json::parse(good, broken, err));
  broken.as_object()["results"] = dtb::json::value(dtb::json::array{});
  EXPECT_FALSE(dtb::json::validate_bench_schema(broken, err));

  // Duplicate scenario names are rejected.
  ASSERT_TRUE(dtb::json::parse(good, broken, err));
  auto& arr = broken.as_object()["results"].as_array();
  arr.push_back(arr[0]);
  EXPECT_FALSE(dtb::json::validate_bench_schema(broken, err));
}

TEST(BenchHarness, ServiceRequestSizesAreDeterministic) {
  // The open-loop generator is the reproducibility anchor of the
  // service-batch family: same (mix, total, seed) must give the same
  // request plan, so a committed BENCH_service.json is re-runnable.
  for (const char* mix : {"tiny", "small", "mixed"}) {
    const auto a = dtb::service_request_sizes(mix, 200'000, 42);
    const auto b = dtb::service_request_sizes(mix, 200'000, 42);
    EXPECT_EQ(a, b) << mix;
    ASSERT_FALSE(a.empty()) << mix;
    std::size_t total = 0;
    for (const std::size_t sz : a) {
      EXPECT_GE(sz, 1u) << mix;
      EXPECT_LE(sz, 65'536u) << mix;
      total += sz;
    }
    EXPECT_EQ(total, 200'000u) << mix << ": sizes must cover total exactly";
    const auto c = dtb::service_request_sizes(mix, 200'000, 43);
    EXPECT_NE(a, c) << mix << ": a different seed must give a different plan";
  }
  // Mix bounds (all but the clamped final request).
  const auto tiny = dtb::service_request_sizes("tiny", 100'000, 7);
  for (std::size_t i = 0; i + 1 < tiny.size(); ++i) {
    EXPECT_GE(tiny[i], 64u);
    EXPECT_LE(tiny[i], 1024u);
  }
  const auto small = dtb::service_request_sizes("small", 100'000, 7);
  for (std::size_t i = 0; i + 1 < small.size(); ++i) {
    EXPECT_GE(small[i], 1024u);
    EXPECT_LE(small[i], 16'384u);
  }
  EXPECT_TRUE(dtb::service_request_sizes("tiny", 0, 1).empty());
}

TEST(BenchJson, ServiceEntriesNeedConcurrencyAndLoadStats) {
  // Start from a known-good report and rebadge its entry as a service
  // one: the schema must then demand the concurrency label and (for the
  // batch family) the req_per_s / p50_ms / p99_ms stats, ordered.
  const dtb::run_config cfg = small_config();
  const dtb::scenario s = make_dtsort_scenario("unit/service/DTSort");
  std::vector<std::pair<const dtb::scenario*, dtb::scenario_result>> runs;
  runs.emplace_back(&s, s.run(cfg));
  const std::string good = dtb::make_report(cfg, "unit", runs).dump();

  dtb::json::value root;
  std::string err;
  ASSERT_TRUE(dtb::json::parse(good, root, err)) << err;
  auto& entry = root.as_object()["results"].as_array().at(0);

  entry.as_object()["bench"] = dtb::json::value("service-stream");
  EXPECT_FALSE(dtb::json::validate_bench_schema(root, err));
  EXPECT_NE(err.find("concurrency"), std::string::npos) << err;

  auto& labels = entry.as_object()["labels"].as_object();
  labels["concurrency"] = dtb::json::value("04");
  EXPECT_FALSE(dtb::json::validate_bench_schema(root, err)) << "leading zero";
  labels["concurrency"] = dtb::json::value("4");
  EXPECT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;

  // The batch family additionally requires the load-generator stats.
  entry.as_object()["bench"] = dtb::json::value("service-batch");
  EXPECT_FALSE(dtb::json::validate_bench_schema(root, err));
  EXPECT_NE(err.find("req_per_s"), std::string::npos) << err;
  dtb::json::object st;
  st["req_per_s"] = dtb::json::value(1000.0);
  st["p50_ms"] = dtb::json::value(2.0);
  st["p99_ms"] = dtb::json::value(1.0);  // misordered
  entry.as_object()["stats"] = dtb::json::value(st);
  EXPECT_FALSE(dtb::json::validate_bench_schema(root, err));
  EXPECT_NE(err.find("p50_ms exceeds p99_ms"), std::string::npos) << err;
  st["p99_ms"] = dtb::json::value(3.0);
  entry.as_object()["stats"] = dtb::json::value(st);
  EXPECT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;

  // Non-service families are untouched by the addendum.
  entry.as_object()["bench"] = dtb::json::value("unit");
  labels.erase("concurrency");
  entry.as_object()["stats"] = dtb::json::value(dtb::json::object{});
  EXPECT_TRUE(dtb::json::validate_bench_schema(root, err)) << err;
}

TEST(BenchHarness, SortStatsTimingFields) {
  dovetail::sort_stats st;
  EXPECT_DOUBLE_EQ(st.seconds_per_run(), 0.0);
  EXPECT_DOUBLE_EQ(st.throughput_mrec_per_s(), 0.0);
  st.note_timed_run(0.5, 1'000'000);
  st.note_timed_run(1.5, 1'000'000);
  EXPECT_DOUBLE_EQ(st.seconds_per_run(), 1.0);
  EXPECT_NEAR(st.throughput_mrec_per_s(), 1.0, 1e-9);
  st.reset();
  EXPECT_EQ(st.timed_runs.load(), 0u);
  EXPECT_DOUBLE_EQ(st.seconds_per_run(), 0.0);
}

}  // namespace
