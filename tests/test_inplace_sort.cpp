// Tests for the in-place block-permutation kernel (core/inplace_sort.hpp)
// and its dispatcher integration (auto_sort.hpp):
//
//   * correctness across the paper's distribution families, awkward sizes
//     (network-sort-sized children, tails not a multiple of the staging
//     block), and degenerate inputs (all-equal single-bucket chains);
//   * the memory contract: peak leased workspace <= n/4 bytes-of-records,
//     against >= n for the out-of-place ping-pong kernels — measured via
//     sort_stats::peak_workspace_bytes, not asserted from the design;
//   * the stability contract: the unstable kernel is never auto-chosen for
//     payload-carrying records unless the caller signs stability::relaxed,
//     and policy::always(inplace) on such records throws without it;
//   * the SIMD pin: forced-scalar and AVX2 runs produce byte-identical
//     output;
//   * the legacy baseline (baselines/inplace_radix_sort.hpp) reports
//     through the same engine counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "dovetail/baselines/inplace_radix_sort.hpp"
#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/inplace_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "dovetail/util/simd.hpp"
#include "test_util.hpp"

namespace {

using dovetail::kv32;
using dovetail::key_of_kv32;

template <typename K>
void expect_sorted_exact(const std::vector<K>& got, std::vector<K> want,
                         const char* what) {
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << " diverges at index " << i;
}

template <typename K>
void check_inplace_on(const dovetail::gen::distribution& d, std::size_t n,
                      std::uint64_t seed) {
  std::vector<K> v = dovetail::gen::generate_keys<K>(d, n, seed);
  const std::vector<K> orig = v;
  dovetail::sort_workspace ws;
  dovetail::sort_stats st;
  dovetail::inplace_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  dovetail::inplace_sort(std::span<K>(v), opt);
  expect_sorted_exact(v, orig, d.name.c_str());
  if (n > opt.base_case)
    EXPECT_GT(st.inplace_passes.load(), 0u) << d.name;
}

TEST(InplaceSort, DistributionFamilies32) {
  for (const auto& d : {*dovetail::gen::find_distribution("Unif-1e9"),
                        *dovetail::gen::find_distribution("Unif-10"),
                        *dovetail::gen::find_distribution("Exp-5"),
                        *dovetail::gen::find_distribution("Zipf-1.2"),
                        *dovetail::gen::find_distribution("BExp-30")})
    check_inplace_on<std::uint32_t>(d, 50000, 7);
}

TEST(InplaceSort, DistributionFamilies64) {
  for (const auto& d : {*dovetail::gen::find_distribution("Unif-1e9"),
                        *dovetail::gen::find_distribution("Zipf-1.5"),
                        *dovetail::gen::find_distribution("BExp-100")})
    check_inplace_on<std::uint64_t>(d, 50000, 11);
}

// Sizes straddling every internal regime boundary: the base case (<= 4096),
// the record-at-a-time flag fallback just above it, network-sort-sized
// recursion children (n = 4097 makes ~16-record buckets), block-tail
// remainders, and the blocked-permutation regime proper.
TEST(InplaceSort, AwkwardSizes) {
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{31},
        std::size_t{33}, std::size_t{4096}, std::size_t{4097},
        std::size_t{4613}, std::size_t{100003}, std::size_t{1} << 18}) {
    check_inplace_on<std::uint32_t>(unif, n, 3);
    check_inplace_on<std::uint64_t>(unif, n, 5);
  }
}

TEST(InplaceSort, DegenerateInputs) {
  // All-equal: every pass is a single-bucket chain (the short-circuit path).
  std::vector<std::uint32_t> eq(20000, 0xDEADBEEFu);
  dovetail::inplace_sort(std::span<std::uint32_t>(eq));
  for (const std::uint32_t k : eq) ASSERT_EQ(k, 0xDEADBEEFu);

  // Already sorted and reversed.
  std::vector<std::uint64_t> asc(30000);
  std::iota(asc.begin(), asc.end(), std::uint64_t{1} << 40);
  std::vector<std::uint64_t> want = asc;
  std::vector<std::uint64_t> desc(asc.rbegin(), asc.rend());
  dovetail::inplace_sort(std::span<std::uint64_t>(asc));
  dovetail::inplace_sort(std::span<std::uint64_t>(desc));
  EXPECT_EQ(asc, want);
  EXPECT_EQ(desc, want);
}

// Records with payload under a key functor: output must be sorted and a
// permutation of the input (multiset over key AND value) — but not
// necessarily stable; that is the kernel's entire bargain.
TEST(InplaceSort, RecordsSortedPermutation) {
  const auto zipf = *dovetail::gen::find_distribution("Zipf-1");
  const std::vector<std::uint32_t> keys =
      dovetail::gen::generate_keys<std::uint32_t>(zipf, 60000, 13);
  std::vector<kv32> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    v[i] = kv32{keys[i], static_cast<std::uint32_t>(i)};
  const auto hash_before =
      dtt::multiset_hash(std::span<const kv32>(v), key_of_kv32);
  dovetail::inplace_sort(std::span<kv32>(v), key_of_kv32);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  EXPECT_EQ(hash_before,
            dtt::multiset_hash(std::span<const kv32>(v), key_of_kv32));
}

// The tentpole's headline: the in-place kernel's peak leased workspace is
// at most n/4 bytes-of-records, while any out-of-place kernel's ping-pong
// lease alone is at least n bytes-of-records. Same input, same measurement.
TEST(InplaceSort, PeakWorkspaceQuarterVsFull) {
  const std::size_t n = std::size_t{1} << 20;
  const std::size_t record_bytes = n * sizeof(std::uint64_t);
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  const std::vector<std::uint64_t> input =
      dovetail::gen::generate_keys<std::uint64_t>(unif, n, 17);

  std::vector<std::uint64_t> a = input;
  dovetail::sort_workspace ws_in;
  dovetail::sort_stats st_in;
  dovetail::inplace_sort_options iopt;
  iopt.workspace = &ws_in;
  iopt.stats = &st_in;
  dovetail::inplace_sort(std::span<std::uint64_t>(a), iopt);
  ASSERT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(st_in.peak_workspace(), 0u);
  EXPECT_LE(st_in.peak_workspace(), record_bytes / 4)
      << "in-place kernel leased more than n/4 bytes-of-records";

  std::vector<std::uint64_t> b = input;
  dovetail::sort_workspace ws_out;
  dovetail::sort_stats st_out;
  dovetail::auto_sort_options oopt;
  oopt.policy = dovetail::policy::always(dovetail::sort_kernel::lsd);
  oopt.workspace = &ws_out;
  oopt.stats = &st_out;
  dovetail::sort(std::span<std::uint64_t>(b), oopt);
  ASSERT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_GE(st_out.peak_workspace(), record_bytes)
      << "out-of-place kernel's ping-pong lease should be >= n records";
}

// --- dispatcher integration -----------------------------------------------

TEST(InplaceDispatch, BudgetFlipsKernelForPureKeys) {
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  const std::vector<std::uint32_t> input =
      dovetail::gen::generate_keys<std::uint32_t>(unif, 200000, 19);

  // No budget: the data-driven tree picks an out-of-place kernel.
  std::vector<std::uint32_t> a = input;
  dovetail::sort_stats st_a;
  dovetail::auto_sort_options opt_a;
  opt_a.stats = &st_a;
  const auto k_a = dovetail::sort(std::span<std::uint32_t>(a), opt_a);
  EXPECT_NE(k_a, dovetail::sort_kernel::inplace);
  EXPECT_EQ(dovetail::chosen_kernel_of(st_a), k_a);

  // A budget below n * sizeof(record): pure keys make instability
  // unobservable, so the dispatcher may (and must, to fit) go in-place.
  std::vector<std::uint32_t> b = input;
  dovetail::sort_stats st_b;
  dovetail::auto_sort_options opt_b;
  opt_b.policy.memory_budget_bytes = 64 * 1024;
  opt_b.stats = &st_b;
  const auto k_b = dovetail::sort(std::span<std::uint32_t>(b), opt_b);
  EXPECT_EQ(k_b, dovetail::sort_kernel::inplace);
  EXPECT_EQ(dovetail::chosen_kernel_of(st_b),
            dovetail::sort_kernel::inplace);
  EXPECT_GT(st_b.inplace_passes.load(), 0u);
  ASSERT_TRUE(std::is_sorted(b.begin(), b.end()));
  std::vector<std::uint32_t> want = input;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(b, want);
}

TEST(InplaceDispatch, RelaxedIsNeverImplied) {
  // Payload-carrying records + a tight budget + the default strict
  // contract: the dispatcher must NOT pick the unstable kernel, even
  // though it is the only one that fits the budget.
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  const std::vector<std::uint32_t> keys =
      dovetail::gen::generate_keys<std::uint32_t>(unif, 150000, 23);
  std::vector<kv32> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    v[i] = kv32{keys[i], static_cast<std::uint32_t>(i)};

  std::vector<kv32> strict = v;
  dovetail::sort_stats st_strict;
  dovetail::auto_sort_options opt_strict;
  opt_strict.policy.memory_budget_bytes = 64 * 1024;
  opt_strict.stats = &st_strict;
  const auto k_strict =
      dovetail::sort(std::span<kv32>(strict), key_of_kv32, opt_strict);
  EXPECT_NE(k_strict, dovetail::sort_kernel::inplace);
  // Strict auto-dispatch stays stable, budget or not.
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const kv32>(strict),
                                         key_of_kv32));

  // The same call under stability::relaxed unlocks the kernel.
  std::vector<kv32> relaxed = v;
  dovetail::sort_stats st_relaxed;
  dovetail::auto_sort_options opt_relaxed;
  opt_relaxed.policy.memory_budget_bytes = 64 * 1024;
  opt_relaxed.policy.stability_mode = dovetail::stability::relaxed;
  opt_relaxed.stats = &st_relaxed;
  const auto k_relaxed =
      dovetail::sort(std::span<kv32>(relaxed), key_of_kv32, opt_relaxed);
  EXPECT_EQ(k_relaxed, dovetail::sort_kernel::inplace);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(relaxed),
                                 key_of_kv32));
  EXPECT_EQ(dtt::multiset_hash(std::span<const kv32>(v), key_of_kv32),
            dtt::multiset_hash(std::span<const kv32>(relaxed), key_of_kv32));
}

TEST(InplaceDispatch, AlwaysInplaceDemandsSafety) {
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  const std::vector<std::uint32_t> keys =
      dovetail::gen::generate_keys<std::uint32_t>(unif, 100000, 29);

  // Pure keys: forcing the kernel is safe under the default contract.
  std::vector<std::uint32_t> pure = keys;
  dovetail::auto_sort_options opt_pure;
  opt_pure.policy = dovetail::policy::always(dovetail::sort_kernel::inplace);
  EXPECT_EQ(dovetail::sort(std::span<std::uint32_t>(pure), opt_pure),
            dovetail::sort_kernel::inplace);
  EXPECT_TRUE(std::is_sorted(pure.begin(), pure.end()));

  std::vector<kv32> recs(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    recs[i] = kv32{keys[i], static_cast<std::uint32_t>(i)};

  // Payload + strict: the forced unstable kernel throws instead of
  // silently breaking the stability contract.
  std::vector<kv32> strict = recs;
  dovetail::auto_sort_options opt_strict;
  opt_strict.policy =
      dovetail::policy::always(dovetail::sort_kernel::inplace);
  EXPECT_THROW(
      dovetail::sort(std::span<kv32>(strict), key_of_kv32, opt_strict),
      std::invalid_argument);

  // Payload + relaxed: allowed, sorted, a permutation.
  std::vector<kv32> relaxed = recs;
  dovetail::auto_sort_options opt_relaxed;
  opt_relaxed.policy =
      dovetail::policy::always(dovetail::sort_kernel::inplace);
  opt_relaxed.policy.stability_mode = dovetail::stability::relaxed;
  EXPECT_EQ(
      dovetail::sort(std::span<kv32>(relaxed), key_of_kv32, opt_relaxed),
      dovetail::sort_kernel::inplace);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(relaxed),
                                 key_of_kv32));
  EXPECT_EQ(dtt::multiset_hash(std::span<const kv32>(recs), key_of_kv32),
            dtt::multiset_hash(std::span<const kv32>(relaxed), key_of_kv32));
}

// --- SIMD pin --------------------------------------------------------------

// The AVX2 base-case finisher and histogram must be observationally
// identical to the scalar paths: same input, byte-identical output.
TEST(InplaceSimd, ScalarAndVectorPathsMatch) {
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  for (const std::size_t n : {std::size_t{4097}, std::size_t{100003}}) {
    const std::vector<std::uint32_t> input =
        dovetail::gen::generate_keys<std::uint32_t>(unif, n, 31);

    std::vector<std::uint32_t> vec = input;
    dovetail::simd::force_scalar(false);
    dovetail::inplace_sort(std::span<std::uint32_t>(vec));

    std::vector<std::uint32_t> sca = input;
    dovetail::simd::force_scalar(true);
    dovetail::inplace_sort(std::span<std::uint32_t>(sca));
    dovetail::simd::force_scalar(false);

    ASSERT_EQ(vec.size(), sca.size());
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(),
                             vec.size() * sizeof(std::uint32_t)))
        << "n=" << n;
    EXPECT_TRUE(std::is_sorted(vec.begin(), vec.end()));
  }
}

// --- legacy baseline -------------------------------------------------------

// The seed-era American-flag baseline stays registered as the
// `inplace-legacy` ablation and reports through the shared engine stats.
TEST(InplaceLegacy, BaselineReportsEngineStats) {
  const auto unif = *dovetail::gen::find_distribution("Unif-1e9");
  std::vector<std::uint32_t> v =
      dovetail::gen::generate_keys<std::uint32_t>(unif, 100000, 37);
  std::vector<std::uint32_t> want = v;
  std::sort(want.begin(), want.end());

  dovetail::sort_workspace ws;
  dovetail::sort_stats st;
  dovetail::baseline::inplace_radix_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  dovetail::baseline::inplace_radix_sort(std::span<std::uint32_t>(v), opt);
  EXPECT_EQ(v, want);
  EXPECT_GT(st.inplace_passes.load(), 0u);
  EXPECT_GT(st.num_distributions.load(), 0u);
  EXPECT_GE(st.distributed_records.load(), 100000u);
  EXPECT_GT(st.base_case_records.load(), 0u);
  EXPECT_GT(st.peak_workspace(), 0u);
}

}  // namespace
