// The adaptive front door (dovetail::sort, core/auto_sort.hpp): every
// sketch branch of the default dispatch_policy is reachable and picks the
// intended kernel (asserted via sort_stats::chosen_kernel), the output is
// sorted / a permutation / stable on every path, policy::always is honored,
// mispredicted cheap branches re-dispatch safely, and workspace reuse
// carries across dispatched kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/input_sketch.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using dovetail::auto_sort_options;
using dovetail::chosen_kernel_of;
using dovetail::input_sketch;
using dovetail::kv32;
using dovetail::kv64;
using dovetail::sort_kernel;
using dovetail::sort_stats;
using dovetail::sort_workspace;
namespace gen = dovetail::gen;
namespace policy = dovetail::policy;

namespace {

constexpr auto key32 = dovetail::key_of_kv32;

std::vector<kv32> records_from_keys(const std::vector<std::uint32_t>& keys) {
  std::vector<kv32> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    v[i] = {keys[i], static_cast<std::uint32_t>(i)};
  return v;
}

// Sorts a copy with the given options + stats, checks sorted/permutation/
// stability, and returns the kernel dovetail::sort reported.
sort_kernel sort_and_check(std::vector<kv32> v,
                           const auto_sort_options& base = {}) {
  sort_stats st;
  auto_sort_options opt = base;
  opt.stats = &st;
  const std::vector<kv32> before = v;
  const sort_kernel k = dovetail::sort(std::span<kv32>(v), key32, opt);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key32));
  EXPECT_EQ(dtt::multiset_hash(std::span<const kv32>(before), key32),
            dtt::multiset_hash(std::span<const kv32>(v), key32));
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const kv32>(v), key32));
  EXPECT_TRUE(chosen_kernel_of(st).has_value());
  if (chosen_kernel_of(st).has_value()) EXPECT_EQ(*chosen_kernel_of(st), k);
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// Each sketch branch is reachable and routes where the policy says.

TEST(AutoSortDispatch, SmallInputGoesSerial) {
  std::vector<std::uint32_t> keys(400);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(
        dovetail::par::hash64(i) & 0xFFFFFFFFull);
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::std_sort);
}

TEST(AutoSortDispatch, SortedInputGoesRunMerge) {
  std::vector<std::uint32_t> keys(100'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(i / 3);  // sorted, with duplicates
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  auto v = records_from_keys(keys);
  EXPECT_EQ(dovetail::sort(std::span<kv32>(v), key32, opt),
            sort_kernel::run_merge);
  EXPECT_EQ(st.sketch_runs.load(), 1u);  // already sorted: one run, no work
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const kv32>(v), key32));
}

TEST(AutoSortDispatch, ReverseSortedInputGoesRunMerge) {
  std::vector<std::uint32_t> keys(100'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(keys.size() - i);  // strictly desc
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::run_merge);
}

TEST(AutoSortDispatch, NearSortedInputGoesRunMerge) {
  std::vector<std::uint32_t> keys(200'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(i);
  // A handful of long sorted blocks spliced out of order: few runs, and
  // sparse descents the adjacent-pair probes are overwhelmingly likely to
  // miss... which is exactly the case run-merge exists for.
  std::rotate(keys.begin(), keys.begin() + 123'456, keys.end());
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::run_merge);
}

TEST(AutoSortDispatch, TinyRangeGoesCounting) {
  std::vector<std::uint32_t> keys(150'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = 5000 + static_cast<std::uint32_t>(
                         dovetail::par::rand_range(9, i, 3'000));
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::counting);
}

TEST(AutoSortDispatch, DenseUniform32BitGoesLsd) {
  const auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::uniform, 1e9, "Unif-1e9"}, 200'000);
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::lsd);
}

TEST(AutoSortDispatch, HeavyDuplicatesGoDtsort) {
  // Unif-10: ten distinct keys spread over the full 32-bit range — the
  // heavy-duplicate regime (Thm 4.7) where DTSort's heavy buckets win.
  const auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::uniform, 10, "Unif-10"}, 200'000);
  EXPECT_EQ(sort_and_check(records_from_keys(keys)), sort_kernel::dtsort);
}

TEST(AutoSortDispatch, ZipfianHeavyGoesDtsort64) {
  // Zipf-1.5 on 64-bit keys: heavy top ranks + wide hashed range.
  const auto keys = gen::generate_keys<std::uint64_t>(
      gen::distribution{gen::dist_kind::zipfian, 1.5, "Zipf-1.5"}, 200'000);
  std::vector<kv64> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    v[i] = {keys[i], static_cast<std::uint64_t>(i)};
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  EXPECT_EQ(dovetail::sort(std::span<kv64>(v), dovetail::key_of_kv64, opt),
            sort_kernel::dtsort);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv64>(v),
                                 dovetail::key_of_kv64));
  EXPECT_TRUE(dtt::stable_by_index_value(std::span<const kv64>(v),
                                         dovetail::key_of_kv64));
}

TEST(AutoSortDispatch, WideUniform64BitGoesDtsort) {
  const auto keys = gen::generate_keys<std::uint64_t>(
      gen::distribution{gen::dist_kind::uniform, 1e9, "Unif-1e9"}, 100'000);
  std::vector<std::uint64_t> v = keys;
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  EXPECT_EQ(dovetail::sort(std::span<std::uint64_t>(v), opt),
            sort_kernel::dtsort);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// ---------------------------------------------------------------------------
// Mispredicted cheap branches re-dispatch instead of degrading.

TEST(AutoSortDispatch, SortedProbesButManyRunsFallsThrough) {
  // Sorted blocks of 64 with random block bases: adjacent-pair probes see
  // descents with probability ~1/64 each, so some seeds sketch this as
  // "maybe sorted" — but the exact scan finds thousands of runs and must
  // abandon run-merge. Whatever the seed decides, the result must be
  // correct and the chosen kernel must not be run_merge.
  std::vector<std::uint32_t> keys(200'000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t block = i / 64;
    keys[i] = static_cast<std::uint32_t>(
        (dovetail::par::hash64(block) & 0xFFFF0000ull) + (i % 64));
  }
  const sort_kernel k = sort_and_check(records_from_keys(keys));
  EXPECT_NE(k, sort_kernel::run_merge);
}

TEST(AutoSortDispatch, RangeOutliersEscapeCountingBranch) {
  // All sampled keys live in a tiny range, but a single outlier blows the
  // exact range past the counting cap: the dispatcher must re-choose, and
  // the output must still be correct.
  std::vector<std::uint32_t> keys(150'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(
        dovetail::par::rand_range(11, i, 1'000));
  keys[77'777] = 0xFFFF0000u;
  const sort_kernel k = sort_and_check(records_from_keys(keys));
  EXPECT_NE(k, sort_kernel::counting);
}

// ---------------------------------------------------------------------------
// policy::always is honored on every kernel.

TEST(AutoSortPolicy, AlwaysPinsEveryKernel) {
  std::vector<std::uint32_t> keys(60'000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(
        dovetail::par::rand_range(3, i, 50'000));  // counting-feasible range
  for (const sort_kernel k :
       {sort_kernel::std_sort, sort_kernel::run_merge, sort_kernel::counting,
        sort_kernel::lsd, sort_kernel::dtsort}) {
    auto_sort_options opt;
    opt.policy = policy::always(k);
    EXPECT_EQ(sort_and_check(records_from_keys(keys), opt), k)
        << dovetail::kernel_name(k);
  }
}

TEST(AutoSortPolicy, ForcedCountingOnWideRangeThrows) {
  auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::uniform, 1e9, "Unif-1e9"}, 50'000);
  auto v = records_from_keys(keys);
  auto_sort_options opt;
  opt.policy = policy::always(sort_kernel::counting);
  EXPECT_THROW(dovetail::sort(std::span<kv32>(v), key32, opt),
               std::invalid_argument);
}

TEST(AutoSortPolicy, ThresholdOverridesShiftDecisions) {
  // Raising the serial threshold reroutes a mid-size input to std_sort.
  const auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::uniform, 1e9, "Unif-1e9"}, 100'000);
  auto_sort_options opt;
  opt.policy.serial_threshold = 1 << 20;
  EXPECT_EQ(sort_and_check(records_from_keys(keys), opt),
            sort_kernel::std_sort);
}

// ---------------------------------------------------------------------------
// The sketch itself.

TEST(InputSketch, ReportsRangeDuplicatesAndOrder) {
  std::vector<kv32> v(50'000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(100 + i % 7), 0};  // 7 keys, cyclic
  const input_sketch s =
      dovetail::sketch_input(std::span<const kv32>(v), key32);
  EXPECT_EQ(s.n, v.size());
  EXPECT_EQ(s.distinct_samples, 7u);
  EXPECT_LE(s.min_sample, 106u);
  EXPECT_GE(s.min_sample, 100u);
  EXPECT_EQ(s.max_sample, 106u);
  EXPECT_EQ(s.key_bits, 7);
  EXPECT_NEAR(s.top_freq(), 1.0 / 7, 0.05);
  EXPECT_GT(s.desc_probes, 0u);  // 106 -> 100 wraps are common
  EXPECT_FALSE(s.maybe_sorted());
  EXPECT_FALSE(s.maybe_reverse_sorted());
}

TEST(InputSketch, SortedAndReverseDetection) {
  std::vector<kv32> v(50'000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(i), 0};
  const auto asc = dovetail::sketch_input(std::span<const kv32>(v), key32);
  EXPECT_TRUE(asc.maybe_sorted());
  std::reverse(v.begin(), v.end());
  const auto desc = dovetail::sketch_input(std::span<const kv32>(v), key32);
  EXPECT_TRUE(desc.maybe_reverse_sorted());
}

TEST(InputSketch, DeterministicForFixedSeed) {
  const auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::zipfian, 1.0, "Zipf-1"}, 30'000);
  const auto v = records_from_keys(keys);
  const auto a = dovetail::sketch_input(std::span<const kv32>(v), key32);
  const auto b = dovetail::sketch_input(std::span<const kv32>(v), key32);
  EXPECT_EQ(a.distinct_samples, b.distinct_samples);
  EXPECT_EQ(a.top_count, b.top_count);
  EXPECT_EQ(a.desc_probes, b.desc_probes);
  EXPECT_EQ(a.min_sample, b.min_sample);
  EXPECT_EQ(a.max_sample, b.max_sample);
}

// ---------------------------------------------------------------------------
// Workspace reuse across dispatched kernels, and degenerate inputs.

TEST(AutoSort, WarmWorkspaceReSortsWithoutAllocating) {
  const auto keys = gen::generate_keys<std::uint32_t>(
      gen::distribution{gen::dist_kind::uniform, 1e9, "Unif-1e9"}, 120'000);
  const auto pristine = records_from_keys(keys);
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  // Run until five consecutive front-door sorts perform zero fresh
  // allocations (the test_workspace.cpp idiom: with multiple workers,
  // scheduling can shift concurrent slab demand between early runs).
  int zero_streak = 0;
  std::uint64_t reuses_at_streak_start = 0;
  for (int iter = 0; iter < 25 && zero_streak < 5; ++iter) {
    const std::uint64_t before = st.workspace_allocations.load();
    if (zero_streak == 0) reuses_at_streak_start = st.workspace_reuses.load();
    auto v = pristine;
    dovetail::sort(std::span<kv32>(v), key32, opt);
    ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key32));
    zero_streak =
        st.workspace_allocations.load() == before ? zero_streak + 1 : 0;
  }
  EXPECT_EQ(zero_streak, 5)
      << "front-door sorts never reached the zero-allocation steady state";
  EXPECT_GT(st.workspace_reuses.load(), reuses_at_streak_start);
}

TEST(AutoSort, DegenerateInputs) {
  std::vector<kv32> empty;
  EXPECT_EQ(dovetail::sort(std::span<kv32>(empty), key32),
            sort_kernel::std_sort);
  std::vector<kv32> one{{42, 0}};
  EXPECT_EQ(dovetail::sort(std::span<kv32>(one), key32),
            sort_kernel::std_sort);
  std::vector<kv32> equal(30'000, kv32{7, 0});
  for (std::size_t i = 0; i < equal.size(); ++i)
    equal[i].value = static_cast<std::uint32_t>(i);
  sort_and_check(equal);  // all-equal: any kernel must keep input order
}

TEST(AutoSort, MatchesStdStableSortAcrossDistributions) {
  for (const char* name : {"Unif-1e5", "Exp-5", "Zipf-1.2", "BExp-30"}) {
    const auto d = gen::find_distribution(name);
    ASSERT_TRUE(d.has_value()) << name;
    auto v = gen::generate_records<kv32>(*d, 80'000);
    auto ref = v;
    dovetail::sort(std::span<kv32>(v), key32);
    std::stable_sort(ref.begin(), ref.end(),
                     [](const kv32& x, const kv32& y) {
                       return x.key < y.key;
                     });
    ASSERT_EQ(v.size(), ref.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_EQ(v[i].key, ref[i].key) << name << " at " << i;
      ASSERT_EQ(v[i].value, ref[i].value) << name << " at " << i;
    }
  }
}
