// Exhaustive and structural tests for the Morton encodings: round-trips
// over full small-coordinate spaces, the recursive quadrant structure of
// the z-curve, and cross-checks between the 32- and 64-bit 2D encoders.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "dovetail/apps/morton.hpp"

namespace app = dovetail::app;

TEST(MortonExhaustive, Bijective2dOver8BitCoordinates) {
  // All 2^16 coordinate pairs map to distinct z-values covering [0, 2^16).
  std::set<std::uint32_t> seen;
  for (std::uint32_t x = 0; x < 256; ++x)
    for (std::uint32_t y = 0; y < 256; ++y) {
      const std::uint32_t z = app::morton2d_32(x, y);
      ASSERT_LT(z, 1u << 16);
      ASSERT_TRUE(seen.insert(z).second) << x << "," << y;
    }
  EXPECT_EQ(seen.size(), 1u << 16);
}

TEST(MortonExhaustive, Bijective3dOver4BitCoordinates) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 16; ++x)
    for (std::uint32_t y = 0; y < 16; ++y)
      for (std::uint32_t z = 0; z < 16; ++z) {
        const std::uint64_t m = app::morton3d_63(x, y, z);
        ASSERT_LT(m, 1u << 12);
        ASSERT_TRUE(seen.insert(m).second);
      }
  EXPECT_EQ(seen.size(), 1u << 12);
}

TEST(MortonExhaustive, QuadrantStructure) {
  // The top two z-bits select the quadrant: (x<2^15, y<2^15) -> 00, etc.
  for (std::uint32_t xs = 0; xs < 2; ++xs)
    for (std::uint32_t ys = 0; ys < 2; ++ys) {
      const std::uint32_t x = xs << 15 | 0x1234;
      const std::uint32_t y = ys << 15 | 0x0F0F;
      const std::uint32_t z = app::morton2d_32(x, y);
      EXPECT_EQ(z >> 30, ys << 1 | xs);
    }
}

TEST(MortonExhaustive, Wide2dAgreesWithNarrowOnLow16Bits) {
  for (std::uint32_t x : {0u, 1u, 255u, 0xFFFFu, 0xABCDu})
    for (std::uint32_t y : {0u, 1u, 255u, 0xFFFFu, 0x1357u}) {
      const std::uint64_t wide = app::morton2d_64(x, y);
      const std::uint32_t narrow = app::morton2d_32(x, y);
      EXPECT_EQ(static_cast<std::uint32_t>(wide & 0xFFFFFFFFu), narrow);
    }
}

TEST(MortonExhaustive, Wide2dUsesAll64Bits) {
  const std::uint64_t z = app::morton2d_64(0xFFFFFFFFu, 0xFFFFFFFFu);
  EXPECT_EQ(z, ~0ull);
  EXPECT_EQ(app::morton2d_64(0xFFFFFFFFu, 0), 0x5555555555555555ull);
  EXPECT_EQ(app::morton2d_64(0, 0xFFFFFFFFu), 0xAAAAAAAAAAAAAAAAull);
}

TEST(MortonExhaustive, ZCurveLocalityWithinAlignedBoxes) {
  // Points inside an aligned 2^k x 2^k box share the top 2*(16-k) z-bits.
  const std::uint32_t bx = 0x4200, by = 0x8100;  // aligned to 2^8
  const std::uint32_t zbase = app::morton2d_32(bx, by);
  for (std::uint32_t dx = 0; dx < 256; dx += 37)
    for (std::uint32_t dy = 0; dy < 256; dy += 41) {
      const std::uint32_t z = app::morton2d_32(bx + dx, by + dy);
      EXPECT_EQ(z >> 16, zbase >> 16);
    }
}

TEST(MortonExhaustive, Part1By2MasksCorrect) {
  // Every third bit position holds the payload for 3D spreading.
  const std::uint64_t spread = app::part1by2_21(0x1FFFFF);
  EXPECT_EQ(spread, 0x1249249249249249ull);
  EXPECT_EQ(app::part1by2_21(0), 0u);
  EXPECT_EQ(app::part1by2_21(1), 1u);
  EXPECT_EQ(app::part1by2_21(2), 8u);
  EXPECT_EQ(app::part1by2_21(3), 9u);
}
