// Tests for the order-statistics & grouped-query engine
// (core/order_stats.hpp + core/group_by.hpp). The defining contract:
// every query result is a slice of the stable full sort — so every check
// here compares byte-for-byte against a std::stable_sort-derived
// reference, per codec kind (u32 / i64 / f64 / u128 / string), plus the
// observability (buckets_pruned, query_kind) and workspace-reuse
// contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dovetail/core/group_by.hpp"
#include "dovetail/core/order_stats.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

// The reference every query is defined against.
template <typename Rec, typename Less>
std::vector<Rec> stable_ref(const std::vector<Rec>& v, const Less& less) {
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), less);
  return ref;
}

// Exhaustive equivalence sweep for one input: top_k both sides across the
// k edge cases (0, 1, mid, n-1, n, k > n), nth_element with its partition
// property, partial_sort including the m == n full-sort route.
template <typename Rec, typename KeyFn, typename Less>
void check_queries(const std::vector<Rec>& input, const KeyFn& key,
                   const Less& less) {
  const std::size_t n = input.size();
  ASSERT_GE(n, 3u);
  const auto ref = stable_ref(input, less);
  for (const std::size_t k :
       {std::size_t{0}, std::size_t{1}, std::size_t{64}, n / 7, n - 1, n,
        n + 13}) {
    const std::size_t kk = std::min(k, n);
    {
      auto v = input;
      const auto out = top_k(std::span<Rec>(v), k, key);
      ASSERT_EQ(out.size(), kk) << "k=" << k;
      for (std::size_t i = 0; i < kk; ++i)
        ASSERT_TRUE(out[i] == ref[i]) << "k=" << k << " i=" << i;
    }
    {
      auto v = input;
      const auto out = top_k(std::span<Rec>(v), k, key, rank_side::largest);
      ASSERT_EQ(out.size(), kk) << "k=" << k;
      for (std::size_t i = 0; i < kk; ++i)
        ASSERT_TRUE(out[i] == ref[n - kk + i]) << "k=" << k << " i=" << i;
    }
  }
  for (const std::size_t nth : {std::size_t{0}, n / 2, n - 1}) {
    auto v = input;
    const Rec& r = nth_element(std::span<Rec>(v), nth, key);
    ASSERT_TRUE(r == ref[nth]) << "nth=" << nth;
    for (std::size_t i = 0; i < nth; ++i)
      ASSERT_FALSE(less(v[nth], v[i])) << "nth=" << nth << " i=" << i;
    for (std::size_t i = nth + 1; i < n; ++i)
      ASSERT_FALSE(less(v[i], v[nth])) << "nth=" << nth << " i=" << i;
  }
  for (const std::size_t m : {n / 5, n}) {
    auto v = input;
    partial_sort(std::span<Rec>(v), m, key);
    for (std::size_t i = 0; i < m; ++i)
      ASSERT_TRUE(v[i] == ref[i]) << "m=" << m << " i=" << i;
    if (m > 0)
      for (std::size_t i = m; i < n; ++i)
        ASSERT_FALSE(less(v[i], v[m - 1])) << "m=" << m << " i=" << i;
  }
}

template <typename K>
auto tkv_less() {
  return [](const tkv<K>& a, const tkv<K>& b) { return a.key < b.key; };
}

}  // namespace

// ---------------------------------------------------------------------------
// Equivalence vs the stable-sort reference, per codec kind

TEST(OrderStats, EquivalenceU32Records) {
  for (const auto& d : std::vector<gen::distribution>{
           {gen::dist_kind::uniform, 1e9, "u"},
           {gen::dist_kind::zipfian, 1.2, "z"},
           {gen::dist_kind::bexp, 100, "b"}}) {
    auto v = gen::generate_records<kv32>(d, 60000, 31);
    check_queries(v, key_of_kv32, [](const kv32& a, const kv32& b) {
      return a.key < b.key;
    });
  }
}

TEST(OrderStats, EquivalenceU64PlainKeys) {
  auto v = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::exponential, 5, "e"}, 60000, 32);
  check_queries(
      v, [](const std::uint64_t& k) -> const std::uint64_t& { return k; },
      std::less<std::uint64_t>{});
  // The plain-key overloads (no key functor) route identically.
  auto w = v;
  const auto out = top_k(std::span<std::uint64_t>(w), 100);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(out[i], ref[i]);
  auto w2 = v;
  EXPECT_EQ(nth_element(std::span<std::uint64_t>(w2), v.size() / 3),
            ref[v.size() / 3]);
  auto w3 = v;
  partial_sort(std::span<std::uint64_t>(w3), 500);
  for (std::size_t i = 0; i < 500; ++i) ASSERT_EQ(w3[i], ref[i]);
}

TEST(OrderStats, EquivalenceI64SignFlip) {
  auto v = gen::generate_typed_records<std::int64_t>(
      {gen::dist_kind::uniform, 1e7, "u"}, 60000, 33);
  check_queries(v, key_of_tkv<std::int64_t>, tkv_less<std::int64_t>());
}

TEST(OrderStats, EquivalenceF64TotalOrder) {
  auto v = gen::generate_typed_records<double>(
      {gen::dist_kind::zipfian, 0.8, "z"}, 60000, 34);
  check_queries(v, key_of_tkv<double>, tkv_less<double>());
}

TEST(OrderStats, EquivalenceU128Wide) {
  auto v = gen::generate_wide_records<unsigned __int128>(
      {gen::dist_kind::zipfian, 1.0, "z"}, 50000, 35, /*hi_bits=*/8);
  check_queries(v, key_of_tkv<unsigned __int128>,
                tkv_less<unsigned __int128>());
}

TEST(OrderStats, EquivalenceStringKeys) {
  auto v = gen::generate_string_keys({gen::dist_kind::zipfian, 1.0, "z"},
                                     20000, 36);
  check_queries(
      v, [](const std::string& s) -> const std::string& { return s; },
      std::less<std::string>{});
}

TEST(OrderStats, EquivalenceUrlStringKeys) {
  // The URL corpus: near-constant word 0 (the scheme), host-level LCP
  // groups — the shape that forces the wide driver past word 0.
  auto v = gen::generate_url_keys({gen::dist_kind::zipfian, 1.2, "z"},
                                  20000, 37);
  check_queries(
      v, [](const std::string& s) -> const std::string& { return s; },
      std::less<std::string>{});
}

TEST(OrderStats, EquivalenceNonTriviallyCopyableRecords) {
  // std::pair records take the encode-once (encoded, index) route even
  // for a narrow key — the pairs path of select_by_rank.
  using rec = std::pair<std::uint32_t, std::uint32_t>;
  auto keys = gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::uniform, 1e5, "u"}, 50000, 38);
  std::vector<rec> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    v[i] = {keys[i], static_cast<std::uint32_t>(i)};
  check_queries(
      v, [](const rec& r) { return r.first; },
      [](const rec& a, const rec& b) { return a.first < b.first; });
}

// ---------------------------------------------------------------------------
// Stability, tiny inputs, errors

TEST(OrderStats, TopKTiesAreStable) {
  // 50 distinct keys over 100k records: every top-k window is wall-to-wall
  // ties; value = input index proves the slice is the STABLE prefix.
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 50, "u"},
                                       100000, 41);
  const auto ref = stable_ref(v, [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  for (const std::size_t k : {std::size_t{1}, std::size_t{777},
                              std::size_t{5000}}) {
    auto w = v;
    const auto out = top_k(std::span<kv32>(w), k, key_of_kv32);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i].key, ref[i].key) << i;
      ASSERT_EQ(out[i].value, ref[i].value) << i;
    }
    auto w2 = v;
    const auto hi = top_k(std::span<kv32>(w2), k, key_of_kv32,
                          rank_side::largest);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(hi[i].key, ref[v.size() - k + i].key) << i;
      ASSERT_EQ(hi[i].value, ref[v.size() - k + i].value) << i;
    }
  }
}

TEST(OrderStats, TinyInputs) {
  std::vector<std::uint32_t> empty;
  EXPECT_EQ(top_k(std::span<std::uint32_t>(empty), 5).size(), 0u);
  partial_sort(std::span<std::uint32_t>(empty), 5);
  std::vector<std::uint32_t> one{42};
  const auto out = top_k(std::span<std::uint32_t>(one), 3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(nth_element(std::span<std::uint32_t>(one), 0), 42u);
}

TEST(OrderStats, NthElementThrowsOutOfRange) {
  std::vector<std::uint32_t> v{3, 1, 2};
  EXPECT_THROW(nth_element(std::span<std::uint32_t>(v), 3),
               std::out_of_range);
  std::vector<std::uint32_t> empty;
  EXPECT_THROW(nth_element(std::span<std::uint32_t>(empty), 0),
               std::out_of_range);
}

// ---------------------------------------------------------------------------
// Percentiles

TEST(OrderStats, PercentilesNearestRank) {
  auto keys = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::zipfian, 1.0, "z"}, 80000, 51);
  auto ref = keys;
  std::stable_sort(ref.begin(), ref.end());
  const std::vector<double> qs{0.99, 0.0, 0.5, 0.25, 1.0, 0.5, 0.9};
  const auto before = keys;
  const auto got = percentiles(std::span<const std::uint64_t>(keys),
                               std::span<const double>(qs));
  EXPECT_EQ(keys, before);  // input untouched
  ASSERT_EQ(got.size(), qs.size());
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto r = static_cast<std::size_t>(
        std::llround(qs[i] * static_cast<double>(n - 1)));
    EXPECT_EQ(got[i], ref[r]) << "q=" << qs[i];
  }
}

TEST(OrderStats, PercentilesTypedAndStringKeys) {
  {
    auto keys = gen::generate_typed_keys<double>(
        {gen::dist_kind::uniform, 1e6, "u"}, 40000, 52);
    auto ref = keys;
    std::stable_sort(ref.begin(), ref.end());
    const auto got =
        percentiles(std::span<const double>(keys), {0.5, 0.99});
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], ref[static_cast<std::size_t>(std::llround(
                          0.5 * static_cast<double>(keys.size() - 1)))]);
    EXPECT_EQ(got[1], ref[static_cast<std::size_t>(std::llround(
                          0.99 * static_cast<double>(keys.size() - 1)))]);
  }
  {
    auto keys = gen::generate_string_keys({gen::dist_kind::uniform, 1e5, "u"},
                                          15000, 53);
    auto ref = keys;
    std::stable_sort(ref.begin(), ref.end());
    const auto got =
        percentiles(std::span<const std::string>(keys), {0.0, 0.9, 1.0});
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], ref.front());
    EXPECT_EQ(got[1], ref[static_cast<std::size_t>(std::llround(
                          0.9 * static_cast<double>(keys.size() - 1)))]);
    EXPECT_EQ(got[2], ref.back());
  }
}

TEST(OrderStats, PercentilesValidation) {
  std::vector<std::uint32_t> v{1, 2, 3};
  EXPECT_THROW(percentiles(std::span<const std::uint32_t>(v), {1.5}),
               std::invalid_argument);
  EXPECT_THROW(percentiles(std::span<const std::uint32_t>(v), {-0.1}),
               std::invalid_argument);
  std::vector<std::uint32_t> empty;
  EXPECT_THROW(percentiles(std::span<const std::uint32_t>(empty), {0.5}),
               std::invalid_argument);
  EXPECT_TRUE(percentiles(std::span<const std::uint32_t>(empty),
                          std::span<const double>{})
                  .empty());
}

// ---------------------------------------------------------------------------
// Observability: pruning counters, query_kind, workspace reuse

TEST(OrderStats, PruningIsObserved) {
  auto v = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::uniform, 1e9, "u"}, 200000, 61);
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  auto w = v;
  top_k(std::span<std::uint64_t>(w), 16, rank_side::smallest, opt);
  EXPECT_GT(st.buckets_pruned.load(), 0u);
  EXPECT_GT(st.records_pruned.load(), 0u);
  // k << n: almost everything is pruned after the first pass.
  EXPECT_GT(st.records_pruned.load(), v.size() / 2);
  ASSERT_TRUE(query_kind_of(st).has_value());
  EXPECT_EQ(*query_kind_of(st), query_kind::top_k);
  // The wide path prunes too.
  sort_stats st2;
  auto_sort_options opt2;
  opt2.stats = &st2;
  auto ws = gen::generate_wide_records<unsigned __int128>(
      {gen::dist_kind::uniform, 1e9, "u"}, 100000, 62, /*hi_bits=*/32);
  dovetail::nth_element(std::span<tkv<unsigned __int128>>(ws), 50000,
                        key_of_tkv<unsigned __int128>, opt2);
  EXPECT_GT(st2.buckets_pruned.load(), 0u);
  EXPECT_EQ(*query_kind_of(st2), query_kind::nth_element);
}

TEST(OrderStats, QueryKindSnapshots) {
  std::vector<std::uint32_t> v = gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::uniform, 1e6, "u"}, 10000, 63);
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  EXPECT_FALSE(query_kind_of(st).has_value());
  auto a = v;
  partial_sort(std::span<std::uint32_t>(a), 100, opt);
  EXPECT_EQ(*query_kind_of(st), query_kind::partial_sort);
  percentiles(std::span<const std::uint32_t>(v), {0.5}, opt);
  EXPECT_EQ(*query_kind_of(st), query_kind::percentiles);
  auto b = v;
  std::vector<std::uint32_t> vals(v.size());
  group_by(std::span<std::uint32_t>(b), std::span<std::uint32_t>(vals), opt);
  EXPECT_EQ(*query_kind_of(st), query_kind::group_by);
  st.reset();
  EXPECT_FALSE(query_kind_of(st).has_value());
}

TEST(OrderStats, ZeroAllocWarmReuse) {
  auto base = gen::generate_records<kv64>({gen::dist_kind::uniform, 1e9, "u"},
                                          120000, 64);
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  const auto run = [&] {
    auto v = base;
    top_k(std::span<kv64>(v), 100, key_of_kv64, rank_side::smallest, opt);
    auto w = base;
    dovetail::nth_element(std::span<kv64>(w), base.size() / 2, key_of_kv64,
                          opt);
  };
  run();  // warm-up: the workspace grows to the query footprint
  run();
  const std::uint64_t allocs = st.workspace_allocations.load();
  run();
  run();
  EXPECT_EQ(st.workspace_allocations.load(), allocs)
      << "warm repeated queries must lease, not allocate";
  EXPECT_GT(st.workspace_reuses.load(), 0u);
}

// ---------------------------------------------------------------------------
// group_by: byte-identical to sort-then-scan, per codec kind

namespace {

template <typename K>
void check_group_by_matches_sort_scan(std::vector<K> keys) {
  const std::size_t n = keys.size();
  std::vector<std::uint32_t> values(n);
  std::iota(values.begin(), values.end(), 0u);
  // Reference: a stable sort-then-scan that never touches dovetail code.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return keys[a] < keys[b];
  });
  std::vector<K> ref_keys(n);
  std::vector<std::uint32_t> ref_values(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref_keys[i] = keys[idx[i]];
    ref_values[i] = static_cast<std::uint32_t>(idx[i]);
  }
  std::vector<std::size_t> ref_offsets{0};
  for (std::size_t i = 1; i < n; ++i)
    if (!(ref_keys[i - 1] == ref_keys[i])) ref_offsets.push_back(i);
  ref_offsets.push_back(n);

  const auto view =
      group_by(std::span<K>(keys), std::span<std::uint32_t>(values));
  ASSERT_EQ(keys, ref_keys);
  ASSERT_EQ(values, ref_values);
  ASSERT_EQ(view.offsets, ref_offsets);
  ASSERT_EQ(view.num_groups(), ref_offsets.size() - 1);
  for (std::size_t g = 0; g < view.num_groups(); ++g) {
    ASSERT_TRUE(view.key(g) == ref_keys[ref_offsets[g]]);
    ASSERT_EQ(view.group(g).size(), view.group_size(g));
  }
}

}  // namespace

TEST(GroupBy, MatchesSortThenScanU32) {
  check_group_by_matches_sort_scan(gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::zipfian, 1.2, "z"}, 80000, 71));
}

TEST(GroupBy, MatchesSortThenScanI64) {
  check_group_by_matches_sort_scan(gen::generate_typed_keys<std::int64_t>(
      {gen::dist_kind::uniform, 1e4, "u"}, 80000, 72));
}

TEST(GroupBy, MatchesSortThenScanF64) {
  check_group_by_matches_sort_scan(gen::generate_typed_keys<double>(
      {gen::dist_kind::exponential, 7, "e"}, 60000, 73));
}

TEST(GroupBy, MatchesSortThenScanU128) {
  std::vector<unsigned __int128> keys(60000);
  {
    auto recs = gen::generate_wide_records<unsigned __int128>(
        {gen::dist_kind::zipfian, 1.2, "z"}, keys.size(), 74, /*hi_bits=*/8);
    for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = recs[i].key;
  }
  check_group_by_matches_sort_scan(std::move(keys));
}

TEST(GroupBy, MatchesSortThenScanString) {
  check_group_by_matches_sort_scan(gen::generate_string_keys(
      {gen::dist_kind::zipfian, 1.2, "z"}, 20000, 75));
}

TEST(GroupBy, FingerprintModeGroupsExactly) {
  auto keys = gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::zipfian, 1.2, "z"}, 100000, 76);
  std::vector<std::uint32_t> values(keys.size());
  std::iota(values.begin(), values.end(), 0u);
  std::map<std::uint32_t, std::size_t> expect;
  for (const auto k : keys) ++expect[k];
  const auto orig_keys = keys;
  const auto view =
      group_by(std::span<std::uint32_t>(keys), std::span<std::uint32_t>(values),
               {}, group_order::fingerprint);
  // Every key forms exactly one group of the right size, stable within.
  ASSERT_EQ(view.num_groups(), expect.size());
  std::set<std::uint32_t> seen;
  for (std::size_t g = 0; g < view.num_groups(); ++g) {
    const std::uint32_t k = view.key(g);
    ASSERT_TRUE(seen.insert(k).second) << "key " << k << " in two groups";
    ASSERT_EQ(view.group_size(g), expect[k]);
    const auto vals = view.group(g);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      ASSERT_EQ(orig_keys[vals[i]], k);  // value = original index of key k
      if (i > 0) ASSERT_LT(vals[i - 1], vals[i]);  // stable within group
    }
  }
  // Deterministic: a second run over the same input groups identically.
  auto keys2 = orig_keys;
  std::vector<std::uint32_t> values2(keys2.size());
  std::iota(values2.begin(), values2.end(), 0u);
  group_by(std::span<std::uint32_t>(keys2), std::span<std::uint32_t>(values2),
           {}, group_order::fingerprint);
  EXPECT_EQ(keys, keys2);
  EXPECT_EQ(values, values2);
}

TEST(GroupBy, KeysOnlyOverloadAndEdges) {
  {
    std::vector<std::uint32_t> empty;
    const auto view = group_by(std::span<std::uint32_t>(empty));
    EXPECT_EQ(view.num_groups(), 0u);
    EXPECT_EQ(view.offsets, std::vector<std::size_t>{0});
  }
  {
    std::vector<std::uint32_t> same(1000, 7);
    const auto view = group_by(std::span<std::uint32_t>(same));
    ASSERT_EQ(view.num_groups(), 1u);
    EXPECT_EQ(view.key(0), 7u);
    EXPECT_EQ(view.group_size(0), 1000u);
  }
  {
    auto keys = gen::generate_keys<std::uint64_t>(
        {gen::dist_kind::uniform, 1e3, "u"}, 50000, 77);
    auto ref = keys;
    std::stable_sort(ref.begin(), ref.end());
    const auto view = group_by(std::span<std::uint64_t>(keys));
    EXPECT_EQ(keys, ref);
    for (std::size_t g = 0; g < view.num_groups(); ++g) {
      for (std::size_t i = view.offsets[g] + 1; i < view.offsets[g + 1]; ++i)
        ASSERT_EQ(keys[i], view.key(g));
      if (g + 1 < view.num_groups())
        ASSERT_LT(view.key(g), view.key(g + 1));
    }
    // Fingerprint keys-only: same multiset, contiguous groups.
    auto keys2 = ref;
    const auto fview = group_by(std::span<std::uint64_t>(keys2), {},
                                group_order::fingerprint);
    EXPECT_EQ(fview.offsets.back(), keys2.size());
    auto resorted = keys2;
    std::sort(resorted.begin(), resorted.end());
    EXPECT_EQ(resorted, ref);
  }
}

TEST(GroupBy, ThrowsOnSizeMismatch) {
  std::vector<std::uint32_t> keys(10);
  std::vector<std::uint32_t> values(9);
  EXPECT_THROW(group_by(std::span<std::uint32_t>(keys),
                        std::span<std::uint32_t>(values)),
               std::invalid_argument);
}
