// Tests for semisort, the unstable counting sort (Appendix B), and the
// buffered LSD radix sort (RD stand-in).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "dovetail/baselines/buffered_lsd_radix_sort.hpp"
#include "dovetail/core/semisort.hpp"
#include "dovetail/core/unstable_counting_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

// ---------------------------------------------------------------------------
// Semisort

TEST(Semisort, GroupsAreContiguous) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.2, "z"},
                                       150000, 11);
  std::map<std::uint32_t, std::size_t> expect;
  for (const auto& r : v) ++expect[r.key];
  semisort(std::span<kv32>(v), key_of_kv32);
  // Every key appears in exactly one contiguous run of the right length.
  std::set<std::uint32_t> seen;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j < v.size() && v[j].key == v[i].key) ++j;
    ASSERT_TRUE(seen.insert(v[i].key).second)
        << "key " << v[i].key << " appears in two separate groups";
    ASSERT_EQ(j - i, expect[v[i].key]);
    i = j;
  }
  ASSERT_EQ(seen.size(), expect.size());
}

TEST(Semisort, StableWithinGroups) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 100, "u"},
                                       100000, 12);
  semisort(std::span<kv32>(v), key_of_kv32);
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].value, v[i].value) << i;
    }
}

TEST(Semisort, GroupOffsetsRoundTrip) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 50, "u"},
                                       50000, 13);
  semisort(std::span<kv32>(v), key_of_kv32);
  auto offs = group_offsets(std::span<const kv32>(v), key_of_kv32);
  ASSERT_GE(offs.size(), 2u);
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), v.size());
  for (std::size_t g = 0; g + 1 < offs.size(); ++g) {
    for (std::size_t i = offs[g] + 1; i < offs[g + 1]; ++i)
      ASSERT_EQ(v[i].key, v[offs[g]].key);
    if (g + 2 < offs.size()) {
      ASSERT_NE(v[offs[g]].key, v[offs[g + 1]].key);
    }
  }
}

TEST(Semisort, EmptyAndSingleton) {
  std::vector<kv32> v;
  semisort(std::span<kv32>(v), key_of_kv32);
  EXPECT_TRUE(v.empty());
  v = {{7, 0}};
  semisort(std::span<kv32>(v), key_of_kv32);
  EXPECT_EQ(v[0].key, 7u);
}

// group_offsets edge shapes — the boundary cases group_by builds on.
TEST(Semisort, GroupOffsetsEmptyInput) {
  const std::vector<kv32> v;
  const auto offs = group_offsets(std::span<const kv32>(v), key_of_kv32);
  // Empty input: only the terminator — zero groups, offs.size() - 1 == 0.
  EXPECT_EQ(offs, std::vector<std::size_t>{0});
}

TEST(Semisort, GroupOffsetsSingleGroup) {
  const std::vector<kv32> v(1234, kv32{42, 0});
  const auto offs = group_offsets(std::span<const kv32>(v), key_of_kv32);
  EXPECT_EQ(offs, (std::vector<std::size_t>{0, 1234}));
}

TEST(Semisort, GroupOffsetsAllSingletons) {
  std::vector<kv32> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(i * 7 + 1),
            static_cast<std::uint32_t>(i)};
  const auto offs = group_offsets(std::span<const kv32>(v), key_of_kv32);
  ASSERT_EQ(offs.size(), v.size() + 1);
  for (std::size_t i = 0; i <= v.size(); ++i) ASSERT_EQ(offs[i], i);
}

// ---------------------------------------------------------------------------
// Unstable counting sort (Appendix B / Thm 4.1 primitive)

TEST(UnstableCountingSort, BucketsCorrectOrderArbitrary) {
  const std::size_t n = 200000, nb = 64;
  std::vector<kv32> in(n), out(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::hash64(i)),
             static_cast<std::uint32_t>(i)};
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 64; };
  auto offs = unstable_counting_sort(std::span<const kv32>(in),
                                     std::span<kv32>(out), nb, bucket_of);
  ASSERT_EQ(offs.front(), 0u);
  ASSERT_EQ(offs.back(), n);
  for (std::size_t k = 0; k < nb; ++k)
    for (std::size_t i = offs[k]; i < offs[k + 1]; ++i)
      ASSERT_EQ(bucket_of(out[i]), k);
  // Permutation: every input index appears exactly once.
  std::vector<char> seen(n, 0);
  for (const auto& r : out) {
    ASSERT_FALSE(seen[r.value]);
    seen[r.value] = 1;
  }
}

TEST(UnstableCountingSort, AgreesWithStableOnOffsets) {
  const std::size_t n = 100000, nb = 256;
  std::vector<kv32> in(n), out1(n), out2(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::rand_range(31, i, 1u << 20)),
             static_cast<std::uint32_t>(i)};
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 256; };
  auto o1 = counting_sort(std::span<const kv32>(in), std::span<kv32>(out1),
                          nb, bucket_of);
  auto o2 = unstable_counting_sort(std::span<const kv32>(in),
                                   std::span<kv32>(out2), nb, bucket_of);
  EXPECT_EQ(o1, o2);
}

TEST(UnstableCountingSort, EmptyInput) {
  std::vector<kv32> in, out;
  auto offs = unstable_counting_sort(std::span<const kv32>(in),
                                     std::span<kv32>(out), 8,
                                     [](const kv32&) -> std::size_t {
                                       return 0;
                                     });
  EXPECT_EQ(offs, (std::vector<std::size_t>(9, 0)));
}

// ---------------------------------------------------------------------------
// Buffered LSD radix sort (RD stand-in)

TEST(BufferedLsd, StableAcrossDistributions32) {
  for (const auto& d : std::vector<gen::distribution>{
           {gen::dist_kind::uniform, 1e9, "u"},
           {gen::dist_kind::zipfian, 1.2, "z"},
           {gen::dist_kind::bexp, 100, "b"}}) {
    auto v = gen::generate_records<kv32>(d, 150000, 21);
    auto ref = v;
    std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
      return a.key < b.key;
    });
    baseline::buffered_lsd_radix_sort(std::span<kv32>(v), key_of_kv32);
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_EQ(v[i].key, ref[i].key) << i;
      ASSERT_EQ(v[i].value, ref[i].value) << i;
    }
  }
}

TEST(BufferedLsd, StableAcrossDistributions64) {
  auto v = gen::generate_records<kv64>({gen::dist_kind::exponential, 7, "e"},
                                       120000, 22);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv64& a, const kv64& b) {
    return a.key < b.key;
  });
  baseline::buffered_lsd_radix_sort(std::span<kv64>(v), key_of_kv64);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
}

TEST(BufferedLsd, BufferSizeSweep) {
  auto base = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.0, "z"},
                                          80000, 23);
  auto ref = base;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  for (std::size_t bytes : {32ul, 64ul, 256ul, 1024ul}) {
    auto v = base;
    baseline::buffered_lsd_radix_sort(std::span<kv32>(v), key_of_kv32,
                                      {.buffer_bytes = bytes});
    for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
  }
}

TEST(BufferedLsd, DigitWidthSweepAndEdgeSizes) {
  for (int gamma : {4, 8, 11}) {
    auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e5, "u"},
                                         60000, 24);
    baseline::buffered_lsd_radix_sort(std::span<kv32>(v), key_of_kv32,
                                      {.gamma = gamma});
    EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  }
  for (std::size_t n : {0ul, 1ul, 2ul, 17ul}) {
    auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e5, "u"},
                                         n, 25);
    baseline::buffered_lsd_radix_sort(std::span<kv32>(v), key_of_kv32);
    EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  }
}
