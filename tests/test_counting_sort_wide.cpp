// Counting sort with very large bucket counts — exercises the 32-bit
// bucket-id path (bucket counts above 2^16, where the uint16 id cache no
// longer fits) plus degenerate block/bucket geometry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/counting_sort.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using dovetail::counting_sort;
using dovetail::kv32;
namespace par = dovetail::par;

TEST(CountingSortWide, BucketsAbove64kUseWideIds) {
  const std::size_t n = 300000;
  const std::size_t nb = (1u << 17);  // 131072 buckets > uint16 capacity
  std::vector<kv32> in(n), out(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::rand_range(7, i, nb)),
             static_cast<std::uint32_t>(i)};
  auto bucket_of = [nb](const kv32& r) -> std::size_t { return r.key % nb; };
  auto offs = counting_sort(std::span<const kv32>(in), std::span<kv32>(out),
                            nb, bucket_of);
  ASSERT_EQ(offs.size(), nb + 1);
  ASSERT_EQ(offs.back(), n);
  for (std::size_t k = 0; k < nb; ++k) {
    for (std::size_t i = offs[k]; i < offs[k + 1]; ++i) {
      ASSERT_EQ(bucket_of(out[i]), k);
      if (i > offs[k]) {
        ASSERT_LT(out[i - 1].value, out[i].value);  // stability
      }
    }
  }
}

TEST(CountingSortWide, ExactlyAtUint16Boundary) {
  // nb == 2^16: ids 0..65535 still fit in uint16.
  const std::size_t n = 200000;
  const std::size_t nb = 1u << 16;
  std::vector<kv32> in(n), out(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::hash64(i)),
             static_cast<std::uint32_t>(i)};
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key >> 16; };
  auto offs = counting_sort(std::span<const kv32>(in), std::span<kv32>(out),
                            nb, bucket_of);
  ASSERT_EQ(offs.back(), n);
  for (std::size_t i = 1; i < n; ++i)
    ASSERT_LE(out[i - 1].key >> 16, out[i].key >> 16);
}

TEST(CountingSortWide, MoreBucketsThanRecords) {
  const std::size_t n = 100;
  const std::size_t nb = 1u << 17;
  std::vector<kv32> in(n), out(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(i * 1000), 0};
  auto offs = counting_sort(
      std::span<const kv32>(in), std::span<kv32>(out), nb,
      [](const kv32& r) -> std::size_t { return r.key; });
  ASSERT_EQ(offs.back(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i].key, i * 1000);
}

TEST(CountingSortWide, SingleBucketManyRecords) {
  const std::size_t n = 500000;
  std::vector<kv32> in(n), out(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = {static_cast<std::uint32_t>(par::hash64(i)),
             static_cast<std::uint32_t>(i)};
  counting_sort(std::span<const kv32>(in), std::span<kv32>(out), 1,
                [](const kv32&) -> std::size_t { return 0; });
  // Degenerates to a stable copy.
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i].value, i);
}
