// Tests for the deterministic RNG and the bit utilities.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dovetail/parallel/random.hpp"
#include "dovetail/util/bits.hpp"

using namespace dovetail;
namespace par = dovetail::par;

TEST(Random, Hash64IsDeterministicAndSpreads) {
  EXPECT_EQ(par::hash64(1), par::hash64(1));
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(par::hash64(i));
  EXPECT_EQ(seen.size(), 10000u);  // bijective finalizer: no collisions
}

TEST(Random, RandRangeWithinBound) {
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (std::uint64_t i = 0; i < 2000; ++i)
      ASSERT_LT(par::rand_range(9, i, bound), bound);
  }
}

TEST(Random, RandRangeCoversSmallRangeUniformly) {
  const std::uint64_t bound = 10;
  std::vector<std::size_t> counts(bound, 0);
  const std::size_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) ++counts[par::rand_range(11, i, bound)];
  for (auto c : counts) {
    EXPECT_GT(c, n / bound * 9 / 10);
    EXPECT_LT(c, n / bound * 11 / 10);
  }
}

TEST(Random, RandDoubleInUnitInterval) {
  double sum = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    double u = par::rand_double(13, i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, StreamsAreIndependent) {
  EXPECT_NE(par::rand_at(1, 0), par::rand_at(2, 0));
  EXPECT_NE(par::rand_at(1, 0), par::rand_at(1, 1));
}

TEST(Bits, BitWidth) {
  EXPECT_EQ(bit_width_u64(0), 0);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(2), 2);
  EXPECT_EQ(bit_width_u64(3), 2);
  EXPECT_EQ(bit_width_u64(255), 8);
  EXPECT_EQ(bit_width_u64(256), 9);
  EXPECT_EQ(bit_width_u64(~0ull), 64);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(32), 0xFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(Bits, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}
