// Concurrency battery for the batched serving layer (sort_service.hpp):
//   * sort_batch correctness — every request sorted, stable, a permutation
//     of its input, across mixed sizes including empty and singleton;
//   * byte-identical to serial — a batched run reproduces, bit for bit,
//     sorting each request one at a time with a private workspace;
//   * foreign-thread stress — N std::threads each draining their own
//     batch over ONE shared pool: all outputs exact, and the pool counters
//     keep the invariant checkouts == pool_hits + creations under stress;
//   * zero warm-path allocation — after prewarm() + one warming round, a
//     second identical round does zero pool creations and zero workspace
//     (arena/slab) allocations: the steady state the serving layer exists
//     to reach;
//   * per-request num_threads=1 takes the exact serial path (no refine
//     pool traffic beyond the one per-request lease);
//   * soft deadlines and the service_* accounting counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "dovetail/core/sort_service.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;

namespace {

using u128 = unsigned __int128;

struct worker_count_guard {
  ~worker_count_guard() {
    par::scheduler::set_num_workers(par::scheduler::default_num_workers());
  }
};

gen::distribution unif_dist() { return {gen::dist_kind::uniform, 1e7, "U"}; }
gen::distribution zipf_dist() { return {gen::dist_kind::zipfian, 1.2, "Z"}; }

// A deterministic mixed-size request load: sizes cycle through shapes the
// dispatcher routes to different kernels (tiny/serial through
// above-crossover parallel).
std::vector<std::size_t> mixed_sizes(std::size_t count) {
  const std::size_t shapes[] = {0, 1, 7, 300, 2'000, 9'000, 40'000};
  std::vector<std::size_t> sizes(count);
  for (std::size_t i = 0; i < count; ++i)
    sizes[i] = shapes[i % std::size(shapes)];
  return sizes;
}

// Inputs for a request load; seed varies per request so no two share data.
std::vector<std::vector<kv64>> make_inputs(const std::vector<std::size_t>& sizes,
                                           std::uint64_t seed_base) {
  std::vector<std::vector<kv64>> inputs;
  inputs.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i)
    inputs.push_back(gen::generate_records<kv64>(
        i % 2 == 0 ? unif_dist() : zipf_dist(), sizes[i],
        seed_base + i));
  return inputs;
}

// The serial reference: each input sorted one at a time through the front
// door with a private workspace (the determinism contract says the batch
// must reproduce this byte for byte).
std::vector<std::vector<kv64>> serial_reference(
    const std::vector<std::vector<kv64>>& inputs) {
  std::vector<std::vector<kv64>> ref = inputs;
  for (std::vector<kv64>& r : ref) {
    sort_workspace ws;
    auto_sort_options opt;
    opt.workspace = &ws;
    dovetail::sort(std::span<kv64>(r), key_of_kv64, opt);
  }
  return ref;
}

std::vector<sort_request<kv64, decltype(key_of_kv64)>> make_requests(
    std::vector<std::vector<kv64>>& inputs) {
  std::vector<sort_request<kv64, decltype(key_of_kv64)>> reqs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    reqs[i].data = std::span<kv64>(inputs[i]);
  return reqs;
}

}  // namespace

// ---------------------------------------------------------------------------
// Batched correctness.

TEST(SortBatch, SortsEveryRequestAcrossMixedSizes) {
  const std::vector<std::size_t> sizes = mixed_sizes(21);
  std::vector<std::vector<kv64>> inputs = make_inputs(sizes, 1'000);
  std::vector<std::uint64_t> fps;
  for (const auto& in : inputs)
    fps.push_back(dtt::multiset_hash(std::span<const kv64>(in), key_of_kv64));

  auto reqs = make_requests(inputs);
  sort_batch(reqs);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::span<const kv64> out(inputs[i]);
    EXPECT_TRUE(reqs[i].result.completed);
    EXPECT_TRUE(dtt::sorted_by_key(out, key_of_kv64)) << "request " << i;
    EXPECT_TRUE(dtt::stable_by_index_value(out, key_of_kv64));
    EXPECT_EQ(fps[i], dtt::multiset_hash(out, key_of_kv64))
        << "request " << i << " lost or duplicated records";
  }
}

TEST(SortBatch, ByteIdenticalToSerialOneShots) {
  const std::vector<std::size_t> sizes = mixed_sizes(15);
  std::vector<std::vector<kv64>> inputs = make_inputs(sizes, 2'000);
  const std::vector<std::vector<kv64>> expected = serial_reference(inputs);

  workspace_pool pool(4);
  auto reqs = make_requests(inputs);
  service_options opt;
  opt.pool = &pool;
  sort_batch(reqs, opt);

  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(inputs[i], expected[i]) << "request " << i;
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
}

TEST(SortBatch, ConcurrencyCapStillSortsEverything) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  const std::vector<std::size_t> sizes = mixed_sizes(10);
  std::vector<std::vector<kv64>> inputs = make_inputs(sizes, 3'000);
  const std::vector<std::vector<kv64>> expected = serial_reference(inputs);

  auto reqs = make_requests(inputs);
  service_options opt;
  opt.concurrency = 2;
  sort_batch(reqs, opt);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(inputs[i], expected[i]);
}

TEST(SortBatch, EmptyBatchIsANoOp) {
  sort_stats st;
  service_options opt;
  opt.stats = &st;
  std::vector<sort_request<kv64, decltype(key_of_kv64)>> reqs;
  sort_batch(reqs, opt);
  EXPECT_EQ(st.service_requests.load(), 0u);
  EXPECT_EQ(st.service_batches.load(), 1u);
}

// ---------------------------------------------------------------------------
// Foreign-thread stress over one shared pool.

TEST(SortBatchStress, EightForeignThreadsOneSharedPool) {
  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 3;
  workspace_pool pool(kThreads);

  // Precompute every thread's inputs and serial references up front.
  std::array<std::vector<std::vector<kv64>>, kThreads> inputs;
  std::array<std::vector<std::vector<kv64>>, kThreads> expected;
  for (int t = 0; t < kThreads; ++t) {
    inputs[t] = make_inputs(mixed_sizes(kBatchesPerThread * 5),
                            10'000 + 1'000 * t);
    expected[t] = serial_reference(inputs[t]);
  }

  // array<bool>, not vector<bool>: packed bits would share words across
  // threads (a real race); plain bools are distinct memory locations.
  std::array<bool, kThreads> ok{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool, &inputs, &expected, &ok] {
      bool all = true;
      const std::size_t per_batch = inputs[t].size() / kBatchesPerThread;
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<sort_request<kv64, decltype(key_of_kv64)>> reqs(per_batch);
        for (std::size_t i = 0; i < per_batch; ++i)
          reqs[i].data = std::span<kv64>(inputs[t][b * per_batch + i]);
        service_options opt;
        opt.pool = &pool;
        sort_batch(reqs, opt);
        for (std::size_t i = 0; i < per_batch; ++i) {
          all = all && reqs[i].result.completed &&
                inputs[t][b * per_batch + i] == expected[t][b * per_batch + i];
        }
      }
      ok[t] = all;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_TRUE(ok[t]) << "thread " << t
                       << " diverged from its serial reference";
  // The pool invariant must survive the stampede.
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
  EXPECT_GT(pool.checkouts(), 0u);
  // A warm pool at rest: the next checkout must be a hit.
  const std::uint64_t created = pool.creations();
  { workspace_pool::handle h = pool.checkout(); }
  EXPECT_EQ(pool.creations(), created);
}

// ---------------------------------------------------------------------------
// Prewarm and the zero-allocation steady state.

TEST(WorkspacePoolPrewarm, ParksArenasWithoutTouchingCounters) {
  workspace_pool pool(3);
  EXPECT_EQ(pool.parked(), 0u);
  EXPECT_EQ(pool.prewarm(), 3u);
  EXPECT_EQ(pool.parked(), 3u);
  EXPECT_EQ(pool.checkouts(), 0u);
  EXPECT_EQ(pool.creations(), 0u);
  // Idempotent: warm slots stay warm, nothing is double-parked.
  EXPECT_EQ(pool.prewarm(), 3u);
  EXPECT_EQ(pool.parked(), 3u);

  // Every burst checkout is now a hit, and the invariant still holds.
  {
    std::vector<workspace_pool::handle> burst;
    for (int i = 0; i < 3; ++i) burst.push_back(pool.checkout());
    EXPECT_EQ(pool.pool_hits(), 3u);
    EXPECT_EQ(pool.creations(), 0u);
  }
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
  EXPECT_EQ(pool.parked(), 3u);
}

TEST(WorkspacePoolPrewarm, PartialPrewarmRespectsCount) {
  workspace_pool pool(4);
  EXPECT_EQ(pool.prewarm(2), 2u);
  EXPECT_EQ(pool.parked(), 2u);
}

TEST(SortBatch, WarmSteadyStateZeroWorkspaceAllocations) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  workspace_pool pool(1);
  pool.prewarm();

  // concurrency = 1 pins the batch to the calling thread, so both rounds
  // present the identical request sequence to the single pooled arena.
  const auto run_round = [&pool](sort_stats* st) {
    std::vector<std::vector<kv64>> inputs =
        make_inputs(mixed_sizes(10), 5'000);  // same seeds: identical load
    auto reqs = make_requests(inputs);
    service_options opt;
    opt.pool = &pool;
    opt.concurrency = 1;
    opt.stats = st;
    sort_batch(reqs, opt);
    for (const auto& in : inputs)
      ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv64>(in), key_of_kv64));
  };

  sort_stats warm_st;
  run_round(&warm_st);  // warming round: arena + slabs size themselves
  const std::uint64_t created_after_warm = pool.creations();
  EXPECT_EQ(created_after_warm, 0u) << "prewarm must cover the first round";

  sort_stats steady_st;
  run_round(&steady_st);
  EXPECT_EQ(steady_st.workspace_allocations.load(), 0u)
      << "a warm steady-state round must not allocate arena or slab memory";
  EXPECT_GT(steady_st.workspace_reuses.load(), 0u);
  EXPECT_EQ(pool.creations(), created_after_warm);
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
}

// ---------------------------------------------------------------------------
// Per-request knobs.

TEST(SortBatch, PerRequestSerialCapSkipsRefinePoolTraffic) {
  worker_count_guard guard;
  par::scheduler::set_num_workers(4);
  // Wide keys with fat equal-prefix segments: a parallel refine would
  // lease extra segment arenas from the pool. num_threads=1 per request
  // promises the exact serial path, so the ONLY pool traffic is the one
  // workspace lease per request.
  constexpr std::size_t kRequests = 4;
  std::vector<std::vector<tkv<u128>>> inputs;
  for (std::size_t i = 0; i < kRequests; ++i)
    inputs.push_back(
        gen::generate_wide_records<u128>(zipf_dist(), 30'000, 40 + i, 4));

  workspace_pool pool(8);
  std::vector<sort_request<tkv<u128>, decltype(key_of_tkv<u128>)>> reqs(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    reqs[i].data = std::span<tkv<u128>>(inputs[i]);
    reqs[i].num_threads = 1;
  }
  service_options opt;
  opt.pool = &pool;
  opt.policy.wide_segment_base_case = 512;
  sort_batch(reqs, opt);

  EXPECT_EQ(pool.checkouts(), static_cast<std::uint64_t>(kRequests))
      << "serial-capped requests must lease exactly one workspace each";
  for (const auto& in : inputs)
    EXPECT_TRUE(dtt::stable_by_index_value(std::span<const tkv<u128>>(in),
                                           key_of_tkv<u128>));
}

TEST(SortBatch, SoftDeadlinesAreRecordedNotEnforced) {
  std::vector<std::vector<kv64>> inputs = make_inputs({50'000, 50'000}, 6'000);
  auto reqs = make_requests(inputs);
  reqs[0].deadline_s = 3600.0;  // generous: met
  reqs[1].deadline_s = 1e-12;   // impossible: missed, but still completed
  sort_batch(reqs);
  EXPECT_TRUE(reqs[0].result.deadline_met);
  EXPECT_FALSE(reqs[1].result.deadline_met);
  EXPECT_TRUE(reqs[1].result.completed)
      << "a missed soft deadline must not abandon the sort";
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv64>(inputs[1]),
                                 key_of_kv64));
  EXPECT_GT(reqs[0].result.seconds, 0.0);
}

TEST(SortBatch, ServiceCountersAccumulate) {
  sort_stats st;
  service_options opt;
  opt.stats = &st;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<kv64>> inputs = make_inputs({1'000, 2'000}, 7'000);
    auto reqs = make_requests(inputs);
    sort_batch(reqs, opt);
  }
  EXPECT_EQ(st.service_batches.load(), 3u);
  EXPECT_EQ(st.service_requests.load(), 6u);
  EXPECT_GT(st.workspace_reuses.load() + st.workspace_allocations.load(), 0u)
      << "batch-level stats must aggregate the front door's counters";
  st.reset();
  EXPECT_EQ(st.service_requests.load(), 0u);
  EXPECT_EQ(st.service_batches.load(), 0u);
}

// Per-request stats isolate one request's dispatch record even when the
// batch runs concurrently.
TEST(SortBatch, PerRequestStatsSeeOnlyTheirRequest) {
  std::vector<std::vector<kv64>> inputs = make_inputs({40'000, 300}, 8'000);
  std::array<sort_stats, 2> st;
  auto reqs = make_requests(inputs);
  reqs[0].stats = &st[0];
  reqs[1].stats = &st[1];
  sort_batch(reqs);
  EXPECT_EQ(st[0].timed_records.load(), 0u);  // timing is the harness's job
  EXPECT_TRUE(chosen_kernel_of(st[0]).has_value());
  EXPECT_TRUE(chosen_kernel_of(st[1]).has_value());
  EXPECT_EQ(reqs[0].result.kernel, *chosen_kernel_of(st[0]));
  EXPECT_EQ(reqs[1].result.kernel, *chosen_kernel_of(st[1]));
}
