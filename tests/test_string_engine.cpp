// Variable-length string engine tests — the adversarial corpus battery
// pinning the MSD continuation beyond the materialized prefix
// (wide_sort.hpp + key_codec.hpp's offset-codec form):
//   * corpora built to break a prefix-only engine — all-equal keys, keys
//     that are prefixes of each other ("a" < "ab" < "aba"), embedded NUL
//     and 0xFF bytes, empty strings, lengths straddling every word
//     boundary, shared prefixes longer than the materialized words, and
//     segments engineered to recurse >= 3 continuation rounds — each
//     checked byte-identical to std::stable_sort with
//     std::less<std::string>, plus stability on duplicates via rank;
//   * the continuation property — continuation and the PR-5 tie-break
//     ablation (dispatch_policy::wide_continuation = false) produce
//     byte-identical output across dispatch sizes x {serial,
//     num_threads = 4} x {cold, warm pool};
//   * the no-fallback guarantee — sort_stats::wide_tiebreak_fallbacks is
//     0 whenever the continuation runs, even when equal-prefix segments
//     dwarf wide_segment_base_case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/wide_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/random.hpp"

using namespace dovetail;

namespace {

std::uint64_t rnd(std::uint64_t i) {
  return par::hash64(i * 0x51ED2701ull + 29);
}

// Deterministic Fisher-Yates so every corpus arrives unsorted.
void shuffle_strings(std::vector<std::string>& v, std::uint64_t salt = 0) {
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[rnd(i + salt) % i]);
}

// Sort a copy through the front door and demand byte-identity with
// std::stable_sort under std::less<std::string>; then pin stability on
// duplicates through rank (equal keys must keep increasing input
// indices — the sorted strings alone cannot witness it).
void expect_full_lex(const std::vector<std::string>& input,
                     auto_sort_options opt) {
  auto v = input;
  auto ref = input;
  std::stable_sort(ref.begin(), ref.end(), std::less<std::string>{});
  dovetail::sort(std::span<std::string>(v), opt);
  ASSERT_EQ(v, ref);
  const auto perm = dovetail::rank(
      std::span<const std::string>(input.data(), input.size()), opt);
  std::vector<index_t> rperm(input.size());
  for (std::size_t i = 0; i < rperm.size(); ++i) rperm[i] = i;
  std::stable_sort(rperm.begin(), rperm.end(), [&](index_t a, index_t b) {
    return input[a] < input[b];
  });
  ASSERT_EQ(perm, rperm);
}

}  // namespace

TEST(StringEngine, AllEqualKeys) {
  // One giant fully-equal segment, far above the base case: the
  // continuation must recognise "keys end inside the window" and stop
  // with zero comparison fallbacks and the identity permutation.
  const std::vector<std::string> v(30000, std::string(40, 'q'));
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  opt.policy.wide_segment_base_case = 64;
  auto s = v;
  dovetail::sort(std::span<std::string>(s), opt);
  EXPECT_EQ(s, v);
  EXPECT_EQ(st.wide_tiebreak_fallbacks.load(), 0u);
  const auto perm = dovetail::rank(
      std::span<const std::string>(v.data(), v.size()), opt);
  for (std::size_t i = 0; i < perm.size(); ++i) ASSERT_EQ(perm[i], i);
}

TEST(StringEngine, MutualPrefixChains) {
  // Chains where every key is a strict prefix of the next ("a" < "ab" <
  // "aba" < ...): the all-content-bytes-tie case only the count byte can
  // order. 45 chain links x 400 duplicate witnesses each.
  std::string link;
  std::vector<std::string> pool;
  for (int i = 0; i < 45; ++i) {
    pool.push_back(link);
    link += (i % 3 == 0) ? 'a' : (i % 3 == 1) ? 'b' : 'a';
  }
  std::vector<std::string> v;
  for (int rep = 0; rep < 400; ++rep)
    for (const auto& x : pool) v.push_back(x);
  shuffle_strings(v, 1);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.policy.wide_segment_base_case = 64;
  expect_full_lex(v, opt);
}

TEST(StringEngine, EmbeddedNulAndHighBytes) {
  // NUL must sort as a real byte (above end-of-string, below 0x01) and
  // 0xFF as the largest byte, at positions inside, at, and just past
  // every window edge of the 14-byte materialized prefix.
  std::vector<std::string> pool = {"", std::string(1, '\0'),
                                   std::string(2, '\0'), "\x01",
                                   std::string(1, '\xFF')};
  for (const std::size_t at : {std::size_t{0}, std::size_t{6},
                               std::size_t{7}, std::size_t{13},
                               std::size_t{14}, std::size_t{15},
                               std::size_t{27}, std::size_t{28}}) {
    std::string base(at, 'm');
    pool.push_back(base);
    pool.push_back(base + '\0');
    pool.push_back(base + '\0' + "tail");
    pool.push_back(base + '\x01');
    pool.push_back(base + '\xFF');
    pool.push_back(base + std::string("\xFF\xFF", 2));
    pool.push_back(base + 'n');
  }
  std::vector<std::string> v;
  for (int rep = 0; rep < 120; ++rep)
    for (const auto& x : pool) v.push_back(x);
  shuffle_strings(v, 2);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.policy.wide_segment_base_case = 64;
  expect_full_lex(v, opt);
}

TEST(StringEngine, LengthsStraddlingWordBoundaries) {
  // Every length 0..30 of the same repeated byte — covering both the
  // codec's 7-byte window edges (7/14/21/28) and the historical 8-byte
  // edges (7/8/9, 15/16/17, 23/24/25) — plus a diverging last byte per
  // length so content and count both decide somewhere.
  std::vector<std::string> pool;
  for (std::size_t len = 0; len <= 30; ++len) {
    pool.push_back(std::string(len, 'k'));
    if (len > 0) {
      pool.push_back(std::string(len - 1, 'k') + 'j');
      pool.push_back(std::string(len - 1, 'k') + 'l');
      pool.push_back(std::string(len - 1, 'k') + '\0');
    }
  }
  std::vector<std::string> v;
  for (int rep = 0; rep < 80; ++rep)
    for (const auto& x : pool) v.push_back(x);
  shuffle_strings(v, 3);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.policy.wide_segment_base_case = 64;
  expect_full_lex(v, opt);
}

TEST(StringEngine, SharedPrefixLongerThanMaterializedWords) {
  // A 40-byte shared prefix swallows the whole materialized window and
  // two continuation rounds before any byte can discriminate.
  const gen::distribution d{gen::dist_kind::zipfian, 1.2, "Zipf-1.2"};
  const auto v = gen::generate_lcp_string_keys(d, 25000, 21, 40);
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  expect_full_lex(v, opt);             // default base case: comparison finish
  opt.policy.wide_segment_base_case = 64;  // tiny base case: radix recursion
  expect_full_lex(v, opt);
}

TEST(StringEngine, DeepContinuationRecursion) {
  // Engineered depth: a 64-byte common prefix forces the driver through
  // >= 3 continuation rounds (splitting the window-straddling truncated
  // keys out just past the materialized prefix, skip-jumping the shared
  // middle, then splitting where the injective hex tail begins) — and no
  // above-base-case segment may ever reach a comparison sort.
  const gen::distribution d{gen::dist_kind::uniform, 1e7, "Unif-1e7"};
  const auto input = gen::generate_lcp_string_keys(d, 30000, 22, 64);
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  opt.policy.wide_segment_base_case = 64;
  auto v = input;
  auto ref = input;
  std::stable_sort(ref.begin(), ref.end());
  dovetail::sort(std::span<std::string>(v), opt);
  ASSERT_EQ(v, ref);
  EXPECT_GE(st.wide_continuation_rounds.load(), 3u);
  EXPECT_GE(st.wide_continuation_segments.load(), 3u);
  EXPECT_GE(st.wide_max_byte_offset.load(), 56u);
  EXPECT_EQ(st.wide_tiebreak_fallbacks.load(), 0u);
  // The ablation on the same input: identical bytes, and the fallback
  // counter now reports the above-base-case comparison sorts the
  // continuation engine is there to remove.
  opt.policy.wide_continuation = false;
  auto w = input;
  dovetail::sort(std::span<std::string>(w), opt);
  ASSERT_EQ(w, ref);
  EXPECT_GE(st.wide_tiebreak_fallbacks.load(), 1u);
}

TEST(StringEngine, ContinuationMatchesTieBreakAblation) {
  // The continuation property: byte-identical output vs the tie-break
  // ablation (and the std::stable_sort reference) across dispatch sizes
  // x {serial, num_threads = 4} x {cold, warm pool}. The pool loop runs
  // each configuration twice on the same workspace_pool — first pass
  // cold (arenas constructed), second warm (pure reuse).
  const gen::distribution d{gen::dist_kind::exponential, 7, "Exp-7"};
  const std::size_t sizes[] = {0, 1, 2, 5, 100, 513, 4096, 20000};
  for (const std::size_t n : sizes) {
    const auto input = gen::generate_lcp_string_keys(d, n, 23 + n, 24);
    auto ref = input;
    std::stable_sort(ref.begin(), ref.end());
    for (const int threads : {1, 4}) {
      sort_workspace ws;
      workspace_pool pool;
      for (const bool warm : {false, true}) {
        auto_sort_options opt;
        opt.workspace = &ws;
        opt.pool = &pool;
        opt.num_threads = threads;
        opt.policy.wide_segment_base_case = 256;
        auto cont = input;
        opt.policy.wide_continuation = true;
        dovetail::sort(std::span<std::string>(cont), opt);
        auto abl = input;
        opt.policy.wide_continuation = false;
        dovetail::sort(std::span<std::string>(abl), opt);
        ASSERT_EQ(cont, ref) << "continuation n=" << n << " threads="
                             << threads << " warm=" << warm;
        ASSERT_EQ(abl, ref) << "ablation n=" << n << " threads=" << threads
                            << " warm=" << warm;
      }
    }
  }
}

TEST(StringEngine, SortByKeyRoutesThroughContinuation) {
  // The SoA entry point takes the same continuation path and keeps the
  // value array aligned with the stable key permutation.
  const gen::distribution d{gen::dist_kind::uniform, 300, "Unif-300"};
  auto keys = gen::generate_lcp_string_keys(d, 20000, 31, 48);
  std::vector<std::uint32_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<std::uint32_t>(i);
  std::vector<index_t> perm(keys.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return keys[a] < keys[b];
  });
  const auto kref = keys;
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  opt.policy.wide_segment_base_case = 64;
  dovetail::sort_by_key(std::span<std::string>(keys),
                        std::span<std::uint32_t>(vals), opt);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], kref[perm[i]]);
    ASSERT_EQ(vals[i], static_cast<std::uint32_t>(perm[i]));
  }
  EXPECT_EQ(st.wide_tiebreak_fallbacks.load(), 0u);
  EXPECT_GE(st.wide_continuation_rounds.load(), 1u);
}
