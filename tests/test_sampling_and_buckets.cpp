// Tests for the heavy-key sampling scheme and the bucket-id assignment
// table (Alg 2, steps 1 and GetBucketId).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/bucket_table.hpp"
#include "dovetail/core/sampling.hpp"
#include "dovetail/parallel/random.hpp"

using dovetail::bucket_table;
using dovetail::sample_keys;
namespace par = dovetail::par;

namespace {
constexpr auto ident = [](const std::uint64_t& k) { return k; };
}

TEST(Sampling, EmptyInput) {
  std::vector<std::uint64_t> v;
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 100,
                       8, true, 1);
  EXPECT_TRUE(r.heavy_keys.empty());
  EXPECT_EQ(r.num_samples, 0u);
}

TEST(Sampling, DetectsDominantKey) {
  // 60% of records share one key: must be detected for any sane seed.
  const std::size_t n = 100000;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = (i % 10 < 6) ? 777u : par::rand_at(3, i);
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 42ull, 999ull}) {
    auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull,
                         4096, 12, true, seed);
    EXPECT_TRUE(std::find(r.heavy_keys.begin(), r.heavy_keys.end(), 777u) !=
                r.heavy_keys.end())
        << "seed " << seed;
  }
}

TEST(Sampling, DetectsSeveralHeavyKeys) {
  const std::size_t n = 200000;
  std::vector<std::uint64_t> v(n);
  // Keys 10, 20, 30 at ~20% each, rest unique-ish.
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: v[i] = 10; break;
      case 1: v[i] = 20; break;
      case 2: v[i] = 30; break;
      default: v[i] = par::rand_at(5, i) | (1ull << 40);
    }
  }
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 8192,
                       13, true, 7);
  for (std::uint64_t k : {10ull, 20ull, 30ull})
    EXPECT_TRUE(std::find(r.heavy_keys.begin(), r.heavy_keys.end(), k) !=
                r.heavy_keys.end())
        << k;
}

TEST(Sampling, HeavyKeysAreSortedAndUnique) {
  const std::size_t n = 50000;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i % 7;
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 4096,
                       8, true, 11);
  EXPECT_TRUE(std::is_sorted(r.heavy_keys.begin(), r.heavy_keys.end()));
  EXPECT_TRUE(std::adjacent_find(r.heavy_keys.begin(), r.heavy_keys.end()) ==
              r.heavy_keys.end());
  EXPECT_FALSE(r.heavy_keys.empty());  // 7 distinct keys: all heavy
}

TEST(Sampling, HeavyKeysExistInInput) {
  const std::size_t n = 30000;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = par::rand_range(17, i, 50);  // 50 distinct keys
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 2048,
                       8, true, 19);
  for (auto k : r.heavy_keys)
    EXPECT_TRUE(std::find(v.begin(), v.end(), k) != v.end()) << k;
}

TEST(Sampling, MaskIsApplied) {
  std::vector<std::uint64_t> v(1000, 0xFF00FF00FF00FF00ull);
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, 0xFFFFull,
                       256, 4, true, 23);
  EXPECT_EQ(r.max_sample, 0xFF00ull);
}

TEST(Sampling, UniformInputYieldsFewHeavyKeys) {
  const std::size_t n = 100000;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = par::rand_at(29, i);
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 4096,
                       12, true, 31);
  EXPECT_LT(r.heavy_keys.size(), 4u);  // all-distinct keys: none heavy whp
}

TEST(Sampling, DisabledDetectionStillReportsRange) {
  std::vector<std::uint64_t> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i % 1000;
  auto r = sample_keys(std::span<const std::uint64_t>(v), ident, ~0ull, 2048,
                       8, false, 37);
  EXPECT_TRUE(r.heavy_keys.empty());
  EXPECT_GT(r.max_sample, 900u);  // near the true max of 999
  EXPECT_LE(r.max_sample, 999u);
}

// ---------------------------------------------------------------------------

TEST(BucketTable, NoHeavyKeys) {
  bucket_table bt({}, 4, 16);
  EXPECT_EQ(bt.num_buckets(), 17u);  // 16 light + overflow
  EXPECT_EQ(bt.overflow_id(), 16u);
  for (std::size_t z = 0; z < 16; ++z) {
    EXPECT_EQ(bt.light_id(z), z);
    EXPECT_EQ(bt.lookup(z << 4 | 3), z);
  }
}

TEST(BucketTable, HeavyBucketsFollowTheirZoneLight) {
  // zones of 4 bits; heavy keys 0x12, 0x15 (zone 1) and 0x30 (zone 3).
  std::vector<std::uint64_t> heavy = {0x12, 0x15, 0x30};
  bucket_table bt(heavy, 4, 16);
  EXPECT_EQ(bt.num_heavy(), 3u);
  EXPECT_EQ(bt.num_buckets(), 16u + 3u + 1u);
  EXPECT_EQ(bt.light_id(0), 0u);
  EXPECT_EQ(bt.light_id(1), 1u);
  EXPECT_EQ(bt.lookup(0x12), 2u);  // right after zone-1 light
  EXPECT_EQ(bt.lookup(0x15), 3u);  // key order within zone
  EXPECT_EQ(bt.light_id(2), 4u);
  EXPECT_EQ(bt.light_id(3), 5u);
  EXPECT_EQ(bt.lookup(0x30), 6u);
  EXPECT_EQ(bt.light_id(4), 7u);
  // Non-heavy key in a zone with heavy keys maps to the light bucket.
  EXPECT_EQ(bt.lookup(0x13), 1u);
  EXPECT_EQ(bt.overflow_id(), 19u);  // 16 light + 3 heavy
}

TEST(BucketTable, ZoneOrderInvariant) {
  // Bucket ids are NOT monotone in raw key order — within a zone, the light
  // bucket always precedes the heavy buckets (the final key-order
  // interleaving is DTMerge's job). The invariants are:
  //   (a) ids ascend strictly with the zone,
  //   (b) within a zone, light id < every heavy id,
  //   (c) heavy ids within a zone ascend with the heavy key.
  std::vector<std::uint64_t> heavy = {5, 100, 101, 250};
  bucket_table bt(heavy, 4, 16);
  for (std::uint64_t k = 0; k < 256; ++k) {
    const std::uint64_t z = k >> 4;
    const std::uint32_t id = bt.lookup(k);
    // (a): every id of zone z lies before zone z+1's light id.
    if (z + 1 < 16) EXPECT_LT(id, bt.light_id(z + 1)) << k;
    // (b): any key's id is at least its zone's light id.
    EXPECT_GE(id, bt.light_id(z)) << k;
  }
  // (b) strict for heavy keys; (c) ascending within zone 6 (100, 101).
  EXPECT_GT(bt.lookup(5), bt.light_id(0));
  EXPECT_GT(bt.lookup(100), bt.light_id(6));
  EXPECT_EQ(bt.lookup(101), bt.lookup(100) + 1);
}

TEST(BucketTable, ManyHeavyKeysHashTableProbing) {
  // Enough heavy keys to force probing collisions.
  std::vector<std::uint64_t> heavy;
  for (std::uint64_t k = 0; k < 512; k += 2) heavy.push_back(k);
  bucket_table bt(heavy, 5, 16);  // zones of 32 keys
  for (std::uint64_t k = 0; k < 512; ++k) {
    if (k % 2 == 0) {
      // heavy: not the light bucket
      EXPECT_NE(bt.lookup(k), bt.light_id(k >> 5)) << k;
    } else {
      EXPECT_EQ(bt.lookup(k), bt.light_id(k >> 5)) << k;
    }
  }
}

TEST(BucketTable, ShiftZeroSingleZone) {
  bucket_table bt({}, 0, 1);
  EXPECT_EQ(bt.num_buckets(), 2u);
  EXPECT_EQ(bt.lookup(0), 0u);
}
