// Property tests for every built-in key codec (core/key_codec.hpp):
//   * order preservation — a < b  ⇔  encode(a) < encode(b), checked
//     exhaustively on small domains (all of int8/int16, the full 2^16
//     pair<uint8, int8> composite domain) and by randomized sweeps on the
//     wide ones, with the documented edge cases pinned explicitly:
//     INT_MIN/INT_MAX, ±0.0 (distinct encodings, -0.0 first), subnormals,
//     ±infinity, and the NaN policy (sign-split totalOrder ends);
//   * exact round trip — decode(encode(k)) == k bit-for-bit (NaN payloads
//     included) and encode(decode(e)) == e on random encodings;
//   * composite packing — lexicographic order, smallest-fitting encoded_t,
//     nesting. (Composites beyond 64 bits become multi-word codecs; their
//     contracts live in tests/test_wide_sort.cpp.)
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "dovetail/core/key_codec.hpp"
#include "dovetail/parallel/random.hpp"

using namespace dovetail;

namespace {

// Deterministic pseudo-random 64-bit stream for the sweeps.
std::uint64_t rnd(std::uint64_t i) { return par::hash64(i * 0x9E3779B9ull + 7); }

template <typename K>
void expect_order_iff(const K& a, const K& b) {
  const auto ea = key_codec<K>::encode(a);
  const auto eb = key_codec<K>::encode(b);
  EXPECT_EQ(a < b, ea < eb);
  EXPECT_EQ(b < a, eb < ea);
  EXPECT_EQ(a == b, ea == eb);
}

template <typename K>
void expect_round_trip(const K& k) {
  EXPECT_EQ(key_codec<K>::decode(key_codec<K>::encode(k)), k);
}

}  // namespace

// ---------------------------------------------------------------------------
// Static contract: encoded types, kinds, cheapness.

static_assert(std::is_same_v<key_codec<std::uint32_t>::encoded_t,
                             std::uint32_t>);
static_assert(std::is_same_v<key_codec<std::int32_t>::encoded_t,
                             std::uint32_t>);
static_assert(std::is_same_v<key_codec<std::int8_t>::encoded_t,
                             std::uint8_t>);
static_assert(std::is_same_v<key_codec<float>::encoded_t, std::uint32_t>);
static_assert(std::is_same_v<key_codec<double>::encoded_t, std::uint64_t>);
static_assert(std::is_same_v<
              key_codec<std::pair<std::uint32_t, std::uint32_t>>::encoded_t,
              std::uint64_t>);
// Composites pack into the smallest fitting unsigned type.
static_assert(std::is_same_v<
              key_codec<std::pair<std::uint8_t, std::int8_t>>::encoded_t,
              std::uint16_t>);
static_assert(
    std::is_same_v<key_codec<std::tuple<std::uint16_t, std::int16_t,
                                        std::uint8_t>>::encoded_t,
                   std::uint64_t>);  // 40 bits -> u64
// Nested composites compose as long as the bits fit.
static_assert(std::is_same_v<
              key_codec<std::pair<std::pair<std::uint8_t, std::uint8_t>,
                                  std::uint16_t>>::encoded_t,
              std::uint32_t>);
// Nesting is budgeted by LOGICAL width, not container width: a 40-bit
// tuple (in a u64 container) nested next to a u16 is 56 bits — it fits.
using nested56 = std::pair<
    std::tuple<std::uint16_t, std::uint16_t, std::uint8_t>, std::uint16_t>;
static_assert(codec_traits<nested56>::encoded_bits == 56);
static_assert(std::is_same_v<key_codec<nested56>::encoded_t, std::uint64_t>);
static_assert(
    codec_traits<std::tuple<std::uint16_t, std::int16_t,
                            std::uint8_t>>::encoded_bits == 40);
static_assert(codec_traits<std::uint64_t>::identity);
static_assert(codec_traits<float>::cheap);
static_assert(codec_traits<std::pair<float, std::int32_t>>::cheap);
static_assert(codec_traits<std::int64_t>::kind == codec_kind::sign_flip);
// Detection: a type with no key_codec specialization is rejected by the
// concept (not a hard error). A composite that HAS a specialization but
// does not fit 64 bits drops out of sortable_key and becomes a multi-word
// codec instead — see the static_asserts at the bottom of this file.
static_assert(!sortable_key<std::vector<int>>);

// ---------------------------------------------------------------------------
// Signed integers.

TEST(KeyCodecSigned, ExhaustiveInt8) {
  // Monotone over the whole ordered domain ⇒ order preservation for every
  // pair (transitivity), plus exact round trip for every value.
  for (int v = -128; v <= 127; ++v) {
    const auto k = static_cast<std::int8_t>(v);
    expect_round_trip(k);
    if (v > -128)
      EXPECT_LT(key_codec<std::int8_t>::encode(static_cast<std::int8_t>(v - 1)),
                key_codec<std::int8_t>::encode(k));
  }
}

TEST(KeyCodecSigned, ExhaustiveInt16) {
  for (int v = -32768; v <= 32767; ++v) {
    const auto k = static_cast<std::int16_t>(v);
    ASSERT_EQ(key_codec<std::int16_t>::decode(
                  key_codec<std::int16_t>::encode(k)),
              k);
    if (v > -32768)
      ASSERT_LT(
          key_codec<std::int16_t>::encode(static_cast<std::int16_t>(v - 1)),
          key_codec<std::int16_t>::encode(k));
  }
}

TEST(KeyCodecSigned, EdgesAndRandomSweep3264) {
  const std::int32_t edges32[] = {std::numeric_limits<std::int32_t>::min(),
                                  std::numeric_limits<std::int32_t>::min() + 1,
                                  -1, 0, 1,
                                  std::numeric_limits<std::int32_t>::max()};
  for (const auto a : edges32)
    for (const auto b : edges32) {
      expect_order_iff(a, b);
      expect_round_trip(a);
    }
  EXPECT_EQ(key_codec<std::int32_t>::encode(
                std::numeric_limits<std::int32_t>::min()),
            0u);  // INT_MIN is the smallest encoding
  const std::int64_t edges64[] = {std::numeric_limits<std::int64_t>::min(),
                                  -1, 0, 1,
                                  std::numeric_limits<std::int64_t>::max()};
  for (const auto a : edges64)
    for (const auto b : edges64) expect_order_iff(a, b);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto a32 = static_cast<std::int32_t>(rnd(2 * i));
    const auto b32 = static_cast<std::int32_t>(rnd(2 * i + 1));
    expect_order_iff(a32, b32);
    expect_round_trip(a32);
    const auto a64 = static_cast<std::int64_t>(rnd(i) * rnd(i + 1));
    const auto b64 = static_cast<std::int64_t>(rnd(i + 2) >> (i % 63));
    expect_order_iff(a64, b64);
    expect_round_trip(a64);
  }
}

// ---------------------------------------------------------------------------
// Floats: total order, ±0.0, subnormals, infinities, NaN policy, bit-exact
// round trip.

template <typename F>
void float_edge_order() {
  using lim = std::numeric_limits<F>;
  // Strictly increasing under the encoding (not all comparable via
  // operator<): the documented total order.
  const F ordered[] = {
      -lim::infinity(), -lim::max(), F(-1.5), F(-1.0), -lim::min(),
      -lim::denorm_min(),  // negative subnormal closest to zero
      F(-0.0), F(0.0), lim::denorm_min(), lim::min(), F(1.0), F(1.5),
      lim::max(), lim::infinity()};
  for (std::size_t i = 1; i < std::size(ordered); ++i)
    EXPECT_LT(key_codec<F>::encode(ordered[i - 1]),
              key_codec<F>::encode(ordered[i]))
        << "at " << i;
  // operator< agreement for values that are not the two zeros.
  for (std::size_t i = 0; i < std::size(ordered); ++i)
    for (std::size_t j = 0; j < std::size(ordered); ++j) {
      if (ordered[i] == ordered[j]) continue;  // skips -0.0 vs +0.0
      EXPECT_EQ(ordered[i] < ordered[j],
                key_codec<F>::encode(ordered[i]) <
                    key_codec<F>::encode(ordered[j]));
    }
  // NaN policy: +NaN above +inf, -NaN below -inf; never via operator<.
  const F qnan = lim::quiet_NaN();
  const F nnan = -lim::quiet_NaN();
  EXPECT_GT(key_codec<F>::encode(qnan),
            key_codec<F>::encode(lim::infinity()));
  EXPECT_LT(key_codec<F>::encode(nnan),
            key_codec<F>::encode(-lim::infinity()));
  // Round trips are bit-exact, NaN payloads and -0.0 included.
  using bits_t = typename key_codec<F>::encoded_t;
  for (const F v : {qnan, nnan, F(-0.0), F(0.0), lim::denorm_min()})
    EXPECT_EQ(std::bit_cast<bits_t>(key_codec<F>::decode(
                  key_codec<F>::encode(v))),
              std::bit_cast<bits_t>(v));
}

TEST(KeyCodecFloat, EdgeOrderAndNanPolicyFloat) { float_edge_order<float>(); }
TEST(KeyCodecFloat, EdgeOrderAndNanPolicyDouble) {
  float_edge_order<double>();
}

TEST(KeyCodecFloat, RandomBitPatternBijection) {
  // encode/decode are mutually inverse bijections on raw bit patterns —
  // including patterns that happen to be NaNs or infinities.
  for (std::uint64_t i = 0; i < 50000; ++i) {
    const auto e32 = static_cast<std::uint32_t>(rnd(i));
    EXPECT_EQ(key_codec<float>::encode(key_codec<float>::decode(e32)), e32);
    const std::uint64_t e64 = rnd(i ^ 0xF00Dull);
    EXPECT_EQ(key_codec<double>::encode(key_codec<double>::decode(e64)),
              e64);
    const float f = key_codec<float>::decode(e32);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(
                  key_codec<float>::decode(key_codec<float>::encode(f))),
              std::bit_cast<std::uint32_t>(f));
  }
}

TEST(KeyCodecFloat, RandomFiniteOrderSweep) {
  for (std::uint64_t i = 0; i < 30000; ++i) {
    // Finite floats across the exponent range, subnormals included.
    auto b1 = static_cast<std::uint32_t>(rnd(3 * i));
    auto b2 = static_cast<std::uint32_t>(rnd(3 * i + 1));
    if (((b1 >> 23) & 0xFFu) == 0xFFu) b1 &= ~(std::uint32_t{1} << 30);
    if (((b2 >> 23) & 0xFFu) == 0xFFu) b2 &= ~(std::uint32_t{1} << 30);
    const auto f1 = std::bit_cast<float>(b1);
    const auto f2 = std::bit_cast<float>(b2);
    expect_order_iff(f1, f2);
  }
}

// ---------------------------------------------------------------------------
// Composites.

TEST(KeyCodecComposite, ExhaustivePairU8I8) {
  // The full 2^16 domain: encoded order must equal lexicographic order
  // (std::pair's operator<), and the encoding must be injective.
  using P = std::pair<std::uint8_t, std::int8_t>;
  std::vector<P> all;
  all.reserve(1 << 16);
  for (int a = 0; a < 256; ++a)
    for (int b = -128; b <= 127; ++b)
      all.push_back({static_cast<std::uint8_t>(a),
                     static_cast<std::int8_t>(b)});
  std::sort(all.begin(), all.end());  // lexicographic reference order
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(key_codec<P>::decode(key_codec<P>::encode(all[i])), all[i]);
    if (i > 0)
      ASSERT_LT(key_codec<P>::encode(all[i - 1]),
                key_codec<P>::encode(all[i]));
  }
}

TEST(KeyCodecComposite, PairU32Lexicographic) {
  using P = std::pair<std::uint32_t, std::uint32_t>;
  const std::uint32_t edges[] = {0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                 0xFFFFFFFFu};
  std::vector<P> keys;
  for (const auto a : edges)
    for (const auto b : edges) keys.push_back({a, b});
  for (std::uint64_t i = 0; i < 20000; ++i)
    keys.push_back({static_cast<std::uint32_t>(rnd(2 * i)),
                    static_cast<std::uint32_t>(rnd(2 * i + 1))});
  for (std::size_t i = 0; i + 1 < keys.size(); i += 2) {
    expect_order_iff(keys[i], keys[i + 1]);
    expect_round_trip(keys[i]);
  }
  // High word dominates; ties break on the low word.
  EXPECT_LT(key_codec<P>::encode({1, 0xFFFFFFFFu}),
            key_codec<P>::encode({2, 0}));
  EXPECT_LT(key_codec<P>::encode({2, 3}), key_codec<P>::encode({2, 4}));
}

TEST(KeyCodecComposite, MixedTupleAndNesting) {
  using T = std::tuple<std::uint16_t, std::int16_t, std::uint8_t>;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const T a{static_cast<std::uint16_t>(rnd(5 * i)),
              static_cast<std::int16_t>(rnd(5 * i + 1)),
              static_cast<std::uint8_t>(rnd(5 * i + 2))};
    const T b{static_cast<std::uint16_t>(rnd(5 * i + 3) & 0x3),
              static_cast<std::int16_t>(rnd(5 * i + 4)),
              static_cast<std::uint8_t>(i)};
    expect_order_iff(a, b);
    expect_round_trip(a);
  }
  // float components participate lexicographically (finite values).
  using FP = std::pair<float, std::int32_t>;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    auto fb = static_cast<std::uint32_t>(rnd(7 * i));
    if (((fb >> 23) & 0xFFu) == 0xFFu) fb &= ~(std::uint32_t{1} << 30);
    const FP a{std::bit_cast<float>(fb), static_cast<std::int32_t>(rnd(i))};
    const FP b{std::bit_cast<float>(fb) * 0.5f,
               static_cast<std::int32_t>(rnd(i + 1))};
    expect_order_iff(a, b);
    expect_round_trip(a);
  }
  // Nesting: pair<pair<u8,u8>,u16> behaves like the flat 32-bit triple.
  using N = std::pair<std::pair<std::uint8_t, std::uint8_t>, std::uint16_t>;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const N a{{static_cast<std::uint8_t>(rnd(9 * i)),
               static_cast<std::uint8_t>(rnd(9 * i + 1))},
              static_cast<std::uint16_t>(rnd(9 * i + 2))};
    const N b{{static_cast<std::uint8_t>(rnd(9 * i + 3)),
               static_cast<std::uint8_t>(rnd(9 * i + 4))},
              static_cast<std::uint16_t>(rnd(9 * i + 5))};
    expect_order_iff(a, b);
    expect_round_trip(a);
  }
  // Logical-width nesting: the 56-bit nested56 shape (40-bit tuple in a
  // u64 container + u16) orders and round-trips like its flat lexicographic
  // reading.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const nested56 a{{static_cast<std::uint16_t>(rnd(11 * i)),
                      static_cast<std::uint16_t>(rnd(11 * i + 1)),
                      static_cast<std::uint8_t>(rnd(11 * i + 2))},
                     static_cast<std::uint16_t>(rnd(11 * i + 3))};
    const nested56 b{{static_cast<std::uint16_t>(rnd(11 * i + 4)),
                      static_cast<std::uint16_t>(rnd(11 * i)),
                      static_cast<std::uint8_t>(rnd(11 * i + 5))},
                     static_cast<std::uint16_t>(rnd(11 * i + 6))};
    expect_order_iff(a, b);
    expect_round_trip(a);
  }
}

// Composites needing more than 64 encoded bits — pair<u64, u64>,
// tuple<u8, float, double> (104 bits), ... — are no longer a compile-time
// dead-end: they become MULTI-WORD codecs (encoded_words / encode_word)
// and sort through the wide refine driver. Their word contracts and the
// remaining genuinely-unencodable static_assert (variable-length
// components inside a composite) are covered by tests/test_wide_sort.cpp.
static_assert(!sortable_key<std::pair<std::uint64_t, std::uint64_t>>);
static_assert(wide_sortable_key<std::pair<std::uint64_t, std::uint64_t>>);
static_assert(
    key_codec<std::pair<std::uint64_t, std::uint64_t>>::encoded_words == 2);
