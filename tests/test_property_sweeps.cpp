// Cross-algorithm property sweeps: every algorithm in the registry, on
// every distribution family, at several sizes, for 32- and 64-bit keys:
//   * output is sorted by key,
//   * output is a permutation of the input (multiset fingerprint),
//   * stable algorithms keep input order within equal keys,
//   * all algorithms agree with each other on the key sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/algorithms.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

const std::vector<gen::distribution>& sweep_distributions() {
  static const std::vector<gen::distribution> d = {
      {gen::dist_kind::uniform, 1e9, "Unif-1e9"},
      {gen::dist_kind::uniform, 1e3, "Unif-1e3"},
      {gen::dist_kind::uniform, 10, "Unif-10"},
      {gen::dist_kind::exponential, 1, "Exp-1"},
      {gen::dist_kind::exponential, 10, "Exp-10"},
      {gen::dist_kind::zipfian, 0.6, "Zipf-0.6"},
      {gen::dist_kind::zipfian, 1.5, "Zipf-1.5"},
      {gen::dist_kind::bexp, 10, "BExp-10"},
      {gen::dist_kind::bexp, 300, "BExp-300"},
  };
  return d;
}

struct sweep_param {
  algo a;
  std::size_t dist_index;
  std::size_t n;
};

std::string param_name(const ::testing::TestParamInfo<sweep_param>& info) {
  const auto& p = info.param;
  std::string d = sweep_distributions()[p.dist_index].name;
  for (auto& ch : d)
    if (ch == '-' || ch == '.') ch = '_';
  return std::string(algo_name(p.a)) + "_" + d + "_n" + std::to_string(p.n);
}

std::vector<sweep_param> make_params() {
  std::vector<sweep_param> out;
  for (algo a : all_parallel_algos())
    for (std::size_t di = 0; di < sweep_distributions().size(); ++di)
      for (std::size_t n : {1000ul, 100000ul})
        out.push_back({a, di, n});
  return out;
}

}  // namespace

class AlgoSweep32 : public ::testing::TestWithParam<sweep_param> {};
class AlgoSweep64 : public ::testing::TestWithParam<sweep_param> {};

INSTANTIATE_TEST_SUITE_P(All, AlgoSweep32, ::testing::ValuesIn(make_params()),
                         param_name);
INSTANTIATE_TEST_SUITE_P(All, AlgoSweep64, ::testing::ValuesIn(make_params()),
                         param_name);

TEST_P(AlgoSweep32, SortedPermutationAndStability) {
  const auto& p = GetParam();
  const auto& d = sweep_distributions()[p.dist_index];
  auto v = gen::generate_records<kv32>(d, p.n, 77 + p.dist_index);
  const auto fingerprint =
      dtt::multiset_hash(std::span<const kv32>(v), key_of_kv32);
  run_sorter(p.a, std::span<kv32>(v), key_of_kv32);
  ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  ASSERT_EQ(dtt::multiset_hash(std::span<const kv32>(v), key_of_kv32),
            fingerprint);
  if (algo_is_stable(p.a)) {
    ASSERT_TRUE(dtt::stable_by_index_value(std::span<const kv32>(v),
                                           key_of_kv32));
  }
}

TEST_P(AlgoSweep64, SortedPermutationAndStability) {
  const auto& p = GetParam();
  const auto& d = sweep_distributions()[p.dist_index];
  auto v = gen::generate_records<kv64>(d, p.n, 177 + p.dist_index);
  const auto fingerprint =
      dtt::multiset_hash(std::span<const kv64>(v), key_of_kv64);
  run_sorter(p.a, std::span<kv64>(v), key_of_kv64);
  ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv64>(v), key_of_kv64));
  ASSERT_EQ(dtt::multiset_hash(std::span<const kv64>(v), key_of_kv64),
            fingerprint);
  if (algo_is_stable(p.a)) {
    ASSERT_TRUE(dtt::stable_by_index_value(std::span<const kv64>(v),
                                           key_of_kv64));
  }
}

// All algorithms must produce the same key sequence on the same input.
TEST(AlgoAgreement, AllAlgorithmsAgreeOnKeys32) {
  for (const auto& d : sweep_distributions()) {
    auto base = gen::generate_records<kv32>(d, 50000, 301);
    std::vector<std::uint32_t> reference;
    for (algo a : all_parallel_algos()) {
      auto v = base;
      run_sorter(a, std::span<kv32>(v), key_of_kv32);
      std::vector<std::uint32_t> keys(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) keys[i] = v[i].key;
      if (reference.empty())
        reference = keys;
      else
        ASSERT_EQ(keys, reference)
            << algo_name(a) << " disagrees on " << d.name;
    }
  }
}

TEST(AlgoAgreement, StableAlgorithmsFullyAgree64) {
  for (const auto& d : sweep_distributions()) {
    auto base = gen::generate_records<kv64>(d, 50000, 303);
    std::vector<kv64> reference;
    for (algo a : {algo::dtsort, algo::plis, algo::lsd, algo::ips4o,
                   algo::std_stable}) {
      auto v = base;
      run_sorter(a, std::span<kv64>(v), key_of_kv64);
      if (reference.empty())
        reference = v;
      else
        ASSERT_TRUE(std::equal(v.begin(), v.end(), reference.begin()))
            << algo_name(a) << " disagrees on " << d.name;
    }
  }
}
