// End-to-end integration tests: full pipelines combining generators, the
// sorters, and the applications, plus thread-count robustness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "dovetail/apps/graph.hpp"
#include "dovetail/apps/morton.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/graphs.hpp"
#include "dovetail/generators/points.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/algorithms.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {
constexpr auto dt_sorter = [](auto span, auto key) {
  dovetail_sort(span, key);
};
}

TEST(Integration, TransposePipelineAcrossAllSorters) {
  const std::uint32_t V = 1500;
  auto edges = gen::powerlaw_graph(V, 40000, 1.1, 501);
  auto g = app::build_csr(V, edges, dt_sorter);
  app::csr_graph ref = app::transpose(g, [](auto span, auto key) {
    run_sorter(algo::std_stable, span, key);
  });
  for (algo a : {algo::dtsort, algo::plis, algo::lsd, algo::ips4o}) {
    auto gt = app::transpose(g, [a](auto span, auto key) {
      run_sorter(a, span, key);
    });
    ASSERT_EQ(gt.offsets, ref.offsets) << algo_name(a);
    ASSERT_EQ(gt.targets, ref.targets) << algo_name(a);
  }
}

TEST(Integration, MortonPipelineAcrossStableSorters) {
  auto pts = gen::varden_points_2d(30000, 32, 16, 502);
  auto ref = app::morton_sort_2d(std::span<const app::point2d>(pts),
                                 [](auto span, auto key) {
                                   run_sorter(algo::std_stable, span, key);
                                 });
  for (algo a : {algo::dtsort, algo::plis, algo::lsd, algo::ips4o}) {
    auto got = app::morton_sort_2d(std::span<const app::point2d>(pts),
                                   [a](auto span, auto key) {
                                     run_sorter(a, span, key);
                                   });
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], ref[i]) << algo_name(a) << " at " << i;
  }
}

TEST(Integration, DuplicateHistogramViaSort) {
  // Frequency counting via sort + scan over runs — a semisort-style use.
  auto keys = gen::generate_keys<std::uint32_t>(
      {gen::dist_kind::zipfian, 1.3, "z"}, 200000, 503);
  std::map<std::uint32_t, std::size_t> expect;
  for (auto k : keys) ++expect[k];
  dovetail_sort(std::span<std::uint32_t>(keys));
  std::map<std::uint32_t, std::size_t> got;
  std::size_t i = 0;
  while (i < keys.size()) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    got[keys[i]] = j - i;
    i = j;
  }
  EXPECT_EQ(got, expect);
}

TEST(Integration, SingleThreadMatchesMultiThread) {
  auto base = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.2, "z"},
                                          120000, 504);
  auto multi = base;
  dovetail_sort(std::span<kv32>(multi), key_of_kv32);

  par::scheduler::set_num_workers(1);
  auto single = base;
  dovetail_sort(std::span<kv32>(single), key_of_kv32);
  par::scheduler::set_num_workers(par::scheduler::default_num_workers());

  EXPECT_TRUE(std::equal(multi.begin(), multi.end(), single.begin()));
}

TEST(Integration, RepeatedSortsReuseScheduler) {
  for (int round = 0; round < 10; ++round) {
    auto v = gen::generate_records<kv32>(
        {gen::dist_kind::exponential, 5, "e"}, 50000,
        600 + static_cast<std::uint64_t>(round));
    dovetail_sort(std::span<kv32>(v), key_of_kv32);
    ASSERT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
    ASSERT_TRUE(
        dtt::stable_by_index_value(std::span<const kv32>(v), key_of_kv32));
  }
}

TEST(Integration, SortingSortedOutputIsIdempotent) {
  auto v = gen::generate_records<kv64>({gen::dist_kind::zipfian, 1.0, "z"},
                                       80000, 505);
  dovetail_sort(std::span<kv64>(v), key_of_kv64);
  auto once = v;
  dovetail_sort(std::span<kv64>(v), key_of_kv64);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), once.begin()));
}

TEST(Integration, MixedPipelineTransposeOfMortonBuckets) {
  // Exercise both apps in one flow: bucket points by coarse Morton cell,
  // build a cell-adjacency graph, transpose it.
  auto pts = gen::varden_points_2d(20000, 16, 16, 506);
  std::vector<app::edge> edges(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::uint32_t cell =
        app::morton2d_32(pts[i].x, pts[i].y) >> 24;  // 256 cells
    edges[i] = {static_cast<std::uint32_t>(i % 256), cell};
  }
  auto g = app::build_csr(256, edges, dt_sorter);
  auto gt = app::transpose(g, dt_sorter);
  EXPECT_EQ(gt.num_edges(), edges.size());
  auto gtt = app::transpose(gt, dt_sorter);
  EXPECT_EQ(gtt.num_edges(), edges.size());
}
