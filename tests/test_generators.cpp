// Sanity tests for the synthetic distribution, graph, and point generators:
// determinism, ranges, and the statistical properties the experiments rely
// on (duplicate structure / skew).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "dovetail/generators/graphs.hpp"
#include "dovetail/generators/points.hpp"
#include "dovetail/generators/synthetic.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

TEST(Generators, Deterministic) {
  gen::distribution d{gen::dist_kind::zipfian, 1.2, "z"};
  auto a = gen::generate_keys<std::uint32_t>(d, 10000, 5);
  auto b = gen::generate_keys<std::uint32_t>(d, 10000, 5);
  EXPECT_EQ(a, b);
  auto c = gen::generate_keys<std::uint32_t>(d, 10000, 6);
  EXPECT_NE(a, c);
}

TEST(Generators, UniformDistinctCountApproximatelyMu) {
  for (double mu : {10.0, 1000.0}) {
    auto keys = gen::generate_keys<std::uint32_t>(
        {gen::dist_kind::uniform, mu, "u"}, 100000, 7);
    std::unordered_set<std::uint32_t> distinct(keys.begin(), keys.end());
    EXPECT_LE(distinct.size(), static_cast<std::size_t>(mu) + 1);
    EXPECT_GE(distinct.size(), static_cast<std::size_t>(mu * 0.9));
  }
}

TEST(Generators, UniformLargeMuNearlyAllDistinct) {
  auto keys = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::uniform, 1e9, "u"}, 100000, 8);
  std::unordered_set<std::uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_GT(distinct.size(), 99000u);
}

TEST(Generators, ExponentialHeavierWithLargerLambda) {
  auto count_distinct = [](double lambda) {
    auto keys = gen::generate_keys<std::uint32_t>(
        {gen::dist_kind::exponential, lambda, "e"}, 200000, 9);
    return std::unordered_set<std::uint32_t>(keys.begin(), keys.end()).size();
  };
  // Larger lambda => fewer distinct keys (more duplicates).
  EXPECT_GT(count_distinct(1), count_distinct(10));
}

TEST(Generators, ZipfTopKeyFrequencyGrowsWithS) {
  auto top_freq = [](double s) {
    auto keys = gen::generate_keys<std::uint32_t>(
        {gen::dist_kind::zipfian, s, "z"}, 200000, 10);
    std::map<std::uint32_t, std::size_t> freq;
    for (auto k : keys) ++freq[k];
    std::size_t best = 0;
    for (auto& [k, c] : freq) best = std::max(best, c);
    return best;
  };
  const auto f06 = top_freq(0.6);
  const auto f15 = top_freq(1.5);
  EXPECT_GT(f15, 4 * f06);
}

TEST(Generators, BExpBitDensityMatchesT) {
  // With parameter t the probability of a 0 bit is 1/t.
  for (double t : {10.0, 100.0}) {
    auto keys = gen::generate_keys<std::uint32_t>(
        {gen::dist_kind::bexp, t, "b"}, 50000, 11);
    std::size_t zeros = 0, total = 0;
    for (auto k : keys) {
      zeros += 32 - static_cast<std::size_t>(std::popcount(k));
      total += 32;
    }
    const double ratio = static_cast<double>(zeros) / static_cast<double>(total);
    EXPECT_NEAR(ratio, 1.0 / t, 0.15 / t) << "t=" << t;
  }
}

TEST(Generators, BExp64BitAlsoCovered) {
  auto keys = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::bexp, 30, "b"}, 20000, 12);
  std::size_t zeros = 0;
  for (auto k : keys) zeros += 64 - static_cast<std::size_t>(std::popcount(k));
  const double ratio =
      static_cast<double>(zeros) / (64.0 * static_cast<double>(keys.size()));
  EXPECT_NEAR(ratio, 1.0 / 30, 0.01);
}

TEST(Generators, PaperDistributionListShape) {
  auto all = gen::paper_distributions();
  ASSERT_EQ(all.size(), 20u);
  EXPECT_EQ(all[0].name, "Unif-1e9");
  EXPECT_EQ(all[19].name, "BExp-300");
  auto std15 = gen::standard_distributions();
  ASSERT_EQ(std15.size(), 15u);
  EXPECT_EQ(std15.back().name, "Zipf-1.5");
}

// ---------------------------------------------------------------------------

TEST(GraphGenerators, EdgesInRange) {
  const std::uint32_t V = 1000;
  for (auto edges : {gen::powerlaw_graph(V, 20000, 1.1),
                     gen::uniform_graph(V, 20000), gen::knn_graph(V, 8)}) {
    for (const auto& e : edges) {
      ASSERT_LT(e.src, V);
      ASSERT_LT(e.dst, V);
    }
  }
}

TEST(GraphGenerators, PowerlawInDegreeIsSkewed) {
  const std::uint32_t V = 10000;
  auto edges = gen::powerlaw_graph(V, 200000, 1.2, 99);
  std::vector<std::size_t> indeg(V, 0);
  for (const auto& e : edges) ++indeg[e.dst];
  const std::size_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_GT(max_in, 200000 / V * 50);  // far above the average degree
}

TEST(GraphGenerators, KnnInDegreeIsEven) {
  const std::uint32_t V = 5000, deg = 10;
  auto edges = gen::knn_graph(V, deg, 100);
  std::vector<std::size_t> indeg(V, 0);
  for (const auto& e : edges) ++indeg[e.dst];
  const std::size_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_LT(max_in, 5 * deg);  // concentrated near the average
}

// ---------------------------------------------------------------------------

TEST(PointGenerators, CoordinatesWithinBits) {
  auto pts = gen::uniform_points_2d(20000, 16, 101);
  for (const auto& p : pts) {
    ASSERT_LT(p.x, 1u << 16);
    ASSERT_LT(p.y, 1u << 16);
  }
  auto v = gen::varden_points_2d(20000, 64, 16, 102);
  for (const auto& p : v) {
    ASSERT_LT(p.x, 1u << 16);
    ASSERT_LT(p.y, 1u << 16);
  }
}

TEST(PointGenerators, VardenIsMoreClusteredThanUniform) {
  // Compare the number of distinct coarse grid cells hit: clustered points
  // occupy far fewer cells.
  auto cells = [](const std::vector<app::point2d>& pts) {
    std::unordered_set<std::uint32_t> s;
    for (const auto& p : pts) s.insert((p.x >> 10) << 6 | (p.y >> 10));
    return s.size();
  };
  auto u = gen::uniform_points_2d(50000, 16, 103);
  auto v = gen::varden_points_2d(50000, 32, 16, 104);
  EXPECT_GT(cells(u), 2 * cells(v));
}

TEST(PointGenerators, Varden3dInRange) {
  auto pts = gen::varden_points_3d(20000, 32, 21, 105);
  for (const auto& p : pts) {
    ASSERT_LT(p.x, 1u << 21);
    ASSERT_LT(p.y, 1u << 21);
    ASSERT_LT(p.z, 1u << 21);
  }
}
