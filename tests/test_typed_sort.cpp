// The typed front door (core/auto_sort.hpp + core/key_codec.hpp):
//   * dovetail::sort cross-checked against std::stable_sort (encoded-key
//     comparator, exact record equality) for int32_t, int64_t, float,
//     double and pair<uint32_t, uint32_t> keys — the acceptance matrix —
//     over duplicate-heavy distributions with edge values injected, across
//     sizes that exercise every dispatch branch;
//   * plain typed spans, including std::pair elements (the non-trivially-
//     copyable encode-once path) and NaN-bearing float spans;
//   * sort_by_key: stability, SoA key/value agreement with the equivalent
//     AoS sort, size-mismatch error;
//   * rank: exactly the stable permutation, input never mutated;
//   * warm-workspace reuse: repeated sort / sort_by_key / rank through one
//     workspace reach a zero-fresh-allocation steady state (the
//     test_workspace.cpp property, extended to the new entry points);
//   * entry-point/codec stats snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

template <typename K>
std::uint64_t enc(const K& k) {
  return static_cast<std::uint64_t>(key_codec<K>::encode(k));
}

// The stable reference: std::stable_sort by the encoded key (NaN-safe,
// -0.0/-+0.0 ordered like the kernels order them).
template <typename T>
std::vector<tkv<T>> stable_reference(std::vector<tkv<T>> v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const tkv<T>& a, const tkv<T>& b) {
                     return enc(a.key) < enc(b.key);
                   });
  return v;
}

template <typename T>
void expect_exact(const std::vector<tkv<T>>& got,
                  const std::vector<tkv<T>>& ref) {
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(enc(got[i].key), enc(ref[i].key)) << "key at " << i;
    ASSERT_EQ(got[i].value, ref[i].value) << "stability at " << i;
  }
}

// Typed edge values worth injecting into every run.
template <typename T>
std::vector<T> edge_keys() {
  if constexpr (std::is_integral_v<T>) {
    return {std::numeric_limits<T>::min(), T(-1), T(0), T(1),
            std::numeric_limits<T>::max()};
  } else {
    return {-std::numeric_limits<T>::infinity(),
            std::numeric_limits<T>::lowest(), T(-0.0), T(0.0),
            std::numeric_limits<T>::denorm_min(),
            std::numeric_limits<T>::infinity()};
  }
}

template <typename T>
std::vector<tkv<T>> typed_input(const gen::distribution& d, std::size_t n,
                                std::uint64_t seed) {
  auto v = gen::generate_typed_records<T>(d, n, seed);
  // Splice the edge values in at deterministic positions (values stay the
  // index so the stability witness is intact).
  const auto edges = edge_keys<T>();
  for (std::size_t j = 0; j < edges.size() && j < v.size(); ++j)
    v[(j * 977) % v.size()].key = edges[j];
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Acceptance matrix: sort on every required key type, every dispatch size.

template <typename T>
void acceptance_sweep() {
  const gen::distribution dists[] = {
      {gen::dist_kind::uniform, 1e7, "Unif-1e7"},
      {gen::dist_kind::zipfian, 1.2, "Zipf-1.2"},
      {gen::dist_kind::uniform, 10, "Unif-10"},
  };
  // 300 stays under the serial threshold; 3000 and 60000 cross it and give
  // the radix kernels room.
  for (const std::size_t n : {std::size_t{300}, std::size_t{3000},
                              std::size_t{60000}}) {
    for (const auto& d : dists) {
      auto v = typed_input<T>(d, n, 42);
      const auto ref = stable_reference(v);
      sort(std::span<tkv<T>>(v), key_of_tkv<T>);
      expect_exact(v, ref);
    }
  }
  // Presorted and reverse-sorted typed inputs keep the cheap branches
  // working through the codec (encoded order == key order).
  auto asc = typed_input<T>(dists[0], 20000, 7);
  std::stable_sort(asc.begin(), asc.end(),
                   [](const tkv<T>& a, const tkv<T>& b) {
                     return enc(a.key) < enc(b.key);
                   });
  for (std::size_t i = 0; i < asc.size(); ++i)
    asc[i].value = static_cast<std::uint32_t>(i);
  auto asc_ref = asc;
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  sort(std::span<tkv<T>>(asc), key_of_tkv<T>, opt);
  expect_exact(asc, asc_ref);
  EXPECT_EQ(chosen_kernel_of(st), sort_kernel::run_merge);
}

TEST(TypedSortAcceptance, Int32) { acceptance_sweep<std::int32_t>(); }
TEST(TypedSortAcceptance, Int64) { acceptance_sweep<std::int64_t>(); }
TEST(TypedSortAcceptance, Float) { acceptance_sweep<float>(); }
TEST(TypedSortAcceptance, Double) { acceptance_sweep<double>(); }

TEST(TypedSortAcceptance, PairU32U32) {
  using P = std::pair<std::uint32_t, std::uint32_t>;
  // Records whose key FUNCTION returns a pair (trivially copyable record,
  // fused path)...
  struct edge {
    std::uint32_t dst, src, idx;
  };
  const auto key = [](const edge& e) { return P{e.dst, e.src}; };
  std::vector<edge> edges(50000);
  for (std::size_t i = 0; i < edges.size(); ++i)
    edges[i] = {static_cast<std::uint32_t>(par::rand_range(3, i, 500)),
                static_cast<std::uint32_t>(par::rand_range(5, i, 500)),
                static_cast<std::uint32_t>(i)};
  auto ref = edges;
  std::stable_sort(ref.begin(), ref.end(), [&](const edge& a, const edge& b) {
    return key(a) < key(b);
  });
  sort(std::span<edge>(edges), key);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(edges[i].dst, ref[i].dst);
    ASSERT_EQ(edges[i].src, ref[i].src);
    ASSERT_EQ(edges[i].idx, ref[i].idx);  // stability
  }
  // ...and a plain span of pairs. Under libstdc++ std::pair is not
  // trivially copyable, so this takes the encode-once + gather path; a
  // stdlib with trivially-copyable pairs may fuse instead — the non-TC
  // path is covered deterministically by NonTriviallyCopyableRecords
  // below, which does not depend on the stdlib.
  auto pairs = gen::generate_typed_keys<P>(
      {gen::dist_kind::zipfian, 1.1, "Zipf-1.1"}, 40000, 11);
  auto pref = pairs;
  std::stable_sort(pref.begin(), pref.end());
  sort(std::span<P>(pairs));
  EXPECT_EQ(pairs, pref);
}

TEST(TypedSortAcceptance, NonTriviallyCopyableRecords) {
  // Guaranteed non-trivially-copyable on every stdlib (std::string
  // member), with an UNSIGNED key: the front door must route this to the
  // encode-once + gather path (scratch_array's vector branch +
  // write_back's move branch) instead of tripping the radix kernels'
  // trivially-copyable static_assert.
  struct named {
    std::uint32_t id;
    std::string name;
  };
  static_assert(!std::is_trivially_copyable_v<named>);
  std::vector<named> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(par::rand_range(7, i, 300)),
            std::to_string(i)};
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const named& a, const named& b) { return a.id < b.id; });
  sort(std::span<named>(v), [](const named& r) { return r.id; });
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].id, ref[i].id) << i;
    ASSERT_EQ(v[i].name, ref[i].name) << i;  // stability, payload intact
  }
  // A float key on the same shape exercises the non-identity codec on
  // the same route.
  std::vector<named> w(5000);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = {static_cast<std::uint32_t>(i), std::to_string(i % 40)};
  sort(std::span<named>(w),
       [](const named& r) { return -static_cast<float>(r.name.size()); });
  for (std::size_t i = 1; i < w.size(); ++i)
    ASSERT_LE(w[i].name.size(), w[i - 1].name.size());
}

TEST(TypedSort, PlainSpansAndNanPolicy) {
  auto ints = gen::generate_typed_keys<std::int64_t>(
      {gen::dist_kind::exponential, 7, "Exp-7"}, 30000, 3);
  auto iref = ints;
  std::stable_sort(iref.begin(), iref.end());
  sort(std::span<std::int64_t>(ints));
  EXPECT_EQ(ints, iref);

  // Floats with NaNs of both signs: sorted by the documented total order,
  // bit patterns preserved.
  std::vector<float> f = gen::generate_typed_keys<float>(
      {gen::dist_kind::uniform, 1e5, "Unif-1e5"}, 20000, 5);
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t i = 0; i < f.size(); i += 97) f[i] = i % 2 ? qnan : -qnan;
  std::vector<std::uint32_t> eref(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    eref[i] = key_codec<float>::encode(f[i]);
  std::sort(eref.begin(), eref.end());
  sort(std::span<float>(f));
  for (std::size_t i = 0; i < f.size(); ++i)
    ASSERT_EQ(key_codec<float>::encode(f[i]), eref[i]) << i;
  // Negative NaNs landed first, positive NaNs last.
  EXPECT_TRUE(std::isnan(f.front()));
  EXPECT_TRUE(std::isnan(f.back()));
  EXPECT_TRUE(std::signbit(f.front()));
  EXPECT_FALSE(std::signbit(f.back()));
}

TEST(TypedSort, EmptyAndSingle) {
  std::vector<float> e;
  EXPECT_NO_THROW(sort(std::span<float>(e)));
  std::vector<std::int32_t> one{-5};
  sort(std::span<std::int32_t>(one));
  EXPECT_EQ(one[0], -5);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> p1{{3, 4}};
  sort(std::span<std::pair<std::uint32_t, std::uint32_t>>(p1));
  EXPECT_EQ(p1[0].first, 3u);
  EXPECT_TRUE(rank(std::span<const float>(e)).empty());
  std::vector<row28> v0;
  std::vector<std::uint32_t> k0;
  EXPECT_NO_THROW(sort_by_key(std::span<std::uint32_t>(k0),
                              std::span<row28>(v0)));
}

// ---------------------------------------------------------------------------
// sort_by_key.

TEST(SortByKey, StableAndMatchesAoS) {
  const std::size_t n = 60000;
  const auto aos = gen::generate_records<kv32w>(
      {gen::dist_kind::zipfian, 1.2, "Zipf-1.2"}, n, 9);
  // Split SoA: keys + 28-byte rows (value = input index).
  std::vector<std::uint32_t> keys(n);
  std::vector<row28> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = aos[i].key;
    rows[i].value = aos[i].value;
    for (int j = 0; j < 6; ++j) rows[i].payload[j] = aos[i].payload[j];
  }
  auto ref = aos;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const kv32w& a, const kv32w& b) {
                     return a.key < b.key;
                   });
  sort_by_key(std::span<std::uint32_t>(keys), std::span<row28>(rows));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], ref[i].key) << i;
    ASSERT_EQ(rows[i].value, ref[i].value) << i;  // stability + pairing
    for (int j = 0; j < 6; ++j)
      ASSERT_EQ(rows[i].payload[j], ref[i].payload[j]);
  }
}

TEST(SortByKey, TypedKeysAndOddValueTypes) {
  // float keys carrying std::vector values (non-trivially-copyable V).
  const std::size_t n = 5000;
  auto keys = gen::generate_typed_keys<float>(
      {gen::dist_kind::uniform, 50, "Unif-50"}, n, 13);
  std::vector<std::vector<int>> vals(n);
  for (std::size_t i = 0; i < n; ++i)
    vals[i] = {static_cast<int>(i), static_cast<int>(i) * 2};
  auto kref = keys;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key_codec<float>::encode(kref[a]) <
                            key_codec<float>::encode(kref[b]);
                   });
  sort_by_key(std::span<float>(keys), std::span<std::vector<int>>(vals));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], kref[order[i]]);
    ASSERT_EQ(vals[i][0], static_cast<int>(order[i]));  // stable pairing
  }
}

TEST(SortByKey, SizeMismatchThrows) {
  std::vector<std::uint32_t> k(4);
  std::vector<std::uint32_t> v(5);
  EXPECT_THROW(sort_by_key(std::span<std::uint32_t>(k),
                           std::span<std::uint32_t>(v)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// rank.

TEST(Rank, ExactStablePermutationWithoutMutation) {
  const std::size_t n = 50000;
  const auto input = gen::generate_records<kv32>(
      {gen::dist_kind::zipfian, 1.3, "Zipf-1.3"}, n, 21);
  const auto snapshot = input;
  // The reference permutation via std::stable_sort over indices.
  std::vector<index_t> ref(n);
  std::iota(ref.begin(), ref.end(), index_t{0});
  std::stable_sort(ref.begin(), ref.end(), [&](index_t a, index_t b) {
    return input[a].key < input[b].key;
  });
  const auto got =
      rank(std::span<const kv32>(input), key_of_kv32);
  ASSERT_EQ(got, ref);
  // Input untouched, bit for bit.
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(input[i], snapshot[i]);
}

TEST(Rank, TypedKeysAndWideEncodings) {
  // double keys (64-bit encodings => wide pair records internally).
  const auto recs = gen::generate_typed_records<double>(
      {gen::dist_kind::exponential, 5, "Exp-5"}, 30000, 17);
  std::vector<index_t> ref(recs.size());
  std::iota(ref.begin(), ref.end(), index_t{0});
  std::stable_sort(ref.begin(), ref.end(), [&](index_t a, index_t b) {
    return key_codec<double>::encode(recs[a].key) <
           key_codec<double>::encode(recs[b].key);
  });
  EXPECT_EQ(rank(std::span<const tkv<double>>(recs), key_of_tkv<double>),
            ref);
  // Applying the rank of a plain span sorts it.
  auto keys = gen::generate_typed_keys<std::int32_t>(
      {gen::dist_kind::uniform, 1e3, "Unif-1e3"}, 20000, 19);
  const auto r = rank(std::span<const std::int32_t>(keys));
  std::vector<std::int32_t> gathered(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) gathered[i] = keys[r[i]];
  EXPECT_TRUE(std::is_sorted(gathered.begin(), gathered.end()));
}

// ---------------------------------------------------------------------------
// Warm-workspace reuse: the zero-fresh-allocation steady state of
// test_workspace.cpp, extended to the new entry points.

template <typename RunFn>
void expect_zero_alloc_steady_state(sort_stats& st, const RunFn& run) {
  int zero_streak = 0;
  std::uint64_t reuses_at_streak_start = 0;
  for (int iter = 0; iter < 25 && zero_streak < 5; ++iter) {
    const std::uint64_t before = st.workspace_allocations.load();
    if (zero_streak == 0) reuses_at_streak_start = st.workspace_reuses.load();
    run();
    zero_streak =
        st.workspace_allocations.load() == before ? zero_streak + 1 : 0;
  }
  EXPECT_EQ(zero_streak, 5) << "no zero-allocation steady state in 25 runs";
  EXPECT_GT(st.workspace_reuses.load(), reuses_at_streak_start);
}

TEST(TypedWorkspace, SortByKeyZeroAllocAfterWarmup) {
  const std::size_t n = 100000;
  const auto base_keys = gen::generate_typed_keys<std::int32_t>(
      {gen::dist_kind::zipfian, 1.1, "Zipf-1.1"}, n, 23);
  std::vector<row28> base_rows(n);
  for (std::size_t i = 0; i < n; ++i)
    base_rows[i].value = static_cast<std::uint32_t>(i);
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  expect_zero_alloc_steady_state(st, [&] {
    auto k = base_keys;
    auto v = base_rows;
    sort_by_key(std::span<std::int32_t>(k), std::span<row28>(v), opt);
    ASSERT_TRUE(std::is_sorted(k.begin(), k.end()));
  });
}

TEST(TypedWorkspace, RankAndFusedSortZeroAllocAfterWarmup) {
  const std::size_t n = 100000;
  const auto recs = gen::generate_typed_records<double>(
      {gen::dist_kind::uniform, 1e5, "Unif-1e5"}, n, 29);
  sort_workspace ws;
  sort_stats st;
  auto_sort_options opt;
  opt.workspace = &ws;
  opt.stats = &st;
  // rank: the returned vector is the only per-call allocation; none of it
  // comes from the workspace.
  expect_zero_alloc_steady_state(st, [&] {
    const auto r = rank(std::span<const tkv<double>>(recs),
                        key_of_tkv<double>, opt);
    ASSERT_EQ(r.size(), n);
  });
  // Fused typed sort reuses the same arena.
  expect_zero_alloc_steady_state(st, [&] {
    auto v = recs;
    sort(std::span<tkv<double>>(v), key_of_tkv<double>, opt);
  });
}

// ---------------------------------------------------------------------------
// Stats snapshots.

TEST(TypedStats, EntryPointAndCodecRecorded) {
  sort_stats st;
  auto_sort_options opt;
  opt.stats = &st;
  auto f = gen::generate_typed_keys<float>(
      {gen::dist_kind::uniform, 100, "Unif-100"}, 4000, 31);
  sort(std::span<float>(f), opt);
  EXPECT_EQ(entry_point_of(st), sort_entry::sort);
  EXPECT_EQ(codec_kind_of(st), codec_kind::float_total_order);
  EXPECT_EQ(st.codec_encoded_bits.load(), 32u);

  std::vector<std::int64_t> k{3, -1, 2};
  std::vector<std::uint32_t> v{0, 1, 2};
  sort_by_key(std::span<std::int64_t>(k), std::span<std::uint32_t>(v), opt);
  EXPECT_EQ(entry_point_of(st), sort_entry::sort_by_key);
  EXPECT_EQ(codec_kind_of(st), codec_kind::sign_flip);
  EXPECT_EQ(st.codec_encoded_bits.load(), 64u);

  const std::vector<std::uint32_t> u{5, 4, 6};
  (void)rank(std::span<const std::uint32_t>(u), opt);
  EXPECT_EQ(entry_point_of(st), sort_entry::rank);
  EXPECT_EQ(codec_kind_of(st), codec_kind::identity);
  EXPECT_STREQ(entry_name(sort_entry::rank), "rank");
  EXPECT_STREQ(codec_kind_name(codec_kind::composite), "composite");

  st.reset();
  EXPECT_EQ(entry_point_of(st), std::nullopt);
  EXPECT_EQ(codec_kind_of(st), std::nullopt);
}
