// Tests for the parallel merge (PLMerge building block) and the comparison
// sort primitives (stable mergesort, quicksort).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/parallel/sort.hpp"

namespace par = dovetail::par;

namespace {
std::vector<std::uint64_t> sorted_random(std::size_t n, std::uint64_t seed,
                                         std::uint64_t bound) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = par::rand_range(seed, i, bound);
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

class MergeSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

using size_pair = std::pair<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSizes,
    ::testing::Values(size_pair{0, 0}, size_pair{0, 5}, size_pair{5, 0},
                      size_pair{1, 1}, size_pair{10, 1000},
                      size_pair{1000, 10}, size_pair{4096, 4096},
                      size_pair{100000, 100000}, size_pair{1, 100000},
                      size_pair{33333, 77777}));

TEST_P(MergeSizes, MatchesStdMerge) {
  auto [na, nb] = GetParam();
  auto a = sorted_random(na, 1, 5000);
  auto b = sorted_random(nb, 2, 5000);
  std::vector<std::uint64_t> got(na + nb), expect(na + nb);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
  par::merge(std::span<const std::uint64_t>(a),
             std::span<const std::uint64_t>(b),
             std::span<std::uint64_t>(got));
  EXPECT_EQ(got, expect);
}

TEST(Merge, StabilityATakesPrecedenceOnTies) {
  // Records carry a side tag; comparator only looks at the key.
  struct rec {
    std::uint32_t key;
    char side;
  };
  std::vector<rec> a, b;
  for (std::uint32_t i = 0; i < 5000; ++i) a.push_back({i / 5, 'a'});
  for (std::uint32_t i = 0; i < 5000; ++i) b.push_back({i / 5, 'b'});
  std::vector<rec> out(a.size() + b.size());
  auto comp = [](const rec& x, const rec& y) { return x.key < y.key; };
  par::merge(std::span<const rec>(a), std::span<const rec>(b),
             std::span<rec>(out), comp, 64);
  // Within each key, all 'a' records must precede all 'b' records.
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].key == out[i].key) {
      EXPECT_FALSE(out[i - 1].side == 'b' && out[i].side == 'a') << i;
    }
  }
}

class SortPrimitiveSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Sweep, SortPrimitiveSizes,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097,
                                           50000, 300000));

TEST_P(SortPrimitiveSizes, MergeSortMatchesStdStableSort) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = par::rand_range(9, i, 1000);
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end());
  par::merge_sort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

TEST_P(SortPrimitiveSizes, QuickSortMatchesStdSort) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = par::rand_range(10, i, 1000);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  par::quick_sort(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

TEST(MergeSortStability, IndexTaggedRecords) {
  struct rec {
    std::uint32_t key;
    std::uint32_t idx;
  };
  const std::size_t n = 100000;
  std::vector<rec> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<std::uint32_t>(par::rand_range(11, i, 50)),
            static_cast<std::uint32_t>(i)};
  par::merge_sort(std::span<rec>(v), [](const rec& a, const rec& b) {
    return a.key < b.key;
  });
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].idx, v[i].idx);
    }
  }
}

TEST(QuickSort, AllEqualDoesNotDegrade) {
  std::vector<std::uint64_t> v(200000, 7);
  par::quick_sort(std::span<std::uint64_t>(v));
  for (auto x : v) ASSERT_EQ(x, 7u);
}

TEST(QuickSort, AlreadySortedAndReverse) {
  std::vector<std::uint64_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  par::quick_sort(std::span<std::uint64_t>(v));
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = v.size() - i;
  par::quick_sort(std::span<std::uint64_t>(v));
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i + 1);
}
