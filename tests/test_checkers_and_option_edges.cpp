// Tests for the public verification helpers, plus remaining sort_options
// edge values (minimal base case, degenerate gamma vs key width, custom
// sample strides).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/checkers.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

TEST(Checkers, DetectsSortedAndUnsorted) {
  std::vector<std::uint32_t> v = {1, 2, 2, 3, 10};
  auto id = [](const std::uint32_t& k) { return k; };
  EXPECT_TRUE(is_sorted_by_key(std::span<const std::uint32_t>(v), id));
  v[3] = 0;
  EXPECT_FALSE(is_sorted_by_key(std::span<const std::uint32_t>(v), id));
}

TEST(Checkers, EmptyAndSingletonAreSorted) {
  std::vector<std::uint32_t> v;
  auto id = [](const std::uint32_t& k) { return k; };
  EXPECT_TRUE(is_sorted_by_key(std::span<const std::uint32_t>(v), id));
  v = {42};
  EXPECT_TRUE(is_sorted_by_key(std::span<const std::uint32_t>(v), id));
}

TEST(Checkers, FingerprintIsOrderIndependent) {
  auto a = gen::generate_keys<std::uint64_t>(
      {gen::dist_kind::zipfian, 1.1, "z"}, 50000, 5);
  auto b = a;
  std::reverse(b.begin(), b.end());
  auto id = [](const std::uint64_t& k) { return k; };
  EXPECT_EQ(key_multiset_fingerprint(std::span<const std::uint64_t>(a), id),
            key_multiset_fingerprint(std::span<const std::uint64_t>(b), id));
  b[17] ^= 1;  // change one key
  EXPECT_NE(key_multiset_fingerprint(std::span<const std::uint64_t>(a), id),
            key_multiset_fingerprint(std::span<const std::uint64_t>(b), id));
}

TEST(Checkers, SortedPermutationEndToEnd) {
  auto before = gen::generate_records<kv32>(
      {gen::dist_kind::exponential, 5, "e"}, 80000, 6);
  auto after = before;
  dovetail_sort(std::span<kv32>(after), key_of_kv32);
  EXPECT_TRUE(is_sorted_permutation_of(std::span<const kv32>(before),
                                       std::span<const kv32>(after),
                                       key_of_kv32));
  // Breaking the permutation (dropping a record) must be caught.
  auto truncated = after;
  truncated.pop_back();
  EXPECT_FALSE(is_sorted_permutation_of(std::span<const kv32>(before),
                                        std::span<const kv32>(truncated),
                                        key_of_kv32));
}

// ---------------------------------------------------------------------------

TEST(OptionEdges, MinimalBaseCase) {
  sort_options o;
  o.base_case = 2;  // recurse as deep as the digits allow
  o.gamma = 4;
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.0, "z"},
                                       30000, 7);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
}

TEST(OptionEdges, GammaLargerThanKeyWidth) {
  sort_options o;
  o.gamma = 12;  // > 8 significant bits below
  std::vector<kv32> v(50000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(par::hash64(i) & 0xFF),
            static_cast<std::uint32_t>(i)};
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const kv32& a, const kv32& b) {
    return a.key < b.key;
  });
  dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
}

TEST(OptionEdges, CustomSampleStride) {
  for (std::size_t stride : {1ul, 2ul, 64ul}) {
    sort_options o;
    o.sample_stride = stride;
    auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.3, "z"},
                                         60000, 8 + stride);
    auto ref = v;
    std::stable_sort(ref.begin(), ref.end(),
                     [](const kv32& a, const kv32& b) { return a.key < b.key; });
    dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
    for (std::size_t i = 0; i < v.size(); ++i)
      ASSERT_EQ(v[i], ref[i]) << "stride=" << stride;
  }
}

TEST(OptionEdges, StatsWithAblateSkipMergeStillCounts) {
  // The merge-skip ablation must not corrupt the other counters.
  auto v = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.5, "z"},
                                       100000, 9);
  sort_stats st;
  sort_options o;
  o.ablate_skip_merge = true;
  o.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  EXPECT_GT(st.distributed_records.load(), 0u);
  EXPECT_EQ(st.merged_records.load(), 0u);  // merge skipped
  EXPECT_GT(st.heavy_records.load(), 0u);   // detection still ran
}

TEST(OptionEdges, AllZeroKeys) {
  std::vector<kv32> v(50000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {0, static_cast<std::uint32_t>(i)};
  dovetail_sort(std::span<kv32>(v), key_of_kv32);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, 0u);
    ASSERT_EQ(v[i].value, i);  // stability on the degenerate range
  }
}
