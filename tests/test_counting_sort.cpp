// Tests for the stable parallel counting sort (the distribution primitive
// every MSD sort in this library is built on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/counting_sort.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"

using dovetail::counting_sort;
using dovetail::kv32;
namespace par = dovetail::par;

namespace {
std::vector<kv32> random_records(std::size_t n, std::uint32_t key_bound,
                                 std::uint64_t seed) {
  std::vector<kv32> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = {static_cast<std::uint32_t>(par::rand_range(seed, i, key_bound)),
            static_cast<std::uint32_t>(i)};
  return v;
}
}  // namespace

struct CountingCase {
  std::size_t n;
  std::size_t buckets;
};

class CountingSortSweep : public ::testing::TestWithParam<CountingCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingSortSweep,
    ::testing::Values(CountingCase{0, 4}, CountingCase{1, 1},
                      CountingCase{10, 1}, CountingCase{1000, 2},
                      CountingCase{1000, 17}, CountingCase{50000, 256},
                      CountingCase{200000, 4096}, CountingCase{300000, 8},
                      CountingCase{65536, 65536 / 4}));

TEST_P(CountingSortSweep, StableAndCorrect) {
  const auto [n, nb] = GetParam();
  auto in = random_records(n, static_cast<std::uint32_t>(nb), 17);
  std::vector<kv32> out(n);
  auto bucket_of = [nb2 = nb](const kv32& r) -> std::size_t {
    return r.key % nb2;
  };
  auto offs = counting_sort(std::span<const kv32>(in), std::span<kv32>(out),
                            nb, bucket_of);

  // Offsets are a valid partition.
  ASSERT_EQ(offs.size(), nb + 1);
  ASSERT_EQ(offs.front(), 0u);
  ASSERT_EQ(offs.back(), n);
  for (std::size_t k = 0; k < nb; ++k) ASSERT_LE(offs[k], offs[k + 1]);

  // Every bucket range holds exactly records of that bucket, stably.
  for (std::size_t k = 0; k < nb; ++k) {
    for (std::size_t i = offs[k]; i < offs[k + 1]; ++i) {
      ASSERT_EQ(bucket_of(out[i]), k);
      if (i > offs[k]) {
        ASSERT_LT(out[i - 1].value, out[i].value);
      }
    }
  }

  // Same multiset: the value field (input index) appears exactly once.
  std::vector<char> seen(n, 0);
  for (const auto& r : out) {
    ASSERT_LT(r.value, n);
    ASSERT_FALSE(seen[r.value]);
    seen[r.value] = 1;
  }
}

TEST(CountingSort, MatchesStdStableSortByBucket) {
  const std::size_t n = 100000, nb = 100;
  auto in = random_records(n, 1u << 30, 23);
  std::vector<kv32> out(n);
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 100; };
  counting_sort(std::span<const kv32>(in), std::span<kv32>(out), nb,
                bucket_of);
  auto expect = in;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](const kv32& a, const kv32& b) {
                     return bucket_of(a) < bucket_of(b);
                   });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i].key, expect[i].key) << i;
    ASSERT_EQ(out[i].value, expect[i].value) << i;
  }
}

TEST(CountingSort, AllRecordsInOneBucket) {
  const std::size_t n = 50000, nb = 64;
  auto in = random_records(n, 1u << 30, 29);
  std::vector<kv32> out(n);
  auto offs = counting_sort(std::span<const kv32>(in), std::span<kv32>(out),
                            nb, [](const kv32&) -> std::size_t { return 63; });
  EXPECT_EQ(offs[63], 0u);
  EXPECT_EQ(offs[64], n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i].value, i);  // stable
}

TEST(CountingSort, EmptyBucketsInterleaved) {
  const std::size_t n = 10000, nb = 10;
  auto in = random_records(n, 5, 31);
  std::vector<kv32> out(n);
  // Only even buckets are populated.
  auto offs = counting_sort(
      std::span<const kv32>(in), std::span<kv32>(out), nb,
      [](const kv32& r) -> std::size_t { return 2 * (r.key % 5); });
  for (std::size_t k = 1; k < nb; k += 2) EXPECT_EQ(offs[k], offs[k + 1]);
}

TEST(CountingSort, DeterministicRepeatRuns) {
  const std::size_t n = 120000, nb = 512;
  auto in = random_records(n, 1u << 20, 37);
  std::vector<kv32> out1(n), out2(n);
  auto bucket_of = [](const kv32& r) -> std::size_t { return r.key % 512; };
  counting_sort(std::span<const kv32>(in), std::span<kv32>(out1), nb,
                bucket_of);
  counting_sort(std::span<const kv32>(in), std::span<kv32>(out2), nb,
                bucket_of);
  EXPECT_TRUE(std::equal(out1.begin(), out1.end(), out2.begin()));
}
