// Tests for the work instrumentation, which empirically validate the
// paper's Sec 4 theorems at test scale:
//   Thm 4.4/4.5: distribution work ~ n * #levels on uniform inputs;
//   Thm 4.6:     exponential frequency inputs -> almost all records heavy;
//   Thm 4.7:     few distinct keys -> O(n) total distribution work.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

TEST(SortStats, CountersPopulatedOnLargeSort) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e9, "u"},
                                       200000, 1);
  sort_stats st;
  sort_options opt;
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  EXPECT_GE(st.distributed_records.load(), v.size());  // at least one level
  EXPECT_GT(st.num_distributions.load(), 0u);
  EXPECT_GT(st.sampled_keys.load(), 0u);
  EXPECT_GE(st.max_depth.load(), 1u);
  // Conservation: every record ends in exactly one terminal state per the
  // level it leaves the recursion (base case, heavy bucket, overflow, or
  // a zero-bit/light leaf). Terminal counts cannot exceed what was routed.
  EXPECT_LE(st.heavy_records.load(), st.distributed_records.load());
}

TEST(SortStats, UniformWideRangeHasNoHeavyRecords) {
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e9, "u"},
                                       300000, 2);
  sort_stats st;
  sort_options opt;
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  // All keys essentially distinct: nothing should be detected heavy.
  EXPECT_LT(st.heavy_records.load(), v.size() / 100);
}

TEST(SortStats, FewDistinctKeysLinearWork) {
  // Thm 4.7: with few distinct keys, nearly everything becomes heavy at
  // the root and total distribution work stays ~n (one level).
  const std::size_t n = 400000;
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 20, "u"}, n,
                                       3);
  sort_stats st;
  sort_options opt;
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  EXPECT_GT(st.heavy_records.load(), n * 9 / 10);
  EXPECT_LT(st.distributed_records.load(), n + n / 2);  // ~one level
  std::vector<kv32> sorted = v;
  for (std::size_t i = 1; i < sorted.size(); ++i)
    ASSERT_LE(sorted[i - 1].key, sorted[i].key);
}

TEST(SortStats, HeavyDetectionReducesWorkVsPlain) {
  // The measurable version of Fig 4(a): on a heavy-duplicate input, the
  // plain variant distributes strictly more record-levels.
  const std::size_t n = 500000;
  auto base = gen::generate_records<kv32>({gen::dist_kind::zipfian, 1.5, "z"},
                                          n, 4);
  sort_stats with, without;
  {
    auto v = base;
    sort_options o;
    o.stats = &with;
    dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  }
  {
    auto v = base;
    sort_options o;
    o.stats = &without;
    o.detect_heavy = false;
    dovetail_sort(std::span<kv32>(v), key_of_kv32, o);
  }
  EXPECT_GT(with.heavy_records.load(), 0u);
  EXPECT_EQ(without.heavy_records.load(), 0u);
  EXPECT_LT(with.distributed_records.load(),
            without.distributed_records.load());
}

TEST(SortStats, DepthBoundedByBitsOverGamma) {
  const std::size_t n = 300000;
  auto v = gen::generate_records<kv32>({gen::dist_kind::uniform, 1e9, "u"}, n,
                                       5);
  sort_stats st;
  sort_options opt;
  opt.gamma = 8;
  opt.base_case = 64;  // force deep recursion
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  // 32-bit keys, 8-bit digits: at most ceil(32/8) + 1 slack levels.
  EXPECT_LE(st.max_depth.load(), 5u);
  EXPECT_GE(st.max_depth.load(), 2u);
}

TEST(SortStats, OverflowRecordsCounted) {
  // Keys in [0, 100) plus a handful of huge outliers, too rare for the
  // sampler to see: they must be routed through the overflow bucket. (With
  // frequent outliers the sampled max would legitimately cover them — that
  // case is exercised by SmallKeyRangeUsesOverflowPath in the sort tests.)
  const std::size_t n = 200000;
  std::vector<kv32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t k = static_cast<std::uint32_t>(par::hash64(i) % 100);
    v[i] = {k, static_cast<std::uint32_t>(i)};
  }
  v[12345].key = 0xF0000001u;
  v[54321].key = 0xF0000002u;
  v[123456].key = 0xF0000003u;
  sort_stats st;
  sort_options opt;
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(v), key_of_kv32, opt);
  EXPECT_GE(st.overflow_records.load(), 3u);
  EXPECT_LT(st.overflow_records.load(), n / 10);
  for (std::size_t i = 1; i < n; ++i) ASSERT_LE(v[i - 1].key, v[i].key);
}

TEST(SortStats, MergedRecordsOnlyWhenHeavyExists) {
  const std::size_t n = 300000;
  auto light = gen::generate_records<kv32>(
      {gen::dist_kind::uniform, 1e9, "u"}, n, 6);
  sort_stats st;
  sort_options opt;
  opt.stats = &st;
  dovetail_sort(std::span<kv32>(light), key_of_kv32, opt);
  const auto merged_light = st.merged_records.load();

  auto heavy = gen::generate_records<kv32>(
      {gen::dist_kind::zipfian, 1.5, "z"}, n, 7);
  st.reset();
  dovetail_sort(std::span<kv32>(heavy), key_of_kv32, opt);
  EXPECT_GT(st.merged_records.load(), merged_light);
}

TEST(SortStats, ResetClearsEverything) {
  sort_stats st;
  st.distributed_records = 5;
  st.heavy_records = 6;
  st.max_depth = 7;
  st.reset();
  EXPECT_EQ(st.distributed_records.load(), 0u);
  EXPECT_EQ(st.heavy_records.load(), 0u);
  EXPECT_EQ(st.max_depth.load(), 0u);
}
