// Correctness tests for all baseline sorters (PLIS-like MSD radix, LSD
// radix, in-place unstable radix, samplesort stable/unstable).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/baselines/inplace_radix_sort.hpp"
#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/baselines/msd_radix_sort.hpp"
#include "dovetail/baselines/sample_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;
namespace gen = dovetail::gen;

namespace {

template <typename Rec, typename SortFn>
void check_stable_sorter(SortFn&& sort_fn, const gen::distribution& d,
                         std::size_t n, std::uint64_t seed) {
  auto v = gen::generate_records<Rec>(d, n, seed);
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  sort_fn(std::span<Rec>(v), [](const Rec& r) { return r.key; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(v[i].key, ref[i].key) << i;
    ASSERT_EQ(v[i].value, ref[i].value) << "stability broken at " << i;
  }
}

template <typename Rec, typename SortFn>
void check_unstable_sorter(SortFn&& sort_fn, const gen::distribution& d,
                           std::size_t n, std::uint64_t seed) {
  auto v = gen::generate_records<Rec>(d, n, seed);
  auto key = [](const Rec& r) { return r.key; };
  const std::uint64_t fingerprint =
      dtt::multiset_hash(std::span<const Rec>(v), key);
  sort_fn(std::span<Rec>(v), key);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const Rec>(v), key));
  EXPECT_EQ(dtt::multiset_hash(std::span<const Rec>(v), key), fingerprint);
}

const gen::distribution kCases[] = {
    {gen::dist_kind::uniform, 1e9, "Unif-1e9"},
    {gen::dist_kind::uniform, 10, "Unif-10"},
    {gen::dist_kind::exponential, 7, "Exp-7"},
    {gen::dist_kind::zipfian, 1.2, "Zipf-1.2"},
    {gen::dist_kind::bexp, 100, "BExp-100"},
};

}  // namespace

TEST(MsdRadixSort, StableOnAllDistributions32) {
  for (const auto& d : kCases)
    check_stable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::msd_radix_sort(s, key);
        },
        d, 120000, 41);
}

TEST(MsdRadixSort, StableOnAllDistributions64) {
  for (const auto& d : kCases)
    check_stable_sorter<kv64>(
        [](std::span<kv64> s, auto key) {
          baseline::msd_radix_sort(s, key);
        },
        d, 120000, 42);
}

TEST(MsdRadixSort, SmallGammaDeepRecursion) {
  for (const auto& d : kCases)
    check_stable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::msd_radix_sort(s, key, {.gamma = 3, .base_case = 16});
        },
        d, 60000, 43);
}

TEST(MsdRadixSort, EdgeSizes) {
  for (std::size_t n : {0ul, 1ul, 2ul, 100ul}) {
    auto v = gen::generate_records<kv32>(kCases[0], n, 44);
    baseline::msd_radix_sort(std::span<kv32>(v),
                             [](const kv32& r) { return r.key; });
    EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(v), key_of_kv32));
  }
}

TEST(LsdRadixSort, StableOnAllDistributions32) {
  for (const auto& d : kCases)
    check_stable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::lsd_radix_sort(s, key);
        },
        d, 120000, 45);
}

TEST(LsdRadixSort, StableOnAllDistributions64) {
  for (const auto& d : kCases)
    check_stable_sorter<kv64>(
        [](std::span<kv64> s, auto key) {
          baseline::lsd_radix_sort(s, key);
        },
        d, 80000, 46);
}

TEST(LsdRadixSort, DigitWidthSweep) {
  for (int gamma : {1, 4, 7, 11, 16})
    check_stable_sorter<kv32>(
        [gamma](std::span<kv32> s, auto key) {
          baseline::lsd_radix_sort(s, key, {.gamma = gamma});
        },
        kCases[3], 50000, 47);
}

TEST(LsdRadixSort, OddNumberOfPassesCopiesBack) {
  // 3 passes of 8 bits over 24-bit keys ends in the temp buffer; result
  // must still land in the input array.
  std::vector<kv32> v(50000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(par::hash64(i) & 0xFFFFFF),
            static_cast<std::uint32_t>(i)};
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const kv32& a, const kv32& b) { return a.key < b.key; });
  baseline::lsd_radix_sort(std::span<kv32>(v), key_of_kv32, {.gamma = 8});
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], ref[i]);
}

TEST(InplaceRadixSort, CorrectOnAllDistributions32) {
  for (const auto& d : kCases)
    check_unstable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::inplace_radix_sort(s, key);
        },
        d, 120000, 48);
}

TEST(InplaceRadixSort, CorrectOnAllDistributions64) {
  for (const auto& d : kCases)
    check_unstable_sorter<kv64>(
        [](std::span<kv64> s, auto key) {
          baseline::inplace_radix_sort(s, key);
        },
        d, 80000, 49);
}

TEST(InplaceRadixSort, UsesNoExtraBufferForRecords) {
  // Sanity: sorting a view leaves all records within the same storage
  // (by definition of the API); just verify the permutation property.
  check_unstable_sorter<kv32>(
      [](std::span<kv32> s, auto key) {
        baseline::inplace_radix_sort(s, key, {.gamma = 4, .base_case = 32});
      },
      kCases[4], 60000, 50);
}

TEST(SampleSort, UnstableVariantCorrect) {
  for (const auto& d : kCases)
    check_unstable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::sample_sort_by_key(s, key, {.stable = false});
        },
        d, 150000, 51);
}

TEST(SampleSort, StableVariantIsStable) {
  for (const auto& d : kCases)
    check_stable_sorter<kv32>(
        [](std::span<kv32> s, auto key) {
          baseline::sample_sort_by_key(s, key, {.stable = true});
        },
        d, 150000, 52);
}

TEST(SampleSort, StableVariant64) {
  for (const auto& d : kCases)
    check_stable_sorter<kv64>(
        [](std::span<kv64> s, auto key) {
          baseline::sample_sort_by_key(s, key, {.stable = true});
        },
        d, 100000, 53);
}

TEST(SampleSort, EqualityBucketsAllEqualInput) {
  std::vector<kv32> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {99u, static_cast<std::uint32_t>(i)};
  baseline::sample_sort_by_key(std::span<kv32>(v), key_of_kv32,
                               {.stable = true});
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, 99u);
    ASSERT_EQ(v[i].value, i);  // equality bucket preserves order
  }
}

TEST(SampleSort, FewDistinctKeys) {
  check_stable_sorter<kv32>(
      [](std::span<kv32> s, auto key) {
        baseline::sample_sort_by_key(s, key, {.stable = true});
      },
      {gen::dist_kind::uniform, 3, "Unif-3"}, 120000, 54);
}

TEST(SampleSort, BucketCountSweep) {
  for (std::size_t nb : {2ul, 8ul, 64ul, 300ul})
    check_stable_sorter<kv32>(
        [nb](std::span<kv32> s, auto key) {
          baseline::sample_sort_by_key(
              s, key, {.stable = true, .num_buckets = nb, .base_case = 512});
        },
        kCases[3], 80000, 55);
}

TEST(SampleSort, GenericComparatorNonIntegerOrder) {
  // Descending comparator: exercises the pure-comparison interface.
  std::vector<kv32> v(50000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {static_cast<std::uint32_t>(par::hash64(i) % 1000),
            static_cast<std::uint32_t>(i)};
  baseline::sample_sort(
      std::span<kv32>(v),
      [](const kv32& a, const kv32& b) { return a.key > b.key; },
      {.stable = true});
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_GE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) { ASSERT_LT(v[i - 1].value, v[i].value); }
  }
}
