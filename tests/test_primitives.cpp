// Unit tests for the parallel sequence primitives (reduce, scan, filter,
// histogram, tabulate, copy, reverse).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"

namespace par = dovetail::par;

namespace {
std::vector<std::uint64_t> random_vec(std::size_t n, std::uint64_t seed,
                                      std::uint64_t bound) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = par::rand_range(seed, i, bound);
  return v;
}
}  // namespace

class PrimitiveSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sweep, PrimitiveSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 100, 1023, 1024,
                                           1025, 4096, 65537, 200000));

TEST_P(PrimitiveSizes, TabulateMatchesFormula) {
  const std::size_t n = GetParam();
  auto v = par::tabulate(n, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], 3 * i + 1);
}

TEST_P(PrimitiveSizes, ReduceSumMatchesSerial) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 1, 1000);
  std::uint64_t expect = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  EXPECT_EQ(par::reduce_sum<std::uint64_t>(v), expect);
}

TEST_P(PrimitiveSizes, ReduceMaxMatchesSerial) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 2, 1u << 30);
  std::uint64_t expect = 0;
  for (auto x : v) expect = std::max(expect, x);
  EXPECT_EQ(par::reduce_max<std::uint64_t>(v, 0), expect);
}

TEST_P(PrimitiveSizes, ScanExclusiveMatchesSerial) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 3, 100);
  std::vector<std::uint64_t> out(n);
  std::uint64_t total = par::scan_exclusive_sum<std::uint64_t>(
      v, std::span<std::uint64_t>(out));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], acc) << i;
    acc += v[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(PrimitiveSizes, ScanExclusiveInPlaceAliasing) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 4, 100);
  auto expect = v;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t t = expect[i];
    expect[i] = acc;
    acc += t;
  }
  par::scan_exclusive_sum<std::uint64_t>(v, std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

TEST_P(PrimitiveSizes, FilterKeepsOrderAndMatches) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 5, 1000);
  auto pred = [](std::uint64_t x) { return x % 3 == 0; };
  auto got = par::filter<std::uint64_t>(v, pred);
  std::vector<std::uint64_t> expect;
  for (auto x : v)
    if (pred(x)) expect.push_back(x);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, HistogramMatchesSerial) {
  const std::size_t n = GetParam();
  const std::size_t nb = 17;
  auto v = random_vec(n, 6, nb);
  auto got = par::histogram(n, nb, [&](std::size_t i) { return v[i]; });
  std::vector<std::size_t> expect(nb, 0);
  for (auto x : v) ++expect[x];
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, ReverseInplace) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 7, 1u << 20);
  auto expect = v;
  std::reverse(expect.begin(), expect.end());
  par::reverse_inplace(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expect);
}

TEST_P(PrimitiveSizes, CopyMatches) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 8, 1u << 20);
  std::vector<std::uint64_t> dst(n, 0);
  par::copy(std::span<const std::uint64_t>(v), std::span<std::uint64_t>(dst));
  EXPECT_EQ(v, dst);
}

TEST(Primitives, ReduceNonCommutativeStringConcat) {
  // reduce requires associativity only; verify order is preserved.
  const std::size_t n = 500;
  auto map = [](std::size_t i) { return std::to_string(i) + ","; };
  auto got = par::reduce_map(
      0, n, std::string{}, map,
      [](std::string a, std::string b) { return a + b; }, 16);
  std::string expect;
  for (std::size_t i = 0; i < n; ++i) expect += map(i);
  EXPECT_EQ(got, expect);
}

TEST(Primitives, ScanGenericOperatorMax) {
  std::vector<std::uint64_t> v = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<std::uint64_t> out(v.size());
  auto total = par::scan_exclusive<std::uint64_t>(
      v, std::span<std::uint64_t>(out), 0,
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  EXPECT_EQ(total, 9u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 3, 3, 4, 4, 5, 9, 9}));
}
