// Tests for the two applications: graph transpose and Morton sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/apps/graph.hpp"
#include "dovetail/apps/morton.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/graphs.hpp"
#include "dovetail/generators/points.hpp"

using namespace dovetail;
using app::csr_graph;
using app::edge;

namespace {

constexpr auto dt_sorter = [](auto span, auto key) {
  dovetail_sort(span, key);
};

csr_graph make_graph(std::vector<edge> edges, std::uint32_t v) {
  return app::build_csr(v, std::move(edges), dt_sorter);
}

// Canonical form: adjacency lists sorted.
csr_graph canonical(csr_graph g) {
  for (std::uint32_t v = 0; v < g.num_vertices; ++v)
    std::sort(g.targets.begin() + static_cast<std::ptrdiff_t>(g.offsets[v]),
              g.targets.begin() + static_cast<std::ptrdiff_t>(g.offsets[v + 1]));
  return g;
}

bool same_graph(const csr_graph& a, const csr_graph& b) {
  return a.num_vertices == b.num_vertices && a.offsets == b.offsets &&
         a.targets == b.targets;
}

}  // namespace

TEST(GraphTranspose, TinyHandCheckedExample) {
  // 0 -> 1, 0 -> 2, 2 -> 0, 1 -> 2
  std::vector<edge> edges = {{0, 1}, {0, 2}, {2, 0}, {1, 2}};
  csr_graph g = make_graph(edges, 3);
  csr_graph gt = app::transpose(g, dt_sorter);
  ASSERT_EQ(gt.num_vertices, 3u);
  // In-edges: 0 <- {2}; 1 <- {0}; 2 <- {0, 1}
  EXPECT_EQ(gt.neighbors(0).size(), 1u);
  EXPECT_EQ(gt.neighbors(0)[0], 2u);
  EXPECT_EQ(gt.neighbors(1).size(), 1u);
  EXPECT_EQ(gt.neighbors(1)[0], 0u);
  ASSERT_EQ(gt.neighbors(2).size(), 2u);
  EXPECT_EQ(gt.neighbors(2)[0], 0u);
  EXPECT_EQ(gt.neighbors(2)[1], 1u);
}

TEST(GraphTranspose, DoubleTransposeIsIdentity) {
  const std::uint32_t V = 2000;
  auto g = make_graph(gen::powerlaw_graph(V, 50000, 1.2, 7), V);
  auto gtt = app::transpose(app::transpose(g, dt_sorter), dt_sorter);
  EXPECT_TRUE(same_graph(canonical(g), canonical(gtt)));
}

TEST(GraphTranspose, EdgeCountAndDegreesPreserved) {
  const std::uint32_t V = 3000;
  auto g = make_graph(gen::uniform_graph(V, 60000, 8), V);
  auto gt = app::transpose(g, dt_sorter);
  EXPECT_EQ(gt.num_edges(), g.num_edges());
  // out-degree of v in G^T == in-degree of v in G.
  std::vector<std::size_t> indeg(V, 0);
  for (auto e : app::csr_to_edges(g)) ++indeg[e.dst];
  for (std::uint32_t v = 0; v < V; ++v)
    ASSERT_EQ(gt.offsets[v + 1] - gt.offsets[v], indeg[v]) << v;
}

TEST(GraphTranspose, StableSortPreservesSourceOrderWithinTarget) {
  // Adjacency in the transpose must list sources in ascending order when
  // the input edge list is grouped by ascending source (stability).
  const std::uint32_t V = 500;
  auto g = make_graph(gen::knn_graph(V, 6, 9), V);
  auto gt = app::transpose(g, dt_sorter);
  for (std::uint32_t v = 0; v < V; ++v) {
    auto nb = gt.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i)
      ASSERT_LE(nb[i - 1], nb[i]) << "vertex " << v;
  }
}

TEST(GraphTranspose, EmptyAndIsolatedVertices) {
  csr_graph g = make_graph({}, 10);
  auto gt = app::transpose(g, dt_sorter);
  EXPECT_EQ(gt.num_edges(), 0u);
  EXPECT_EQ(gt.offsets.size(), 11u);
}

// ---------------------------------------------------------------------------

TEST(Morton, Part1By1RoundTripBits) {
  for (std::uint32_t x : {0u, 1u, 0xFFFFu, 0xAAAAu, 0x1234u}) {
    std::uint32_t spread = app::part1by1_16(x);
    // Every second bit must be zero.
    EXPECT_EQ(spread & 0xAAAAAAAAu, 0u);
    // Compacting back yields x.
    std::uint32_t back = 0;
    for (int b = 0; b < 16; ++b) back |= ((spread >> (2 * b)) & 1u) << b;
    EXPECT_EQ(back, x);
  }
}

TEST(Morton, Interleave2dKnownValues) {
  EXPECT_EQ(app::morton2d_32(0, 0), 0u);
  EXPECT_EQ(app::morton2d_32(1, 0), 1u);
  EXPECT_EQ(app::morton2d_32(0, 1), 2u);
  EXPECT_EQ(app::morton2d_32(1, 1), 3u);
  EXPECT_EQ(app::morton2d_32(2, 0), 4u);
  EXPECT_EQ(app::morton2d_32(0xFFFF, 0xFFFF), 0xFFFFFFFFu);
}

TEST(Morton, Interleave3dKnownValues) {
  EXPECT_EQ(app::morton3d_63(0, 0, 0), 0u);
  EXPECT_EQ(app::morton3d_63(1, 0, 0), 1u);
  EXPECT_EQ(app::morton3d_63(0, 1, 0), 2u);
  EXPECT_EQ(app::morton3d_63(0, 0, 1), 4u);
  EXPECT_EQ(app::morton3d_63(1, 1, 1), 7u);
}

TEST(Morton, MonotoneInEachCoordinateWithinQuadrant) {
  // If y is fixed and x grows within the same power-of-two box, the z-value
  // grows.
  for (std::uint32_t y : {0u, 5u, 1000u}) {
    std::uint32_t prev = app::morton2d_32(0, y);
    for (std::uint32_t x = 1; x < 100; ++x) {
      std::uint32_t z = app::morton2d_32(x, y);
      EXPECT_GT(z, prev);
      prev = z;
    }
  }
}

TEST(Morton, SortProducesZOrderedSequence) {
  auto pts = gen::varden_points_2d(50000, 32, 16, 11);
  auto sorted = app::morton_sort_2d(std::span<const app::point2d>(pts),
                                    dt_sorter);
  ASSERT_EQ(sorted.size(), pts.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_LE(app::morton2d_32(sorted[i - 1].x, sorted[i - 1].y),
              app::morton2d_32(sorted[i].x, sorted[i].y))
        << i;
  }
}

TEST(Morton, SortIsPermutation) {
  auto pts = gen::uniform_points_2d(30000, 16, 12);
  auto sorted = app::morton_sort_2d(std::span<const app::point2d>(pts),
                                    dt_sorter);
  auto canon = [](std::vector<app::point2d> v) {
    std::sort(v.begin(), v.end(), [](auto a, auto b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    return v;
  };
  EXPECT_EQ(canon(pts), canon(sorted));
}

TEST(Morton, Sort3dZOrdered) {
  auto pts = gen::varden_points_3d(40000, 32, 21, 13);
  auto sorted = app::morton_sort_3d(std::span<const app::point3d>(pts),
                                    dt_sorter);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_LE(app::morton3d_63(sorted[i - 1].x, sorted[i - 1].y,
                               sorted[i - 1].z),
              app::morton3d_63(sorted[i].x, sorted[i].y, sorted[i].z));
  }
}

TEST(Morton, LocalityNearbyPointsShareHighBits) {
  // Two points in the same 2^8-box share at least the top 16 of 32 z-bits.
  const std::uint32_t x = 0x1200, y = 0x3400;
  auto za = app::morton2d_32(x, y);
  auto zb = app::morton2d_32(x + 200, y + 100);
  EXPECT_EQ(za >> 16, zb >> 16);
}
