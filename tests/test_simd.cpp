// Tests for util/simd.hpp: the runtime ISA switch, the vectorized
// histograms, and the in-register sorting networks.
//
// The binding contract throughout is BYTE-IDENTITY with the scalar paths:
// histograms are exact integer sums, pure-key networks produce the unique
// sorted sequence, and the stable record network executes a tie-broken
// strict total order — so every assertion here compares against a plain
// scalar reference, both with the vector units enabled and with
// force_scalar(true). Under -DDOVETAIL_DISABLE_SIMD (the CI scalar build)
// the network entry points simply return false and the same assertions
// cover the fallback behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "dovetail/util/record.hpp"
#include "dovetail/util/simd.hpp"

namespace {

namespace simd = dovetail::simd;
using dovetail::kv32;

// RAII so a failing assertion cannot leak force_scalar(true) into the
// next test.
struct scalar_guard {
  explicit scalar_guard(bool on) { simd::force_scalar(on); }
  ~scalar_guard() { simd::force_scalar(false); }
};

TEST(SimdLevel, ForceScalarFlipsTheSwitch) {
  EXPECT_STRNE(simd::isa_name(simd::level()), "");
  {
    scalar_guard g(true);
    EXPECT_EQ(simd::level(), simd::isa::scalar);
    EXPECT_STREQ(simd::isa_name(simd::level()), "scalar");
  }
#if !defined(DOVETAIL_DISABLE_SIMD)
  // On this repo's CI hardware the vector level is avx2; a scalar-only
  // machine legitimately reports scalar, so only pin the name mapping.
  EXPECT_STREQ(simd::isa_name(simd::isa::avx2), "avx2");
#endif
}

// --- pure-key networks -----------------------------------------------------

template <typename K>
void check_network(std::size_t n, std::uint64_t seed, K max_val) {
  std::mt19937_64 rng(seed);
  std::vector<K> v(n);
  for (K& x : v) x = static_cast<K>(rng());
  // Salt in boundary values: the padding lanes carry the max key value, so
  // real max-valued records must still come out in front of the pads.
  for (std::size_t i = 0; i < n; i += 5) v[i] = max_val;
  for (std::size_t i = 2; i < n; i += 7) v[i] = 0;
  std::vector<K> want = v;
  std::sort(want.begin(), want.end());

  std::vector<K> got = v;
  if (simd::network_sort(std::span<K>(got))) {
    EXPECT_EQ(got, want) << "n=" << n << " seed=" << seed;
  } else {
    // Declined (scalar level or span too long): input untouched.
    EXPECT_EQ(got, v) << "n=" << n << " seed=" << seed;
  }
}

TEST(SimdNetwork, U32AllSizesMatchStdSort) {
  for (std::size_t n = 0; n <= 32; ++n)
    for (std::uint64_t seed = 0; seed < 8; ++seed)
      check_network<std::uint32_t>(n, seed, 0xFFFFFFFFu);
}

TEST(SimdNetwork, U64AllSizesMatchStdSort) {
  for (std::size_t n = 0; n <= 16; ++n)
    for (std::uint64_t seed = 0; seed < 8; ++seed)
      check_network<std::uint64_t>(n, seed, ~std::uint64_t{0});
}

TEST(SimdNetwork, DeclinesOversizedAndScalar) {
  std::vector<std::uint32_t> big(33, 1);
  EXPECT_FALSE(simd::network_sort(std::span<std::uint32_t>(big)));
  std::vector<std::uint64_t> big64(17, 1);
  EXPECT_FALSE(simd::network_sort(std::span<std::uint64_t>(big64)));

  scalar_guard g(true);
  std::vector<std::uint32_t> v{3, 1, 2};
  EXPECT_FALSE(simd::network_sort(std::span<std::uint32_t>(v)));
  // The level gate precedes the trivial-size fast path: a forced-scalar
  // process declines everything, n < 2 included.
  std::vector<std::uint32_t> one{7};
  EXPECT_FALSE(simd::network_sort(std::span<std::uint32_t>(one)));
}

TEST(SimdNetwork, AllMaxValuesSurvivePadding) {
  // Every element equals the padding value: the pads must not displace any
  // real record. Exercises each words regime (1..4 vectors).
  for (const std::size_t n : {std::size_t{3}, std::size_t{8}, std::size_t{9},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{24}, std::size_t{25},
                              std::size_t{32}}) {
    std::vector<std::uint32_t> v(n, 0xFFFFFFFFu);
    if (simd::network_sort(std::span<std::uint32_t>(v))) {
      for (const std::uint32_t x : v) ASSERT_EQ(x, 0xFFFFFFFFu) << n;
    }
  }
  for (const std::size_t n : {std::size_t{3}, std::size_t{5}, std::size_t{9},
                              std::size_t{13}, std::size_t{16}}) {
    std::vector<std::uint64_t> v(n, ~std::uint64_t{0});
    if (simd::network_sort(std::span<std::uint64_t>(v))) {
      for (const std::uint64_t x : v) ASSERT_EQ(x, ~std::uint64_t{0}) << n;
    }
  }
}

// --- stable record network -------------------------------------------------

TEST(SimdStableNetwork, ByteIdenticalToStableSort) {
  const auto less = [](const kv32& a, const kv32& b) { return a.key < b.key; };
  std::mt19937_64 rng(99);
  for (std::size_t n = 0; n <= 16; ++n) {
    for (int rep = 0; rep < 16; ++rep) {
      std::vector<kv32> v(n);
      for (std::size_t i = 0; i < n; ++i)
        v[i] = kv32{static_cast<std::uint32_t>(rng() % 4),  // duplicate-heavy
                    static_cast<std::uint32_t>(i)};
      std::vector<kv32> want = v;
      std::stable_sort(want.begin(), want.end(), less);
      std::vector<kv32> got = v;
      if (!simd::stable_network_sort(std::span<kv32>(got), less)) {
        ASSERT_EQ(simd::level(), simd::isa::scalar);
        continue;
      }
      if (n != 0)
        ASSERT_EQ(0, std::memcmp(got.data(), want.data(), n * sizeof(kv32)))
            << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(SimdStableNetwork, DeclinesOversizedAndScalar) {
  const auto less = [](const kv32& a, const kv32& b) { return a.key < b.key; };
  std::vector<kv32> big(17);
  EXPECT_FALSE(simd::stable_network_sort(std::span<kv32>(big), less));
  scalar_guard g(true);
  std::vector<kv32> v{{2, 0}, {1, 1}};
  EXPECT_FALSE(simd::stable_network_sort(std::span<kv32>(v), less));
}

// --- histograms ------------------------------------------------------------

void check_histogram_u16(std::size_t n, std::size_t num_buckets,
                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint16_t> ids(n);
  for (auto& x : ids)
    x = static_cast<std::uint16_t>(rng() % num_buckets);
  std::vector<std::size_t> want(num_buckets, 0);
  for (const std::uint16_t id : ids) ++want[id];

  for (const bool scalar : {false, true}) {
    scalar_guard g(scalar);
    std::vector<std::size_t> got(num_buckets, 0);
    simd::histogram_u16(ids.data(), n, got.data(), num_buckets);
    ASSERT_EQ(got, want) << "n=" << n << " buckets=" << num_buckets
                         << " scalar=" << scalar;
  }
}

TEST(SimdHistogram, U16MatchesScalarReference) {
  // Sizes straddle the sub-histogram gate (n >= 4 * buckets) and the
  // 16-lane main-loop tail.
  for (const std::size_t nb : {std::size_t{2}, std::size_t{256},
                               std::size_t{2048}}) {
    check_histogram_u16(0, nb, 1);
    check_histogram_u16(7, nb, 2);
    check_histogram_u16(4 * nb - 1, nb, 3);
    check_histogram_u16(4 * nb + 13, nb, 4);
    check_histogram_u16(65537, nb, 5);
  }
}

template <typename K>
void check_histogram_digit(std::size_t n, int shift, K mask,
                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<K> keys(n);
  for (auto& x : keys) x = static_cast<K>(rng());
  const std::size_t num_buckets = static_cast<std::size_t>(mask) + 1;
  std::vector<std::size_t> want(num_buckets, 0);
  for (const K k : keys) ++want[(k >> shift) & mask];

  for (const bool scalar : {false, true}) {
    scalar_guard g(scalar);
    std::vector<std::size_t> got(num_buckets, 0);
    simd::histogram_digit(keys.data(), n, shift, mask, got.data());
    ASSERT_EQ(got, want) << "n=" << n << " shift=" << shift
                         << " scalar=" << scalar;
  }
}

TEST(SimdHistogram, DigitU32MatchesScalarReference) {
  for (const int shift : {0, 8, 24})
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{15}, std::size_t{1023},
          std::size_t{100003}})
      check_histogram_digit<std::uint32_t>(n, shift, 0xFFu, 11 + shift);
  // Sub-histogram gate boundary at 11-bit radix (2048 buckets).
  check_histogram_digit<std::uint32_t>(4 * 2048 + 9, 16, 0x7FFu, 17);
}

TEST(SimdHistogram, DigitU64MatchesScalarReference) {
  for (const int shift : {0, 32, 56})
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{9}, std::size_t{1023},
          std::size_t{100003}})
      check_histogram_digit<std::uint64_t>(n, shift, std::uint64_t{0xFF},
                                           23 + shift);
}

}  // namespace
