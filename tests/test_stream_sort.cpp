// Differential + property battery for the streaming serving layer
// (stream_sort.hpp). The contract under test: finish() is byte-identical
// to one-shot dovetail::sort over the concatenation of the pushed chunks —
// across chunk-boundary edge cases (empty/singleton chunks, one giant
// chunk, adversarial sizes straddling parallel_crossover_n), with
// stability preserved through the k-way tree merge, for flat, typed
// (double incl. NaN/±0), wide (u128) and string (non-exhaustive prefix
// codec) keys, with and without push-time run compaction, and with warm
// pool reuse across consecutive streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "dovetail/core/stream_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/record.hpp"
#include "test_util.hpp"

using namespace dovetail;

namespace {

using u128 = unsigned __int128;

gen::distribution unif_dist() { return {gen::dist_kind::uniform, 1e6, "U"}; }
gen::distribution zipf_dist() { return {gen::dist_kind::zipfian, 1.2, "Z"}; }

// One-shot front-door reference over the full input.
template <typename Rec, typename KeyFn>
std::vector<Rec> one_shot(std::vector<Rec> input, const KeyFn& key) {
  sort_workspace ws;
  auto_sort_options opt;
  opt.workspace = &ws;
  dovetail::sort(std::span<Rec>(input), key, opt);
  return input;
}

// Push `input` into `s` in chunks of the given sizes (must sum to
// input.size()), then finish and return the result.
template <typename Rec, typename KeyFn>
std::vector<Rec> stream_in_chunks(const std::vector<Rec>& input,
                                  const std::vector<std::size_t>& chunks,
                                  stream_sorter<Rec, KeyFn>& s) {
  std::size_t off = 0;
  for (const std::size_t c : chunks) {
    s.push(std::span<const Rec>(input.data() + off, c));
    off += c;
  }
  EXPECT_EQ(off, input.size()) << "chunk plan must cover the input";
  return s.finish();
}

// Random chunk plan covering n records: sizes in [0, max_chunk].
std::vector<std::size_t> random_chunks(std::size_t n, std::size_t max_chunk,
                                       std::uint64_t seed) {
  std::vector<std::size_t> chunks;
  std::size_t off = 0, i = 0;
  while (off < n) {
    std::size_t c = static_cast<std::size_t>(
        par::rand_range(seed, i++, static_cast<std::uint64_t>(max_chunk + 1)));
    c = std::min(c, n - off);
    chunks.push_back(c);
    off += c;
  }
  return chunks;
}

}  // namespace

// ---------------------------------------------------------------------------
// Basic shapes.

TEST(StreamSort, EmptyStreamFinishesEmpty) {
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.finish().empty());
}

TEST(StreamSort, OnlyEmptyChunks) {
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  for (int i = 0; i < 5; ++i) s.push(std::span<const kv32>{});
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.finish().empty());
}

TEST(StreamSort, OneGiantChunkMatchesOneShot) {
  const auto input = gen::generate_records<kv32>(zipf_dist(), 120'000, 31);
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got = stream_in_chunks(input, {input.size()}, s);
  EXPECT_EQ(got, one_shot(input, key_of_kv32));
}

TEST(StreamSort, SingletonAndEmptyChunksInterleaved) {
  const auto input = gen::generate_records<kv32>(unif_dist(), 257, 32);
  std::vector<std::size_t> chunks;
  for (std::size_t i = 0; i < input.size(); ++i) {
    chunks.push_back(1);
    if (i % 3 == 0) chunks.push_back(0);  // empty chunks between singletons
  }
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got = stream_in_chunks(input, chunks, s);
  EXPECT_EQ(got, one_shot(input, key_of_kv32));
}

TEST(StreamSort, ChunkSizesStraddlingParallelCrossover) {
  const std::size_t xover = dispatch_policy{}.parallel_crossover_n;
  const std::vector<std::size_t> plan = {xover - 1, xover, xover + 1, 513,
                                         xover / 2, 1, 0, xover - 1};
  std::size_t n = 0;
  for (const std::size_t c : plan) n += c;
  const auto input = gen::generate_records<kv32>(zipf_dist(), n, 33);
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got = stream_in_chunks(input, plan, s);
  EXPECT_EQ(got, one_shot(input, key_of_kv32));
}

// ---------------------------------------------------------------------------
// Stability through the tree merge.

TEST(StreamSort, AllEqualKeysKeepStreamOrder) {
  constexpr std::size_t kN = 20'000;
  std::vector<kv32> input(kN);
  for (std::size_t i = 0; i < kN; ++i)
    input[i] = {42u, static_cast<std::uint32_t>(i)};
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got =
      stream_in_chunks(input, random_chunks(kN, 700, 77), s);
  // Stable order of an all-equal stream is the stream order itself.
  EXPECT_EQ(got, input);
}

TEST(StreamSort, FewDistinctKeysStayStableAcrossManyChunks) {
  constexpr std::size_t kN = 50'000;
  std::vector<kv32> input(kN);
  for (std::size_t i = 0; i < kN; ++i)
    input[i] = {static_cast<std::uint32_t>(par::hash64(i) % 7),
                static_cast<std::uint32_t>(i)};
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got = stream_in_chunks(input, random_chunks(kN, 999, 78), s);
  EXPECT_TRUE(dtt::sorted_by_key(std::span<const kv32>(got), key_of_kv32));
  EXPECT_TRUE(
      dtt::stable_by_index_value(std::span<const kv32>(got), key_of_kv32));
  EXPECT_EQ(got, one_shot(input, key_of_kv32));
}

// ---------------------------------------------------------------------------
// Typed, wide and string keys.

TEST(StreamSort, DoubleKeysWithNanAndSignedZero) {
  std::vector<tkv<double>> input;
  const double special[] = {0.0,
                            -0.0,
                            std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::denorm_min(),
                            -std::numeric_limits<double>::denorm_min(),
                            1.5,
                            -1.5};
  for (std::size_t i = 0; i < 4'000; ++i) {
    double k;
    if (i % 8 == 0) {
      k = special[i % std::size(special)];
    } else {
      k = (static_cast<double>(par::hash64(i) % 2'000) - 1'000.0) / 16.0;
    }
    input.push_back({k, static_cast<std::uint32_t>(i)});
  }
  stream_sorter<tkv<double>, decltype(key_of_tkv<double>)> s(
      {}, key_of_tkv<double>);
  const auto got = stream_in_chunks(input, random_chunks(input.size(), 257, 79),
                                    s);
  const auto want = one_shot(input, key_of_tkv<double>);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Compare bit patterns: NaN != NaN under operator==, but byte-identical
    // is exactly what the contract promises.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].key),
              std::bit_cast<std::uint64_t>(want[i].key))
        << "position " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "position " << i;
  }
}

TEST(StreamSort, WideU128MatchesOneShot) {
  // 4 entropy bits in word 0: fat equal-prefix segments force the refine
  // driver inside every chunk sort, and word-level ties in the merge.
  const auto input = gen::generate_wide_records<u128>(zipf_dist(), 60'000,
                                                      91, 4);
  stream_sorter<tkv<u128>, decltype(key_of_tkv<u128>)> s({},
                                                         key_of_tkv<u128>);
  const auto got =
      stream_in_chunks(input, random_chunks(input.size(), 7'000, 92), s);
  EXPECT_EQ(got, one_shot(input, key_of_tkv<u128>));
}

TEST(StreamSort, StringKeysUseTheNonExhaustiveTieBreak) {
  // The string codec encodes a fixed prefix: strings agreeing on the whole
  // prefix tie on every codec word and must fall back to true-key `<` in
  // the merge, exactly like the refine driver's final round.
  auto input = gen::generate_string_keys(zipf_dist(), 20'000, 93, 4);
  // Inject shared-prefix families that differ only past the encoded prefix.
  for (std::size_t i = 0; i < input.size(); i += 50) {
    input[i] = "commonprefix_commonprefix_" + std::to_string(i % 97);
  }
  stream_sorter<std::string> s;
  const auto got =
      stream_in_chunks(input, random_chunks(input.size(), 1'500, 94), s);
  const auto want = one_shot(input, identity_key{});
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// Run compaction and reuse.

TEST(StreamSort, CompactionBoundsPendingRuns) {
  const auto input = gen::generate_records<kv32>(unif_dist(), 40'000, 95);
  stream_options opt;
  opt.max_pending_runs = 3;
  stream_sorter<kv32, decltype(key_of_kv32)> s(opt, key_of_kv32);
  std::size_t off = 0;
  const auto chunks = random_chunks(input.size(), 1'024, 96);
  for (const std::size_t c : chunks) {
    s.push(std::span<const kv32>(input.data() + off, c));
    off += c;
    EXPECT_LE(s.pending_runs(), 3u);
  }
  EXPECT_EQ(s.finish(), one_shot(input, key_of_kv32));
}

TEST(StreamSort, ReusableAfterFinish) {
  const auto a = gen::generate_records<kv32>(unif_dist(), 9'000, 97);
  const auto b = gen::generate_records<kv32>(zipf_dist(), 11'000, 98);
  stream_sorter<kv32, decltype(key_of_kv32)> s({}, key_of_kv32);
  const auto got_a = stream_in_chunks(a, random_chunks(a.size(), 500, 99), s);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.pending_runs(), 0u);
  const auto got_b = stream_in_chunks(b, random_chunks(b.size(), 800, 100), s);
  EXPECT_EQ(got_a, one_shot(a, key_of_kv32));
  EXPECT_EQ(got_b, one_shot(b, key_of_kv32));
}

TEST(StreamSort, WarmPoolSecondStreamAllocatesNothing) {
  workspace_pool pool(1);
  pool.prewarm();
  const auto input = gen::generate_records<kv64>(unif_dist(), 30'000, 101);
  const auto chunks = random_chunks(input.size(), 4'096, 102);

  const auto run = [&](sort_stats* st) {
    stream_options opt;
    opt.pool = &pool;
    opt.num_threads = 1;  // deterministic slab usage across rounds
    opt.stats = st;
    stream_sorter<kv64, decltype(key_of_kv64)> s(opt, key_of_kv64);
    std::size_t off = 0;
    for (const std::size_t c : chunks) {
      s.push(std::span<const kv64>(input.data() + off, c));
      off += c;
    }
    return s.finish();
  };

  sort_stats warm_st;
  const auto first = run(&warm_st);
  sort_stats steady_st;
  const auto second = run(&steady_st);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, one_shot(input, key_of_kv64));
  EXPECT_EQ(steady_st.workspace_allocations.load(), 0u)
      << "an identical second stream on a warm pool must not allocate "
         "arena or slab memory";
  EXPECT_EQ(pool.creations(), 0u) << "prewarm covers the only arena";
  EXPECT_EQ(pool.checkouts(), pool.pool_hits() + pool.creations());
}

// ---------------------------------------------------------------------------
// Accounting.

TEST(StreamSort, ChunkAndMergeCountersAccumulate) {
  sort_stats st;
  stream_options opt;
  opt.stats = &st;
  stream_sorter<kv32, decltype(key_of_kv32)> s(opt, key_of_kv32);
  const auto input = gen::generate_records<kv32>(unif_dist(), 8'000, 103);
  s.push(std::span<const kv32>(input.data(), 3'000));
  s.push(std::span<const kv32>{});  // counted, stores no run
  s.push(std::span<const kv32>(input.data() + 3'000, 5'000));
  EXPECT_EQ(st.stream_chunks.load(), 3u);
  EXPECT_EQ(s.pending_runs(), 2u);
  const auto got = s.finish();
  EXPECT_EQ(got.size(), input.size());
  // One merge level over two runs: every record rides through once.
  EXPECT_EQ(st.stream_merge_records.load(), input.size());
  st.reset();
  EXPECT_EQ(st.stream_chunks.load(), 0u);
  EXPECT_EQ(st.stream_merge_records.load(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized differential (the dedicated fuzz arm rides in
// test_fuzz_differential.cpp with the mixed-fragment generator).

TEST(StreamSort, RandomChunkPlansMatchOneShot) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::size_t n = 1'000 + 7'919 * seed;
    const auto input = gen::generate_records<kv32>(
        seed % 2 == 0 ? unif_dist() : zipf_dist(), n, 200 + seed);
    stream_options opt;
    opt.max_pending_runs = seed % 3 == 0 ? 4 : 0;
    stream_sorter<kv32, decltype(key_of_kv32)> s(opt, key_of_kv32);
    const auto got = stream_in_chunks(
        input, random_chunks(n, 1 + 512 * (seed + 1), 300 + seed), s);
    EXPECT_EQ(got, one_shot(input, key_of_kv32)) << "seed " << seed;
  }
}
