// Morton-order (z-curve) sort example (the paper's second application,
// Sec 6.2). Generates a Varden-like varying-density point set, sorts it
// along the z-curve with DovetailSort, and demonstrates the locality of the
// result by measuring the average coordinate distance between neighbours.
// The second phase repeats the exercise at high precision: 3 x 42-bit
// coordinates interleaved into a 126-bit z-value carried in __uint128_t,
// sorted by dovetail::sort through the wide (multi-word) key path.
//   ./build/examples/morton_sort [num_points]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "dovetail/dovetail.hpp"

namespace app = dovetail::app;
namespace gen = dovetail::gen;

namespace {
double avg_neighbor_distance(const std::vector<app::point2d>& pts) {
  double sum = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dx = static_cast<double>(pts[i].x) - pts[i - 1].x;
    const double dy = static_cast<double>(pts[i].y) - pts[i - 1].y;
    sum += std::sqrt(dx * dx + dy * dy);
  }
  return sum / static_cast<double>(pts.size() - 1);
}

double avg_neighbor_distance_42(const std::vector<app::point3d42>& pts) {
  double sum = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dx = static_cast<double>(pts[i].x) -
                      static_cast<double>(pts[i - 1].x);
    const double dy = static_cast<double>(pts[i].y) -
                      static_cast<double>(pts[i - 1].y);
    const double dz = static_cast<double>(pts[i].z) -
                      static_cast<double>(pts[i - 1].z);
    sum += std::sqrt(dx * dx + dy * dy + dz * dz);
  }
  return sum / static_cast<double>(pts.size() - 1);
}

// Varden-like 42-bit point cloud: the 21-bit clustered set upscaled into
// the high-precision cube with deterministic sub-cell jitter, so cluster
// structure survives at the new scale.
std::vector<app::point3d42> varden_points_3d42(std::size_t n) {
  const auto base = gen::varden_points_3d(n, 1000, 21);
  std::vector<app::point3d42> pts(n);
  dovetail::par::parallel_for(0, n, [&](std::size_t i) {
    const auto jit = [&](std::uint32_t c, std::uint64_t salt) {
      return (static_cast<std::uint64_t>(c) << 21) |
             dovetail::par::rand_range(99, 3 * i + salt, 1ull << 21);
    };
    pts[i] = {jit(base[i].x, 0), jit(base[i].y, 1), jit(base[i].z, 2)};
  });
  return pts;
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 5'000'000;
  std::printf("Morton sort: n=%zu points, threads=%d\n", n,
              dovetail::par::num_workers());

  auto pts = gen::varden_points_2d(n, 1000, 16);
  std::printf("  avg neighbour distance before: %.1f\n",
              avg_neighbor_distance(pts));

  dovetail::timer t;
  auto sorted = app::morton_sort_2d(
      std::span<const app::point2d>(pts),
      [](auto span, auto key) { dovetail::dovetail_sort(span, key); });
  std::printf("  z-order sort: %.3fs\n", t.seconds());
  std::printf("  avg neighbour distance after:  %.1f (smaller = better "
              "locality)\n",
              avg_neighbor_distance(sorted));

  // Verify z-monotonicity.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (app::morton2d_32(sorted[i - 1].x, sorted[i - 1].y) >
        app::morton2d_32(sorted[i].x, sorted[i].y)) {
      std::printf("  NOT z-ordered at %zu!\n", i);
      return 1;
    }
  }
  std::printf("  output verified z-ordered\n");

  // High-precision phase: 3 x 42-bit coordinates -> 126-bit z-values in
  // __uint128_t, sorted through the wide-key front door.
  std::printf("Morton sort, high precision: 42-bit coords, 126-bit keys\n");
  auto pts42 = varden_points_3d42(n);
  std::printf("  avg neighbour distance before: %.3e\n",
              avg_neighbor_distance_42(pts42));
  dovetail::timer t42;
  auto sorted42 = app::morton_sort_3d42(
      std::span<const app::point3d42>(pts42),
      [](auto span, auto key) { dovetail::sort(span, key); });
  std::printf("  z-order sort (126-bit): %.3fs\n", t42.seconds());
  std::printf("  avg neighbour distance after:  %.3e\n",
              avg_neighbor_distance_42(sorted42));
  for (std::size_t i = 1; i < sorted42.size(); ++i) {
    if (app::morton3d_126(sorted42[i - 1].x, sorted42[i - 1].y,
                          sorted42[i - 1].z) >
        app::morton3d_126(sorted42[i].x, sorted42[i].y, sorted42[i].z)) {
      std::printf("  NOT z-ordered at %zu!\n", i);
      return 1;
    }
  }
  std::printf("  output verified z-ordered (126-bit keys)\n");
  return 0;
}
