// Morton-order (z-curve) sort example (the paper's second application,
// Sec 6.2). Generates a Varden-like varying-density point set, sorts it
// along the z-curve with DovetailSort, and demonstrates the locality of the
// result by measuring the average coordinate distance between neighbours.
//   ./build/examples/morton_sort [num_points]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "dovetail/dovetail.hpp"

namespace app = dovetail::app;
namespace gen = dovetail::gen;

namespace {
double avg_neighbor_distance(const std::vector<app::point2d>& pts) {
  double sum = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dx = static_cast<double>(pts[i].x) - pts[i - 1].x;
    const double dy = static_cast<double>(pts[i].y) - pts[i - 1].y;
    sum += std::sqrt(dx * dx + dy * dy);
  }
  return sum / static_cast<double>(pts.size() - 1);
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 5'000'000;
  std::printf("Morton sort: n=%zu points, threads=%d\n", n,
              dovetail::par::num_workers());

  auto pts = gen::varden_points_2d(n, 1000, 16);
  std::printf("  avg neighbour distance before: %.1f\n",
              avg_neighbor_distance(pts));

  dovetail::timer t;
  auto sorted = app::morton_sort_2d(
      std::span<const app::point2d>(pts),
      [](auto span, auto key) { dovetail::dovetail_sort(span, key); });
  std::printf("  z-order sort: %.3fs\n", t.seconds());
  std::printf("  avg neighbour distance after:  %.1f (smaller = better "
              "locality)\n",
              avg_neighbor_distance(sorted));

  // Verify z-monotonicity.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (app::morton2d_32(sorted[i - 1].x, sorted[i - 1].y) >
        app::morton2d_32(sorted[i].x, sorted[i].y)) {
      std::printf("  NOT z-ordered at %zu!\n", i);
      return 1;
    }
  }
  std::printf("  output verified z-ordered\n");
  return 0;
}
