// Quickstart: sort plain integers, (key, value) records, typed keys
// (floats, via the key-codec layer) and SoA key/value arrays, and verify
// the results. Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "dovetail/dovetail.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 5'000'000;
  std::printf("DovetailSort quickstart: n=%zu, threads=%d\n", n,
              dovetail::par::num_workers());

  // 1) Plain unsigned keys (Zipfian: lots of duplicates, DTSort's specialty).
  auto keys = dovetail::gen::generate_keys<std::uint32_t>(
      {dovetail::gen::dist_kind::zipfian, 1.2, "Zipf-1.2"}, n);
  {
    dovetail::timer t;
    dovetail::dovetail_sort(std::span<std::uint32_t>(keys));
    std::printf("  sorted %zu uint32 keys in %.3fs -> %s\n", n, t.seconds(),
                std::is_sorted(keys.begin(), keys.end()) ? "sorted"
                                                         : "NOT SORTED!");
  }

  // 2) Records with payloads: sort stably by an unsigned key function.
  auto recs = dovetail::gen::generate_records<dovetail::kv64>(
      {dovetail::gen::dist_kind::exponential, 5, "Exp-5"}, n);
  {
    dovetail::timer t;
    dovetail::dovetail_sort(std::span<dovetail::kv64>(recs),
                            dovetail::key_of_kv64);
    bool ok = true;
    for (std::size_t i = 1; i < recs.size() && ok; ++i) {
      if (recs[i - 1].key > recs[i].key) ok = false;
      // Stability: equal keys keep their original (index) order.
      if (recs[i - 1].key == recs[i].key &&
          recs[i - 1].value >= recs[i].value)
        ok = false;
    }
    std::printf("  sorted %zu kv64 records in %.3fs -> %s\n", n, t.seconds(),
                ok ? "sorted + stable" : "BROKEN!");
  }

  // 3) Tuning knobs (see dovetail/core/sort_options.hpp).
  dovetail::sort_options opt;
  opt.gamma = 10;              // digit width
  opt.base_case = 1 << 12;     // comparison-sort threshold
  opt.detect_heavy = true;     // sampling-based duplicate detection
  dovetail::dovetail_sort(std::span<std::uint32_t>(keys), opt);
  std::printf("  re-sorted with custom options -> %s\n",
              std::is_sorted(keys.begin(), keys.end()) ? "ok" : "BROKEN!");

  // 4) Typed keys through the front door (dovetail/core/key_codec.hpp):
  // floats sort by IEEE total order via an order-preserving bit encoding —
  // same radix kernels, no comparator.
  auto floats = dovetail::gen::generate_typed_keys<float>(
      {dovetail::gen::dist_kind::uniform, 1e6, "Unif-1e6"}, n);
  {
    dovetail::timer t;
    dovetail::sort(std::span<float>(floats));
    std::printf("  sorted %zu floats in %.3fs -> %s\n", n, t.seconds(),
                std::is_sorted(floats.begin(), floats.end())
                    ? "sorted"
                    : "NOT SORTED!");
  }

  // 5) SoA: sort a key array and carry a parallel value array along with
  // one gather, instead of dragging wide rows through every radix pass.
  std::vector<std::uint32_t> ids(n);
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<std::uint32_t>(
        dovetail::par::rand_range(99, i, 100000));
    scores[i] = floats[i];
  }
  {
    dovetail::timer t;
    dovetail::sort_by_key(std::span<std::uint32_t>(ids),
                          std::span<float>(scores));
    std::printf("  sort_by_key on %zu (u32 id, float score) pairs in "
                "%.3fs -> %s\n",
                n, t.seconds(),
                std::is_sorted(ids.begin(), ids.end()) ? "sorted"
                                                       : "NOT SORTED!");
  }

  // 6) rank = stable argsort: the permutation, not the data.
  const auto order = dovetail::rank(std::span<const float>(floats));
  bool rank_ok = order.size() == n;
  for (std::size_t i = 0; rank_ok && i < n; ++i) rank_ok = order[i] == i;
  std::printf("  rank over sorted floats is the identity -> %s\n",
              rank_ok ? "ok" : "BROKEN!");
  return 0;
}
