// Quickstart: sort plain integers and (key, value) records with
// DovetailSort, and verify the result. Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/record.hpp"
#include "dovetail/util/timer.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 5'000'000;
  std::printf("DovetailSort quickstart: n=%zu, threads=%d\n", n,
              dovetail::par::num_workers());

  // 1) Plain unsigned keys (Zipfian: lots of duplicates, DTSort's specialty).
  auto keys = dovetail::gen::generate_keys<std::uint32_t>(
      {dovetail::gen::dist_kind::zipfian, 1.2, "Zipf-1.2"}, n);
  {
    dovetail::timer t;
    dovetail::dovetail_sort(std::span<std::uint32_t>(keys));
    std::printf("  sorted %zu uint32 keys in %.3fs -> %s\n", n, t.seconds(),
                std::is_sorted(keys.begin(), keys.end()) ? "sorted"
                                                         : "NOT SORTED!");
  }

  // 2) Records with payloads: sort stably by an unsigned key function.
  auto recs = dovetail::gen::generate_records<dovetail::kv64>(
      {dovetail::gen::dist_kind::exponential, 5, "Exp-5"}, n);
  {
    dovetail::timer t;
    dovetail::dovetail_sort(std::span<dovetail::kv64>(recs),
                            dovetail::key_of_kv64);
    bool ok = true;
    for (std::size_t i = 1; i < recs.size() && ok; ++i) {
      if (recs[i - 1].key > recs[i].key) ok = false;
      // Stability: equal keys keep their original (index) order.
      if (recs[i - 1].key == recs[i].key &&
          recs[i - 1].value >= recs[i].value)
        ok = false;
    }
    std::printf("  sorted %zu kv64 records in %.3fs -> %s\n", n, t.seconds(),
                ok ? "sorted + stable" : "BROKEN!");
  }

  // 3) Tuning knobs (see dovetail/core/sort_options.hpp).
  dovetail::sort_options opt;
  opt.gamma = 10;              // digit width
  opt.base_case = 1 << 12;     // comparison-sort threshold
  opt.detect_heavy = true;     // sampling-based duplicate detection
  dovetail::dovetail_sort(std::span<std::uint32_t>(keys), opt);
  std::printf("  re-sorted with custom options -> %s\n",
              std::is_sorted(keys.begin(), keys.end()) ? "ok" : "BROKEN!");
  return 0;
}
