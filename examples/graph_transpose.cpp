// Graph transpose example (the paper's first application, Sec 6.2).
// Generates a power-law graph (skewed in-degrees = heavy duplicate keys),
// transposes it with DovetailSort and with the plain MSD radix baseline,
// verifies the results agree, and reports timings.
//   ./build/examples/graph_transpose [num_edges]
#include <cstdio>
#include <cstdlib>

#include "dovetail/dovetail.hpp"

namespace app = dovetail::app;
namespace gen = dovetail::gen;

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 5'000'000;
  const auto v = static_cast<std::uint32_t>(std::max<std::size_t>(
      1000, m / 16));
  std::printf("Graph transpose: |V|=%u, |E|=%zu, threads=%d\n", v, m,
              dovetail::par::num_workers());

  constexpr auto dt = [](auto span, auto key) {
    dovetail::dovetail_sort(span, key);
  };
  constexpr auto plis = [](auto span, auto key) {
    dovetail::baseline::msd_radix_sort(span, key);
  };

  auto g = app::build_csr(v, gen::powerlaw_graph(v, m, 1.2), dt);
  std::printf("  max in-degree hint: power-law(1.2) destinations\n");

  dovetail::timer t1;
  auto gt_dt = app::transpose(g, dt);
  const double dt_time = t1.seconds();

  dovetail::timer t2;
  auto gt_plis = app::transpose(g, plis);
  const double plis_time = t2.seconds();

  const bool agree = gt_dt.offsets == gt_plis.offsets &&
                     gt_dt.targets == gt_plis.targets;
  std::printf("  DTSort transpose: %.3fs\n", dt_time);
  std::printf("  PLIS   transpose: %.3fs\n", plis_time);
  std::printf("  results agree: %s\n", agree ? "yes" : "NO (bug!)");

  // Round-trip sanity: (G^T)^T has the same edge count and degrees as G.
  auto gtt = app::transpose(gt_dt, dt);
  std::printf("  round-trip edges: %zu (expected %zu)\n", gtt.num_edges(),
              g.num_edges());
  return agree ? 0 : 1;
}
