// Duplicate-frequency analytics via sorting (a semisort-style workload,
// cf. Sec 2.5). Sorts a heavy-duplicate Zipfian stream with DovetailSort,
// then scans runs of equal keys to produce a frequency histogram — the kind
// of groupby/count kernel the paper's heavy-key machinery targets. Also
// contrasts DTSort against the plain radix baseline on this input.
//   ./build/examples/duplicate_histogram [n]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "dovetail/dovetail.hpp"

namespace gen = dovetail::gen;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 10'000'000;
  std::printf("Duplicate histogram: n=%zu Zipf-1.5 keys, threads=%d\n", n,
              dovetail::par::num_workers());

  const gen::distribution d{gen::dist_kind::zipfian, 1.5, "Zipf-1.5"};
  auto keys = gen::generate_keys<std::uint64_t>(d, n);
  auto keys2 = keys;

  dovetail::timer t1;
  dovetail::dovetail_sort(std::span<std::uint64_t>(keys));
  const double dt_time = t1.seconds();

  dovetail::timer t2;
  dovetail::baseline::msd_radix_sort(std::span<std::uint64_t>(keys2));
  const double plain_time = t2.seconds();

  // Run-length scan over the sorted keys = frequency histogram.
  struct freq {
    std::uint64_t key;
    std::size_t count;
  };
  std::vector<freq> top;
  std::size_t i = 0, distinct = 0;
  while (i < keys.size()) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    ++distinct;
    top.push_back({keys[i], j - i});
    i = j;
  }
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(5, top.size()),
                    top.end(),
                    [](const freq& a, const freq& b) { return a.count > b.count; });

  std::printf("  distinct keys: %zu\n", distinct);
  std::printf("  top-5 heavy keys (these skip DTSort's recursion):\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(5, top.size()); ++k)
    std::printf("    key %016llx  count %zu (%.1f%%)\n",
                static_cast<unsigned long long>(top[k].key), top[k].count,
                100.0 * static_cast<double>(top[k].count) / static_cast<double>(n));
  std::printf("  DTSort: %.3fs | plain MSD radix: %.3fs | speedup %.2fx\n",
              dt_time, plain_time, plain_time / dt_time);
  return 0;
}
