// Buffered LSD radix sort — the stand-in for RADULS / RADULS2 (RD in the
// paper's Tab 2/3). RADULS's defining trick is software write-buffering:
// instead of scattering records one by one to 256 destinations (a TLB/cache
// nightmare), each block appends records to small per-bucket staging
// buffers and flushes a whole buffer at once when it fills, so writes to
// the output hit memory in contiguous bursts.
//
// That trick now lives in the unified distribution engine as the `buffered`
// scatter strategy (distribute.hpp), available to every radix layer; this
// baseline is simply the classic LSD sort pinned to it. The paper
// benchmarks RD on 64-bit records only (its kernels require records padded
// to 64-bit multiples); we keep the same spirit but accept any trivially
// copyable record. Stable, like RADULS.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <type_traits>

#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/core/sort_options.hpp"
#include "dovetail/core/workspace.hpp"

namespace dovetail::baseline {

struct buffered_lsd_options {
  int gamma = 8;                   // digit width; 256 buckets per pass
  std::size_t buffer_bytes = 256;  // staging buffer per bucket (per block)
  sort_workspace* workspace = nullptr;  // reuse across sorts; may be null
  sort_stats* stats = nullptr;          // engine counters; may be null
};

template <typename Rec, typename KeyFn>
void buffered_lsd_radix_sort(std::span<Rec> data, const KeyFn& key,
                             const buffered_lsd_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  lsd_options lopt;
  lopt.gamma = std::clamp(opt.gamma, 1, 12);
  lopt.scatter = scatter_strategy::buffered;
  lopt.scatter_buffer_bytes = opt.buffer_bytes;
  lopt.workspace = opt.workspace;
  lopt.stats = opt.stats;
  lsd_radix_sort(data, key, lopt);
}

template <typename K>
  requires std::is_unsigned_v<K>
void buffered_lsd_radix_sort(std::span<K> data,
                             const buffered_lsd_options& opt = {}) {
  buffered_lsd_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
