// Buffered LSD radix sort — the stand-in for RADULS / RADULS2 (RD in the
// paper's Tab 2/3). RADULS's defining trick is software write-buffering:
// instead of scattering records one by one to 256 destinations (a TLB/cache
// nightmare), each block appends records to small per-bucket staging
// buffers and flushes a whole buffer at once when it fills, so writes to
// the output hit memory in contiguous bursts.
//
// The paper benchmarks RD on 64-bit records only (its kernels require
// records padded to 64-bit multiples); we keep the same spirit but accept
// any trivially copyable record. Stable, like RADULS.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail::baseline {

struct buffered_lsd_options {
  int gamma = 8;                 // digit width; 256 buckets per pass
  std::size_t buffer_bytes = 256;  // staging buffer per bucket (per block)
};

namespace detail {

template <typename Rec, typename KeyFn>
void buffered_pass(std::span<const Rec> in, std::span<Rec> out,
                   const KeyFn& key, int shift, std::size_t zones,
                   std::uint64_t zmask, std::size_t buf_records) {
  const std::size_t n = in.size();
  const auto p = static_cast<std::size_t>(par::num_workers());
  const std::size_t min_block = std::max<std::size_t>(8 * zones, 16384);
  const std::size_t nblocks = std::clamp<std::size_t>(n / min_block, 1, 8 * p);
  const std::size_t bsize = (n + nblocks - 1) / nblocks;

  auto bucket_of = [&](const Rec& r) -> std::size_t {
    return (static_cast<std::uint64_t>(key(r)) >> shift) & zmask;
  };

  // Pass 1: per-block counts.
  std::vector<std::size_t> counts(nblocks * zones, 0);
  par::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * zones;
        for (std::size_t i = lo; i < hi; ++i) ++row[bucket_of(in[i])];
      },
      1);

  // Offsets per (bucket, block) in stable order.
  std::vector<std::size_t> totals(zones, 0);
  par::parallel_for(0, zones, [&](std::size_t z) {
    std::size_t c = 0;
    for (std::size_t b = 0; b < nblocks; ++b) c += counts[b * zones + z];
    totals[z] = c;
  });
  std::size_t acc = 0;
  for (std::size_t z = 0; z < zones; ++z) {
    const std::size_t c = totals[z];
    totals[z] = acc;
    acc += c;
  }
  par::parallel_for(0, zones, [&](std::size_t z) {
    std::size_t cur = totals[z];
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t c = counts[b * zones + z];
      counts[b * zones + z] = cur;
      cur += c;
    }
  });

  // Pass 2: buffered scatter. Records are staged per bucket and flushed in
  // bursts of `buf_records` (the RADULS trick).
  par::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * zones;
        std::vector<Rec> stage(zones * buf_records);
        std::vector<std::uint32_t> fill(zones, 0);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t z = bucket_of(in[i]);
          stage[z * buf_records + fill[z]] = in[i];
          if (++fill[z] == buf_records) {
            std::memcpy(out.data() + row[z], stage.data() + z * buf_records,
                        buf_records * sizeof(Rec));
            row[z] += buf_records;
            fill[z] = 0;
          }
        }
        for (std::size_t z = 0; z < zones; ++z) {
          if (fill[z] != 0) {
            std::memcpy(out.data() + row[z], stage.data() + z * buf_records,
                        fill[z] * sizeof(Rec));
            row[z] += fill[z];
          }
        }
      },
      1);
}

}  // namespace detail

template <typename Rec, typename KeyFn>
void buffered_lsd_radix_sort(std::span<Rec> data, const KeyFn& key,
                             const buffered_lsd_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::uint64_t maxk = par::reduce_map(
      0, n, std::uint64_t{0},
      [&](std::size_t i) { return static_cast<std::uint64_t>(key(data[i])); },
      [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
  const int bits = bit_width_u64(maxk);
  if (bits == 0) return;

  const int digit = std::clamp(opt.gamma, 1, 12);
  const std::size_t zones = std::size_t{1} << digit;
  const std::uint64_t zmask = zones - 1;
  const int passes = (bits + digit - 1) / digit;
  const std::size_t buf_records =
      std::max<std::size_t>(4, opt.buffer_bytes / sizeof(Rec));

  std::unique_ptr<Rec[]> buf(new Rec[n]);
  std::span<Rec> a = data;
  std::span<Rec> t(buf.get(), n);
  for (int pass = 0; pass < passes; ++pass) {
    detail::buffered_pass(std::span<const Rec>(a.data(), n), t, key,
                          pass * digit, zones, zmask, buf_records);
    std::swap(a, t);
  }
  if (a.data() != data.data())
    par::copy(std::span<const Rec>(a.data(), n), data);
}

template <typename K>
  requires std::is_unsigned_v<K>
void buffered_lsd_radix_sort(std::span<K> data,
                             const buffered_lsd_options& opt = {}) {
  buffered_lsd_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
