// Plain parallel MSD radix sort — the framework of Alg 1 in the paper and
// the stand-in for PLIS (ParlayLib integer sort [10]).
//
// Stable, out-of-place (ping-pong A/T), counting-sort distribution on the
// top digit, parallel recursion per bucket, comparison-sort base case.
// Distribution runs through the unified engine (distribute.hpp) with a
// workspace shared across all recursion levels, so the scatter strategy is
// selectable and repeated sorts on one workspace reuse all O(n) scratch.
// The key range is found with a parallel max-reduce (PLIS behaviour; DTSort
// instead estimates it from samples, Sec 5).
//
// With γ = Θ(sqrt(log r)) and θ = 2^{cγ} this realizes the
// O(n sqrt(log r))-work bound of Thm 4.4. It has no heavy-key handling, so
// it doubles as the "Plain" arm of the Fig 4(a,b) ablation when configured
// identically to DTSort.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "dovetail/core/distribute.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/sort.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail::baseline {

struct radix_options {
  int gamma = 0;                           // 0 = auto: clamp(log2(n)/3, 8, 12)
  std::size_t base_case = std::size_t{1} << 14;
  // Default `direct`: this baseline stands for PLIS (plain ParlayLib
  // integer sort) in the paper's comparison, so it keeps the classic
  // scatter unless the caller opts into `buffered`/`automatic`.
  scatter_strategy scatter = scatter_strategy::direct;
  std::size_t scatter_buffer_bytes = 256;  // buffered staging per bucket
  sort_workspace* workspace = nullptr;     // reuse across sorts; may be null
  sort_stats* stats = nullptr;             // engine counters; may be null
};

namespace detail {

template <typename Rec, typename KeyFn>
class msd_sorter {
 public:
  msd_sorter(std::span<Rec> data, const KeyFn& key, const radix_options& opt)
      : a_(data), key_(key), opt_(opt),
        theta_(std::max<std::size_t>(opt.base_case, 2)) {
    const std::size_t n = std::max<std::size_t>(2, data.size());
    const auto lg = static_cast<int>(ceil_log2(n));
    gamma_ = opt.gamma > 0 ? opt.gamma : std::clamp(lg / 3, 8, 12);
  }

  void run() {
    const std::size_t n = a_.size();
    if (n <= 1) return;
    // Range detection by max-reduce (skips leading zero bits).
    const std::uint64_t maxk = par::reduce_map(
        0, n, std::uint64_t{0},
        [&](std::size_t i) { return keyof(a_[i]); },
        [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
    const int bits = bit_width_u64(maxk);
    if (bits == 0) return;  // all keys are zero
    sort_workspace local_ws;
    ws_ = opt_.workspace != nullptr ? opt_.workspace : &local_ws;
    t_ = ws_->template record_buffer<Rec>(n, opt_.stats);
    sort_rec(0, n, bits, /*in_a=*/true);
    ws_ = nullptr;
  }

 private:
  [[nodiscard]] std::uint64_t keyof(const Rec& r) const {
    return static_cast<std::uint64_t>(key_(r));
  }

  void comparison_base(std::size_t lo, std::size_t hi, bool in_a) {
    const std::size_t n = hi - lo;
    auto cur = (in_a ? a_ : t_).subspan(lo, n);
    if (n > 1) {
      auto comp = [this](const Rec& x, const Rec& y) {
        return key_(x) < key_(y);
      };
      if (n > (std::size_t{1} << 15)) {
        par::merge_sort(cur, (in_a ? t_ : a_).subspan(lo, n), comp);
      } else {
        std::stable_sort(cur.begin(), cur.end(), comp);
      }
    }
    if (!in_a) par::copy(std::span<const Rec>(cur), a_.subspan(lo, n));
  }

  void sort_rec(std::size_t lo, std::size_t hi, int bits, bool in_a) {
    const std::size_t n = hi - lo;
    if (n == 0) return;
    if (bits == 0 || n == 1) {
      if (!in_a)
        par::copy(std::span<const Rec>(t_.subspan(lo, n)), a_.subspan(lo, n));
      return;
    }
    if (n <= theta_) {
      comparison_base(lo, hi, in_a);
      return;
    }
    const int digit = std::min(
        {gamma_, bits, std::max(2, static_cast<int>(floor_log2(n) / 2))});
    const int shift = bits - digit;
    const std::size_t zones = std::size_t{1} << digit;
    const std::uint64_t zmask = zones - 1;

    std::span<Rec> cur = in_a ? a_ : t_;
    std::span<Rec> oth = in_a ? t_ : a_;
    auto bucket_of = [&](const Rec& r) -> std::size_t {
      return (keyof(r) >> shift) & zmask;
    };
    sort_workspace::lease off_lease =
        ws_->acquire((zones + 1) * sizeof(std::size_t), opt_.stats);
    const std::span<std::size_t> offs =
        off_lease.carve<std::size_t>(zones + 1);
    distribute_options dopt;
    dopt.strategy = opt_.scatter;
    dopt.require_stable = true;  // stable MSD relies on stable passes
    dopt.buffer_bytes = opt_.scatter_buffer_bytes;
    dopt.workspace = ws_;
    dopt.stats = opt_.stats;
    distribute(std::span<const Rec>(cur.data() + lo, n), oth.subspan(lo, n),
               zones, bucket_of, offs, dopt);
    par::parallel_for(
        0, zones,
        [&](std::size_t z) {
          sort_rec(lo + offs[z], lo + offs[z + 1], shift, !in_a);
        },
        1);
  }

  std::span<Rec> a_;
  std::span<Rec> t_;
  const KeyFn key_;
  const radix_options opt_;
  sort_workspace* ws_ = nullptr;
  std::size_t theta_;
  int gamma_ = 8;
};

}  // namespace detail

// Stable parallel MSD radix sort (PLIS-like baseline).
template <typename Rec, typename KeyFn>
void msd_radix_sort(std::span<Rec> data, const KeyFn& key,
                    const radix_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  detail::msd_sorter<Rec, KeyFn> s(data, key, opt);
  s.run();
}

template <typename K>
  requires std::is_unsigned_v<K>
void msd_radix_sort(std::span<K> data, const radix_options& opt = {}) {
  msd_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
