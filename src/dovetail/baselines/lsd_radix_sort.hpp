// Classic stable LSD (least-significant-digit) parallel radix sort
// (Sec 2.3): one stable distribution pass per digit, lowest digit first,
// ping-ponging between the input array and a workspace buffer.
//
// O(n * ceil(log r / γ)) work. Included as the textbook baseline the paper
// contrasts the parallel MSD framework against (MSD recursion is preferred
// in parallel because subproblems become independent).
//
// Every pass runs through the unified distribution engine (distribute.hpp),
// so the scatter strategy is selectable: `direct` is the textbook scatter,
// `buffered` staging turns this into the RADULS-style sort that
// buffered_lsd_radix_sort.hpp exposes, and `automatic` picks per pass.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "dovetail/core/distribute.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail::baseline {

struct lsd_options {
  int gamma = 8;  // digit width in bits (256 buckets by default)
  // Default `direct`: this baseline stands for the *textbook* LSD sort in
  // the paper's comparison, so it must not silently adopt the buffered
  // RADULS scatter (that is the RD baseline's identity — see
  // buffered_lsd_radix_sort.hpp). Opt into `buffered`/`automatic` freely
  // when using this sort outside the paper-reproduction benchmarks.
  scatter_strategy scatter = scatter_strategy::direct;
  std::size_t scatter_buffer_bytes = 256;  // buffered staging per bucket
  sort_workspace* workspace = nullptr;     // reuse across sorts; may be null
  sort_stats* stats = nullptr;             // engine counters; may be null
};

template <typename Rec, typename KeyFn>
void lsd_radix_sort(std::span<Rec> data, const KeyFn& key,
                    const lsd_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  if (n <= 1) return;
  auto keyof = [&](const Rec& r) {
    return static_cast<std::uint64_t>(key(r));
  };
  const std::uint64_t maxk = par::reduce_map(
      0, n, std::uint64_t{0}, [&](std::size_t i) { return keyof(data[i]); },
      [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
  const int bits = bit_width_u64(maxk);
  if (bits == 0) return;

  const int digit = std::clamp(opt.gamma, 1, 16);
  const std::size_t zones = std::size_t{1} << digit;
  const std::uint64_t zmask = zones - 1;
  const int passes = (bits + digit - 1) / digit;

  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  std::span<Rec> a = data;
  std::span<Rec> t = ws.record_buffer<Rec>(n, opt.stats);
  sort_workspace::lease off_lease =
      ws.acquire((zones + 1) * sizeof(std::size_t), opt.stats);
  const std::span<std::size_t> offs = off_lease.carve<std::size_t>(zones + 1);

  distribute_options dopt;
  dopt.strategy = opt.scatter;
  dopt.require_stable = true;  // LSD correctness relies on stable passes
  dopt.buffer_bytes = opt.scatter_buffer_bytes;
  dopt.workspace = &ws;
  dopt.stats = opt.stats;
  for (int p = 0; p < passes; ++p) {
    const int shift = p * digit;
    distribute(std::span<const Rec>(a.data(), n), t, zones,
               [&](const Rec& r) -> std::size_t {
                 return (keyof(r) >> shift) & zmask;
               },
               offs, dopt);
    std::swap(a, t);
  }
  if (a.data() != data.data())
    par::copy(std::span<const Rec>(a.data(), n), data);
}

template <typename K>
  requires std::is_unsigned_v<K>
void lsd_radix_sort(std::span<K> data, const lsd_options& opt = {}) {
  lsd_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
