// Classic stable LSD (least-significant-digit) parallel radix sort
// (Sec 2.3): one stable counting-sort pass per digit, lowest digit first,
// ping-ponging between the input array and a temporary buffer.
//
// O(n * ceil(log r / γ)) work. Included as the textbook baseline the paper
// contrasts the parallel MSD framework against (MSD recursion is preferred
// in parallel because subproblems become independent).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "dovetail/core/counting_sort.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail::baseline {

struct lsd_options {
  int gamma = 8;  // digit width in bits (256 buckets by default)
};

template <typename Rec, typename KeyFn>
void lsd_radix_sort(std::span<Rec> data, const KeyFn& key,
                    const lsd_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  if (n <= 1) return;
  auto keyof = [&](const Rec& r) {
    return static_cast<std::uint64_t>(key(r));
  };
  const std::uint64_t maxk = par::reduce_map(
      0, n, std::uint64_t{0}, [&](std::size_t i) { return keyof(data[i]); },
      [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
  const int bits = bit_width_u64(maxk);
  if (bits == 0) return;

  const int digit = std::clamp(opt.gamma, 1, 16);
  const std::size_t zones = std::size_t{1} << digit;
  const std::uint64_t zmask = zones - 1;
  const int passes = (bits + digit - 1) / digit;

  std::unique_ptr<Rec[]> buf(new Rec[n]);
  std::span<Rec> a = data;
  std::span<Rec> t(buf.get(), n);
  for (int p = 0; p < passes; ++p) {
    const int shift = p * digit;
    counting_sort(std::span<const Rec>(a.data(), n), t, zones,
                  [&](const Rec& r) -> std::size_t {
                    return (keyof(r) >> shift) & zmask;
                  });
    std::swap(a, t);
  }
  if (a.data() != data.data())
    par::copy(std::span<const Rec>(a.data(), n), data);
}

template <typename K>
  requires std::is_unsigned_v<K>
void lsd_radix_sort(std::span<K> data, const lsd_options& opt = {}) {
  lsd_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
