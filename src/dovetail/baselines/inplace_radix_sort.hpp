// In-place unstable MSD radix sort (American-flag style) — the stand-in for
// IPS2Ra [6] / RegionsSort [45] in the paper's comparison (Tab 2).
//
// Each node counts the digit histogram in parallel — through the counting
// phase of the unified distribution engine (distribute_histogram), with all
// scratch leased from a sort_workspace — then performs the in-place
// cycle-chasing permutation *serially* (the permutation is the part
// IPS2Ra/RegionsSort parallelize with heavy machinery; keeping it serial
// reproduces their qualitative behaviour on this reproduction's scale:
// in-place, unstable, and load-imbalance-sensitive on skewed inputs such as
// BExp — cf. Sec 6.1 and Appendix C where IPS2Ra scales poorly). Recursion
// over buckets is parallel.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "dovetail/core/distribute.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail::baseline {

struct inplace_radix_options {
  int gamma = 8;                           // digit width (256 buckets)
  std::size_t base_case = std::size_t{1} << 12;
  sort_workspace* workspace = nullptr;     // reuse across sorts; may be null
  sort_stats* stats = nullptr;             // engine counters; may be null
};

namespace detail {

template <typename Rec, typename KeyFn>
void inplace_radix_rec(std::span<Rec> a, const KeyFn& key, int bits,
                       const inplace_radix_options& opt, sort_workspace& ws) {
  const std::size_t n = a.size();
  if (n <= 1 || bits == 0) return;
  if (n <= opt.base_case) {
    if (opt.stats != nullptr)
      opt.stats->base_case_records.fetch_add(n, std::memory_order_relaxed);
    std::sort(a.begin(), a.end(), [&](const Rec& x, const Rec& y) {
      return key(x) < key(y);
    });
    return;
  }
  auto keyof = [&](const Rec& r) {
    return static_cast<std::uint64_t>(key(r));
  };
  const int digit = std::min(opt.gamma, bits);
  const int shift = bits - digit;
  const std::size_t zones = std::size_t{1} << digit;
  const std::uint64_t zmask = zones - 1;
  auto bucket_of = [&](const Rec& r) -> std::size_t {
    return (keyof(r) >> shift) & zmask;
  };

  // Parallel histogram via the engine's counting phase, then a serial
  // in-place permutation (American flag). Counts/cursors come from one
  // leased slab instead of three per-call vectors.
  sort_workspace::lease lease =
      ws.acquire((3 * zones + 2) * sizeof(std::size_t) + 64, opt.stats);
  std::span<std::size_t> counts = lease.carve<std::size_t>(zones);
  std::span<std::size_t> start = lease.carve<std::size_t>(zones + 1);
  std::span<std::size_t> next = lease.carve<std::size_t>(zones);
  distribute_options dopt;
  dopt.workspace = &ws;
  dopt.stats = opt.stats;
  distribute_histogram(std::span<const Rec>(a.data(), n), zones, bucket_of,
                       counts, dopt);
  start[0] = 0;
  for (std::size_t z = 0; z < zones; ++z) start[z + 1] = start[z] + counts[z];
  for (std::size_t z = 0; z < zones; ++z) next[z] = start[z];
  // Same accounting as the engine's distribution passes (and the modern
  // in-place kernel): one in-place pass classifies and permutes n records.
  if (sort_stats* st = opt.stats; st != nullptr) {
    st->inplace_passes.fetch_add(1, std::memory_order_relaxed);
    st->num_distributions.fetch_add(1, std::memory_order_relaxed);
    st->distributed_records.fetch_add(n, std::memory_order_relaxed);
  }

  for (std::size_t z = 0; z < zones; ++z) {
    while (next[z] < start[z + 1]) {
      Rec& r = a[next[z]];
      std::size_t d = bucket_of(r);
      if (d == z) {
        ++next[z];
      } else {
        using std::swap;
        swap(r, a[next[d]++]);
      }
    }
  }

  par::parallel_for(
      0, zones,
      [&](std::size_t z) {
        inplace_radix_rec(a.subspan(start[z], start[z + 1] - start[z]), key,
                          shift, opt, ws);
      },
      1);
}

}  // namespace detail

// Unstable in-place parallel MSD radix sort.
template <typename Rec, typename KeyFn>
void inplace_radix_sort(std::span<Rec> data, const KeyFn& key,
                        const inplace_radix_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::uint64_t maxk = par::reduce_map(
      0, n, std::uint64_t{0},
      [&](std::size_t i) { return static_cast<std::uint64_t>(key(data[i])); },
      [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  detail::inplace_radix_rec(data, key, bit_width_u64(maxk), opt, ws);
}

template <typename K>
  requires std::is_unsigned_v<K>
void inplace_radix_sort(std::span<K> data,
                        const inplace_radix_options& opt = {}) {
  inplace_radix_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail::baseline
