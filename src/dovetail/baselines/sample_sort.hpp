// Parallel samplesort with equality buckets — the stand-in for IPS4o and
// PLSS [6, 10] in the paper's comparison (Tab 2).
//
// The property the paper contrasts integer sorts against (Sec 1, Sec 2.5)
// is that samplesort *can* exploit duplicates: a pivot value that repeats
// in the oversampled pivot set gets an "equality bucket" whose contents are
// all equal and skip the terminal sort. We implement exactly that:
//   1. oversample, sort the sample, pick b-1 pivots;
//   2. deduplicate pivots; repeated pivot values get an equality bucket;
//   3. one stable counting-sort distribution pass (classification by binary
//      search over the pivots — comparisons only);
//   4. terminal comparison sort per non-equality bucket, in parallel;
//   5. copy back.
// Stable when `stable` is set (stable distribution + stable terminal sort),
// unstable (and a bit faster) otherwise — mirroring PLSS's two variants.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "dovetail/core/counting_sort.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/parallel/sort.hpp"

namespace dovetail::baseline {

struct sample_sort_options {
  bool stable = false;            // PLSS ships both; unstable is the default
  std::size_t num_buckets = 0;    // 0 = auto
  std::size_t oversample = 24;
  std::size_t base_case = std::size_t{1} << 14;
  std::uint64_t seed = 7;
};

template <typename Rec, typename Comp>
void sample_sort(std::span<Rec> data, const Comp& comp,
                 const sample_sort_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  auto terminal = [&](std::span<Rec> s, std::span<Rec> scratch) {
    if (s.size() <= 1) return;
    if (opt.stable) {
      if (s.size() > (std::size_t{1} << 15))
        par::merge_sort(s, scratch, comp);
      else
        std::stable_sort(s.begin(), s.end(), comp);
    } else {
      if (s.size() > (std::size_t{1} << 15))
        par::quick_sort(s, comp);
      else
        std::sort(s.begin(), s.end(), comp);
    }
  };

  if (n <= opt.base_case) {
    if (opt.stable)
      std::stable_sort(data.begin(), data.end(), comp);
    else
      std::sort(data.begin(), data.end(), comp);
    return;
  }

  // ---- 1. sample and select pivots ----
  const std::size_t b =
      opt.num_buckets != 0
          ? opt.num_buckets
          : std::clamp<std::size_t>(n / opt.base_case, 2, 1024);
  const std::size_t ns = std::min(n, b * opt.oversample);
  std::vector<Rec> sample(ns);
  for (std::size_t i = 0; i < ns; ++i)
    sample[i] = data[par::rand_range(opt.seed, i, n)];
  std::sort(sample.begin(), sample.end(), comp);

  // ---- 2. deduplicate pivots; repeated values become equality buckets ----
  struct splitter {
    Rec value;
    bool eq_bucket;
  };
  std::vector<splitter> sp;
  sp.reserve(b);
  const std::size_t stride = std::max<std::size_t>(1, ns / b);
  for (std::size_t i = stride - 1; i < ns && sp.size() + 1 < b; i += stride) {
    const Rec& v = sample[i];
    if (!sp.empty() && !comp(sp.back().value, v)) {
      sp.back().eq_bucket = true;  // pivot value repeated => heavy
    } else {
      sp.push_back({v, false});
    }
  }
  const std::size_t k = sp.size();
  if (k == 0) {  // nearly constant input; one terminal sort
    std::unique_ptr<Rec[]> scratch(new Rec[n]);
    terminal(data, std::span<Rec>(scratch.get(), n));
    return;
  }

  // Bucket ids in key order: for splitter j: "less-than" bucket id_less[j],
  // then optionally the equality bucket; final catch-all "greater" bucket.
  std::vector<std::size_t> id_less(k), id_eq(k);
  std::size_t id = 0;
  for (std::size_t j = 0; j < k; ++j) {
    id_less[j] = id++;
    id_eq[j] = sp[j].eq_bucket ? id++ : static_cast<std::size_t>(-1);
  }
  const std::size_t id_greater = id++;
  const std::size_t nb = id;
  std::vector<char> is_eq(nb, 0);
  for (std::size_t j = 0; j < k; ++j)
    if (sp[j].eq_bucket) is_eq[id_eq[j]] = 1;

  auto bucket_of = [&](const Rec& r) -> std::size_t {
    // First splitter not less than r.
    std::size_t lo = 0, hi = k;
    while (lo < hi) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (comp(sp[mid].value, r))
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo == k) return id_greater;
    // r <= sp[lo].value here; equal goes to the equality bucket if any.
    if (sp[lo].eq_bucket && !comp(r, sp[lo].value)) return id_eq[lo];
    return id_less[lo];
  };

  // ---- 3. distribute, 4. terminal sorts, 5. copy back ----
  std::unique_ptr<Rec[]> buf(new Rec[n]);
  std::span<Rec> t(buf.get(), n);
  const std::vector<std::size_t> offs =
      counting_sort(std::span<const Rec>(data.data(), n), t, nb, bucket_of);
  par::parallel_for(
      0, nb,
      [&](std::size_t z) {
        auto s = t.subspan(offs[z], offs[z + 1] - offs[z]);
        if (!is_eq[z]) terminal(s, data.subspan(offs[z], s.size()));
        par::copy(std::span<const Rec>(s), data.subspan(offs[z], s.size()));
      },
      1);
}

// Integer-key convenience wrapper (matching the other sorters' interface).
template <typename Rec, typename KeyFn>
void sample_sort_by_key(std::span<Rec> data, const KeyFn& key,
                        const sample_sort_options& opt = {}) {
  sample_sort(
      data, [&](const Rec& x, const Rec& y) { return key(x) < key(y); }, opt);
}

}  // namespace dovetail::baseline
