// Morton (z-order) sort (Sec 6.2): interleave the bit representations of
// point coordinates into a single integer z-value and integer sort by it,
// ordering multidimensional data along a locality-preserving space-filling
// curve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"

namespace dovetail::app {

struct point2d {
  std::uint32_t x;
  std::uint32_t y;
  friend bool operator==(const point2d&, const point2d&) = default;
};

struct point3d {
  std::uint32_t x;
  std::uint32_t y;
  std::uint32_t z;
  friend bool operator==(const point3d&, const point3d&) = default;
};

// Spread the low 16 bits of x so there is a zero bit between each
// ("part1by1"), for 2D interleaving into 32 bits.
constexpr std::uint32_t part1by1_16(std::uint32_t x) noexcept {
  x &= 0x0000FFFF;
  x = (x | (x << 8)) & 0x00FF00FF;
  x = (x | (x << 4)) & 0x0F0F0F0F;
  x = (x | (x << 2)) & 0x33333333;
  x = (x | (x << 1)) & 0x55555555;
  return x;
}

// Spread the low 32 bits of x for 2D interleaving into 64 bits.
constexpr std::uint64_t part1by1_32(std::uint64_t x) noexcept {
  x &= 0x00000000FFFFFFFFull;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

// Spread the low 21 bits of x with two zero bits between each
// ("part1by2"), for 3D interleaving into 63 bits.
constexpr std::uint64_t part1by2_21(std::uint64_t x) noexcept {
  x &= 0x1FFFFF;
  x = (x | (x << 32)) & 0x1F00000000FFFFull;
  x = (x | (x << 16)) & 0x1F0000FF0000FFull;
  x = (x | (x << 8)) & 0x100F00F00F00F00Full;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

// 2D z-value from 16-bit coordinates (32-bit key, Tab 4's 32-bit setting).
constexpr std::uint32_t morton2d_32(std::uint32_t x, std::uint32_t y) noexcept {
  return part1by1_16(x) | (part1by1_16(y) << 1);
}

// 2D z-value from 32-bit coordinates (64-bit key).
constexpr std::uint64_t morton2d_64(std::uint32_t x, std::uint32_t y) noexcept {
  return part1by1_32(x) | (part1by1_32(y) << 1);
}

// 3D z-value from 21-bit coordinates (63-bit key).
constexpr std::uint64_t morton3d_63(std::uint32_t x, std::uint32_t y,
                                    std::uint32_t z) noexcept {
  return part1by2_21(x) | (part1by2_21(y) << 1) | (part1by2_21(z) << 2);
}

#if defined(__SIZEOF_INT128__)

// High-precision 3D point with 42-bit coordinates — one z-value per
// micron over a ~4400 km cube, the regime where the 63-bit Morton key
// above runs out of coordinate bits.
struct point3d42 {
  std::uint64_t x;
  std::uint64_t y;
  std::uint64_t z;
  friend bool operator==(const point3d42&, const point3d42&) = default;
};

// Spread the low 42 bits of x with two zero bits between each, for 3D
// interleaving into 126 bits: the 21-bit spreader applied to each half,
// the upper half landing at bit 63 (= 3 * 21).
constexpr unsigned __int128 part1by2_42(std::uint64_t x) noexcept {
  const unsigned __int128 lo = part1by2_21(x & 0x1FFFFF);
  const unsigned __int128 hi = part1by2_21((x >> 21) & 0x1FFFFF);
  return (hi << 63) | lo;
}

// 3D z-value from 42-bit coordinates: a 126-bit key carried in
// __uint128_t, sorted through dovetail::sort's wide (multi-word) path.
constexpr unsigned __int128 morton3d_126(std::uint64_t x, std::uint64_t y,
                                         std::uint64_t z) noexcept {
  return part1by2_42(x) | (part1by2_42(y) << 1) | (part1by2_42(z) << 2);
}

#endif  // __SIZEOF_INT128__

// Precomputed (z-value, point-index) pairs ready for integer sorting.
struct zrec32 {
  std::uint32_t key;    // z-value
  std::uint32_t value;  // index of the point
};
struct zrec64 {
  std::uint64_t key;
  std::uint64_t value;
};

inline std::vector<zrec32> morton_records_2d32(std::span<const point2d> pts) {
  std::vector<zrec32> out(pts.size());
  par::parallel_for(0, pts.size(), [&](std::size_t i) {
    out[i] = {morton2d_32(pts[i].x & 0xFFFF, pts[i].y & 0xFFFF),
              static_cast<std::uint32_t>(i)};
  });
  return out;
}

inline std::vector<zrec64> morton_records_3d(std::span<const point3d> pts) {
  std::vector<zrec64> out(pts.size());
  par::parallel_for(0, pts.size(), [&](std::size_t i) {
    out[i] = {morton3d_63(pts[i].x, pts[i].y, pts[i].z),
              static_cast<std::uint64_t>(i)};
  });
  return out;
}

#if defined(__SIZEOF_INT128__)

// 126-bit (z-value, point-index) pair for the high-precision path.
struct zrec128 {
  unsigned __int128 key;
  std::uint64_t value;
};

inline std::vector<zrec128> morton_records_3d42(
    std::span<const point3d42> pts) {
  std::vector<zrec128> out(pts.size());
  par::parallel_for(0, pts.size(), [&](std::size_t i) {
    out[i] = {morton3d_126(pts[i].x, pts[i].y, pts[i].z),
              static_cast<std::uint64_t>(i)};
  });
  return out;
}

// High-precision Morton sort: 42-bit coordinates through a 126-bit
// z-value. The sorter receives (span<zrec128>, key) exactly like the
// narrower overloads — dovetail::sort handles the wide key via the
// refine-by-segment driver.
template <typename Sorter>
std::vector<point3d42> morton_sort_3d42(std::span<const point3d42> pts,
                                        Sorter&& sorter) {
  std::vector<zrec128> recs = morton_records_3d42(pts);
  sorter(std::span<zrec128>(recs),
         [](const zrec128& r) { return r.key; });
  std::vector<point3d42> out(pts.size());
  par::parallel_for(0, pts.size(),
                    [&](std::size_t i) { out[i] = pts[recs[i].value]; });
  return out;
}

#endif  // __SIZEOF_INT128__

// Morton sort: reorder points along the z-curve with the given stable
// integer sorter. Returns the permuted points.
template <typename Sorter>
std::vector<point2d> morton_sort_2d(std::span<const point2d> pts,
                                    Sorter&& sorter) {
  std::vector<zrec32> recs = morton_records_2d32(pts);
  sorter(std::span<zrec32>(recs), [](const zrec32& r) { return r.key; });
  std::vector<point2d> out(pts.size());
  par::parallel_for(0, pts.size(),
                    [&](std::size_t i) { out[i] = pts[recs[i].value]; });
  return out;
}

template <typename Sorter>
std::vector<point3d> morton_sort_3d(std::span<const point3d> pts,
                                    Sorter&& sorter) {
  std::vector<zrec64> recs = morton_records_3d(pts);
  sorter(std::span<zrec64>(recs), [](const zrec64& r) { return r.key; });
  std::vector<point3d> out(pts.size());
  par::parallel_for(0, pts.size(),
                    [&](std::size_t i) { out[i] = pts[recs[i].value]; });
  return out;
}

}  // namespace dovetail::app
