// Graph transpose (Sec 6.2): given a directed graph in compressed sparse
// row (CSR) form, produce the transposed graph G^T. The core of the
// computation is one *stable* integer sort of the edge list keyed by the
// destination vertex; vertices with large in-degree are exactly the "heavy
// keys" DTSort exploits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"

namespace dovetail::app {

struct edge {
  std::uint32_t src;
  std::uint32_t dst;
  friend bool operator==(const edge&, const edge&) = default;
};

struct csr_graph {
  std::uint32_t num_vertices = 0;
  std::vector<std::size_t> offsets;    // size num_vertices + 1
  std::vector<std::uint32_t> targets;  // size num_edges

  [[nodiscard]] std::size_t num_edges() const { return targets.size(); }
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t v) const {
    return {targets.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }
};

// Build a CSR graph from an edge list (grouped by src via a stable sort
// performed by `sorter`; the relative order of parallel edges is kept).
template <typename Sorter>
csr_graph build_csr(std::uint32_t num_vertices, std::vector<edge> edges,
                    Sorter&& sorter) {
  sorter(std::span<edge>(edges), [](const edge& e) { return e.src; });
  csr_graph g;
  g.num_vertices = num_vertices;
  g.offsets.assign(num_vertices + 1, 0);
  g.targets.resize(edges.size());
  std::vector<std::size_t> deg = par::histogram(
      edges.size(), num_vertices,
      [&](std::size_t i) { return static_cast<std::size_t>(edges[i].src); });
  par::scan_exclusive_sum<std::size_t>(
      deg, std::span<std::size_t>(g.offsets.data(), num_vertices));
  g.offsets[num_vertices] = edges.size();
  par::parallel_for(0, edges.size(),
                    [&](std::size_t i) { g.targets[i] = edges[i].dst; });
  return g;
}

// Flatten a CSR graph back to its edge list (src-grouped order).
inline std::vector<edge> csr_to_edges(const csr_graph& g) {
  std::vector<edge> edges(g.num_edges());
  par::parallel_for(
      0, static_cast<std::size_t>(g.num_vertices),
      [&](std::size_t v) {
        for (std::size_t j = g.offsets[v]; j < g.offsets[v + 1]; ++j)
          edges[j] = {static_cast<std::uint32_t>(v), g.targets[j]};
      },
      64);
  return edges;
}

// Transpose via one stable integer sort of the edges by destination.
// `sorter(span<edge>, key_fn)` must sort stably by the unsigned key.
template <typename Sorter>
csr_graph transpose(const csr_graph& g, Sorter&& sorter) {
  std::vector<edge> edges = csr_to_edges(g);
  sorter(std::span<edge>(edges), [](const edge& e) { return e.dst; });
  csr_graph gt;
  gt.num_vertices = g.num_vertices;
  gt.offsets.assign(g.num_vertices + 1, 0);
  gt.targets.resize(edges.size());
  std::vector<std::size_t> indeg = par::histogram(
      edges.size(), g.num_vertices,
      [&](std::size_t i) { return static_cast<std::size_t>(edges[i].dst); });
  par::scan_exclusive_sum<std::size_t>(
      indeg, std::span<std::size_t>(gt.offsets.data(), g.num_vertices));
  gt.offsets[g.num_vertices] = edges.size();
  par::parallel_for(0, edges.size(),
                    [&](std::size_t i) { gt.targets[i] = edges[i].src; });
  return gt;
}

}  // namespace dovetail::app
