// Granularity-controlled parallel loop built on binary forking (pardo).
#pragma once

#include <algorithm>
#include <cstddef>

#include "dovetail/parallel/scheduler.hpp"

namespace dovetail::par {

namespace detail {

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, const F& f,
                      std::size_t gran) {
  if (hi - lo <= gran) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::size_t mid = lo + (hi - lo) / 2;
  pardo([&] { parallel_for_rec(lo, mid, f, gran); },
        [&] { parallel_for_rec(mid, hi, f, gran); });
}

}  // namespace detail

// Default granularity: about 64 leaf tasks per worker, but never finer than
// 512 iterations (loop bodies are assumed cheap). Pass an explicit
// granularity (e.g. 1) when each iteration is itself expensive, such as a
// recursive sort over a bucket.
inline std::size_t default_granularity(std::size_t n) {
  auto p = static_cast<std::size_t>(effective_workers());
  return std::max<std::size_t>(512, n / (64 * p));
}

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity = 0) {
  if (lo >= hi) return;
  std::size_t n = hi - lo;
  std::size_t gran = granularity == 0 ? default_granularity(n) : granularity;
  detail::parallel_for_rec(lo, hi, f, gran);
}

}  // namespace dovetail::par
