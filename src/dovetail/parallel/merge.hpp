// Parallel stable merge of two sorted ranges into an output range.
//
// Classic divide-and-conquer merge: split the larger input at its midpoint,
// binary-search the split key in the other input, recurse on both halves in
// parallel. O(n) work, O(log^2 n) span. Stable: on ties, elements of `a`
// precede elements of `b` (std::merge semantics).
//
// This is the "PLMerge" baseline of Sec 6.3 used in the dovetail-merging
// ablation (Fig 4 c,d).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace dovetail::par {

namespace detail {

template <typename T, typename Comp>
void parallel_merge_rec(std::span<const T> a, std::span<const T> b,
                        std::span<T> out, const Comp& comp,
                        std::size_t gran) {
  if (a.size() + b.size() <= gran) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), comp);
    return;
  }
  if (a.size() < b.size()) {
    // Keep `a` the larger side, preserving stability: elements of the
    // original `a` must win ties. Split `b` instead.
    std::size_t jb = b.size() / 2;
    // Elements of a strictly less than b[jb] go left; equal keys from a go
    // left of b[jb] as well, hence upper_bound.
    std::size_t ja = static_cast<std::size_t>(
        std::upper_bound(a.begin(), a.end(), b[jb], comp) - a.begin());
    pardo(
        [&] {
          parallel_merge_rec(a.subspan(0, ja), b.subspan(0, jb),
                             out.subspan(0, ja + jb), comp, gran);
        },
        [&] {
          parallel_merge_rec(a.subspan(ja), b.subspan(jb),
                             out.subspan(ja + jb), comp, gran);
        });
    return;
  }
  std::size_t ja = a.size() / 2;
  std::size_t jb = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), a[ja], comp) - b.begin());
  pardo(
      [&] {
        parallel_merge_rec(a.subspan(0, ja), b.subspan(0, jb),
                           out.subspan(0, ja + jb), comp, gran);
      },
      [&] {
        parallel_merge_rec(a.subspan(ja), b.subspan(jb),
                           out.subspan(ja + jb), comp, gran);
      });
}

}  // namespace detail

template <typename T, typename Comp>
void merge(std::span<const T> a, std::span<const T> b, std::span<T> out,
           const Comp& comp, std::size_t granularity = 0) {
  std::size_t n = a.size() + b.size();
  std::size_t gran =
      granularity == 0 ? std::max<std::size_t>(2048, default_granularity(n))
                       : granularity;
  detail::parallel_merge_rec(a, b, out, comp, gran);
}

template <typename T>
void merge(std::span<const T> a, std::span<const T> b, std::span<T> out) {
  merge(a, b, out, std::less<T>{});
}

}  // namespace dovetail::par
