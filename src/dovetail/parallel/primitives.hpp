// Parallel sequence primitives: tabulate, reduce, scan, pack/filter,
// histogram, copy, reverse. These mirror the ParlayLib primitives the paper
// builds on; all are deterministic and race-free.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace dovetail::par {

// ---------------------------------------------------------------------------
// tabulate: build a vector from a function of the index.
template <typename F>
auto tabulate(std::size_t n, F&& f) {
  using T = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

// ---------------------------------------------------------------------------
// reduce over [lo, hi) of map(i), combined with `op` (associative).
template <typename T, typename Map, typename Op>
T reduce_map(std::size_t lo, std::size_t hi, T identity, const Map& map,
             const Op& op, std::size_t gran = 0) {
  if (lo >= hi) return identity;
  std::size_t n = hi - lo;
  if (gran == 0) gran = default_granularity(n);
  if (n <= gran) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(std::move(acc), map(i));
    return acc;
  }
  std::size_t mid = lo + n / 2;
  T l{}, r{};
  pardo([&] { l = reduce_map(lo, mid, identity, map, op, gran); },
        [&] { r = reduce_map(mid, hi, identity, map, op, gran); });
  return op(std::move(l), std::move(r));
}

template <typename T, typename Op>
T reduce(std::span<const T> a, T identity, const Op& op) {
  return reduce_map(
      0, a.size(), identity, [&](std::size_t i) { return a[i]; }, op);
}

template <typename T>
T reduce_sum(std::span<const T> a) {
  return reduce(a, T{}, [](T x, T y) { return x + y; });
}

template <typename T>
T reduce_max(std::span<const T> a, T identity) {
  return reduce(a, identity, [](T x, T y) { return x < y ? y : x; });
}

// ---------------------------------------------------------------------------
// Exclusive scan (prefix sum). `in` and `out` may alias. Returns the total.
// Two-pass blocked algorithm: O(n) work, O(blocks + n/blocks) span.
template <typename T, typename Op>
T scan_exclusive(std::span<const T> in, std::span<T> out, T identity,
                 const Op& op) {
  const std::size_t n = in.size();
  if (n == 0) return identity;
  const std::size_t p = static_cast<std::size_t>(num_workers());
  const std::size_t nblocks =
      n <= 2048 ? 1 : std::min<std::size_t>(8 * p, (n + 2047) / 2048);
  const std::size_t bsize = (n + nblocks - 1) / nblocks;

  std::vector<T> sums(nblocks, identity);
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = op(std::move(acc), in[i]);
        sums[b] = std::move(acc);
      },
      1);
  T total = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = std::move(total);
    total = std::move(next);
  }
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        T acc = sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          T v = in[i];  // read before the (possibly aliasing) write
          out[i] = acc;
          acc = op(std::move(acc), std::move(v));
        }
      },
      1);
  return total;
}

template <typename T>
T scan_exclusive_sum(std::span<const T> in, std::span<T> out) {
  return scan_exclusive(in, out, T{}, [](T x, T y) { return x + y; });
}

// ---------------------------------------------------------------------------
// pack/filter: keep elements satisfying `pred`, preserving order.
template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> a, const Pred& pred) {
  const std::size_t n = a.size();
  if (n == 0) return {};
  const std::size_t p = static_cast<std::size_t>(num_workers());
  const std::size_t nblocks =
      n <= 4096 ? 1 : std::min<std::size_t>(8 * p, (n + 4095) / 4096);
  const std::size_t bsize = (n + nblocks - 1) / nblocks;

  std::vector<std::size_t> counts(nblocks, 0);
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(a[i]) ? 1 : 0;
        counts[b] = c;
      },
      1);
  std::size_t total = scan_exclusive_sum<std::size_t>(counts, counts);
  std::vector<T> out(total);
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t pos = counts[b];
        for (std::size_t i = lo; i < hi; ++i)
          if (pred(a[i])) out[pos++] = a[i];
      },
      1);
  return out;
}

// ---------------------------------------------------------------------------
// histogram: counts per bucket for bucket_of(i) in [0, num_buckets).
template <typename BucketFn>
std::vector<std::size_t> histogram(std::size_t n, std::size_t num_buckets,
                                   const BucketFn& bucket_of) {
  const std::size_t p = static_cast<std::size_t>(num_workers());
  const std::size_t nblocks =
      n <= 4096 ? 1 : std::min<std::size_t>(4 * p, (n + 4095) / 4096);
  const std::size_t bsize = (n + nblocks - 1) / nblocks;
  std::vector<std::vector<std::size_t>> local(nblocks);
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        local[b].assign(num_buckets, 0);
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        for (std::size_t i = lo; i < hi; ++i) ++local[b][bucket_of(i)];
      },
      1);
  std::vector<std::size_t> out(num_buckets, 0);
  parallel_for(0, num_buckets, [&](std::size_t k) {
    std::size_t c = 0;
    for (std::size_t b = 0; b < nblocks; ++b) c += local[b][k];
    out[k] = c;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Parallel copy and in-place reverse (the "flip" of DTMerge, Alg 3).
template <typename T>
void copy(std::span<const T> src, std::span<T> dst) {
  parallel_for(0, src.size(), [&](std::size_t i) { dst[i] = src[i]; });
}

template <typename T>
void reverse_inplace(std::span<T> a) {
  const std::size_t n = a.size();
  parallel_for(0, n / 2, [&](std::size_t i) {
    using std::swap;
    swap(a[i], a[n - 1 - i]);
  });
}

}  // namespace dovetail::par
