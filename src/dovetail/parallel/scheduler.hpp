// Fork-join work-stealing scheduler with binary forking.
//
// This is the substrate the paper assumes from ParlayLib [10]: a pool of
// workers with per-worker deques, binary fork (`pardo`) and a randomized
// work-stealing policy, which executes a computation with work W and span D
// in W/P + O(D) time whp (Sec 2.2 of the paper).
//
// Design notes:
//  * Forked tasks live on the forking thread's stack; the scheduler only
//    holds pointers. A task is joined before the frame unwinds, even when
//    the left branch throws.
//  * Deques are mutex-protected. With granularity-controlled parallel loops
//    the fork rate is low, so the lock is uncontended on the fast path.
//  * Idle workers spin briefly, then sleep on a condition variable with a
//    bounded timeout, so sequential phases do not burn CPU on idle workers
//    (important for fair baseline benchmarks).
//  * Exceptions thrown by either branch propagate to the joining caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <type_traits>
#include <utility>

namespace dovetail::par {

namespace detail {

// Per-thread cap on the parallelism a computation may use (0 = no cap).
// Installed by scoped_worker_limit and consulted by pardo() and the
// granularity heuristics; forked tasks carry the forking thread's limit
// with them so a stolen continuation keeps the caller's cap.
int current_worker_limit() noexcept;
void set_worker_limit(int limit) noexcept;

// Type-erased forked task. `run()` must be called exactly once.
class job {
 public:
  virtual void run() noexcept = 0;
  [[nodiscard]] bool finished() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

 protected:
  ~job() = default;
  void mark_done() noexcept { done_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> done_{false};
};

template <typename F>
class forked_task final : public job {
 public:
  explicit forked_task(F&& f)
      : f_(std::move(f)), limit_(current_worker_limit()) {}
  explicit forked_task(const F& f) : f_(f), limit_(current_worker_limit()) {}

  void run() noexcept override {
    // Run under the forking thread's worker limit: a stolen task must make
    // the same serial/parallel and granularity decisions it would have made
    // on the thread that forked it.
    const int saved = current_worker_limit();
    set_worker_limit(limit_);
    try {
      f_();
    } catch (...) {
      ex_ = std::current_exception();
    }
    set_worker_limit(saved);
    mark_done();
  }

  void rethrow_if_exception() {
    if (ex_) std::rethrow_exception(ex_);
  }

 private:
  F f_;
  int limit_;
  std::exception_ptr ex_{};
};

}  // namespace detail

class scheduler {
 public:
  // Lazily constructed global scheduler. The first caller's thread becomes
  // worker 0 and participates in parallel regions.
  static scheduler& get();

  // Id of the calling thread within the pool, or -1 for foreign threads.
  static int worker_id() noexcept;

  // Number of workers (threads) in the pool, >= 1.
  [[nodiscard]] int num_workers() const noexcept { return num_workers_; }

  // Tear down and restart the pool with `p` workers (p >= 1). Must not be
  // called while parallel work is in flight. Used by scaling benchmarks.
  static void set_num_workers(int p);

  // Default worker count: DOVETAIL_NUM_THREADS env var, else hardware
  // concurrency.
  static int default_num_workers();

  // ---- internal API used by pardo() ----
  void push(detail::job* j);
  bool pop_if_top(detail::job* j);
  void wait_until_done(detail::job* j);

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;
  ~scheduler();

 private:
  friend struct scheduler_access;
  explicit scheduler(int p);
  void worker_loop(int id);
  detail::job* try_get_job(int id, std::uint64_t& rng) noexcept;

  struct impl;
  impl* pimpl_;
  int num_workers_;
};

// Run `left` and `right` potentially in parallel; returns when both are
// done. Exceptions from either branch are rethrown (left's first).
template <typename L, typename R>
void pardo(L&& left, R&& right) {
  scheduler& s = scheduler::get();
  const int limit = detail::current_worker_limit();
  if (s.num_workers() == 1 || limit == 1 || scheduler::worker_id() < 0) {
    // Serial path: both branches still run even if one throws (same join
    // guarantee as the parallel path), rethrowing left's exception first.
    std::exception_ptr ex{};
    try {
      left();
    } catch (...) {
      ex = std::current_exception();
    }
    try {
      right();
    } catch (...) {
      if (!ex) ex = std::current_exception();
    }
    if (ex) std::rethrow_exception(ex);
    return;
  }
  detail::forked_task<std::decay_t<R>> rt(std::forward<R>(right));
  s.push(&rt);
  std::exception_ptr left_ex{};
  try {
    left();
  } catch (...) {
    left_ex = std::current_exception();
  }
  if (s.pop_if_top(&rt)) {
    rt.run();
  } else {
    s.wait_until_done(&rt);
  }
  if (left_ex) std::rethrow_exception(left_ex);
  rt.rethrow_if_exception();
}

inline int num_workers() { return scheduler::get().num_workers(); }

// Workers this computation may actually use: the pool size capped by the
// innermost scoped_worker_limit (sort_options::num_threads installs one per
// call). A limit of 1 is exact — pardo() takes its serial path, so the call
// runs entirely on the current thread. Limits between 1 and the pool size
// cap forking/granularity decisions; actual concurrency remains bounded by
// the shared pool, since a work-stealing pool cannot reserve workers
// per-call.
inline int effective_workers() {
  const int w = num_workers();
  const int limit = detail::current_worker_limit();
  return limit > 0 && limit < w ? limit : w;
}

// RAII per-call parallelism cap. Nested limits compose by taking the
// minimum; 0 means "no additional cap". The limit is thread-local and
// travels with forked tasks, so it scopes exactly the computation between
// construction and destruction — concurrent sorts on other threads are
// unaffected.
class scoped_worker_limit {
 public:
  explicit scoped_worker_limit(int limit)
      : saved_(detail::current_worker_limit()) {
    if (limit > 0 && (saved_ == 0 || limit < saved_))
      detail::set_worker_limit(limit);
  }
  ~scoped_worker_limit() { detail::set_worker_limit(saved_); }
  scoped_worker_limit(const scoped_worker_limit&) = delete;
  scoped_worker_limit& operator=(const scoped_worker_limit&) = delete;

 private:
  int saved_;
};

}  // namespace dovetail::par
