// Deterministic, race-free pseudo-random utilities.
//
// All randomness in the library is generated statelessly by hashing
// (seed, index) pairs, so parallel code is internally deterministic once
// the seed is fixed (the paper's Appendix A calls this property out as a
// design goal of DTSort).
#pragma once

#include <cstdint>

namespace dovetail::par {

// 64-bit finalizer (splitmix64 / Stafford mix13). Bijective on uint64_t.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Stateless stream of uniform 64-bit values: value i of stream `seed`.
constexpr std::uint64_t rand_at(std::uint64_t seed, std::uint64_t i) noexcept {
  return hash64(seed * 0xD1B54A32D192ED03ull + i + 1);
}

// Uniform value in [0, bound) (bound > 0). Uses the high-quality upper bits
// via 128-bit multiply (Lemire's method, without the rejection step; the
// modulo bias is < 2^-40 for bounds < 2^24 and irrelevant for our use).
constexpr std::uint64_t rand_range(std::uint64_t seed, std::uint64_t i,
                                   std::uint64_t bound) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(rand_at(seed, i)) * bound) >> 64);
}

// Uniform double in [0, 1).
constexpr double rand_double(std::uint64_t seed, std::uint64_t i) noexcept {
  return static_cast<double>(rand_at(seed, i) >> 11) * 0x1.0p-53;
}

}  // namespace dovetail::par
