// Parallel comparison sorts used as primitives: a stable mergesort (used
// for base cases and overflow buckets, and as the stable comparison-sort
// baseline) and an unstable quicksort.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>

#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace dovetail::par {

namespace detail {

inline constexpr std::size_t kSortBase = 4096;

// Sorts `a`; if `result_in_a` is false the sorted output is left in `b`
// instead. `a` and `b` have equal size and do not alias.
template <typename T, typename Comp>
void merge_sort_rec(std::span<T> a, std::span<T> b, const Comp& comp,
                    bool result_in_a) {
  const std::size_t n = a.size();
  if (n <= kSortBase) {
    std::stable_sort(a.begin(), a.end(), comp);
    if (!result_in_a) std::copy(a.begin(), a.end(), b.begin());
    return;
  }
  const std::size_t mid = n / 2;
  // Ping-pong: sort the halves so they land in the buffer we do NOT want
  // the final result in, then merge into the target buffer.
  pardo(
      [&] {
        merge_sort_rec(a.subspan(0, mid), b.subspan(0, mid), comp,
                       !result_in_a);
      },
      [&] {
        merge_sort_rec(a.subspan(mid), b.subspan(mid), comp, !result_in_a);
      });
  std::span<T> src = result_in_a ? b : a;
  std::span<T> dst = result_in_a ? a : b;
  merge(std::span<const T>(src.subspan(0, mid)),
        std::span<const T>(src.subspan(mid)), dst, comp);
}

}  // namespace detail

// Stable parallel mergesort using caller-provided scratch (same size).
template <typename T, typename Comp>
void merge_sort(std::span<T> a, std::span<T> scratch, const Comp& comp) {
  if (a.size() <= 1) return;
  detail::merge_sort_rec(a, scratch.subspan(0, a.size()), comp, true);
}

// Stable parallel mergesort; allocates its own scratch buffer.
template <typename T, typename Comp = std::less<T>>
void merge_sort(std::span<T> a, const Comp& comp = {}) {
  if (a.size() <= detail::kSortBase) {
    std::stable_sort(a.begin(), a.end(), comp);
    return;
  }
  std::unique_ptr<T[]> buf(new T[a.size()]);
  merge_sort(a, std::span<T>(buf.get(), a.size()), comp);
}

// Unstable parallel quicksort (median-of-three, sequential partition,
// parallel recursion).
template <typename T, typename Comp = std::less<T>>
void quick_sort(std::span<T> a, const Comp& comp = {}) {
  const std::size_t n = a.size();
  if (n <= detail::kSortBase) {
    std::sort(a.begin(), a.end(), comp);
    return;
  }
  // Median of three as pivot.
  T& x = a[0];
  T& y = a[n / 2];
  T& z = a[n - 1];
  using std::swap;
  if (comp(y, x)) swap(x, y);
  if (comp(z, y)) {
    swap(y, z);
    if (comp(y, x)) swap(x, y);
  }
  T pivot = y;
  // Three-way partition (Dutch national flag) so duplicate-heavy inputs
  // do not degrade to quadratic behaviour.
  std::size_t lt = 0, i = 0, gt = n;
  while (i < gt) {
    if (comp(a[i], pivot)) {
      swap(a[lt++], a[i++]);
    } else if (comp(pivot, a[i])) {
      swap(a[i], a[--gt]);
    } else {
      ++i;
    }
  }
  pardo([&] { quick_sort(a.subspan(0, lt), comp); },
        [&] { quick_sort(a.subspan(gt), comp); });
}

}  // namespace dovetail::par
