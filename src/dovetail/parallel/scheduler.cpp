#include "dovetail/parallel/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dovetail::par {

namespace {

thread_local int tl_worker_id = -1;
thread_local int tl_worker_limit = 0;  // 0 = no per-call cap

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline std::uint64_t xorshift64(std::uint64_t& s) noexcept {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

namespace detail {
int current_worker_limit() noexcept { return tl_worker_limit; }
void set_worker_limit(int limit) noexcept { tl_worker_limit = limit; }
}  // namespace detail

struct alignas(64) worker_deque {
  std::mutex m;
  std::deque<detail::job*> q;
};

struct scheduler::impl {
  std::vector<worker_deque> deques;
  std::vector<std::thread> threads;
  std::atomic<bool> shutdown{false};
  std::atomic<std::uint64_t> wake_epoch{0};
  std::atomic<int> num_sleepers{0};
  std::mutex sleep_mu;
  std::condition_variable sleep_cv;

  explicit impl(int p) : deques(static_cast<std::size_t>(p)) {}
};

// ---------------------------------------------------------------------------
// Global instance management.
namespace {
std::mutex g_inst_mu;
std::unique_ptr<scheduler> g_inst;  // guarded by g_inst_mu for (re)creation
struct scheduler_deleter_token {};
}  // namespace

struct scheduler_access {
  static std::unique_ptr<scheduler> make(int p) {
    return std::unique_ptr<scheduler>(new scheduler(p));
  }
};

int scheduler::default_num_workers() {
  if (const char* env = std::getenv("DOVETAIL_NUM_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

scheduler& scheduler::get() {
  std::lock_guard<std::mutex> lk(g_inst_mu);
  if (!g_inst) g_inst = scheduler_access::make(default_num_workers());
  // The creating/calling thread acts as worker 0 if it has no identity yet.
  if (tl_worker_id < 0) tl_worker_id = 0;
  return *g_inst;
}

void scheduler::set_num_workers(int p) {
  if (p < 1) throw std::invalid_argument("set_num_workers: p must be >= 1");
  std::lock_guard<std::mutex> lk(g_inst_mu);
  g_inst.reset();  // joins all workers
  g_inst = scheduler_access::make(p);
  tl_worker_id = 0;
}

int scheduler::worker_id() noexcept { return tl_worker_id; }

// ---------------------------------------------------------------------------

scheduler::scheduler(int p) : pimpl_(new impl(p)), num_workers_(p) {
  tl_worker_id = 0;
  pimpl_->threads.reserve(static_cast<std::size_t>(p > 0 ? p - 1 : 0));
  for (int id = 1; id < p; ++id) {
    pimpl_->threads.emplace_back([this, id] { worker_loop(id); });
  }
}

scheduler::~scheduler() {
  pimpl_->shutdown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(pimpl_->sleep_mu);
    pimpl_->sleep_cv.notify_all();
  }
  for (auto& t : pimpl_->threads) t.join();
  delete pimpl_;
}

void scheduler::push(detail::job* j) {
  int id = tl_worker_id;
  auto& d = pimpl_->deques[static_cast<std::size_t>(id)];
  {
    std::lock_guard<std::mutex> lk(d.m);
    d.q.push_back(j);
  }
  pimpl_->wake_epoch.fetch_add(1, std::memory_order_release);
  if (pimpl_->num_sleepers.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lk(pimpl_->sleep_mu);
    pimpl_->sleep_cv.notify_all();
  }
}

bool scheduler::pop_if_top(detail::job* j) {
  int id = tl_worker_id;
  auto& d = pimpl_->deques[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lk(d.m);
  if (!d.q.empty() && d.q.back() == j) {
    d.q.pop_back();
    return true;
  }
  return false;
}

detail::job* scheduler::try_get_job(int id, std::uint64_t& rng) noexcept {
  // Own deque first (LIFO for locality), then random victims (FIFO steal).
  auto& own = pimpl_->deques[static_cast<std::size_t>(id)];
  {
    std::lock_guard<std::mutex> lk(own.m);
    if (!own.q.empty()) {
      detail::job* j = own.q.back();
      own.q.pop_back();
      return j;
    }
  }
  const int p = num_workers_;
  int start = static_cast<int>(xorshift64(rng) % static_cast<std::uint64_t>(p));
  for (int k = 0; k < p; ++k) {
    int v = start + k;
    if (v >= p) v -= p;
    if (v == id) continue;
    auto& d = pimpl_->deques[static_cast<std::size_t>(v)];
    std::lock_guard<std::mutex> lk(d.m);
    if (!d.q.empty()) {
      detail::job* j = d.q.front();
      d.q.pop_front();
      return j;
    }
  }
  return nullptr;
}

void scheduler::wait_until_done(detail::job* j) {
  int id = tl_worker_id;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(id) + 1);
  int idle_spins = 0;
  while (!j->finished()) {
    detail::job* other = try_get_job(id, rng);
    if (other != nullptr) {
      other->run();
      idle_spins = 0;
    } else {
      cpu_relax();
      if (++idle_spins > 256) {
        std::this_thread::yield();
        idle_spins = 0;
      }
    }
  }
}

void scheduler::worker_loop(int id) {
  tl_worker_id = id;
  std::uint64_t rng = 0xD1B54A32D192ED03ull ^ (static_cast<std::uint64_t>(id) + 1);
  auto& st = *pimpl_;
  while (!st.shutdown.load(std::memory_order_acquire)) {
    detail::job* j = try_get_job(id, rng);
    if (j != nullptr) {
      j->run();
      continue;
    }
    // Brief spinning before sleeping.
    bool ran = false;
    for (int spin = 0; spin < 512 && !st.shutdown.load(std::memory_order_relaxed);
         ++spin) {
      j = try_get_job(id, rng);
      if (j != nullptr) {
        j->run();
        ran = true;
        break;
      }
      cpu_relax();
    }
    if (ran) continue;
    // Timed sleep: the 1ms timeout bounds any lost-wakeup window.
    std::uint64_t epoch = st.wake_epoch.load(std::memory_order_acquire);
    j = try_get_job(id, rng);
    if (j != nullptr) {
      j->run();
      continue;
    }
    st.num_sleepers.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lk(st.sleep_mu);
      st.sleep_cv.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return st.shutdown.load(std::memory_order_relaxed) ||
               st.wake_epoch.load(std::memory_order_relaxed) != epoch;
      });
    }
    st.num_sleepers.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace dovetail::par
