// Umbrella header: the whole dovetail public API in one include.
//
//   #include "dovetail/dovetail.hpp"
//
// Pulls in the adaptive front door (dovetail::sort / sort_by_key / rank),
// the key-codec layer, every core algorithm and the engine beneath them,
// the paper-baseline sorters, the applications, the input generators and
// the supporting utilities. Each header remains individually includable
// for builds that want to trim compile time; docs/API.md documents the
// surface layer by layer.
#pragma once

// Layer 5 — serving layer: batched requests + streaming ingestion.
#include "dovetail/core/sort_service.hpp"
#include "dovetail/core/stream_sort.hpp"

// Layer 4½ — order-statistics & grouped queries (rank-pruned top_k /
// nth_element / partial_sort / percentiles, group_by over the typed
// codec API).
#include "dovetail/core/group_by.hpp"
#include "dovetail/core/order_stats.hpp"

// Layer 4 — adaptive front door + typed keys (wide multi-word keys
// included; wide_sort.hpp rides in with auto_sort.hpp).
#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/input_sketch.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/wide_sort.hpp"

// Layer 3 — core algorithms.
#include "dovetail/core/counting_sort.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/semisort.hpp"
#include "dovetail/core/unstable_counting_sort.hpp"

// Layer 3 — paper-baseline sorters (Tab 2 roles).
#include "dovetail/baselines/buffered_lsd_radix_sort.hpp"
#include "dovetail/baselines/inplace_radix_sort.hpp"
#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/baselines/msd_radix_sort.hpp"
#include "dovetail/baselines/sample_sort.hpp"

// Layer 2 — the distribution engine and its instrumentation.
#include "dovetail/core/bucket_table.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/dt_merge.hpp"
#include "dovetail/core/sampling.hpp"
#include "dovetail/core/sort_options.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"

// Layer 1 — parallel substrate.
#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/parallel/sort.hpp"

// Layer 6 — applications.
#include "dovetail/apps/graph.hpp"
#include "dovetail/apps/morton.hpp"

// Generators + utilities.
#include "dovetail/generators/graphs.hpp"
#include "dovetail/generators/points.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/algorithms.hpp"
#include "dovetail/util/bits.hpp"
#include "dovetail/util/checkers.hpp"
#include "dovetail/util/record.hpp"
#include "dovetail/util/timer.hpp"
