// sort_workspace — the reusable memory arena behind the distribution engine
// (distribute.hpp).
//
// The paper's distribution phase (Sec 2.4 / Appendix B) is allocation-
// disciplined: the counting matrix, bucket-id array and offsets are sized by
// the subproblem, not the input, and the ping-pong record buffer is sized
// once for the whole sort. The seed implementation re-allocated all of them
// on every recursive call; this arena makes them reusable, so after warm-up
// every size-proportional scratch buffer is a reuse, not a malloc. (Small
// per-node allocations outside the engine — sampling vectors, bucket-table
// construction — remain; the arena covers the O(n')-sized scratch.)
//
// Two kinds of storage:
//  * record_buffer<Rec>(n) — the ping-pong "T" array of the (A, T) buffer
//    pair. One per workspace, grown monotonically, reused across recursion
//    levels and across repeated sorts. NOT thread-safe: a workspace serves
//    one in-flight sort at a time (concurrent sorts need distinct
//    workspaces).
//  * acquire(bytes) — an RAII lease on a 64-byte-aligned scratch slab from a
//    size-classed freelist pool (counting matrices, id arrays, offsets,
//    scatter staging buffers). Thread-safe: recursive subproblems running in
//    parallel on scheduler workers lease and return slabs concurrently.
//    Slabs are pow2-sized, so after warm-up every size class is populated
//    and checkouts are pure reuse.
//
// Leased memory is uninitialized (reused slabs hold stale bytes); callers
// zero what they read before writing. Counters (allocations / reuses /
// bytes) feed the matching sort_stats fields so the reuse win is measurable
// — see test_workspace.cpp and bench_suite's "engine-workspace" family.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/core/sort_stats.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail {

namespace detail {

inline constexpr std::size_t kSlabAlign = 64;   // cache line
inline constexpr std::size_t kMinSlabBytes = 64;
inline constexpr int kNumSizeClasses = 64;

struct slab_deleter {
  void operator()(std::byte* p) const noexcept {
    ::operator delete(static_cast<void*>(p), std::align_val_t{kSlabAlign});
  }
};
using slab_ptr = std::unique_ptr<std::byte, slab_deleter>;

inline slab_ptr make_slab(std::size_t bytes) {
  return slab_ptr(
      static_cast<std::byte*>(::operator new(bytes, std::align_val_t{kSlabAlign})));
}

// Slabs are pow2-sized; the class index is log2 of the capacity.
inline int size_class_of(std::size_t bytes) noexcept {
  return static_cast<int>(ceil_log2(std::max(bytes, kMinSlabBytes)));
}

}  // namespace detail

class sort_workspace {
 public:
  // RAII checkout of one scratch slab. Carve typed arrays out of it with
  // `carve<T>(count)`; the slab returns to the workspace freelist when the
  // lease goes out of scope.
  class lease {
   public:
    lease() = default;
    lease(lease&& o) noexcept
        : ws_(std::exchange(o.ws_, nullptr)),
          data_(std::exchange(o.data_, nullptr)),
          capacity_(o.capacity_),
          size_class_(o.size_class_),
          used_(o.used_) {}
    lease& operator=(lease&& o) noexcept {
      if (this != &o) {
        release();
        ws_ = std::exchange(o.ws_, nullptr);
        data_ = std::exchange(o.data_, nullptr);
        capacity_ = o.capacity_;
        size_class_ = o.size_class_;
        used_ = o.used_;
      }
      return *this;
    }
    lease(const lease&) = delete;
    lease& operator=(const lease&) = delete;
    ~lease() { release(); }

    // Next `count` elements of T, suitably aligned, UNinitialized.
    template <typename T>
    std::span<T> carve(std::size_t count) {
      static_assert(std::is_trivially_copyable_v<T>);
      static_assert(alignof(T) <= detail::kSlabAlign);
      const std::size_t off = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
      assert(off + count * sizeof(T) <= capacity_ && "lease overcommitted");
      used_ = off + count * sizeof(T);
      return {reinterpret_cast<T*>(data_ + off), count};
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] explicit operator bool() const noexcept {
      return data_ != nullptr;
    }

   private:
    friend class sort_workspace;
    lease(sort_workspace* ws, std::byte* data, std::size_t cap, int cls)
        : ws_(ws), data_(data), capacity_(cap), size_class_(cls) {}
    void release() noexcept {
      if (ws_ != nullptr) {
        ws_->return_slab(data_, size_class_);
        ws_ = nullptr;
        data_ = nullptr;
      }
    }

    sort_workspace* ws_ = nullptr;
    std::byte* data_ = nullptr;
    std::size_t capacity_ = 0;
    int size_class_ = 0;
    std::size_t used_ = 0;
  };

  sort_workspace() = default;
  sort_workspace(const sort_workspace&) = delete;
  sort_workspace& operator=(const sort_workspace&) = delete;

  // Check out a scratch slab of at least `bytes` bytes (rounded up to a
  // power of two). Thread-safe. If `stats` is non-null the matching
  // workspace_* counters are bumped.
  lease acquire(std::size_t bytes, sort_stats* stats = nullptr) {
    const int cls = detail::size_class_of(bytes);
    const std::size_t cap = std::size_t{1} << cls;
    std::byte* p = nullptr;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto& bin = free_[cls];
      if (!bin.empty()) {
        p = bin.back().release();
        bin.pop_back();
      }
    }
    if (p != nullptr) {
      note_reuse(stats);
    } else {
      p = detail::make_slab(cap).release();
      note_alloc(cap, stats);
    }
    note_outstanding(
        outstanding_bytes_.fetch_add(cap, std::memory_order_relaxed) + cap,
        stats);
    return lease(this, p, cap, cls);
  }

  // acquire() + carve() in one step: check out a slab sized for `count`
  // elements of T and hand back both the lease (which owns the slab) and
  // the typed span. The wide refine driver's segment tables and the
  // encode-once (key, index) pair arrays are this shape: one lease, one
  // array, nothing else carved from the slab.
  template <typename T>
  [[nodiscard]] lease acquire_array(std::size_t count, std::span<T>& out,
                                    sort_stats* stats = nullptr) {
    lease l = acquire(count * sizeof(T), stats);
    out = l.template carve<T>(count);
    return l;
  }

  // The ping-pong record buffer: one dedicated arena per workspace, grown
  // monotonically and reused by every subsequent sort whose footprint fits.
  // NOT thread-safe — one in-flight sort per workspace.
  template <typename Rec>
  std::span<Rec> record_buffer(std::size_t n, sort_stats* stats = nullptr) {
    static_assert(std::is_trivially_copyable_v<Rec>);
    static_assert(alignof(Rec) <= detail::kSlabAlign);
    const std::size_t need = n * sizeof(Rec);
    if (need > arena_capacity_) {
      const std::size_t cap = next_pow2(std::max(need, detail::kMinSlabBytes));
      arena_ = detail::make_slab(cap);  // old arena (if any) freed here
      outstanding_bytes_.fetch_add(cap - arena_capacity_,
                                   std::memory_order_relaxed);
      arena_capacity_ = cap;
      note_alloc(cap, stats);
    } else if (n > 0) {
      note_reuse(stats);
    }
    // The arena counts as outstanding for the whole workspace lifetime
    // (until trim()), so warm reuse still records the true footprint.
    if (n > 0)
      note_outstanding(outstanding_bytes_.load(std::memory_order_relaxed),
                       stats);
    return {reinterpret_cast<Rec*>(arena_.get()), n};
  }

  // Drop all idle memory (freelisted slabs + the record arena). Leased
  // slabs are unaffected and return to the (now empty) freelists later.
  void trim() {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& bin : free_) bin.clear();
    arena_.reset();
    outstanding_bytes_.fetch_sub(arena_capacity_, std::memory_order_relaxed);
    arena_capacity_ = 0;
  }

  // Cumulative counters (never reset by trim()).
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reuses() const noexcept {
    return reuses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allocated_bytes() const noexcept {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }
  // Bytes currently checked out (leased slab capacities + the record
  // arena). The instantaneous figure behind
  // sort_stats::peak_workspace_bytes; freelisted slabs do not count.
  [[nodiscard]] std::size_t outstanding_bytes() const noexcept {
    return outstanding_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class lease;

  void return_slab(std::byte* p, int cls) noexcept {
    detail::slab_ptr slab(p);
    outstanding_bytes_.fetch_sub(std::size_t{1} << cls,
                                 std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(mu_);
    try {
      free_[cls].push_back(std::move(slab));
    } catch (...) {
      // Growing the freelist failed (OOM): drop the slab (freed by `slab`)
      // rather than letting bad_alloc escape a noexcept destructor path.
    }
  }

  void note_alloc(std::size_t cap, sort_stats* stats) noexcept {
    allocations_.fetch_add(1, std::memory_order_relaxed);
    allocated_bytes_.fetch_add(cap, std::memory_order_relaxed);
    if (stats != nullptr) {
      stats->workspace_allocations.fetch_add(1, std::memory_order_relaxed);
      stats->workspace_bytes_allocated.fetch_add(cap,
                                                 std::memory_order_relaxed);
    }
  }
  void note_reuse(sort_stats* stats) noexcept {
    reuses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr)
      stats->workspace_reuses.fetch_add(1, std::memory_order_relaxed);
  }
  void note_outstanding(std::size_t now, sort_stats* stats) noexcept {
    if (stats != nullptr) stats->note_peak_workspace(now);
  }

  std::mutex mu_;
  std::vector<detail::slab_ptr> free_[detail::kNumSizeClasses];
  detail::slab_ptr arena_;
  std::size_t arena_capacity_ = 0;
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> allocated_bytes_{0};
  std::atomic<std::size_t> outstanding_bytes_{0};
};

// ---------------------------------------------------------------------------
// workspace_pool — a bounded pool of sort_workspace arenas for concurrent
// in-flight sorts.
//
// A single sort_workspace serves one sort at a time (its record_buffer is a
// monotone arena with no internal locking), so any code that wants several
// sorts in flight — the wide-key refine driver sorting equal-prefix
// segments concurrently, or N request threads calling dovetail::sort — needs
// one workspace per concurrent sort. This pool supplies them:
//
//   * checkout() claims a parked workspace (lock-free: one atomic exchange
//     per slot scanned) or, when every slot is empty, creates a fresh one.
//   * The handle's destructor checks the workspace back in, parking it in an
//     empty slot (one CAS per slot scanned) so the next checkout reuses its
//     warm slabs. If every slot is already occupied — more than `capacity`
//     sorts were in flight — the surplus workspace is destroyed (counted in
//     discards()).
//
// After warm-up, a workload whose concurrency stays within `capacity` does
// zero pool-level allocation: every checkout is a hit on a warm arena.
// Workspaces park with their slabs intact, so steady-state sort-internal
// allocation is zero too (the property test_parallel_sort.cpp pins down).
//
// Checkout/checkin are wait-free per slot and never block; the slot array is
// sized at construction and never grows. Handles must not outlive the pool.
class workspace_pool {
 public:
  // RAII checkout. Dereferences to the leased sort_workspace; checks the
  // workspace back into the pool on destruction.
  class handle {
   public:
    handle() = default;
    handle(handle&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)),
          ws_(std::exchange(o.ws_, nullptr)) {}
    handle& operator=(handle&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = std::exchange(o.pool_, nullptr);
        ws_ = std::exchange(o.ws_, nullptr);
      }
      return *this;
    }
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    ~handle() { release(); }

    [[nodiscard]] sort_workspace* get() const noexcept { return ws_; }
    sort_workspace& operator*() const noexcept { return *ws_; }
    sort_workspace* operator->() const noexcept { return ws_; }
    [[nodiscard]] explicit operator bool() const noexcept {
      return ws_ != nullptr;
    }

    // Early checkin (idempotent); the destructor calls it too.
    void release() noexcept {
      if (pool_ != nullptr) {
        pool_->checkin(ws_);
        pool_ = nullptr;
        ws_ = nullptr;
      }
    }

   private:
    friend class workspace_pool;
    handle(workspace_pool* pool, sort_workspace* ws) noexcept
        : pool_(pool), ws_(ws) {}

    workspace_pool* pool_ = nullptr;
    sort_workspace* ws_ = nullptr;
  };

  // `capacity` bounds how many workspaces the pool keeps parked (and hence
  // its steady-state memory). 0 = one per scheduler worker, the natural
  // bound on useful sort concurrency.
  explicit workspace_pool(std::size_t capacity = 0)
      : slots_(capacity != 0 ? capacity
                             : static_cast<std::size_t>(
                                   par::scheduler::default_num_workers())) {
    for (auto& s : slots_) s.ptr.store(nullptr, std::memory_order_relaxed);
  }
  workspace_pool(const workspace_pool&) = delete;
  workspace_pool& operator=(const workspace_pool&) = delete;
  ~workspace_pool() {
    for (auto& s : slots_) delete s.ptr.load(std::memory_order_acquire);
  }

  // Claim a workspace: a parked one if any slot holds one, else a fresh one.
  [[nodiscard]] handle checkout() {
    checkouts_.fetch_add(1, std::memory_order_relaxed);
    for (auto& s : slots_) {
      if (s.ptr.load(std::memory_order_relaxed) == nullptr) continue;
      sort_workspace* ws = s.ptr.exchange(nullptr, std::memory_order_acquire);
      if (ws != nullptr) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return handle(this, ws);
      }
    }
    creations_.fetch_add(1, std::memory_order_relaxed);
    return handle(this, new sort_workspace());
  }

  // Park fresh workspaces in up to `count` empty slots (clamped to
  // capacity) so a burst of concurrent checkouts starts warm instead of
  // constructing under load. Counters are untouched: prewarmed arenas are
  // neither checkouts nor creations, so the checkout-side invariant
  // `checkouts == pool_hits + creations` still holds and every subsequent
  // checkout of a prewarmed arena is a pool hit. Slabs inside each arena
  // still warm up on first use; prewarm removes the pool-level
  // construction, the first sorting round removes the slab-level mallocs.
  // Not thread-safe against concurrent checkout/checkin of the same pool;
  // call it before opening the pool to traffic. Returns the number of
  // workspaces actually parked.
  std::size_t prewarm(std::size_t count = 0) {
    if (count == 0 || count > slots_.size()) count = slots_.size();
    std::size_t parked_now = 0;
    for (auto& s : slots_) {
      if (parked_now == count) break;
      if (s.ptr.load(std::memory_order_relaxed) != nullptr) {
        ++parked_now;  // already warm
        continue;
      }
      sort_workspace* ws = new sort_workspace();
      sort_workspace* expected = nullptr;
      if (s.ptr.compare_exchange_strong(expected, ws,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        ++parked_now;
      } else {
        delete ws;  // raced with a checkin; slot is warm anyway
        ++parked_now;
      }
    }
    return parked_now;
  }

  // Number of workspaces currently parked (checked in and waiting). A
  // point-in-time scan: exact only while no checkout/checkin is running.
  [[nodiscard]] std::size_t parked() const noexcept {
    std::size_t n = 0;
    for (const auto& s : slots_)
      if (s.ptr.load(std::memory_order_relaxed) != nullptr) ++n;
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  // Checkouts served from a parked (warm) workspace.
  [[nodiscard]] std::uint64_t pool_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  // Checkouts that had to construct a fresh workspace.
  [[nodiscard]] std::uint64_t creations() const noexcept {
    return creations_.load(std::memory_order_relaxed);
  }
  // Checkins that found every slot occupied and destroyed the workspace
  // (only possible when concurrency exceeded `capacity`).
  [[nodiscard]] std::uint64_t discards() const noexcept {
    return discards_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t checkouts() const noexcept {
    return checkouts_.load(std::memory_order_relaxed);
  }

  // Process-wide default pool, used by the wide-key refine driver when the
  // caller does not supply one (auto_sort_options::pool).
  static workspace_pool& shared() {
    static workspace_pool p;
    return p;
  }

 private:
  friend class handle;

  void checkin(sort_workspace* ws) noexcept {
    for (auto& s : slots_) {
      sort_workspace* expected = nullptr;
      if (s.ptr.compare_exchange_strong(expected, ws,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
    discards_.fetch_add(1, std::memory_order_relaxed);
    delete ws;
  }

  struct alignas(detail::kSlabAlign) slot {
    std::atomic<sort_workspace*> ptr{nullptr};
  };
  std::vector<slot> slots_;
  std::atomic<std::uint64_t> checkouts_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> creations_{0};
  std::atomic<std::uint64_t> discards_{0};
};

}  // namespace dovetail
