// stream_sorter — chunked streaming ingestion for the serving layer.
//
// A sort-heavy pipeline that receives its input in chunks should not
// materialize the whole stream and then sort it once: by the time the last
// chunk arrives, all the earlier ones could already have been sorted. This
// header provides that overlap:
//
//   * push(chunk) copies the chunk and sorts it immediately through the
//     adaptive front door (auto_sort.hpp), with a workspace leased from a
//     workspace_pool so repeated pushes hit warm arenas (zero steady-state
//     allocation inside the engine);
//   * finish() merges the k sorted runs with a pairwise TREE merge built
//     on par::merge — runs merge in arrival order, level by level, so the
//     total merge work is n * ceil(log2 k) with every level a stable
//     parallel two-way merge. (A losers tree does the same work serially
//     per element; the pairwise tree keeps each level a bulk par::merge.)
//
// Byte-identical contract: finish() returns exactly the record sequence
// dovetail::sort would produce on the concatenation of the chunks. Three
// properties make that hold (test_stream_sort.cpp exercises each edge):
//   1. each chunk is sorted by the same front door (same policy/seed);
//   2. the merge comparator reproduces the front door's total preorder —
//      the codec word sequence (wide_key_traits) compared most-significant
//      word first, with the true-key `<` tie-break that the wide refine
//      driver applies for non-exhaustive codecs (e.g. std::string);
//   3. par::merge is stable with ties favoring its left input, and runs
//      merge in arrival order, so records with equal keys keep stream
//      order at every level — the unique stable order of the whole input.
//
// Memory: O(n) for the pending runs plus one n-record merge scratch leased
// from the pool during finish(). max_pending_runs bounds k (adjacent-run
// compaction), trading push-time merges for a flatter finish.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_service.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace dovetail {

namespace detail {

// The front door's total preorder on records, reconstructed for merging:
// codec words most-significant first (single-word codecs are one word —
// their zero-extended encoding), then the true-key comparison that
// wide_sort.hpp's refine driver applies when a non-exhaustive codec
// (string prefix) leaves equal word sequences unresolved. Records that
// compare equivalent here are tie-broken by merge stability, matching the
// front door's stable order.
template <typename KeyFn>
struct codec_order_less {
  KeyFn key{};

  template <typename Rec>
  bool operator()(const Rec& a, const Rec& b) const {
    using K = std::remove_cvref_t<
        std::invoke_result_t<const KeyFn&, const Rec&>>;
    using WT = wide_key_traits<K>;
    decltype(auto) ka = key(a);
    decltype(auto) kb = key(b);
    for (std::size_t w = 0; w < WT::word_count; ++w) {
      const std::uint64_t wa = WT::word(ka, w);
      const std::uint64_t wb = WT::word(kb, w);
      if (wa != wb) return wa < wb;
    }
    if constexpr (!WT::exhaustive) return ka < kb;
    return false;
  }
};

}  // namespace detail

// Options for stream_sorter; the front-door knobs match auto_sort_options.
struct stream_options {
  dispatch_policy policy{};
  std::uint64_t seed = 42;
  // Parallelism cap for chunk sorts and the finish() merge (0 = inherit;
  // scoped-limit contract, composes by min).
  int num_threads = 0;
  // Bound on pending sorted runs: when a push would leave more than this
  // many runs, the adjacent pair with the smallest combined size is merged
  // first (stability-preserving — only neighbors in arrival order ever
  // merge). 0 = unbounded, all merging deferred to finish().
  std::size_t max_pending_runs = 0;
  // Workspace pool for chunk sorts and the finish() scratch. nullptr =
  // workspace_pool::shared().
  workspace_pool* pool = nullptr;
  // stream_chunks / stream_merge_records accounting plus the front door's
  // counters aggregated across chunk sorts.
  sort_stats* stats = nullptr;
};

// Accepts a stream of record chunks and produces the globally sorted
// sequence, overlapping per-chunk sorting with ingestion. One in-flight
// stream per instance (not thread-safe); after finish() the instance is
// empty and reusable.
template <typename Rec, typename KeyFn = identity_key>
class stream_sorter {
  static_assert(std::is_copy_constructible_v<Rec>,
                "stream_sorter copies each pushed chunk");

 public:
  explicit stream_sorter(stream_options opt = {}, KeyFn key = KeyFn{})
      : opt_(opt), key_(std::move(key)) {}

  // Copy `chunk` in and sort it through the front door. Empty chunks are
  // accepted (and counted) but store no run.
  void push(std::span<const Rec> chunk) {
    if (opt_.stats != nullptr)
      opt_.stats->stream_chunks.fetch_add(1, std::memory_order_relaxed);
    if (chunk.empty()) return;
    runs_.emplace_back(chunk.begin(), chunk.end());
    sort_run(runs_.back());
    total_ += chunk.size();
    if (opt_.max_pending_runs >= 2) {
      while (runs_.size() > opt_.max_pending_runs) compact_smallest_pair();
    }
  }

  void push(const std::vector<Rec>& chunk) {
    push(std::span<const Rec>(chunk.data(), chunk.size()));
  }

  // Records ingested so far / sorted runs currently pending.
  [[nodiscard]] std::size_t size() const noexcept { return total_; }
  [[nodiscard]] std::size_t pending_runs() const noexcept {
    return runs_.size();
  }

  // Merge all pending runs into the final sorted sequence and reset the
  // sorter to empty. Byte-identical to dovetail::sort over the
  // concatenation of every pushed chunk (see the header comment).
  std::vector<Rec> finish() {
    const std::size_t n = total_;
    std::vector<Rec> out(n);
    std::vector<std::size_t> bounds;
    bounds.reserve(runs_.size() + 1);
    bounds.push_back(0);
    std::size_t off = 0;
    for (std::vector<Rec>& run : runs_) {
      std::move(run.begin(), run.end(), out.begin() + off);
      off += run.size();
      bounds.push_back(off);
    }
    runs_.clear();
    total_ = 0;
    if (bounds.size() <= 2) return out;  // 0 or 1 run: already sorted

    const par::scoped_worker_limit cap(opt_.num_threads);
    workspace_pool& p = pool();
    workspace_pool::handle ws = p.checkout();
    // Merge scratch: an n-record slab from the leased workspace when Rec
    // is trivially copyable (warm after the first stream), else a plain
    // vector (e.g. std::string records).
    std::vector<Rec> scratch_vec;
    std::span<Rec> scratch;
    sort_workspace::lease scratch_lease;
    if constexpr (std::is_trivially_copyable_v<Rec> &&
                  alignof(Rec) <= detail::kSlabAlign) {
      scratch_lease = ws->acquire_array<Rec>(n, scratch, opt_.stats);
    } else {
      scratch_vec.resize(n);
      scratch = std::span<Rec>(scratch_vec);
    }

    const detail::codec_order_less<KeyFn> comp{key_};
    std::span<Rec> src(out);
    std::span<Rec> dst = scratch;
    std::uint64_t merged = 0;
    while (bounds.size() > 2) {
      std::vector<std::size_t> next;
      next.reserve(bounds.size() / 2 + 2);
      next.push_back(0);
      std::size_t r = 0;
      for (; r + 2 < bounds.size(); r += 2) {
        const std::size_t lo = bounds[r], mid = bounds[r + 1],
                          hi = bounds[r + 2];
        par::merge(std::span<const Rec>(src.subspan(lo, mid - lo)),
                   std::span<const Rec>(src.subspan(mid, hi - mid)),
                   dst.subspan(lo, hi - lo), comp);
        merged += hi - lo;
        next.push_back(hi);
      }
      if (r + 2 == bounds.size()) {  // odd run count: carry the tail over
        const std::size_t lo = bounds[r], hi = bounds[r + 1];
        copy_records(src.subspan(lo, hi - lo), dst.subspan(lo, hi - lo));
        next.push_back(hi);
      }
      bounds = std::move(next);
      std::swap(src, dst);
    }
    if (src.data() != out.data())
      copy_records(src, std::span<Rec>(out));
    if (opt_.stats != nullptr)
      opt_.stats->stream_merge_records.fetch_add(merged,
                                                 std::memory_order_relaxed);
    return out;
  }

 private:
  workspace_pool& pool() const {
    return opt_.pool != nullptr ? *opt_.pool : workspace_pool::shared();
  }

  void sort_run(std::vector<Rec>& run) {
    if (run.size() <= 1) return;
    workspace_pool& p = pool();
    workspace_pool::handle ws = p.checkout();
    auto_sort_options aopt;
    aopt.policy = opt_.policy;
    aopt.seed = opt_.seed;
    aopt.num_threads = opt_.num_threads;
    aopt.workspace = ws.get();
    aopt.pool = &p;
    aopt.stats = opt_.stats;
    dovetail::sort(std::span<Rec>(run), key_, aopt);
  }

  // Merge the adjacent pair of runs with the smallest combined size into
  // one run. Only arrival-order neighbors merge, so stability (and the
  // byte-identical contract) is preserved.
  void compact_smallest_pair() {
    assert(runs_.size() >= 2);
    std::size_t best = 0;
    std::size_t best_size = runs_[0].size() + runs_[1].size();
    for (std::size_t i = 1; i + 1 < runs_.size(); ++i) {
      const std::size_t s = runs_[i].size() + runs_[i + 1].size();
      if (s < best_size) {
        best = i;
        best_size = s;
      }
    }
    std::vector<Rec>& a = runs_[best];
    std::vector<Rec>& b = runs_[best + 1];
    std::vector<Rec> merged(a.size() + b.size());
    const par::scoped_worker_limit cap(opt_.num_threads);
    par::merge(std::span<const Rec>(a.data(), a.size()),
               std::span<const Rec>(b.data(), b.size()),
               std::span<Rec>(merged), detail::codec_order_less<KeyFn>{key_});
    if (opt_.stats != nullptr)
      opt_.stats->stream_merge_records.fetch_add(
          merged.size(), std::memory_order_relaxed);
    a = std::move(merged);
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  static void copy_records(std::span<Rec> from, std::span<Rec> to) {
    if constexpr (std::is_trivially_copyable_v<Rec>) {
      par::copy(std::span<const Rec>(from.data(), from.size()), to);
    } else {
      par::parallel_for(0, from.size(),
                        [&](std::size_t i) { to[i] = std::move(from[i]); });
    }
  }

  stream_options opt_{};
  KeyFn key_{};
  std::vector<std::vector<Rec>> runs_;
  std::size_t total_ = 0;
};

}  // namespace dovetail
