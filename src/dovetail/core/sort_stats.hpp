// Work instrumentation for DovetailSort — the empirical counterpart of the
// paper's Sec 4 analysis.
//
// The theorems predict, in terms of records touched:
//   * Thm 4.4/4.5: total distribution work O(n sqrt(log r)) — i.e. roughly
//     (#levels) * n distributed records, with #levels = (log r)/γ;
//   * Thm 4.6: exponential key-frequency inputs => O(n) work (almost all
//     records become heavy at the top level and skip recursion);
//   * Thm 4.7: <= c'*2^γ distinct keys => O(n) work (light records shrink
//     geometrically per level).
// With stats enabled, `distributed_records / n` measures the effective
// number of levels each record participates in, `heavy_records` counts the
// records that were parked in heavy buckets (skipping all further levels),
// and so on. bench_suite's "theory" family reports these per distribution.
//
// Counters are updated at subproblem granularity (one atomic add per
// counting-sort call, not per record), so overhead is negligible.
#pragma once

#include <atomic>
#include <cstdint>

namespace dovetail {

struct sort_stats {
  // Sum of subproblem sizes over all distribution (counting sort) calls:
  // the dominant work term of the MSD framework.
  std::atomic<std::uint64_t> distributed_records{0};
  // Records that entered a heavy bucket (sorted once, skip all recursion).
  std::atomic<std::uint64_t> heavy_records{0};
  // Records finished by the comparison-sort base case (Alg 2 line 2).
  std::atomic<std::uint64_t> base_case_records{0};
  // Records routed to overflow buckets (keys above the sampled range).
  std::atomic<std::uint64_t> overflow_records{0};
  // Records in zones that required dovetail merging.
  std::atomic<std::uint64_t> merged_records{0};
  // Keys sampled across all subproblems (sampling overhead, o(n') each).
  std::atomic<std::uint64_t> sampled_keys{0};
  // Number of recursive subproblems that performed a distribution.
  std::atomic<std::uint64_t> num_distributions{0};
  // Number of heavy buckets created.
  std::atomic<std::uint64_t> num_heavy_buckets{0};
  // Deepest recursion level that performed a distribution (root = 1).
  std::atomic<std::uint64_t> max_depth{0};

  // --- Distribution-engine counters (distribute.hpp / workspace.hpp) ---
  // Fresh slab/arena allocations performed by the sort workspace. With a
  // reused workspace this stops growing after warm-up (the zero-hot-path-
  // allocation property; see test_workspace.cpp).
  std::atomic<std::uint64_t> workspace_allocations{0};
  // Checkouts served from the workspace freelist / an already-sized arena.
  std::atomic<std::uint64_t> workspace_reuses{0};
  // Bytes newly allocated by the workspace (slab capacities, not requests).
  std::atomic<std::uint64_t> workspace_bytes_allocated{0};
  // Distribution calls per scatter strategy actually executed (after
  // `automatic` resolution) — lets tests and benchmarks confirm routing.
  std::atomic<std::uint64_t> scatter_direct_calls{0};
  std::atomic<std::uint64_t> scatter_buffered_calls{0};
  std::atomic<std::uint64_t> scatter_unstable_calls{0};
  // In-place permutation passes executed (one per MSD node that ran the
  // block-permutation or flag kernel — inplace_sort.hpp and the
  // inplace-legacy baseline both bump it). Cumulative.
  std::atomic<std::uint64_t> inplace_passes{0};
  // High-water mark of workspace bytes simultaneously checked out (leased
  // slabs + the record-buffer arena), sampled at every lease point and
  // maxed via note_peak_workspace(). The out-of-place ping-pong path holds
  // >= n * sizeof(Rec) here; the in-place kernel's bound is
  // O(buckets * block) — the memory claim of ISSUE 10, asserted by
  // tests/test_inplace_sort.cpp. Monotone within a stats window; read it
  // with peak_workspace() and clear with reset().
  std::atomic<std::uint64_t> peak_workspace_bytes{0};

  // --- Adaptive front door (auto_sort.hpp / input_sketch.hpp) ---
  // Unlike the cumulative counters above these are last-write-wins
  // snapshots: each dovetail::sort() call overwrites them, so after a run
  // they describe the most recent dispatch through this stats object.
  // `chosen_kernel` holds 1 + static_cast<int>(sort_kernel) (0 = no
  // dispatch recorded yet); decode with chosen_kernel_of() in auto_sort.hpp.
  std::atomic<std::uint64_t> chosen_kernel{0};
  // Sketch summary behind the decision (permille = 0..1000 of the sampled
  // keys / probed pairs; see input_sketch.hpp for the exact definitions).
  std::atomic<std::uint64_t> sketch_key_bits{0};
  std::atomic<std::uint64_t> sketch_distinct_permille{0};
  std::atomic<std::uint64_t> sketch_top_permille{0};
  std::atomic<std::uint64_t> sketch_desc_permille{0};
  std::atomic<std::uint64_t> sketch_heavy_keys{0};
  // Exact run count measured by the run-merge confirmation scan (0 when
  // that branch was never entered).
  std::atomic<std::uint64_t> sketch_runs{0};
  // Typed front door (key_codec.hpp): which public entry point ran last
  // (1 + sort_entry: sort / sort_by_key / rank; decode with
  // entry_point_of()) and the key codec it used (1 + codec_kind, decode
  // with codec_kind_of(); encoded key width in bits). Snapshots, like
  // chosen_kernel.
  std::atomic<std::uint64_t> entry_point{0};
  std::atomic<std::uint64_t> codec_kind_id{0};
  std::atomic<std::uint64_t> codec_encoded_bits{0};
  // Wide-key refine driver (wide_sort.hpp) snapshots, last-write-wins like
  // the codec fields: refinement rounds run beyond the word-0 pass (the
  // final comparison tie-break round of a non-exhaustive codec included)
  // and the total number of equal-prefix segments those rounds refined.
  // Both stay 0 for single-word keys and for wide inputs whose word-0 sort
  // already separated every key.
  std::atomic<std::uint64_t> refine_rounds{0};
  std::atomic<std::uint64_t> wide_segments{0};
  // Offset-continuation (MSD recursion beyond the materialized prefix,
  // offset-capable codecs like std::string only) snapshots, stored by the
  // same driver: continuation rounds run (one per byte-offset window the
  // driver re-entered), the segment re-entries those rounds refined, and
  // the deepest key byte any round inspected (offset + stride of the last
  // window). wide_tiebreak_fallbacks counts ABOVE-base-case segments a
  // non-exhaustive codec finished with the true-key comparison sort —
  // always 0 when the continuation runs (its acceptance property); > 0 on
  // the dispatch_policy::wide_continuation = false ablation whenever an
  // equal-prefix segment outgrew wide_segment_base_case.
  std::atomic<std::uint64_t> wide_continuation_rounds{0};
  std::atomic<std::uint64_t> wide_continuation_segments{0};
  std::atomic<std::uint64_t> wide_max_byte_offset{0};
  std::atomic<std::uint64_t> wide_tiebreak_fallbacks{0};
  // Order-statistics queries (order_stats.hpp / group_by.hpp). query_kind
  // is a snapshot like chosen_kernel: 1 + static_cast<int>(query_kind) of
  // the last query entry point that ran through this stats object (0 = no
  // query recorded; decode with query_kind_of() in order_stats.hpp).
  // buckets_pruned / records_pruned are CUMULATIVE, like the engine
  // counters: buckets the rank-window selection driver proved wholly
  // outside every requested window after a distribution pass — and the
  // records inside them — which therefore skipped all further refinement.
  // A full sort never bumps them; a top-k with k << n prunes almost
  // everything (the bench_suite query-topk family records the ratio).
  std::atomic<std::uint64_t> query_kind{0};
  std::atomic<std::uint64_t> buckets_pruned{0};
  std::atomic<std::uint64_t> records_pruned{0};
  // Parallelism snapshots (last-write-wins like chosen_kernel): the worker
  // count the dispatcher decided to run the kernel under (1 = it chose the
  // serial path, e.g. n below dispatch_policy::parallel_crossover_n) and
  // the workers available under the innermost scoped cap when the engine
  // last recorded it (par::effective_workers()). Because the planned
  // parallelism is itself enforced with a scoped limit around the kernel,
  // a serial-planned sort reports effective_workers == 1 even on a large
  // pool — the value describes what the executed kernel really had, not
  // the pool size. chosen_parallelism <= effective_workers always; both 0
  // until a dispatch records them.
  std::atomic<std::uint64_t> chosen_parallelism{0};
  std::atomic<std::uint64_t> effective_workers{0};

  // --- Service layer (sort_service.hpp / stream_sort.hpp) ---
  // Cumulative, like the engine counters: the serving layer's request
  // accounting. `service_requests` counts requests completed by
  // sort_batch, `service_batches` the batch calls that carried them;
  // `stream_chunks` counts chunks accepted by stream_sorter::push and
  // `stream_merge_records` the records that rode through the k-way merge
  // machinery — finish()'s tree levels (n per level, ceil(log2 k) levels
  // for k runs) plus any push-time compaction merges.
  std::atomic<std::uint64_t> service_requests{0};
  std::atomic<std::uint64_t> service_batches{0};
  std::atomic<std::uint64_t> stream_chunks{0};
  std::atomic<std::uint64_t> stream_merge_records{0};

  // --- Timing / throughput (bench harness, dtsort_cli) ---
  // Wall-clock totals for whole-sort runs attributed to this stats object.
  // Unlike the work counters above, these are filled by the caller that
  // owns the clock, via note_timed_run(): the sort itself never reads the
  // time. `timed_records` counts input records across all timed runs, so
  // throughput_mrec_per_s() is the harness's headline number.
  std::atomic<std::uint64_t> timed_runs{0};
  std::atomic<std::uint64_t> timed_ns{0};
  std::atomic<std::uint64_t> timed_records{0};

  void note_timed_run(double seconds, std::uint64_t records) {
    timed_runs.fetch_add(1, std::memory_order_relaxed);
    timed_ns.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
    timed_records.fetch_add(records, std::memory_order_relaxed);
  }

  // Mean seconds per timed run; 0 when nothing was timed.
  [[nodiscard]] double seconds_per_run() const {
    const std::uint64_t runs = timed_runs.load(std::memory_order_relaxed);
    if (runs == 0) return 0.0;
    return static_cast<double>(timed_ns.load(std::memory_order_relaxed)) /
           1e9 / static_cast<double>(runs);
  }

  // Millions of records sorted per second across all timed runs.
  [[nodiscard]] double throughput_mrec_per_s() const {
    const std::uint64_t ns = timed_ns.load(std::memory_order_relaxed);
    if (ns == 0) return 0.0;
    return static_cast<double>(timed_records.load(std::memory_order_relaxed)) *
           1e3 / static_cast<double>(ns);
  }

  void reset() {
    distributed_records = 0;
    heavy_records = 0;
    base_case_records = 0;
    overflow_records = 0;
    merged_records = 0;
    sampled_keys = 0;
    num_distributions = 0;
    num_heavy_buckets = 0;
    max_depth = 0;
    workspace_allocations = 0;
    workspace_reuses = 0;
    workspace_bytes_allocated = 0;
    scatter_direct_calls = 0;
    scatter_buffered_calls = 0;
    scatter_unstable_calls = 0;
    inplace_passes = 0;
    peak_workspace_bytes = 0;
    chosen_kernel = 0;
    sketch_key_bits = 0;
    sketch_distinct_permille = 0;
    sketch_top_permille = 0;
    sketch_desc_permille = 0;
    sketch_heavy_keys = 0;
    sketch_runs = 0;
    entry_point = 0;
    codec_kind_id = 0;
    codec_encoded_bits = 0;
    refine_rounds = 0;
    wide_segments = 0;
    wide_continuation_rounds = 0;
    wide_continuation_segments = 0;
    wide_max_byte_offset = 0;
    wide_tiebreak_fallbacks = 0;
    query_kind = 0;
    buckets_pruned = 0;
    records_pruned = 0;
    chosen_parallelism = 0;
    effective_workers = 0;
    service_requests = 0;
    service_batches = 0;
    stream_chunks = 0;
    stream_merge_records = 0;
    timed_runs = 0;
    timed_ns = 0;
    timed_records = 0;
  }

  void note_depth(std::uint64_t d) {
    std::uint64_t cur = max_depth.load(std::memory_order_relaxed);
    while (cur < d && !max_depth.compare_exchange_weak(
                          cur, d, std::memory_order_relaxed)) {
    }
  }

  // CAS-max, like note_depth: called by the workspace at every lease point
  // with its current outstanding-bytes figure.
  void note_peak_workspace(std::uint64_t bytes) {
    std::uint64_t cur = peak_workspace_bytes.load(std::memory_order_relaxed);
    while (cur < bytes &&
           !peak_workspace_bytes.compare_exchange_weak(
               cur, bytes, std::memory_order_relaxed)) {
    }
  }

  // Decoder for the high-water counter (bytes; 0 = nothing leased yet).
  [[nodiscard]] std::uint64_t peak_workspace() const {
    return peak_workspace_bytes.load(std::memory_order_relaxed);
  }
};

}  // namespace dovetail
