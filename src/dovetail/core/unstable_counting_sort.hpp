// Unstable parallel counting sort — the practical skeleton of the
// theoretical distribution primitive of Thm 4.1 (Rajasekaran-Reif [47],
// discussed in Appendix B): in the scatter, bucket cursors are claimed with
// atomic fetch-and-add, so every record performs exactly one random-access
// write and no per-(block, bucket) cursor conversion is needed.
//
// Appendix B explains why this is *less* practical than the stable blocked
// version despite the better span: the scattered atomic writes are
// I/O-unfriendly. The bench_suite "engine-counting" and "engine-distribute"
// families measure both, so the trade-off the paper describes is
// reproducible.
//
// Implemented as the `unstable` scatter strategy of the unified
// distribution engine (distribute.hpp), sharing its id precompute, blocked
// counting phase and workspace reuse with the stable path — so the numbers
// isolate the scatter itself, not incidental differences in counting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dovetail/core/counting_sort.hpp"
#include "dovetail/core/distribute.hpp"

namespace dovetail {

// Same interface as counting_sort(), same offsets result, but the order of
// records *within* each bucket is unspecified.
template <typename Rec, typename BucketFn>
std::vector<std::size_t> unstable_counting_sort(std::span<const Rec> in,
                                                std::span<Rec> out,
                                                std::size_t num_buckets,
                                                const BucketFn& bucket_of) {
  distribute_options opt;
  opt.strategy = scatter_strategy::unstable;
  return counting_sort(in, out, num_buckets, bucket_of, opt);
}

}  // namespace dovetail
