// Unstable parallel counting sort — the theoretical distribution primitive
// of Thm 4.1 (Rajasekaran-Reif [47], discussed in Appendix B).
//
// Work O(n' + r'), span O(log n) whp, but unstable: records of a bucket
// land in arbitrary order. We implement the practical skeleton of the idea:
// bucket cursors are claimed with atomic fetch-and-add, so every record
// performs exactly one (random-access) write with no per-block counting
// matrix and no second pass over the input.
//
// Appendix B explains why this is *less* practical than the stable blocked
// version despite the better span: the scattered atomic writes are
// I/O-unfriendly. bench_counting_sort measures both so the trade-off the
// paper describes is reproducible.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"

namespace dovetail {

// Same interface as counting_sort(), same offsets result, but the order of
// records *within* each bucket is unspecified.
template <typename Rec, typename BucketFn>
std::vector<std::size_t> unstable_counting_sort(std::span<const Rec> in,
                                                std::span<Rec> out,
                                                std::size_t num_buckets,
                                                const BucketFn& bucket_of) {
  const std::size_t n = in.size();
  std::vector<std::size_t> offsets(num_buckets + 1, 0);
  if (n == 0) return offsets;

  // Bucket sizes, then starts.
  std::vector<std::size_t> sizes =
      par::histogram(n, num_buckets,
                     [&](std::size_t i) { return bucket_of(in[i]); });
  std::size_t acc = 0;
  for (std::size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = acc;
    acc += sizes[k];
  }
  offsets[num_buckets] = acc;

  // One atomic cursor per bucket; every record claims a slot and writes it.
  std::vector<std::atomic<std::size_t>> cursors(num_buckets);
  par::parallel_for(0, num_buckets,
                    [&](std::size_t k) { cursors[k].store(offsets[k]); });
  par::parallel_for(0, n, [&](std::size_t i) {
    const std::size_t k = bucket_of(in[i]);
    const std::size_t pos =
        cursors[k].fetch_add(1, std::memory_order_relaxed);
    out[pos] = in[i];
  });
  return offsets;
}

}  // namespace dovetail
