// sort_batch — the batched front door of the serving layer.
//
// The paper's DTSort is engineered for one huge array; the serving-layer
// north star (ROADMAP.md) is the opposite shape: millions of small and
// medium independent sort requests. On that shape throughput is governed
// by scheduling and memory reuse rather than single-sort speed, so this
// layer is deliberately thin: each request flows through the existing
// adaptive front door (auto_sort.hpp) unchanged, with
//
//   * a workspace leased from a workspace_pool per request, so a warm
//     steady state does zero pool-level and zero sort-internal allocation
//     (the concurrency battery in test_sort_service.cpp pins this down);
//   * an optional per-request `num_threads` cap (the PR 6 scoped-limit
//     contract: composes by min with every enclosing cap) and a soft
//     per-request deadline, recorded — not enforced preemptively — in
//     request_result::deadline_met;
//   * batch-level concurrency driven by the scheduler: requests are
//     parallel_for tasks at granularity 1, so idle workers steal whole
//     requests. A foreign (non-worker) calling thread runs its batch
//     inline — which is exactly what a multi-threaded server front end
//     wants: N request threads each draining their own batch while the
//     shared pool keeps their workspaces warm.
//
// Determinism: the front door is deterministic per call for a fixed
// (policy, seed) regardless of worker count, so a batched run is
// byte-identical to sorting each request serially one at a time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/timer.hpp"

namespace dovetail {

// Key functor for spans of raw codec-covered keys (the default when a
// request sorts keys rather than records).
struct identity_key {
  template <typename K>
  const K& operator()(const K& k) const noexcept {
    return k;
  }
};

// Per-request outcome, filled by sort_batch.
struct request_result {
  sort_kernel kernel = sort_kernel::std_sort;  // what the dispatcher chose
  double seconds = 0.0;      // wall time of this request's sort
  bool completed = false;    // set once the request has run
  bool deadline_met = true;  // false iff deadline_s > 0 and seconds exceeded it
};

// One batched sort request: a typed span plus per-request knobs. The span
// is sorted in place; `result` (and `stats`, when supplied) report how.
template <typename Rec, typename KeyFn = identity_key>
struct sort_request {
  std::span<Rec> data{};
  KeyFn key{};
  // Per-request parallelism cap, same contract as
  // auto_sort_options::num_threads (0 = inherit, 1 = exact serial path).
  // Composes by min with service_options::concurrency and any enclosing
  // scoped limit.
  int num_threads = 0;
  // Soft latency budget in seconds; 0 = none. Checked after the sort
  // completes (the request is never abandoned mid-flight) and recorded in
  // result.deadline_met so callers can count SLO misses.
  double deadline_s = 0.0;
  // Optional per-request stats: the front door's counters and snapshots
  // for THIS request only.
  sort_stats* stats = nullptr;
  request_result result{};
};

// Batch-level options for sort_batch.
struct service_options {
  dispatch_policy policy{};
  std::uint64_t seed = 42;  // per-request front-door determinism seed
  // Cap on requests in flight (a scoped worker limit around the batch):
  // 0 = all scheduler workers. Per-request num_threads nests inside it.
  int concurrency = 0;
  // Workspace pool the requests lease from. nullptr =
  // workspace_pool::shared(). Size (and prewarm()) it to the expected
  // concurrency for a zero-allocation steady state.
  workspace_pool* pool = nullptr;
  // Batch-level stats: service_requests/service_batches accounting plus
  // the front door's cumulative counters aggregated across every request
  // that does not carry its own stats object. (Snapshot fields like
  // chosen_kernel are last-write-wins across concurrent requests — use
  // per-request stats when you need them exact.)
  sort_stats* stats = nullptr;
};

// Sort every request in `requests` concurrently, each through the adaptive
// front door with a pool-leased workspace. Returns when all requests have
// completed; per-request outcomes land in requests[i].result.
template <typename Rec, typename KeyFn>
void sort_batch(std::span<sort_request<Rec, KeyFn>> requests,
                const service_options& opt = {}) {
  workspace_pool& pool =
      opt.pool != nullptr ? *opt.pool : workspace_pool::shared();
  const par::scoped_worker_limit batch_cap(opt.concurrency);
  par::parallel_for(
      0, requests.size(),
      [&](std::size_t i) {
        sort_request<Rec, KeyFn>& req = requests[i];
        timer t;
        workspace_pool::handle ws = pool.checkout();
        auto_sort_options aopt;
        aopt.policy = opt.policy;
        aopt.seed = opt.seed;
        aopt.num_threads = req.num_threads;
        aopt.workspace = ws.get();
        aopt.pool = &pool;
        aopt.stats = req.stats != nullptr ? req.stats : opt.stats;
        req.result.kernel = dovetail::sort(req.data, req.key, aopt);
        req.result.seconds = t.seconds();
        req.result.completed = true;
        req.result.deadline_met =
            req.deadline_s <= 0.0 || req.result.seconds <= req.deadline_s;
      },
      /*granularity=*/1);
  if (opt.stats != nullptr) {
    opt.stats->service_requests.fetch_add(requests.size(),
                                          std::memory_order_relaxed);
    opt.stats->service_batches.fetch_add(1, std::memory_order_relaxed);
  }
}

// Convenience overload: a batch held in any contiguous container of
// requests (std::vector<sort_request<...>> is the common shape).
template <typename Rec, typename KeyFn>
void sort_batch(std::vector<sort_request<Rec, KeyFn>>& requests,
                const service_options& opt = {}) {
  sort_batch(std::span<sort_request<Rec, KeyFn>>(requests), opt);
}

}  // namespace dovetail
