// Semisort (Sec 2.5): reorder records so that equal keys become adjacent,
// with no ordering constraint between groups. The heavy-key sampling
// technique DTSort builds on was developed for this problem [23, 32]; in
// return, an integer sort yields a semisort directly: hash every key to a
// uniform 64-bit fingerprint and integer-sort by the fingerprint. Equal
// keys collide to one fingerprint and end up contiguous; the sampling
// machinery inside DovetailSort automatically gives heavy groups their own
// buckets, exactly as a dedicated semisort would.
//
// Hash collisions between distinct keys would merge two groups; with a
// bijective 64-bit mixer (hash64) over integer keys there are none.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail {

// Reorders `data` in place so records with equal key(r) are adjacent; the
// order *between* groups is arbitrary (it follows the hashed fingerprints)
// but deterministic for a fixed opt.seed.
//
// Requirements: Rec is trivially copyable; `key` returns an unsigned
// integer and is a pure function of the record.
//
// Guarantees: stable within each group (relative input order preserved);
// O(n sqrt(log n)) work, O(n) for heavily duplicated inputs — the heavy-
// key machinery gives big groups their own buckets, exactly as a dedicated
// semisort would.
//
// Space: O(n) extra, leased from a sort_workspace. Distribution runs
// through the unified engine (distribute.hpp), so opt.workspace /
// opt.scatter apply exactly as in dovetail_sort: passing the same
// workspace to repeated semisorts reuses all O(n) scratch after warm-up
// (one in-flight call per workspace).
template <typename Rec, typename KeyFn>
void semisort(std::span<Rec> data, const KeyFn& key,
              const sort_options& opt = {}) {
  dovetail_sort(
      data,
      [&key](const Rec& r) {
        return par::hash64(static_cast<std::uint64_t>(key(r)));
      },
      opt);
}

// Group boundaries of a semisorted sequence: offsets of each run of equal
// keys, terminated by data.size().
template <typename Rec, typename KeyFn>
std::vector<std::size_t> group_offsets(std::span<const Rec> data,
                                       const KeyFn& key) {
  std::vector<std::size_t> offs;
  std::size_t i = 0;
  while (i < data.size()) {
    offs.push_back(i);
    std::size_t j = i + 1;
    while (j < data.size() && key(data[j]) == key(data[i])) ++j;
    i = j;
  }
  offs.push_back(data.size());
  return offs;
}

}  // namespace dovetail
