// Cheap input sketching for the adaptive front door (auto_sort.hpp).
//
// The paper's conclusion (Sec 6, Tab 3) — and Gerbessiotis's across the
// multicore radix family — is that no single integer sort wins everywhere:
// the best kernel depends on the input's size, key range, duplicate
// structure and bitwise skew. A dispatcher therefore needs an o(n) summary
// of exactly those properties. This header computes it:
//
//   * key sample       — Θ(2^γ log n)-style uniform sample of keys (the same
//                        deterministic sampling machinery as sampling.hpp,
//                        which also supplies the heavy-key count and range
//                        estimate used by dovetail_sort itself), sorted once
//                        to yield min/max, distinct count, the most frequent
//                        key's share, and the skew of the low radix digit;
//   * order probes     — uniformly sampled *adjacent* pairs (i, i+1),
//                        classified ascending / equal / descending. Zero
//                        descending probes is strong evidence of a (near-)
//                        sorted input; zero ascending probes of a reversed
//                        one. Probes must be adjacent pairs: strided pairs
//                        would also look sorted on noisy-but-globally-
//                        increasing data that the run-merge kernel cannot
//                        exploit.
//
// Everything is a deterministic function of (seed, position), so a sketch —
// and hence every dispatch decision built on it — is reproducible. Cost is
// O(samples log samples + probes) with ~1.5k random reads at the defaults:
// microseconds, against milliseconds for the cheapest sort of a
// dispatch-sized input.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sampling.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail {

struct sketch_options {
  // Keys sampled for the range/duplicate statistics (capped at n).
  std::size_t max_samples = 1024;
  // Adjacent pairs probed for the order statistics (capped at n - 1).
  std::size_t max_probes = 512;
  // Subsample stride for the heavy-key rule of sampling.hpp; 0 = auto
  // (clamp(log2 n, 4, 24), matching dovetail_sort's default).
  std::size_t sample_stride = 0;
  // Seed for the deterministic sample/probe positions.
  std::uint64_t seed = 42;
};

struct input_sketch {
  std::size_t n = 0;

  // --- record/key-functor facts (filled by the dispatcher, not by
  // sketch_input: they come from the types, not the data) ---
  std::size_t record_bytes = 0;  // sizeof(record); 0 = not filled
  // Equal encoded keys imply byte-identical records (the key functor is a
  // pure-key functor per is_pure_key_fn_v in key_codec.hpp — e.g. a plain
  // unsigned/signed/float span sorted by itself). When true the unstable
  // in-place kernel is indistinguishable from a stable one, so the
  // dispatcher may select it without stability::relaxed.
  bool pure_key_records = false;

  // --- key-sample statistics ---
  std::size_t num_samples = 0;
  std::uint64_t min_sample = 0;
  std::uint64_t max_sample = 0;
  int key_bits = 0;                 // bit_width(max_sample)
  std::size_t distinct_samples = 0; // distinct keys among the samples
  std::size_t top_count = 0;        // multiplicity of the most frequent sample
  // Most frequent low byte among the *distinct* sampled keys. Deduplicating
  // first separates bitwise skew (the BExp family: every key's bits lean
  // the same way) from plain duplication (a heavy key repeating its byte),
  // which the top_count/distinct fields already capture.
  std::size_t digit_top_count = 0;
  std::size_t heavy_keys = 0;       // heavy keys per the Sec 2.5 sample rule

  // --- adjacent-pair order probes ---
  std::size_t probes = 0;
  std::size_t asc_probes = 0;   // key(a[i]) <  key(a[i+1])
  std::size_t eq_probes = 0;    // key(a[i]) == key(a[i+1])
  std::size_t desc_probes = 0;  // key(a[i]) >  key(a[i+1])

  // Sampled key range (inclusive width estimate; the true range can only be
  // wider, which is why the counting-sort branch re-checks exactly).
  [[nodiscard]] std::uint64_t sample_range() const {
    return max_sample - min_sample;
  }
  // Fraction of samples that were distinct — low means heavy duplication.
  [[nodiscard]] double distinct_ratio() const {
    return num_samples == 0
               ? 1.0
               : static_cast<double>(distinct_samples) /
                     static_cast<double>(num_samples);
  }
  // Share of the single most frequent sampled key.
  [[nodiscard]] double top_freq() const {
    return num_samples == 0 ? 0.0
                            : static_cast<double>(top_count) /
                                  static_cast<double>(num_samples);
  }
  // Share of the most frequent low radix digit (byte) among distinct
  // sampled keys. ~1/256 for keys with uniform low bits; large for
  // bitwise-skewed inputs (the BExp family), where direct stores beat
  // buffered staging because few scatter cursors are hot.
  [[nodiscard]] double digit_top_share() const {
    return distinct_samples == 0 ? 0.0
                                 : static_cast<double>(digit_top_count) /
                                       static_cast<double>(distinct_samples);
  }
  // No probed adjacent pair descended: likely sorted (or trivially short).
  [[nodiscard]] bool maybe_sorted() const { return desc_probes == 0; }
  // Every probed pair descended or tied, with at least one real descent:
  // likely reverse-sorted.
  [[nodiscard]] bool maybe_reverse_sorted() const {
    return asc_probes == 0 && desc_probes > 0;
  }
};

// Sketch `data` under `key`. Pure read-only; deterministic for a fixed
// opt.seed. Requirements match the sorters': `key` is a pure function of
// the record returning an unsigned integer — or any other codec-covered
// type (key_codec.hpp), in which case the sketch runs over the ENCODED
// keys: exactly what the dispatcher and the radix kernels will see, so
// range/digit/order statistics stay meaningful (e.g. a descending float
// array still probes as descending, because the total-order transform is
// monotone).
template <typename Rec, typename KeyFn>
input_sketch sketch_input(std::span<const Rec> data, const KeyFn& key,
                          const sketch_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  if constexpr (!std::is_unsigned_v<K>) {
    static_assert(any_sortable_key<K>,
                  "sketch_input: the key type has no key_codec "
                  "(see core/key_codec.hpp)");
    if constexpr (!sortable_key<K>) {
      // Wide (multi-word) key: sketch the most significant word — exactly
      // what the refine driver's word-0 dispatch will see (wide_sort.hpp).
      return sketch_input(
          data,
          [&key](const Rec& r) {
            return wide_key_traits<K>::word(key(r), 0);
          },
          opt);
    } else {
      return sketch_input(
          data,
          [&key](const Rec& r) { return key_codec<K>::encode(key(r)); },
          opt);
    }
  } else {
  input_sketch s;
  s.n = data.size();
  if (s.n == 0) return s;
  const auto keyof = [&](const Rec& r) {
    return static_cast<std::uint64_t>(key(r));
  };

  // Heavy-key detection and the max-sample range estimate reuse the exact
  // sampling scheme dovetail_sort runs internally (sampling.hpp): same
  // positions for the same seed, so the sketch predicts what the sort
  // would itself detect.
  const std::size_t ns = std::min(s.n, std::max<std::size_t>(1, opt.max_samples));
  const std::size_t lg2n =
      std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, s.n)));
  const std::size_t stride =
      opt.sample_stride != 0 ? opt.sample_stride
                             : std::clamp<std::size_t>(lg2n, 4, 24);
  std::vector<std::uint64_t> sample;
  const sample_result sr =
      sample_keys(data, keyof, ~std::uint64_t{0}, ns, stride,
                  /*detect_heavy=*/true, opt.seed, &sample);
  s.heavy_keys = sr.heavy_keys.size();
  s.num_samples = sr.num_samples;
  s.max_sample = sr.max_sample;
  s.key_bits = bit_width_u64(sr.max_sample);

  // Duplicate / digit statistics from the same (already sorted) draw.
  s.min_sample = sample.front();
  std::size_t digit_hist[256] = {};
  std::size_t run = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (i == 0 || sample[i] != sample[i - 1]) {
      ++s.distinct_samples;
      ++digit_hist[sample[i] & 0xFF];  // each distinct key counted once
      run = 0;
    }
    s.top_count = std::max(s.top_count, ++run);
  }
  for (const std::size_t c : digit_hist)
    s.digit_top_count = std::max(s.digit_top_count, c);

  // Order probes over adjacent pairs at independent positions. Each probe
  // is a pure function of (seed, j), so the parallel tally classifies
  // exactly the pairs the sequential loop would — the counts (and hence
  // every dispatch decision) are reproducible at any worker count. Like
  // the sample gather, the probes are latency-bound random reads: the part
  // of the o(n) pre-work worth spreading across workers.
  if (s.n >= 2) {
    s.probes = std::min(s.n - 1, std::max<std::size_t>(1, opt.max_probes));
    struct tally {
      std::size_t asc = 0, eq = 0, desc = 0;
    };
    const tally t = par::reduce_map(
        0, s.probes, tally{},
        [&](std::size_t j) {
          const auto p = static_cast<std::size_t>(
              par::rand_range(opt.seed ^ 0x0DDE55AAull, j, s.n - 1));
          const std::uint64_t a = keyof(data[p]), b = keyof(data[p + 1]);
          tally one;
          if (a < b)
            one.asc = 1;
          else if (a == b)
            one.eq = 1;
          else
            one.desc = 1;
          return one;
        },
        [](tally x, tally y) {
          return tally{x.asc + y.asc, x.eq + y.eq, x.desc + y.desc};
        });
    s.asc_probes = t.asc;
    s.eq_probes = t.eq;
    s.desc_probes = t.desc;
  }
  return s;
  }  // constexpr-else: unsigned keys
}

}  // namespace dovetail
