// Dovetail merging (Alg 3 / Sec 3.4): interleave the sorted light bucket of
// an MSD zone with the zone's heavy buckets.
//
// Layout on entry (one MSD zone, contiguous in `zone`):
//     [ light bucket, sorted | heavy B_0 | heavy B_1 | ... | heavy B_{m-1} ]
// Heavy buckets are ordered by key and each holds records of a single key;
// the light bucket contains no record with a heavy key. On exit the zone is
// fully sorted, stably.
//
// Strategy: copy only the smaller of (light, all-heavy) out to scratch; the
// larger side is moved *within* the zone, bucket by bucket (sequentially
// across buckets, in parallel within a bucket). A move whose source and
// destination overlap uses the two-flip rotation trick [27, 60]: reverse the
// bucket, then reverse the whole affected region (or the mirror image for
// rightward moves), which relocates the bucket stably in place.
//
// pl_merge() is the baseline of Sec 6.3 (Fig 4 c,d): a standard parallel
// merge into scratch followed by a copy back — two rounds of global data
// movement, which DTMerge avoids.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"

namespace dovetail {

namespace detail {

// Index of the first light record with key(light[i]) >= hk.
template <typename Rec, typename KeyFn>
std::size_t light_lower_bound(std::span<const Rec> light, const KeyFn& key,
                              std::uint64_t hk) {
  std::size_t lo = 0, hi = light.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (static_cast<std::uint64_t>(key(light[mid])) < hk)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace detail

// `zone`: the full zone region; `light_size`: records in the light bucket
// (prefix of `zone`); `heavy_sizes`: sizes of the m heavy buckets following
// it, in key order; `tmp`: scratch of at least min(light, total-heavy)
// records (the zone-sized scratch segment in practice).
template <typename Rec, typename KeyFn>
void dt_merge(std::span<Rec> zone, std::size_t light_size,
              std::span<const std::size_t> heavy_sizes, const KeyFn& key,
              std::span<Rec> tmp) {
  const std::size_t m = heavy_sizes.size();
  const std::size_t total = zone.size();
  const std::size_t total_heavy = total - light_size;
  if (m == 0 || total_heavy == 0) return;

  // Heavy bucket i currently starts at hstart[i]; hprefix[i] = total heavy
  // records before bucket i.
  std::vector<std::size_t> hstart(m), hprefix(m + 1);
  {
    std::size_t cur = light_size;
    for (std::size_t i = 0; i < m; ++i) {
      hstart[i] = cur;
      hprefix[i] = cur - light_size;
      cur += heavy_sizes[i];
    }
    hprefix[m] = total_heavy;
  }

  // cuts[i]: number of light records with key strictly below heavy key i
  // (equal keys cannot occur across light/heavy). Monotone since heavy keys
  // ascend. Final start of heavy bucket i is cuts[i] + hprefix[i].
  std::span<const Rec> light(zone.data(), light_size);
  std::vector<std::size_t> cuts(m);
  par::parallel_for(
      0, m,
      [&](std::size_t i) {
        if (heavy_sizes[i] == 0) {
          cuts[i] = i == 0 ? 0 : cuts[i - 1];  // defensive; not expected
          return;
        }
        auto hk = static_cast<std::uint64_t>(key(zone[hstart[i]]));
        cuts[i] = detail::light_lower_bound(light, key, hk);
      },
      1);

  if (light_size <= total_heavy) {
    // ---- Case 1 (Alg 3 lines 2-12): back up the light records, move heavy
    // buckets left into place, then scatter the light chunks back.
    par::copy(light, tmp.subspan(0, light_size));
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t len = heavy_sizes[i];
      if (len == 0) continue;
      const std::size_t src = hstart[i];
      const std::size_t dst = cuts[i] + hprefix[i];  // dst <= src
      if (dst == src) continue;
      if (dst + len <= src) {
        par::parallel_for(0, len,
                          [&](std::size_t j) { zone[dst + j] = zone[src + j]; });
      } else {
        // Overlapping leftward move: flip the bucket, then flip the whole
        // region [dst, src+len). The bucket lands at dst in original order;
        // the displaced prefix (expired data) lands reversed after it.
        par::reverse_inplace(zone.subspan(src, len));
        par::reverse_inplace(zone.subspan(dst, src + len - dst));
      }
    }
    // Scatter light chunks from tmp. Chunk i in [0, m]: light records in
    // [cs, ce) shifted right by hprefix[i]. Chunk 0 never moves and its
    // region is never clobbered by heavy moves, so it is skipped.
    par::parallel_for(
        0, m + 1,
        [&](std::size_t i) {
          if (i == 0) return;
          const std::size_t cs = cuts[i - 1];
          const std::size_t ce = i == m ? light_size : cuts[i];
          if (ce <= cs) return;
          const std::size_t dst = cs + hprefix[i];
          par::parallel_for(0, ce - cs, [&](std::size_t j) {
            zone[dst + j] = tmp[cs + j];
          });
        },
        1);
  } else {
    // ---- Case 2 (Alg 3 line 13, symmetric): back up the heavy records,
    // shift the light chunks right (last chunk first), then scatter the
    // heavy buckets into the gaps.
    par::copy(std::span<const Rec>(zone.subspan(light_size)),
              tmp.subspan(0, total_heavy));
    for (std::size_t i = m; i >= 1; --i) {
      const std::size_t cs = cuts[i - 1];
      const std::size_t ce = i == m ? light_size : cuts[i];
      if (ce <= cs) continue;
      const std::size_t len = ce - cs;
      const std::size_t dst = cs + hprefix[i];  // dst >= cs
      if (dst == cs) continue;
      if (dst >= ce) {
        par::parallel_for(0, len,
                          [&](std::size_t j) { zone[dst + j] = zone[cs + j]; });
      } else {
        // Overlapping rightward move: flip the whole region [cs, dst+len),
        // then flip the destination [dst, dst+len).
        par::reverse_inplace(zone.subspan(cs, dst + len - cs));
        par::reverse_inplace(zone.subspan(dst, len));
      }
    }
    par::parallel_for(
        0, m,
        [&](std::size_t i) {
          const std::size_t len = heavy_sizes[i];
          if (len == 0) return;
          const std::size_t src = hprefix[i];
          const std::size_t dst = cuts[i] + hprefix[i];
          par::parallel_for(0, len, [&](std::size_t j) {
            zone[dst + j] = tmp[src + j];
          });
        },
        1);
  }
}

// Baseline merging (Sec 6.3, "PLMerge"): the heavy buckets concatenated are
// already sorted, so one standard parallel merge into scratch plus a copy
// back produces the zone. Costs two rounds of global data movement.
template <typename Rec, typename KeyFn>
void pl_merge(std::span<Rec> zone, std::size_t light_size, const KeyFn& key,
              std::span<Rec> tmp) {
  const std::size_t total = zone.size();
  if (light_size == 0 || light_size == total) return;
  auto comp = [&](const Rec& x, const Rec& y) { return key(x) < key(y); };
  par::merge(std::span<const Rec>(zone.data(), light_size),
             std::span<const Rec>(zone.data() + light_size,
                                  total - light_size),
             tmp.subspan(0, total), comp);
  par::copy(std::span<const Rec>(tmp.data(), total), zone);
}

}  // namespace dovetail
