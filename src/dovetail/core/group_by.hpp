// First-class group-by — the public face of semisort (Sec 2.5) on the
// typed front door.
//
// semisort.hpp reorders records so equal keys become adjacent, but it
// speaks raw unsigned keys and hands back a bare array; callers still
// re-derive the group structure themselves. group_by packages the whole
// query: stably co-sort a keys/values pair of arrays by ANY codec-covered
// key type (signed, float, 128-bit, strings — everything dovetail::sort
// takes), then return a grouped_view with the group offsets already
// scanned, so `for (g : view) aggregate(view.group(g))` is the entire
// caller-side loop.
//
// Two group orders:
//   * group_order::sorted (default) — groups appear in ascending codec
//     key order. The output arrays are BYTE-IDENTICAL to
//     dovetail::sort_by_key followed by an adjacency scan: the strongest
//     possible equivalence, tested per codec kind in
//     test_order_stats.cpp.
//   * group_order::fingerprint — the semisort promotion: integral keys
//     are sorted by their bijective 64-bit hash fingerprint
//     (par::hash64), which is what the paper's heavy-key machinery was
//     designed around — heavily duplicated inputs finish in O(n) because
//     big groups ride the heavy-bucket path. Group order is arbitrary
//     but deterministic; within-group order is stable. Non-integral keys
//     have no bijective fingerprint and silently take the sorted route
//     (grouping is still correct, just also ordered).
//
// Workspace/stats contract as dovetail::sort: scratch is leased, warm
// repeated calls on one workspace allocate nothing beyond the returned
// offsets vector; the query is recorded in sort_stats::query_kind as
// query_kind::group_by.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/order_stats.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail {

// Order of the groups in a grouped_view (within-group order is stable
// either way).
enum class group_order : std::uint8_t {
  sorted,       // ascending codec key order — identical to sort+scan
  fingerprint,  // hashed semisort order (integral keys; others -> sorted)
};

// The result of group_by: views over the caller's (now grouped) arrays
// plus the group boundary offsets. Group g occupies
// [offsets[g], offsets[g+1]) in both arrays; offsets always ends with
// the total size (empty input: offsets == {0}, num_groups() == 0).
template <typename K, typename V>
struct grouped_view {
  std::span<K> keys;
  std::span<V> values;
  std::vector<std::size_t> offsets;

  [[nodiscard]] std::size_t num_groups() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::size_t group_size(std::size_t g) const {
    return offsets[g + 1] - offsets[g];
  }
  // The (shared) key of group g.
  [[nodiscard]] const K& key(std::size_t g) const {
    return keys[offsets[g]];
  }
  // The values of group g, in stable (input) order.
  [[nodiscard]] std::span<V> group(std::size_t g) const {
    return values.subspan(offsets[g], group_size(g));
  }
  [[nodiscard]] std::span<K> group_keys(std::size_t g) const {
    return keys.subspan(offsets[g], group_size(g));
  }
};

namespace detail {

// Boundaries of maximal runs of equal keys: positions i with
// keys[i-1] != keys[i], bracketed by 0 and n. The block-parallel shape of
// run_boundaries (auto_sort.hpp), with == instead of the codec order —
// grouping only needs adjacency, never a second key decode.
template <typename K>
std::vector<std::size_t> group_boundaries(std::span<const K> keys) {
  const std::size_t n = keys.size();
  if (n == 0) return {0};
  std::vector<std::size_t> bounds{0};
  if (n >= 2) {
    const std::size_t nblocks =
        n <= 8192 ? 1
                  : std::min<std::size_t>(
                        8 * static_cast<std::size_t>(par::num_workers()),
                        (n + 8191) / 8192);
    const std::size_t bsize = (n + nblocks - 1) / nblocks;
    std::vector<std::vector<std::size_t>> local(nblocks);
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const std::size_t lo = std::max<std::size_t>(1, b * bsize);
          const std::size_t hi = std::min(n, (b + 1) * bsize);
          for (std::size_t i = lo; i < hi; ++i)
            if (!(keys[i - 1] == keys[i])) local[b].push_back(i);
        },
        1);
    for (const auto& v : local)
      bounds.insert(bounds.end(), v.begin(), v.end());
  }
  bounds.push_back(n);
  return bounds;
}

// The fingerprint (semisort) permutation for integral keys: stable sort
// of (hash64(key), index) pairs, one gather per array. hash64 is a
// bijective 64-bit mixer, so distinct keys never collide and equal keys
// always do — grouping is exact, and the heavy-key sampling inside the
// engine gives big groups their own buckets.
template <typename K, typename V>
void group_by_fingerprint(std::span<K> keys, std::span<V> values,
                          const auto_sort_options& opt) {
  const std::size_t n = keys.size();
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  scratch_array<K> tk(n, ws, opt.stats);
  scratch_array<V> tv(n, ws, opt.stats);
  const std::span<K> sk = tk.get();
  const std::span<V> sv = tv.get();
  ranked_permutation(
      n, 64,
      [&](std::size_t i) {
        return par::hash64(static_cast<std::uint64_t>(keys[i]));
      },
      opt, ws,
      [&](std::size_t pos, std::size_t src) {
        sk[pos] = keys[src];
        sv[pos] = values[src];
      });
  write_back(sk, keys);
  write_back(sv, values);
}

}  // namespace detail

// Group parallel key/value arrays (SoA) in place and return the grouped
// view. Stable within groups; group order per `order` (see above). The
// spans in the returned view alias the caller's arrays.
//
// Throws std::invalid_argument when the spans' sizes differ.
template <typename K, typename V>
grouped_view<K, V> group_by(std::span<K> keys, std::span<V> values,
                            const auto_sort_options& opt = {},
                            group_order order = group_order::sorted) {
  static_assert(any_sortable_key<K>,
                "dovetail::group_by: the key type has no key_codec (see "
                "core/key_codec.hpp)");
  if (keys.size() != values.size())
    throw std::invalid_argument(
        "dovetail::group_by: keys and values differ in size");
  detail::note_query(opt.stats, query_kind::group_by,
                     wide_key_traits<K>::kind,
                     wide_key_traits<K>::encoded_bits);
  if constexpr (std::integral<std::remove_cvref_t<K>>) {
    if (order == group_order::fingerprint)
      detail::group_by_fingerprint(keys, values, opt);
    else
      dovetail::sort_by_key(keys, values, opt);
  } else {
    (void)order;  // no bijective fingerprint: sorted is the only route
    dovetail::sort_by_key(keys, values, opt);
  }
  return grouped_view<K, V>{
      keys, values,
      detail::group_boundaries(std::span<const K>(keys.data(), keys.size()))};
}

// Keys-only overload: groups the keys themselves (the view's `values`
// alias `keys`).
template <typename K>
grouped_view<K, K> group_by(std::span<K> keys,
                            const auto_sort_options& opt = {},
                            group_order order = group_order::sorted) {
  static_assert(any_sortable_key<K>,
                "dovetail::group_by: the key type has no key_codec (see "
                "core/key_codec.hpp)");
  detail::note_query(opt.stats, query_kind::group_by,
                     wide_key_traits<K>::kind,
                     wide_key_traits<K>::encoded_bits);
  if constexpr (std::integral<std::remove_cvref_t<K>>) {
    if (order == group_order::fingerprint) {
      // Single-array fingerprint permutation (semisort proper).
      const std::size_t n = keys.size();
      sort_workspace local_ws;
      sort_workspace& ws =
          opt.workspace != nullptr ? *opt.workspace : local_ws;
      detail::scratch_array<K> tk(n, ws, opt.stats);
      const std::span<K> sk = tk.get();
      detail::ranked_permutation(
          n, 64,
          [&](std::size_t i) {
            return par::hash64(static_cast<std::uint64_t>(keys[i]));
          },
          opt, ws,
          [&](std::size_t pos, std::size_t src) { sk[pos] = keys[src]; });
      detail::write_back(sk, keys);
    } else {
      dovetail::sort(keys, opt);
    }
  } else {
    (void)order;
    dovetail::sort(keys, opt);
  }
  return grouped_view<K, K>{
      keys, keys,
      detail::group_boundaries(std::span<const K>(keys.data(), keys.size()))};
}

}  // namespace dovetail
