// DovetailSort (DTSort) — Alg 2 of "Parallel Integer Sort: Theory and
// Practice" (PPoPP 2024). A stable parallel MSD integer sort that detects
// heavily duplicated keys by sampling, gives each its own bucket so it skips
// all further recursion, and dovetail-merges the heavy buckets back between
// the recursively sorted light keys.
//
// Structure of one recursive call on a subproblem of n' records whose keys
// agree on all bits above `bits`:
//   1. Sampling   — estimate the key range (overflow-bucket trick, Sec 5)
//                   and detect heavy keys (Sec 2.5); assign bucket ids so
//                   that each MSD zone is [light | its heavy buckets...]
//                   and buckets are globally ordered (Sec 3.1).
//   2. Distribute — one stable parallel counting sort by bucket id into the
//                   other buffer of an (A, T) ping-pong pair (Sec 3.2, 5).
//   3. Recurse    — sort each light bucket on the next digit; heavy buckets
//                   are already fully sorted and skip recursion (Sec 3.3).
//   4. Dovetail   — per zone, interleave heavy buckets with the sorted
//                   light bucket via DTMerge (Alg 3, Sec 3.4).
// Base cases: no bits left, or n' <= θ (stable comparison sort, Sec 3.5).
//
// Work O(n sqrt(log r)), span ~O(2^sqrt(log r)) per Thm 4.5; stable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "dovetail/core/bucket_table.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/dt_merge.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sampling.hpp"
#include "dovetail/core/sort_options.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/parallel/sort.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail {

namespace detail {

template <typename Rec, typename KeyFn>
class dt_sorter {
 public:
  using key_type = std::decay_t<std::invoke_result_t<KeyFn, const Rec&>>;
  static_assert(std::is_unsigned_v<key_type>,
                "dovetail_sort requires an unsigned integer key");
  static_assert(std::is_trivially_copyable_v<Rec>,
                "dovetail_sort requires trivially copyable records");

  dt_sorter(std::span<Rec> data, const KeyFn& key, const sort_options& opt)
      : a_(data), key_(key), opt_(opt) {
    const std::size_t n = std::max<std::size_t>(2, data.size());
    log2n_ = std::max<std::size_t>(1, ceil_log2(n));
    gamma_ = opt.gamma > 0
                 ? opt.gamma
                 : std::clamp<int>(static_cast<int>(log2n_ / 3), 8, 12);
    stride_ = opt.sample_stride != 0
                  ? opt.sample_stride
                  : std::clamp<std::size_t>(log2n_, 4, 24);
    theta_ = std::max<std::size_t>(opt.base_case, 2);
  }

  void run() {
    if (a_.size() <= 1) return;
    // All engine scratch — the ping-pong buffer, bucket-id arrays,
    // counting matrices and offsets — comes from one workspace, sized at
    // the top level and reused across every recursion level. An external
    // workspace (opt.workspace) additionally carries that memory across
    // repeated sorts, so warm re-sorts perform zero workspace allocations
    // (see test_workspace.cpp); only the small per-node sampling and
    // bucket-table vectors still touch the heap.
    sort_workspace local_ws;
    ws_ = opt_.workspace != nullptr ? opt_.workspace : &local_ws;
    t_ = ws_->template record_buffer<Rec>(a_.size(), opt_.stats);
    sort_rec(0, a_.size(), std::numeric_limits<key_type>::digits,
             /*in_a=*/true, opt_.seed, /*depth=*/1);
    ws_ = nullptr;
  }

 private:
  [[nodiscard]] std::uint64_t keyof(const Rec& r) const {
    return static_cast<std::uint64_t>(key_(r));
  }

  // Stable comparison sort of [lo, hi) in the buffer currently holding the
  // data; the result always ends in A. The matching segment of the other
  // buffer is dead space and serves as mergesort scratch.
  void comparison_base(std::size_t lo, std::size_t hi, bool in_a) {
    const std::size_t n = hi - lo;
    auto cur = (in_a ? a_ : t_).subspan(lo, n);
    if (n > 1) {
      auto comp = [this](const Rec& x, const Rec& y) {
        return key_(x) < key_(y);
      };
      if (n > (std::size_t{1} << 15)) {
        auto scratch = (in_a ? t_ : a_).subspan(lo, n);
        par::merge_sort(cur, scratch, comp);
      } else {
        std::stable_sort(cur.begin(), cur.end(), comp);
      }
    }
    if (!in_a)
      par::copy(std::span<const Rec>(cur), a_.subspan(lo, n));
  }

  void sort_rec(std::size_t lo, std::size_t hi, int bits, bool in_a,
                std::uint64_t seed, std::uint64_t depth) {
    const std::size_t n = hi - lo;
    if (n == 0) return;
    if (bits == 0 || n == 1) {  // all bits sorted (Alg 2 line 1)
      if (!in_a)
        par::copy(std::span<const Rec>(t_.subspan(lo, n)), a_.subspan(lo, n));
      return;
    }
    if (n <= theta_) {  // comparison-sort base case (Alg 2 line 2)
      if (opt_.stats != nullptr)
        opt_.stats->base_case_records.fetch_add(n, std::memory_order_relaxed);
      comparison_base(lo, hi, in_a);
      return;
    }

    std::span<Rec> cur = in_a ? a_ : t_;
    std::span<Rec> oth = in_a ? t_ : a_;
    std::span<const Rec> data(cur.data() + lo, n);
    const std::uint64_t mask = low_mask(bits);

    // ---- Step 1: sampling ----
    // Digit width: γ, but never more than sqrt-ish of the subproblem so the
    // sampling cost stays o(n') (Thm 4.5 needs n' >= 2^2γ for the level).
    const int dcap = std::min(
        {gamma_, bits,
         std::max(2, static_cast<int>(floor_log2(n) / 2))});
    const std::size_t zones_cap = std::size_t{1} << dcap;

    sample_result sr;
    int eff_bits = bits;
    const bool use_sampling = opt_.detect_heavy || opt_.skip_leading_bits;
    if (use_sampling) {
      const std::size_t ns = std::min<std::size_t>(n, zones_cap * stride_);
      sr = sample_keys(
          data, [this](const Rec& r) { return keyof(r); }, mask, ns, stride_,
          opt_.detect_heavy, seed);
      if (opt_.skip_leading_bits) eff_bits = bit_width_u64(sr.max_sample);
    }
    const int digit = std::min(dcap, eff_bits);
    const int shift = eff_bits - digit;
    const std::size_t zones = std::size_t{1} << digit;
    const bool has_overflow = eff_bits < bits;

    const bucket_table bt(sr.heavy_keys, shift, zones);
    const std::size_t nb = bt.num_buckets();

    // ---- Step 2: distribute (stable counting sort by bucket id) ----
    auto bucket_of = [&](const Rec& r) -> std::size_t {
      const std::uint64_t kp = keyof(r) & mask;
      if (has_overflow && (kp >> eff_bits) != 0) return bt.overflow_id();
      return bt.lookup(kp);
    };
    sort_workspace::lease off_lease =
        ws_->acquire((nb + 1) * sizeof(std::size_t), opt_.stats);
    const std::span<std::size_t> offs = off_lease.carve<std::size_t>(nb + 1);
    distribute_options dopt;
    dopt.strategy = opt_.scatter;
    dopt.require_stable = true;  // DTSort's stability guarantee
    dopt.buffer_bytes = opt_.scatter_buffer_bytes;
    dopt.workspace = ws_;
    dopt.stats = opt_.stats;
    distribute(data, oth.subspan(lo, n), nb, bucket_of, offs, dopt);

    if (sort_stats* st = opt_.stats; st != nullptr) {
      st->distributed_records.fetch_add(n, std::memory_order_relaxed);
      st->num_distributions.fetch_add(1, std::memory_order_relaxed);
      st->sampled_keys.fetch_add(sr.num_samples, std::memory_order_relaxed);
      st->num_heavy_buckets.fetch_add(sr.heavy_keys.size(),
                                      std::memory_order_relaxed);
      st->note_depth(depth);
      st->overflow_records.fetch_add(offs[nb] - offs[bt.overflow_id()],
                                     std::memory_order_relaxed);
      // Heavy records = everything outside the light buckets and overflow.
      std::uint64_t light_total = 0;
      for (std::size_t z = 0; z < zones; ++z) {
        const std::uint32_t lid = bt.light_id(z);
        light_total += offs[lid + 1] - offs[lid];
      }
      st->heavy_records.fetch_add(
          offs[bt.overflow_id()] - light_total, std::memory_order_relaxed);
    }

    const bool child_in_a = !in_a;  // records now live in `oth`

    // ---- Steps 3 + 4, per MSD zone in parallel; slot `zones` handles the
    // overflow bucket. ----
    par::parallel_for(
        0, zones + 1,
        [&](std::size_t z) {
          if (z == zones) {
            // Overflow bucket: keys above the sampled range; comparison
            // sort (they are few whp) and land in A.
            const std::size_t blo = lo + offs[bt.overflow_id()];
            const std::size_t bhi = lo + offs[nb];
            if (bhi > blo) comparison_base(blo, bhi, child_in_a);
            return;
          }
          const std::uint32_t lid = bt.light_id(z);
          const std::uint32_t next =
              z + 1 < zones ? bt.light_id(z + 1) : bt.overflow_id();
          const std::size_t zlo = lo + offs[lid];
          const std::size_t zhi = lo + offs[next];
          if (zhi == zlo) return;
          const std::size_t light_sz = offs[lid + 1] - offs[lid];
          const std::size_t m = next - lid - 1;  // heavy buckets in zone

          // Step 3: recurse on the light bucket (result lands in A).
          if (light_sz > 0)
            sort_rec(zlo, zlo + light_sz, shift, child_in_a,
                     par::hash64(seed + z + 1), depth + 1);

          if (m == 0) return;

          // Heavy buckets skip recursion; make sure they are in A.
          if (!child_in_a) {
            par::copy(std::span<const Rec>(t_.data() + zlo + light_sz,
                                           zhi - zlo - light_sz),
                      a_.subspan(zlo + light_sz, zhi - zlo - light_sz));
          }

          // Step 4: dovetail merging within the zone.
          std::vector<std::size_t> sizes(m);
          for (std::size_t i = 0; i < m; ++i)
            sizes[i] = offs[lid + 2 + i] - offs[lid + 1 + i];
          if (opt_.ablate_skip_merge) return;  // Fig 4(c,d) "Others" timing
          if (opt_.stats != nullptr)
            opt_.stats->merged_records.fetch_add(zhi - zlo,
                                                 std::memory_order_relaxed);

          auto zone_span = a_.subspan(zlo, zhi - zlo);
          auto tmp_span = t_.subspan(zlo, zhi - zlo);
          if (opt_.use_dt_merge)
            dt_merge(zone_span, light_sz, std::span<const std::size_t>(sizes),
                     key_, tmp_span);
          else
            pl_merge(zone_span, light_sz, key_, tmp_span);
        },
        1);
  }

  std::span<Rec> a_;
  std::span<Rec> t_;
  const KeyFn key_;
  const sort_options opt_;
  sort_workspace* ws_ = nullptr;
  std::size_t log2n_ = 1;
  int gamma_ = 8;
  std::size_t stride_ = 8;
  std::size_t theta_ = 1 << 14;
};

}  // namespace detail

// Sort `data` in place by `key(record)` in non-decreasing key order.
//
// Requirements: Rec is trivially copyable; `key` is a pure function of the
// record (it is called multiple times per record) returning an unsigned
// integer or any other codec-covered type (key_codec.hpp) — non-unsigned
// keys are sorted by their order-preserving encoding. `data` must not
// overlap the workspace's buffers.
//
// Guarantees:
//   * Stable — records with equal keys keep their input order (unaffected
//     by opt.scatter: the unstable strategy is ignored here).
//   * O(n sqrt(log r)) work and ~O(2^sqrt(log r)) span (r = key range;
//     Thm 4.5), O(n) work for exponential key-frequency or few-distinct-key
//     inputs (Thm 4.6/4.7).
//   * Deterministic for a fixed opt.seed (Appendix A).
//
// Space: O(n) extra (the ping-pong record buffer + per-level scratch), all
// leased from a sort_workspace. Pass one via opt.workspace to reuse it
// across repeated sorts — after the first (warm-up) sort, re-sorts of
// equal-or-smaller inputs perform zero workspace allocations. A workspace
// serves one in-flight sort at a time; concurrent sorts need distinct
// workspaces (opt.workspace = nullptr gives each call a private one).
template <typename Rec, typename KeyFn>
void dovetail_sort(std::span<Rec> data, const KeyFn& key,
                   const sort_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  // Honor the per-call parallelism cap for the whole sort, sampling and
  // distribution included; records the effective count when stats are on.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  if (opt.stats != nullptr)
    opt.stats->effective_workers.store(
        static_cast<std::uint64_t>(par::effective_workers()),
        std::memory_order_relaxed);
  if constexpr (std::is_unsigned_v<K>) {
    detail::dt_sorter<Rec, KeyFn> s(data, key, opt);
    s.run();
  } else {
    // Typed keys (key_codec.hpp): run the kernel over the order-preserving
    // unsigned encoding. The records themselves are scattered unchanged,
    // so no decode pass is needed.
    static_assert(sortable_key<K>,
                  "dovetail_sort: the key type has no key_codec "
                  "(see core/key_codec.hpp)");
    const auto enc = [&key](const Rec& r) {
      return key_codec<K>::encode(key(r));
    };
    detail::dt_sorter<Rec, decltype(enc)> s(data, enc, opt);
    s.run();
  }
}

// Convenience overload for spans of plain keys — unsigned, or any other
// codec-covered trivially-copyable type (signed integers, float/double).
template <typename K>
  requires(sortable_key<K> && std::is_trivially_copyable_v<K>)
void dovetail_sort(std::span<K> data, const sort_options& opt = {}) {
  dovetail_sort(data, [](const K& k) { return k; }, opt);
}

}  // namespace dovetail
