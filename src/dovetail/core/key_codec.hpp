// key_codec<K> — the typed-key customization point in front of the radix
// kernels.
//
// Every kernel in this library (DTSort, the LSD/MSD baselines, the engine)
// sorts by an *unsigned integer* key, because that is what a radix pass can
// chew on. Real workloads arrive with signed offsets, IEEE floats and
// (hi, lo) composite keys — the PPoPP'24 evaluation itself motivates integer
// sort through Morton codes, graph reordering and group-bys, all of which
// carry such keys. The classic fix (PBBS's `integer_sort(In, f)`, RADULS,
// the Gerbessiotis multicore studies) is an order-preserving bit encoding:
// map the key to an unsigned integer such that
//
//     a < b  (key order)   ⇔   encode(a) < encode(b)  (unsigned order)
//
// and every radix method works unchanged. This header defines that mapping
// as a customization point:
//
//   template <typename K> struct key_codec {
//     using encoded_t = /* unsigned integer type */;
//     static encoded_t encode(K);   // order-preserving
//     static K decode(encoded_t);   // exact inverse of encode
//   };
//
// Built-in codecs:
//   * unsigned integers — identity (the kernels' native currency; zero cost).
//   * signed integers   — sign-bit flip: adding 2^(w-1) maps
//     [INT_MIN, INT_MAX] monotonically onto [0, 2^w); exact round trip.
//   * float / double    — the IEEE-754 total-order transform: positive
//     values get the sign bit set, negative values are bitwise complemented.
//     Encoded order is IEEE totalOrder: -NaN < -inf < ... < -0.0 < +0.0 <
//     ... < +inf < +NaN, with NaNs ordered by payload. NaN POLICY: NaNs are
//     never compared via operator< (which would be UB-adjacent nonsense);
//     they sort deterministically to the two ends by their sign bit.
//     Note -0.0 and +0.0 are DISTINCT encodings ordered -0.0 < +0.0, so for
//     non-NaN values a < b ⇒ encode(a) < encode(b), and
//     encode(a) < encode(b) ⇒ a ≤ b (equality only for the two zeros).
//     Round trip is bit-exact, NaN payloads included.
//   * std::pair / std::tuple of codec-covered components — lexicographic
//     bit concatenation: the first component occupies the high bits. The
//     encoded width is the sum of the component widths, packed into the
//     smallest unsigned type that fits (u8/u16/u32/u64, e.g.
//     pair<u32, u32> → u64, tuple<u16, i16, u8> → u64 using 40 bits).
//     Composites wider than 64 bits (e.g. pair<u64, u64>) become
//     multi-word codecs over the same bit string — see below.
//     Nested composites work as long as the total fits, budgeted by each
//     component's LOGICAL width (codec_traits<K>::encoded_bits), not its
//     container type — a 40-bit tuple nested in a pair costs 40 bits,
//     not the 64 of the u64 it travels in.
//
// A codec must be a bijection between the key's value set and a subset of
// encoded_t values (round-trip-exact both ways), and encode must be
// order-preserving in the sense above. The `cheap` flag tells the front
// door (auto_sort.hpp) the encode is a few ALU ops, safe to recompute per
// radix pass (fused encoding); codecs without it get the encode-once path.
//
// MULTI-WORD (wide) codecs — keys wider than 64 encoded bits. Instead of
// the single-word form, a codec may describe its key as a sequence of
// 64-bit words compared lexicographically, most significant word first:
//
//   static constexpr std::size_t encoded_words;             // >= 1
//   static std::uint64_t encode_word(const K& k, std::size_t w);
//
// Contract: a < b (key order) implies words(a) <= words(b) in
// lexicographic u64 order. When the codec is EXHAUSTIVE (`exhaustive`
// member absent or true), equal word sequences imply equal keys, so the
// word order is equivalent to the key order. A NON-exhaustive codec
// (exhaustive == false — the prefix string codecs) is an order-preserving
// coarsening; the refine driver (core/wide_sort.hpp) owes the order
// beyond the words, paid one of two ways. If the codec also has the
// OFFSET form
//
//   static constexpr std::size_t continuation_words;   // words per round
//   static constexpr std::size_t continuation_stride;  // bytes per round
//   static std::uint64_t encode_word(const K& k, std::size_t w,
//                                    std::size_t byte_offset);
//   static constexpr bool word_continues(std::uint64_t word);
//
// the driver keeps refining by radix: still-tied segments re-encode
// their first continuation_words words from the next
// continuation_stride-byte slice of the true keys and re-enter the same
// refinement, recursing until word_continues reports the keys end inside
// the compared window (MSD continuation — the variable-length string
// engine). Continuation rounds may use FEWER words than the materialized
// prefix: the string codecs materialize 2 words (14 bytes) for the
// front-door prefix but continue 1 word (7 bytes) per round, because the
// driver probes still-tied segments first and skips any number of
// verified-tied words in one scan — a narrow round only ever sorts a
// word the probe saw differ, never a word the shared prefix makes
// constant. Segments at or below the comparison
// base case, and every residual segment of a non-offset codec, finish
// with a stable comparison sort on the true keys, which must then be
// comparable with operator<. Either way the sorted result is the TRUE key
// order. Wide codecs are encode-only (the sorters never decode); `cheap`
// means encode_word is a few ALU ops / at most one cache line of the key.
// Built-in wide codecs:
//   * pair / tuple composites whose packed width exceeds 64 bits
//     (pair<u64, u64>, tuple<u64, u64, u32>, nested mixes — any
//     fixed-width exhaustive components, wide components included);
//   * unsigned/signed __int128 (two words; sign flip on the high word);
//   * std::string / std::string_view — offset-capable prefix words: word
//     w at byte offset off packs content bytes [off+7w, off+7w+7)
//     big-endian over a low count byte min(7, remaining) that makes a
//     strict prefix sort first and marks where keys end. 2 words = a
//     14-byte materialized prefix; continuation advances one 7-byte word
//     per round (tied words are skipped by the probe, differing words
//     are radix-sorted), so the sorted result is the TRUE lexicographic
//     order of unsigned bytes at any length.
//
// Specialize key_codec in namespace dovetail to cover your own key type;
// codec_traits<K> (single-word) and wide_key_traits<K> (uniform word view)
// below are what the entry points consult.
#pragma once

#include <array>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>

namespace dovetail {

// How a codec transforms keys — recorded in sort_stats::codec_kind_id
// (1 + the enum value) by the front-door entry points.
enum class codec_kind : std::uint8_t {
  identity,           // unsigned keys, encode is a no-op
  sign_flip,          // signed integers
  float_total_order,  // float/double IEEE total-order transform
  composite,          // pair/tuple bit concatenation
  string_prefix,      // fixed-prefix byte-string words (non-exhaustive)
  custom,             // user specialization without a `kind` member
};

inline const char* codec_kind_name(codec_kind k) {
  switch (k) {
    case codec_kind::identity: return "identity";
    case codec_kind::sign_flip: return "sign-flip";
    case codec_kind::float_total_order: return "float-total-order";
    case codec_kind::composite: return "composite";
    case codec_kind::string_prefix: return "string-prefix";
    case codec_kind::custom: return "custom";
  }
  return "?";
}

// Primary template: intentionally undefined. A key type is codec-covered
// iff a specialization below (or a user one) exists; sortable_key<K> is
// the detection concept the entry points constrain on.
template <typename K>
struct key_codec;

// ---------------------------------------------------------------------------
// Built-in codecs.

// Unsigned integers: identity. bool is excluded — it is not a sort key.
template <typename K>
  requires(std::unsigned_integral<K> && !std::same_as<K, bool>)
struct key_codec<K> {
  using encoded_t = K;
  static constexpr codec_kind kind = codec_kind::identity;
  static constexpr bool cheap = true;
  static constexpr encoded_t encode(K k) noexcept { return k; }
  static constexpr K decode(encoded_t e) noexcept { return e; }
};

// Signed integers: flip the sign bit. In two's complement this adds
// 2^(w-1) modulo 2^w, mapping INT_MIN → 0 and INT_MAX → 2^w - 1, a strictly
// monotone bijection.
template <typename K>
  requires std::signed_integral<K>
struct key_codec<K> {
  using encoded_t = std::make_unsigned_t<K>;
  static constexpr codec_kind kind = codec_kind::sign_flip;
  static constexpr bool cheap = true;
  static constexpr encoded_t sign_bit = encoded_t{1}
                                        << (8 * sizeof(K) - 1);
  static constexpr encoded_t encode(K k) noexcept {
    return static_cast<encoded_t>(k) ^ sign_bit;
  }
  static constexpr K decode(encoded_t e) noexcept {
    return static_cast<K>(e ^ sign_bit);
  }
};

// float/double: IEEE-754 total-order transform. For a non-negative float
// the raw bit pattern already orders correctly, so setting the sign bit
// lifts it above every negative; for a negative float larger magnitude
// means smaller value, so complementing all bits reverses the magnitude
// order and clears the (encoded) sign bit. See the header comment for the
// resulting NaN/-0.0 policy.
template <typename F>
  requires(std::same_as<F, float> || std::same_as<F, double>)
struct key_codec<F> {
  using encoded_t =
      std::conditional_t<sizeof(F) == 4, std::uint32_t, std::uint64_t>;
  static constexpr codec_kind kind = codec_kind::float_total_order;
  static constexpr bool cheap = true;
  static constexpr encoded_t sign_bit = encoded_t{1}
                                        << (8 * sizeof(F) - 1);
  static constexpr encoded_t encode(F f) noexcept {
    const auto b = std::bit_cast<encoded_t>(f);
    return (b & sign_bit) != 0 ? static_cast<encoded_t>(~b)
                               : static_cast<encoded_t>(b | sign_bit);
  }
  static constexpr F decode(encoded_t e) noexcept {
    return std::bit_cast<F>((e & sign_bit) != 0
                                ? static_cast<encoded_t>(e ^ sign_bit)
                                : static_cast<encoded_t>(~e));
  }
};

// ---------------------------------------------------------------------------
// Detection + traits.

// A key type the typed entry points accept. Checking the requires-clause
// instantiates key_codec<K>, so a composite that exists but does not fit
// 64 bits fails loudly at its static_assert rather than silently dropping
// out of overload resolution — exactly the diagnostic we want.
template <typename K>
concept sortable_key = requires(const std::remove_cvref_t<K>& k) {
  typename key_codec<std::remove_cvref_t<K>>::encoded_t;
  {
    key_codec<std::remove_cvref_t<K>>::encode(k)
  } -> std::same_as<typename key_codec<std::remove_cvref_t<K>>::encoded_t>;
};

namespace detail {

template <typename C>
concept codec_has_kind =
    requires { { C::kind } -> std::convertible_to<codec_kind>; };

template <typename C>
concept codec_has_cheap =
    requires { { C::cheap } -> std::convertible_to<bool>; };

template <typename C>
concept codec_has_bits =
    requires { { C::encoded_bits } -> std::convertible_to<int>; };

// Smallest unsigned type holding `Bits` bits (Bits in [1, 64]).
template <int Bits>
using uint_for_bits_t = std::conditional_t<
    (Bits <= 8), std::uint8_t,
    std::conditional_t<(Bits <= 16), std::uint16_t,
                       std::conditional_t<(Bits <= 32), std::uint32_t,
                                          std::uint64_t>>>;

}  // namespace detail

// What the entry points consult: the codec plus uniform defaults for the
// optional members (`kind` defaults to custom, `cheap` to false — an
// unknown user codec gets the conservative encode-once path).
template <sortable_key K>
struct codec_traits {
  using key_t = std::remove_cvref_t<K>;
  using codec = key_codec<key_t>;
  using encoded_t = typename codec::encoded_t;
  static_assert(std::unsigned_integral<encoded_t> &&
                    !std::same_as<encoded_t, bool>,
                "key_codec<K>::encoded_t must be an unsigned integer type");
  // LOGICAL encoded width: every encode(k) < 2^encoded_bits. Composites
  // occupy fewer bits than their encoded_t container (e.g. a
  // tuple<u16, i16, u8> uses 40 of a u64), and nested composites are
  // budgeted by this value, not the container size. Codecs without the
  // member use their container width.
  static constexpr int encoded_bits = [] {
    if constexpr (detail::codec_has_bits<codec>) return codec::encoded_bits;
    else return static_cast<int>(8 * sizeof(encoded_t));
  }();
  static_assert(encoded_bits >= 1 &&
                    encoded_bits <= static_cast<int>(8 * sizeof(encoded_t)),
                "key_codec<K>::encoded_bits must fit encoded_t");
  static constexpr codec_kind kind = [] {
    if constexpr (detail::codec_has_kind<codec>) return codec::kind;
    else return codec_kind::custom;
  }();
  static constexpr bool cheap = [] {
    if constexpr (detail::codec_has_cheap<codec>) return codec::cheap;
    else return false;
  }();
  static constexpr bool identity = kind == codec_kind::identity;
};

// ---------------------------------------------------------------------------
// Pure-key record detection (the record-triviality bit the dispatcher feeds
// input_sketch). A record set is "pure-key" when equal sort keys imply
// byte-identical records, which makes instability unobservable and the
// unstable in-place kernel (inplace_sort.hpp) safe to auto-select. That
// cannot be introspected out of an arbitrary key lambda, so the convenience
// entry points name their key functors:
//   * self_key        — the record IS the key (sort(span<K>) overloads);
//   * encoded_key_fn  — the fused path's encode wrapper; pure iff its inner
//     functor is. Built-in single-word codecs are bijections on the key's
//     value representation (sign flip, IEEE total-order flip, identity), so
//     equal encodings imply bit-identical keys — and with self_key inside,
//     bit-identical records.
// Everything else (records with payload fields, user lambdas, the
// encode-once (key, rank) pairs) stays non-pure and keeps the strict-
// stability kernels unless the caller opts into stability::relaxed.
struct self_key {
  template <typename K>
  const K& operator()(const K& k) const noexcept {
    return k;
  }
};

template <typename Codec, typename Inner>
struct encoded_key_fn {
  const Inner& inner;
  template <typename Rec>
  auto operator()(const Rec& r) const {
    return Codec::encode(inner(r));
  }
};

template <typename F>
struct is_pure_key_fn : std::false_type {};
template <>
struct is_pure_key_fn<self_key> : std::true_type {};
template <typename Codec, typename Inner>
struct is_pure_key_fn<encoded_key_fn<Codec, Inner>>
    : is_pure_key_fn<std::remove_cvref_t<Inner>> {};

template <typename F>
inline constexpr bool is_pure_key_fn_v =
    is_pure_key_fn<std::remove_cvref_t<F>>::value;

// ---------------------------------------------------------------------------
// Wide (multi-word) detection + the uniform word view.

// A key whose codec has the multi-word form (see the header comment).
template <typename K>
concept wide_sortable_key = requires(const std::remove_cvref_t<K>& k) {
  {
    key_codec<std::remove_cvref_t<K>>::encoded_words
  } -> std::convertible_to<std::size_t>;
  {
    key_codec<std::remove_cvref_t<K>>::encode_word(k, std::size_t{0})
  } -> std::same_as<std::uint64_t>;
};

// Any key the front door accepts: single-word (the classic fused /
// encode-once paths) or multi-word (the wide refine driver).
template <typename K>
concept any_sortable_key = sortable_key<K> || wide_sortable_key<K>;

namespace detail {

template <typename C>
concept codec_has_exhaustive =
    requires { { C::exhaustive } -> std::convertible_to<bool>; };

// The offset-codec form: a non-exhaustive wide codec that can ALSO encode
// its words starting at an arbitrary byte offset into the key, plus a
// per-word test for "every key tying on this word extends beyond its
// window". This is what lets the refine driver continue MSD radix
// refinement past the materialized prefix (wide_sort.hpp) instead of
// finishing large equal-prefix segments with a comparison sort.
// Contract: encode_word(k, w, 0) == encode_word(k, w); each offset word
// is an order-preserving coarsening of the true key order RESTRICTED to
// keys that tie on all words of all earlier offsets; and if two keys tie
// on a full window whose last word has word_continues == false, they are
// equal.
template <typename C, typename K>
concept codec_has_continuation = requires(const K& k) {
  { C::continuation_words } -> std::convertible_to<std::size_t>;
  { C::continuation_stride } -> std::convertible_to<std::size_t>;
  {
    C::encode_word(k, std::size_t{0}, std::size_t{0})
  } -> std::same_as<std::uint64_t>;
  { C::word_continues(std::uint64_t{0}) } -> std::convertible_to<bool>;
};

}  // namespace detail

// Uniform word-sequence view over EVERY codec-covered key: a single-word
// codec appears as one word (its zero-extended encoding), a wide codec as
// its declared word sequence. This is what the refine driver and the
// composite bit-gather below consume; single-word keys keep using
// codec_traits through the classic entry points.
template <any_sortable_key K>
struct wide_key_traits {
  using key_t = std::remove_cvref_t<K>;
  using codec = key_codec<key_t>;
  // Single-word codecs win when both forms exist (there is no reason to
  // take the multi-round driver for a key that fits one radix word).
  static constexpr bool single_word = sortable_key<key_t>;
  static constexpr std::size_t word_count = [] {
    if constexpr (sortable_key<key_t>) return std::size_t{1};
    else return static_cast<std::size_t>(codec::encoded_words);
  }();
  static_assert(word_count >= 1);
  // Total LOGICAL encoded width. The most significant word carries
  // encoded_bits - 64*(word_count-1) bits, low-aligned and zero-extended;
  // every other word is full.
  static constexpr int encoded_bits = [] {
    if constexpr (sortable_key<key_t>)
      return codec_traits<key_t>::encoded_bits;
    else if constexpr (detail::codec_has_bits<codec>)
      return codec::encoded_bits;
    else
      return static_cast<int>(64 * word_count);
  }();
  static_assert(encoded_bits > static_cast<int>(64 * (word_count - 1)) &&
                    encoded_bits <= static_cast<int>(64 * word_count),
                "key_codec<K>::encoded_bits must fit encoded_words words "
                "with a non-empty most significant word");
  // Equal word sequences imply equal keys. Single-word codecs are
  // bijections by contract, hence always exhaustive.
  static constexpr bool exhaustive = [] {
    if constexpr (sortable_key<key_t>) return true;
    else if constexpr (detail::codec_has_exhaustive<codec>)
      return codec::exhaustive;
    else
      return true;
  }();
  static constexpr codec_kind kind = [] {
    if constexpr (sortable_key<key_t>) return codec_traits<key_t>::kind;
    else if constexpr (detail::codec_has_kind<codec>) return codec::kind;
    else return codec_kind::custom;
  }();
  static constexpr bool cheap = [] {
    if constexpr (sortable_key<key_t>) return codec_traits<key_t>::cheap;
    else if constexpr (detail::codec_has_cheap<codec>) return codec::cheap;
    else return false;
  }();
  // Word w, 0 = most significant.
  static constexpr std::uint64_t word(const key_t& k, std::size_t w) {
    if constexpr (sortable_key<key_t>)
      return static_cast<std::uint64_t>(codec::encode(k));
    else
      return codec::encode_word(k, w);
  }
  // Offset-continuation form (detail::codec_has_continuation): only
  // meaningful for non-exhaustive codecs; the refine driver consults
  // offset_encodable before taking the continuation path, and the
  // fallbacks below keep non-offset codecs compiling through the same
  // call sites.
  static constexpr bool offset_encodable = [] {
    if constexpr (sortable_key<key_t>) return false;
    else return !exhaustive && detail::codec_has_continuation<codec, key_t>;
  }();
  // Words re-encoded and bytes of key consumed per continuation round
  // (0 when not offset-encodable). May be narrower than the materialized
  // prefix: continuation rounds only ever sort a word the probe saw
  // differ, so one word per round skips the sort passes a wider window
  // would waste on words a shared prefix keeps constant.
  static constexpr std::size_t continuation_words = [] {
    if constexpr (offset_encodable)
      return static_cast<std::size_t>(codec::continuation_words);
    else
      return std::size_t{0};
  }();
  static constexpr std::size_t continuation_stride = [] {
    if constexpr (offset_encodable)
      return static_cast<std::size_t>(codec::continuation_stride);
    else
      return std::size_t{0};
  }();
  // Word w of the window starting at byte_offset; word_at(k, w, 0) ==
  // word(k, w).
  static constexpr std::uint64_t word_at(const key_t& k, std::size_t w,
                                         std::size_t byte_offset) {
    if constexpr (offset_encodable)
      return codec::encode_word(k, w, byte_offset);
    else
      return word(k, w);
  }
  static constexpr bool word_continues(std::uint64_t wd) {
    if constexpr (offset_encodable) return codec::word_continues(wd);
    else return (void)wd, false;
  }
};

namespace detail {

// Bits [lo, lo+len) of a key's logical encoding (counted from the LSB,
// len <= 64), low-aligned in a u64 — the gather primitive behind the wide
// composite codec. Positions at or above encoded_bits read as zero.
template <any_sortable_key K>
constexpr std::uint64_t key_bits_slice(const std::remove_cvref_t<K>& k,
                                       int lo, int len) noexcept {
  using WT = wide_key_traits<K>;
  constexpr auto wc = static_cast<int>(WT::word_count);
  const int wlsb = lo / 64;
  const int sh = lo % 64;
  std::uint64_t out = 0;
  if (wlsb < wc)
    out = WT::word(k, static_cast<std::size_t>(wc - 1 - wlsb)) >> sh;
  if (sh != 0 && wlsb + 1 < wc)
    out |= WT::word(k, static_cast<std::size_t>(wc - 2 - wlsb)) << (64 - sh);
  return len >= 64 ? out : (out & ((std::uint64_t{1} << len) - 1));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Composite codecs: lexicographic bit concatenation. Composites at most 64
// bits wide pack into one unsigned integer (the narrow form below, exactly
// the PR-4 behaviour); wider composites become multi-word codecs over the
// same conceptual bit string, so pair<u64, u64> and friends sort through
// the wide refine driver instead of failing a static_assert.

namespace detail {

template <sortable_key K>
inline constexpr int codec_bits_v = codec_traits<K>::encoded_bits;

template <int Bits, typename E>
constexpr E codec_low_mask() noexcept {
  return Bits >= 8 * static_cast<int>(sizeof(E))
             ? static_cast<E>(~E{0})
             : static_cast<E>((E{1} << Bits) - 1);
}

// Narrow iff the packed width fits one word AND every component is a
// single-word codec (a wide or prefix component forces the wide form,
// where the fixed-width check below produces the real diagnostic).
template <typename... Ts>
inline constexpr bool composite_is_narrow_v =
    ((wide_key_traits<Ts>::encoded_bits + ...) <= 64) &&
    (sortable_key<Ts> && ...);

}  // namespace detail

namespace detail {

// Narrow form: the whole composite fits one unsigned word (<= 64 bits).
// First component most significant; round-trip exact.
template <typename... Ts>
struct tuple_codec_narrow {
 private:
  static constexpr std::size_t N = sizeof...(Ts);
  static constexpr std::array<int, N> elem_bits{
      detail::codec_bits_v<Ts>...};
  static constexpr int total_bits = (detail::codec_bits_v<Ts> + ...);
  // shifts[i] = number of encoded bits to the right of component i.
  static constexpr std::array<int, N> shifts = [] {
    std::array<int, N> s{};
    int acc = 0;
    for (std::size_t i = N; i-- > 0;) {
      s[i] = acc;
      acc += elem_bits[i];
    }
    return s;
  }();

 public:
  using encoded_t = detail::uint_for_bits_t<total_bits>;
  static constexpr int encoded_bits = total_bits;  // logical, not container
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = (codec_traits<Ts>::cheap && ...);

  static constexpr encoded_t encode(const std::tuple<Ts...>& t) noexcept {
    return encode_impl(t, std::index_sequence_for<Ts...>{});
  }
  static constexpr std::tuple<Ts...> decode(encoded_t e) noexcept {
    return decode_impl(e, std::index_sequence_for<Ts...>{});
  }

 private:
  template <std::size_t... I>
  static constexpr encoded_t encode_impl(const std::tuple<Ts...>& t,
                                         std::index_sequence<I...>) noexcept {
    return static_cast<encoded_t>(
        (... | (static_cast<std::uint64_t>(
                    key_codec<std::remove_cvref_t<Ts>>::encode(
                        std::get<I>(t)))
                << shifts[I])));
  }
  template <std::size_t... I>
  static constexpr std::tuple<Ts...> decode_impl(
      encoded_t e, std::index_sequence<I...>) noexcept {
    return std::tuple<Ts...>(key_codec<std::remove_cvref_t<Ts>>::decode(
        static_cast<typename codec_traits<Ts>::encoded_t>(
            (static_cast<std::uint64_t>(e) >> shifts[I]) &
            detail::codec_low_mask<detail::codec_bits_v<Ts>,
                                   std::uint64_t>()))...);
  }
};

// Wide form: the same conceptual bit concatenation, delivered as 64-bit
// words (word 0 most significant) gathered across component boundaries by
// key_bits_slice. Encode-only, like every wide codec.
template <typename... Ts>
struct tuple_codec_wide {
 private:
  static constexpr std::size_t N = sizeof...(Ts);
  // The only genuinely unencodable composites: ones with a component whose
  // own encoding does not pin down the component value (a fixed-prefix
  // string codec, or a user codec marked exhaustive = false). Everything
  // fixed-width concatenates, however wide.
  static_assert((wide_key_traits<Ts>::exhaustive && ...),
                "key_codec: composite components must be fixed-width, "
                "exhaustively encoded keys — a prefix codec (std::string "
                "and friends) cannot be bit-concatenated; sort by the "
                "other components and refine, or provide a custom "
                "key_codec specialization");
  static constexpr std::array<int, N> elem_bits{
      wide_key_traits<Ts>::encoded_bits...};
  static constexpr int total_bits = (wide_key_traits<Ts>::encoded_bits + ...);
  static constexpr std::array<int, N> shifts = [] {
    std::array<int, N> s{};
    int acc = 0;
    for (std::size_t i = N; i-- > 0;) {
      s[i] = acc;
      acc += elem_bits[i];
    }
    return s;
  }();

  // Fast path: every component is a full 64-bit single-word codec
  // (pair<u64, u64>, tuple of u64/i64/double, ...) — word w IS component
  // w's encoding, no cross-word bit gathering. This is the hot shape
  // (the kernels re-derive the radix key per pass on the fused path), so
  // the distinction is measurable, not cosmetic.
  static constexpr bool word_aligned =
      ((sortable_key<Ts> && wide_key_traits<Ts>::encoded_bits == 64) &&
       ...);

 public:
  static constexpr std::size_t encoded_words =
      (static_cast<std::size_t>(total_bits) + 63) / 64;
  static constexpr int encoded_bits = total_bits;
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = (wide_key_traits<Ts>::cheap && ...);
  static constexpr bool exhaustive = true;

  static constexpr std::uint64_t encode_word(const std::tuple<Ts...>& t,
                                             std::size_t w) noexcept {
    if constexpr (word_aligned) {
      return encode_aligned(t, w, std::index_sequence_for<Ts...>{});
    } else {
      // Bits [blo, blo+64) of the concatenation, blo counted from the
      // LSB.
      const int blo = 64 * static_cast<int>(encoded_words - 1 - w);
      return encode_word_impl(t, blo, std::index_sequence_for<Ts...>{});
    }
  }

 private:
  template <std::size_t... I>
  static constexpr std::uint64_t encode_aligned(
      const std::tuple<Ts...>& t, std::size_t w,
      std::index_sequence<I...>) noexcept {
    std::uint64_t out = 0;
    ((I == w
          ? (out = static_cast<std::uint64_t>(
                 key_codec<std::remove_cvref_t<Ts>>::encode(std::get<I>(t))),
             0)
          : 0),
     ...);
    return out;
  }
  template <std::size_t... I>
  static constexpr std::uint64_t encode_word_impl(
      const std::tuple<Ts...>& t, int blo,
      std::index_sequence<I...>) noexcept {
    std::uint64_t out = 0;
    (..., (out |= component_chunk<I>(t, blo)));
    return out;
  }
  template <std::size_t I>
  static constexpr std::uint64_t component_chunk(const std::tuple<Ts...>& t,
                                                 int blo) noexcept {
    constexpr int s = shifts[I];
    constexpr int b = elem_bits[I];
    // Overlap of the component's bit range [s, s+b) with [blo, blo+64),
    // in component-local coordinates.
    const int lo = blo > s ? blo - s : 0;
    const int hi = b < blo + 64 - s ? b : blo + 64 - s;
    if (hi <= lo) return 0;
    using C = std::remove_cvref_t<std::tuple_element_t<I, std::tuple<Ts...>>>;
    const std::uint64_t chunk =
        detail::key_bits_slice<C>(std::get<I>(t), lo, hi - lo);
    return chunk << (s + lo - blo);
  }
};

template <typename A, typename B>
struct pair_codec_narrow {
 private:
  using tup = key_codec<std::tuple<A, B>>;

 public:
  using encoded_t = typename tup::encoded_t;
  static constexpr int encoded_bits = tup::encoded_bits;
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = tup::cheap;
  static constexpr encoded_t encode(const std::pair<A, B>& p) noexcept {
    return tup::encode(std::tuple<A, B>(p.first, p.second));
  }
  static constexpr std::pair<A, B> decode(encoded_t e) noexcept {
    auto t = tup::decode(e);
    return {std::get<0>(t), std::get<1>(t)};
  }
};

template <typename A, typename B>
struct pair_codec_wide {
 private:
  using tup = key_codec<std::tuple<A, B>>;

 public:
  static constexpr std::size_t encoded_words = tup::encoded_words;
  static constexpr int encoded_bits = tup::encoded_bits;
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = tup::cheap;
  static constexpr bool exhaustive = true;
  static constexpr std::uint64_t encode_word(const std::pair<A, B>& p,
                                             std::size_t w) noexcept {
    return tup::encode_word(std::tuple<A, B>(p.first, p.second), w);
  }
};

}  // namespace detail

// std::tuple of codec-covered components, first component most
// significant; narrow (one packed word) when the total fits 64 bits,
// multi-word otherwise. Also the engine behind the std::pair codec below.
template <typename... Ts>
  requires(sizeof...(Ts) > 0 && (any_sortable_key<Ts> && ...))
struct key_codec<std::tuple<Ts...>>
    : std::conditional_t<detail::composite_is_narrow_v<Ts...>,
                         detail::tuple_codec_narrow<Ts...>,
                         detail::tuple_codec_wide<Ts...>> {};

// std::pair — forwarded through the tuple codec.
template <typename A, typename B>
  requires(any_sortable_key<A> && any_sortable_key<B>)
struct key_codec<std::pair<A, B>>
    : std::conditional_t<detail::composite_is_narrow_v<A, B>,
                         detail::pair_codec_narrow<A, B>,
                         detail::pair_codec_wide<A, B>> {};

// ---------------------------------------------------------------------------
// 128-bit integers: two-word identity / sign-flip codecs. (Under
// -std=c++20 strict mode __int128 is not std::integral, so these do not
// collide with the integer partial specializations above.)

#if defined(__SIZEOF_INT128__)

template <>
struct key_codec<unsigned __int128> {
  static constexpr std::size_t encoded_words = 2;
  static constexpr int encoded_bits = 128;
  static constexpr codec_kind kind = codec_kind::identity;
  static constexpr bool cheap = true;
  static constexpr bool exhaustive = true;
  static constexpr std::uint64_t encode_word(unsigned __int128 k,
                                             std::size_t w) noexcept {
    return w == 0 ? static_cast<std::uint64_t>(k >> 64)
                  : static_cast<std::uint64_t>(k);
  }
};

template <>
struct key_codec<__int128> {
  static constexpr std::size_t encoded_words = 2;
  static constexpr int encoded_bits = 128;
  static constexpr codec_kind kind = codec_kind::sign_flip;
  static constexpr bool cheap = true;
  static constexpr bool exhaustive = true;
  static constexpr std::uint64_t sign_bit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t encode_word(__int128 k,
                                             std::size_t w) noexcept {
    const auto u = static_cast<unsigned __int128>(k);
    return w == 0 ? (static_cast<std::uint64_t>(u >> 64) ^ sign_bit)
                  : static_cast<std::uint64_t>(u);
  }
};

#endif  // __SIZEOF_INT128__

// ---------------------------------------------------------------------------
// Byte strings: prefix wide codec WITH the offset-continuation form. Word
// w at byte offset `off` packs the 7 content bytes [off + 7w, off + 7w + 7)
// of the string big-endian into the high 56 bits (zero-padded past the
// end) and stores min(7, bytes remaining from the word's base) in the low
// byte. The count byte does two jobs:
//   * ORDER — when two strings agree on a window's padded content, the one
//     that ends inside the window is a NUL-extension prefix of the other
//     and must sort first; it has the strictly smaller count. So every
//     word is an order-preserving coarsening of lexicographic order over
//     UNSIGNED bytes (s < t implies words(s) <= words(t)) with no
//     NUL-byte-vs-end-of-string ambiguity inside its window.
//   * TERMINATION — equal words whose count is below 7 mean both strings
//     end at the same place in the window with the same content, so keys
//     that tie on a whole window with a final count < 7 are EQUAL. The
//     refine driver's continuation (wide_sort.hpp) stops exactly there;
//     only segments whose last word's count is 7 (every key extends past
//     the window) continue to later byte offsets.
// The materialized prefix is encode_word(s, w) == encode_word(s, w, 0):
// 7 * Words content bytes of radix discrimination. The codec stays
// NON-exhaustive as a fixed word set (equal prefix words do not pin down
// the key), so the driver still owes the order beyond the prefix — paid
// either by the offset continuation above or, for segments at or below
// the comparison base case (and on the wide_continuation = false
// ablation), by a stable comparison sort on the true keys. Both routes
// produce the same full lexicographic order.
template <std::size_t Words>
struct string_prefix_codec {
  static_assert(Words >= 1);
  static constexpr std::size_t encoded_words = Words;
  static constexpr int encoded_bits = static_cast<int>(64 * Words);
  static constexpr codec_kind kind = codec_kind::string_prefix;
  static constexpr bool cheap = true;
  static constexpr bool exhaustive = false;
  // Content bytes per word; the low byte carries the continuation count.
  static constexpr std::size_t word_bytes = 7;
  // Continuation rounds advance ONE word at a time (narrower than the
  // Words-wide materialized prefix): the driver's probe skips any run of
  // verified-tied words in a single scan, so a continuation round only
  // ever radix-sorts a word known to differ — a full-window round would
  // pay extra distribute passes on words a long shared prefix keeps
  // constant (e.g. at a 64-byte prefix, bytes [56, 63) are shared and
  // only the word covering byte 64 splits anything).
  static constexpr std::size_t continuation_words = 1;
  static constexpr std::size_t continuation_stride =
      word_bytes * continuation_words;
  static constexpr std::uint64_t encode_word(
      std::string_view s, std::size_t w,
      std::size_t byte_offset = 0) noexcept {
    const std::size_t base = byte_offset + word_bytes * w;
    std::uint64_t out = 0;
    for (std::size_t j = 0; j < word_bytes; ++j) {
      const std::size_t i = base + j;
      out = (out << 8) |
            (i < s.size() ? static_cast<unsigned char>(s[i]) : 0u);
    }
    const std::size_t rem = s.size() > base ? s.size() - base : 0;
    return (out << 8) |
           static_cast<std::uint64_t>(rem < word_bytes ? rem : word_bytes);
  }
  // True when every key tying on this word extends beyond its window and
  // the refine driver must re-encode at the next byte offset.
  static constexpr bool word_continues(std::uint64_t word) noexcept {
    return (word & 0xFF) == word_bytes;
  }
};

// How many prefix words the std::string / std::string_view codecs use: 2
// words = a 14-byte materialized radix prefix (7 content bytes + 1
// continuation-count byte per word). Wider prefixes are available by
// sorting through a string_prefix_codec<N> specialization of your own key
// type.
inline constexpr std::size_t kStringPrefixWords = 2;

template <>
struct key_codec<std::string> : string_prefix_codec<kStringPrefixWords> {};
template <>
struct key_codec<std::string_view>
    : string_prefix_codec<kStringPrefixWords> {};

}  // namespace dovetail
