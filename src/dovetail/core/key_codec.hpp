// key_codec<K> — the typed-key customization point in front of the radix
// kernels.
//
// Every kernel in this library (DTSort, the LSD/MSD baselines, the engine)
// sorts by an *unsigned integer* key, because that is what a radix pass can
// chew on. Real workloads arrive with signed offsets, IEEE floats and
// (hi, lo) composite keys — the PPoPP'24 evaluation itself motivates integer
// sort through Morton codes, graph reordering and group-bys, all of which
// carry such keys. The classic fix (PBBS's `integer_sort(In, f)`, RADULS,
// the Gerbessiotis multicore studies) is an order-preserving bit encoding:
// map the key to an unsigned integer such that
//
//     a < b  (key order)   ⇔   encode(a) < encode(b)  (unsigned order)
//
// and every radix method works unchanged. This header defines that mapping
// as a customization point:
//
//   template <typename K> struct key_codec {
//     using encoded_t = /* unsigned integer type */;
//     static encoded_t encode(K);   // order-preserving
//     static K decode(encoded_t);   // exact inverse of encode
//   };
//
// Built-in codecs:
//   * unsigned integers — identity (the kernels' native currency; zero cost).
//   * signed integers   — sign-bit flip: adding 2^(w-1) maps
//     [INT_MIN, INT_MAX] monotonically onto [0, 2^w); exact round trip.
//   * float / double    — the IEEE-754 total-order transform: positive
//     values get the sign bit set, negative values are bitwise complemented.
//     Encoded order is IEEE totalOrder: -NaN < -inf < ... < -0.0 < +0.0 <
//     ... < +inf < +NaN, with NaNs ordered by payload. NaN POLICY: NaNs are
//     never compared via operator< (which would be UB-adjacent nonsense);
//     they sort deterministically to the two ends by their sign bit.
//     Note -0.0 and +0.0 are DISTINCT encodings ordered -0.0 < +0.0, so for
//     non-NaN values a < b ⇒ encode(a) < encode(b), and
//     encode(a) < encode(b) ⇒ a ≤ b (equality only for the two zeros).
//     Round trip is bit-exact, NaN payloads included.
//   * std::pair / std::tuple of codec-covered components — lexicographic
//     bit concatenation: the first component occupies the high bits. The
//     encoded width is the sum of the component widths, packed into the
//     smallest unsigned type that fits (u8/u16/u32/u64, e.g.
//     pair<u32, u32> → u64, tuple<u16, i16, u8> → u64 using 40 bits).
//     Composites wider than 64 bits (e.g. pair<u64, u64>) fail with a
//     clear static_assert — split the sort or provide a custom codec.
//     Nested composites work as long as the total fits, budgeted by each
//     component's LOGICAL width (codec_traits<K>::encoded_bits), not its
//     container type — a 40-bit tuple nested in a pair costs 40 bits,
//     not the 64 of the u64 it travels in.
//
// A codec must be a bijection between the key's value set and a subset of
// encoded_t values (round-trip-exact both ways), and encode must be
// order-preserving in the sense above. The `cheap` flag tells the front
// door (auto_sort.hpp) the encode is a few ALU ops, safe to recompute per
// radix pass (fused encoding); codecs without it get the encode-once path.
//
// Specialize key_codec in namespace dovetail to cover your own key type;
// codec_traits<K> below is what the entry points consult.
#pragma once

#include <array>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>

namespace dovetail {

// How a codec transforms keys — recorded in sort_stats::codec_kind_id
// (1 + the enum value) by the front-door entry points.
enum class codec_kind : std::uint8_t {
  identity,           // unsigned keys, encode is a no-op
  sign_flip,          // signed integers
  float_total_order,  // float/double IEEE total-order transform
  composite,          // pair/tuple bit concatenation
  custom,             // user specialization without a `kind` member
};

inline const char* codec_kind_name(codec_kind k) {
  switch (k) {
    case codec_kind::identity: return "identity";
    case codec_kind::sign_flip: return "sign-flip";
    case codec_kind::float_total_order: return "float-total-order";
    case codec_kind::composite: return "composite";
    case codec_kind::custom: return "custom";
  }
  return "?";
}

// Primary template: intentionally undefined. A key type is codec-covered
// iff a specialization below (or a user one) exists; sortable_key<K> is
// the detection concept the entry points constrain on.
template <typename K>
struct key_codec;

// ---------------------------------------------------------------------------
// Built-in codecs.

// Unsigned integers: identity. bool is excluded — it is not a sort key.
template <typename K>
  requires(std::unsigned_integral<K> && !std::same_as<K, bool>)
struct key_codec<K> {
  using encoded_t = K;
  static constexpr codec_kind kind = codec_kind::identity;
  static constexpr bool cheap = true;
  static constexpr encoded_t encode(K k) noexcept { return k; }
  static constexpr K decode(encoded_t e) noexcept { return e; }
};

// Signed integers: flip the sign bit. In two's complement this adds
// 2^(w-1) modulo 2^w, mapping INT_MIN → 0 and INT_MAX → 2^w - 1, a strictly
// monotone bijection.
template <typename K>
  requires std::signed_integral<K>
struct key_codec<K> {
  using encoded_t = std::make_unsigned_t<K>;
  static constexpr codec_kind kind = codec_kind::sign_flip;
  static constexpr bool cheap = true;
  static constexpr encoded_t sign_bit = encoded_t{1}
                                        << (8 * sizeof(K) - 1);
  static constexpr encoded_t encode(K k) noexcept {
    return static_cast<encoded_t>(k) ^ sign_bit;
  }
  static constexpr K decode(encoded_t e) noexcept {
    return static_cast<K>(e ^ sign_bit);
  }
};

// float/double: IEEE-754 total-order transform. For a non-negative float
// the raw bit pattern already orders correctly, so setting the sign bit
// lifts it above every negative; for a negative float larger magnitude
// means smaller value, so complementing all bits reverses the magnitude
// order and clears the (encoded) sign bit. See the header comment for the
// resulting NaN/-0.0 policy.
template <typename F>
  requires(std::same_as<F, float> || std::same_as<F, double>)
struct key_codec<F> {
  using encoded_t =
      std::conditional_t<sizeof(F) == 4, std::uint32_t, std::uint64_t>;
  static constexpr codec_kind kind = codec_kind::float_total_order;
  static constexpr bool cheap = true;
  static constexpr encoded_t sign_bit = encoded_t{1}
                                        << (8 * sizeof(F) - 1);
  static constexpr encoded_t encode(F f) noexcept {
    const auto b = std::bit_cast<encoded_t>(f);
    return (b & sign_bit) != 0 ? static_cast<encoded_t>(~b)
                               : static_cast<encoded_t>(b | sign_bit);
  }
  static constexpr F decode(encoded_t e) noexcept {
    return std::bit_cast<F>((e & sign_bit) != 0
                                ? static_cast<encoded_t>(e ^ sign_bit)
                                : static_cast<encoded_t>(~e));
  }
};

// ---------------------------------------------------------------------------
// Detection + traits.

// A key type the typed entry points accept. Checking the requires-clause
// instantiates key_codec<K>, so a composite that exists but does not fit
// 64 bits fails loudly at its static_assert rather than silently dropping
// out of overload resolution — exactly the diagnostic we want.
template <typename K>
concept sortable_key = requires(const std::remove_cvref_t<K>& k) {
  typename key_codec<std::remove_cvref_t<K>>::encoded_t;
  {
    key_codec<std::remove_cvref_t<K>>::encode(k)
  } -> std::same_as<typename key_codec<std::remove_cvref_t<K>>::encoded_t>;
};

namespace detail {

template <typename C>
concept codec_has_kind =
    requires { { C::kind } -> std::convertible_to<codec_kind>; };

template <typename C>
concept codec_has_cheap =
    requires { { C::cheap } -> std::convertible_to<bool>; };

template <typename C>
concept codec_has_bits =
    requires { { C::encoded_bits } -> std::convertible_to<int>; };

// Smallest unsigned type holding `Bits` bits (Bits in [1, 64]).
template <int Bits>
using uint_for_bits_t = std::conditional_t<
    (Bits <= 8), std::uint8_t,
    std::conditional_t<(Bits <= 16), std::uint16_t,
                       std::conditional_t<(Bits <= 32), std::uint32_t,
                                          std::uint64_t>>>;

}  // namespace detail

// What the entry points consult: the codec plus uniform defaults for the
// optional members (`kind` defaults to custom, `cheap` to false — an
// unknown user codec gets the conservative encode-once path).
template <sortable_key K>
struct codec_traits {
  using key_t = std::remove_cvref_t<K>;
  using codec = key_codec<key_t>;
  using encoded_t = typename codec::encoded_t;
  static_assert(std::unsigned_integral<encoded_t> &&
                    !std::same_as<encoded_t, bool>,
                "key_codec<K>::encoded_t must be an unsigned integer type");
  // LOGICAL encoded width: every encode(k) < 2^encoded_bits. Composites
  // occupy fewer bits than their encoded_t container (e.g. a
  // tuple<u16, i16, u8> uses 40 of a u64), and nested composites are
  // budgeted by this value, not the container size. Codecs without the
  // member use their container width.
  static constexpr int encoded_bits = [] {
    if constexpr (detail::codec_has_bits<codec>) return codec::encoded_bits;
    else return static_cast<int>(8 * sizeof(encoded_t));
  }();
  static_assert(encoded_bits >= 1 &&
                    encoded_bits <= static_cast<int>(8 * sizeof(encoded_t)),
                "key_codec<K>::encoded_bits must fit encoded_t");
  static constexpr codec_kind kind = [] {
    if constexpr (detail::codec_has_kind<codec>) return codec::kind;
    else return codec_kind::custom;
  }();
  static constexpr bool cheap = [] {
    if constexpr (detail::codec_has_cheap<codec>) return codec::cheap;
    else return false;
  }();
  static constexpr bool identity = kind == codec_kind::identity;
};

// ---------------------------------------------------------------------------
// Composite codecs: lexicographic bit concatenation.

namespace detail {

template <sortable_key K>
inline constexpr int codec_bits_v = codec_traits<K>::encoded_bits;

template <int Bits, typename E>
constexpr E codec_low_mask() noexcept {
  return Bits >= 8 * static_cast<int>(sizeof(E))
             ? static_cast<E>(~E{0})
             : static_cast<E>((E{1} << Bits) - 1);
}

}  // namespace detail

// std::tuple of codec-covered components, first component most
// significant. Also the engine behind the std::pair codec below.
template <typename... Ts>
  requires(sizeof...(Ts) > 0 && (sortable_key<Ts> && ...))
struct key_codec<std::tuple<Ts...>> {
 private:
  static constexpr std::size_t N = sizeof...(Ts);
  static constexpr std::array<int, N> elem_bits{
      detail::codec_bits_v<Ts>...};
  static constexpr int total_bits = (detail::codec_bits_v<Ts> + ...);
  static_assert(total_bits <= 64,
                "key_codec: composite key needs more than 64 encoded bits "
                "and cannot be packed into one radix key — sort by a prefix "
                "of the components (then refine), or provide a custom "
                "key_codec specialization");
  // shifts[i] = number of encoded bits to the right of component i.
  static constexpr std::array<int, N> shifts = [] {
    std::array<int, N> s{};
    int acc = 0;
    for (std::size_t i = N; i-- > 0;) {
      s[i] = acc;
      acc += elem_bits[i];
    }
    return s;
  }();

 public:
  using encoded_t = detail::uint_for_bits_t<total_bits>;
  static constexpr int encoded_bits = total_bits;  // logical, not container
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = (codec_traits<Ts>::cheap && ...);

  static constexpr encoded_t encode(const std::tuple<Ts...>& t) noexcept {
    return encode_impl(t, std::index_sequence_for<Ts...>{});
  }
  static constexpr std::tuple<Ts...> decode(encoded_t e) noexcept {
    return decode_impl(e, std::index_sequence_for<Ts...>{});
  }

 private:
  template <std::size_t... I>
  static constexpr encoded_t encode_impl(const std::tuple<Ts...>& t,
                                         std::index_sequence<I...>) noexcept {
    return static_cast<encoded_t>(
        (... | (static_cast<std::uint64_t>(
                    key_codec<std::remove_cvref_t<Ts>>::encode(
                        std::get<I>(t)))
                << shifts[I])));
  }
  template <std::size_t... I>
  static constexpr std::tuple<Ts...> decode_impl(
      encoded_t e, std::index_sequence<I...>) noexcept {
    return std::tuple<Ts...>(key_codec<std::remove_cvref_t<Ts>>::decode(
        static_cast<typename codec_traits<Ts>::encoded_t>(
            (static_cast<std::uint64_t>(e) >> shifts[I]) &
            detail::codec_low_mask<detail::codec_bits_v<Ts>,
                                   std::uint64_t>()))...);
  }
};

// std::pair — forwarded through the tuple codec.
template <typename A, typename B>
  requires(sortable_key<A> && sortable_key<B>)
struct key_codec<std::pair<A, B>> {
 private:
  using tup = key_codec<std::tuple<A, B>>;

 public:
  using encoded_t = typename tup::encoded_t;
  static constexpr int encoded_bits = tup::encoded_bits;
  static constexpr codec_kind kind = codec_kind::composite;
  static constexpr bool cheap = tup::cheap;
  static constexpr encoded_t encode(const std::pair<A, B>& p) noexcept {
    return tup::encode(std::tuple<A, B>(p.first, p.second));
  }
  static constexpr std::pair<A, B> decode(encoded_t e) noexcept {
    auto t = tup::decode(e);
    return {std::get<0>(t), std::get<1>(t)};
  }
};

}  // namespace dovetail
