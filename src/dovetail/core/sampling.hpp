// Heavy-key detection by sampling (Sec 2.5 and Alg 2 lines 3-4).
//
// The scheme of Rajasekaran-Reif [47], as used by samplesort/semisort
// [6, 10, 23, 32]: draw Θ(2^γ log n) uniform samples, sort them, subsample
// every (log n)-th key; any key appearing at least twice among the
// subsamples is declared heavy. By Chernoff bounds such keys have
// Ω(n / 2^γ) occurrences in the input whp.
//
// The same samples also provide the key-range estimate for the
// overflow-bucket optimization (Sec 5): the largest sample bounds the
// effective key range; the rare keys above it land in an overflow bucket.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail {

struct sample_result {
  std::vector<std::uint64_t> heavy_keys;  // sorted ascending, deduplicated
  std::uint64_t max_sample = 0;           // largest sampled (masked) key
  std::size_t num_samples = 0;
};

// Samples `num_samples` keys of `data` (masked by `mask`) at deterministic
// pseudo-random positions. `detect_heavy` toggles the heavy-key extraction
// (the range estimate is always produced). If `keep_samples` is non-null it
// receives the sorted sample vector, so callers that need more statistics
// from the same draw (input_sketch.hpp) do not sample twice.
template <typename Rec, typename KeyFn>
sample_result sample_keys(std::span<const Rec> data, const KeyFn& key,
                          std::uint64_t mask, std::size_t num_samples,
                          std::size_t subsample_stride, bool detect_heavy,
                          std::uint64_t seed,
                          std::vector<std::uint64_t>* keep_samples = nullptr) {
  sample_result res;
  const std::size_t n = data.size();
  if (n == 0 || num_samples == 0) return res;
  num_samples = std::min(num_samples, n);
  res.num_samples = num_samples;

  // The gather is a parallel loop (each position is an independent function
  // of (seed, i), so the draw is identical to the sequential one): the
  // random reads it scatters across `data` are the latency-bound part of
  // sampling, and at high worker counts a sequential gather here would be
  // Amdahl overhead on every sort. The sort of the samples stays
  // sequential — ~1k elements.
  std::vector<std::uint64_t> s(num_samples);
  par::parallel_for(0, num_samples, [&](std::size_t i) {
    const auto idx = static_cast<std::size_t>(par::rand_range(seed, i, n));
    s[i] = static_cast<std::uint64_t>(key(data[idx])) & mask;
  });
  std::sort(s.begin(), s.end());
  res.max_sample = s.back();

  if (!detect_heavy) {
    if (keep_samples != nullptr) *keep_samples = std::move(s);
    return res;
  }
  if (subsample_stride == 0) subsample_stride = 1;
  // Subsample s[0], s[stride], s[2*stride], ...; a key with two or more
  // subsamples is heavy.
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (std::size_t j = 0; j < num_samples; j += subsample_stride) {
    std::uint64_t k = s[j];
    if (have_prev && k == prev) {
      if (res.heavy_keys.empty() || res.heavy_keys.back() != k)
        res.heavy_keys.push_back(k);
    }
    prev = k;
    have_prev = true;
  }
  if (keep_samples != nullptr) *keep_samples = std::move(s);
  return res;
}

}  // namespace dovetail
