// Segmented-MSD refine driver for wide (multi-word) keys — the layer that
// lifts the front door's 64-bit encoded-key ceiling.
//
// A key wider than one radix word (key_codec.hpp's multi-word form:
// pair<u64, u64>, __int128, fixed-prefix strings, >64-bit composites) is a
// lexicographic sequence of u64 words. Multi-round distribution over such
// words is the classic answer in the multicore integer-sorting literature
// (Gerbessiotis, "Integer sorting on multicores"); the paper's DTSort
// already embodies the per-word half of it — distribute on high digits,
// recurse within equal groups. This driver stacks that idea one level up:
//
//   1. Sort the whole array by word 0 through the EXISTING front door
//      (detail::sort_unsigned): the input sketch, the dispatch policy and
//      every kernel apply unchanged, per word.
//   2. Split into maximal equal-word segments. Only segments with >= 2
//      records survive; a word-0 pass that separates every key (the common
//      case for hashed high words) ends the sort right here.
//   3. Refine each segment on the next word — large segments go back
//      through the front door one at a time (each call is internally
//      parallel, and serialising them honours the one-in-flight-sort-per-
//      workspace contract of record_buffer); segments at or below
//      dispatch_policy::wide_segment_base_case finish with ONE stable
//      comparison sort over all remaining words, in parallel across
//      segments. Repeat per word.
//   4. Non-exhaustive codecs still owe the order beyond the words. An
//      OFFSET-capable codec (key_codec.hpp's continuation form — the
//      string codecs) keeps refining by radix, PARADIS/RADULS-style:
//      still-tied segments above the base case PROBE the next
//      continuation_stride-byte window of the true keys first — a window
//      every key shares is skipped with that one early-exit scan (a long
//      shared prefix walks forward one cheap scan per window, no radix
//      round), a window where the keys end while equal drops the segment
//      — and only windows where keys differ re-encode and re-enter the
//      same refinement, round after round, until every segment
//      separates, ends, or shrinks to the comparison base case. No comparison sort ever runs
//      on an above-base-case segment (sort_stats::wide_tiebreak_fallbacks
//      stays 0). Without the offset form — or under the
//      dispatch_policy::wide_continuation = false ablation — residual
//      segments get one stable comparison sort on the TRUE keys each (the
//      PR-5 tie-break). Both routes yield full lexicographic order, so
//      dovetail::sort on strings is byte-identical either way; the
//      continuation just replaces per-key long-prefix comparisons with
//      distribution passes (the wide-str-lcp bench family measures it).
//
// Stability: every pass is stable and confined to one segment, so the
// whole sort is stable. Scratch: the segment tables and the encode-once
// (encoded words, index) record array lease workspace slabs — warm calls
// allocate nothing from the workspace, continuation rounds included (they
// reuse the same tables and, on the encode-once path, rewrite the word
// array in place). The refine work lands in sort_stats as refine_rounds /
// wide_segments / wide_continuation_* / wide_tiebreak_fallbacks
// snapshots.
//
// This header is included from the bottom of auto_sort.hpp (which forward-
// declares the entry helpers defined here); including either header gives
// you both, and dovetail::sort / sort_by_key / rank accept wide keys
// transparently.
#pragma once

#include "dovetail/core/auto_sort.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/util/simd.hpp"

namespace dovetail {

namespace detail {

// A half-open segment [lo, hi) of the array being refined. A plain struct
// (not std::pair, which libstdc++ makes non-trivially-copyable) so the
// segment tables can live in workspace slabs.
struct wide_seg {
  std::size_t lo;
  std::size_t hi;
};

// Stable sort for the comparison-finished segments: insertion sort below
// the allocation-free threshold (thousands of tiny segments finish per
// round; std::stable_sort's temporary buffer would be malloc churn),
// std::stable_sort above it — preceded by one linear sortedness scan,
// because the large residual segments of duplicate-heavy inputs are
// usually runs of EQUAL keys, already in stable order, and n comparisons
// beat n log n comparisons that all answer "false".
template <typename Rec, typename Less>
void stable_segment_sort(std::span<Rec> a, const Less& less) {
  if (a.size() <= 32) {
    // Tiniest segments first try the branchless fixed-comparator network
    // (util/simd.hpp): same stable permutation as the insertion sort,
    // byte-identical output, no data-dependent branches.
    if constexpr (std::is_trivially_copyable_v<Rec>) {
      if (simd::stable_network_sort(a, less)) return;
    }
    for (std::size_t i = 1; i < a.size(); ++i) {
      Rec x = std::move(a[i]);
      std::size_t j = i;
      for (; j > 0 && less(x, a[j - 1]); --j) a[j] = std::move(a[j - 1]);
      a[j] = std::move(x);
    }
  } else {
    for (std::size_t i = 1; i < a.size(); ++i) {
      if (less(a[i], a[i - 1])) {
        std::stable_sort(a.begin(), a.end(), less);
        return;
      }
    }
  }
}

// Append the maximal runs of equal word `w` within [lo, hi) — already
// sorted by that word — that have >= 2 records to out[nout...]; returns
// the new count. Cut positions land in the workspace-leased `cut_scratch`
// (capacity >= hi - lo) via a chunked count-then-emit scan, so the hot
// zero-refinement case (word 0 separates nearly every key) costs no heap
// traffic proportional to n; the only per-call allocation is one
// O(workers) block-count vector.
template <typename Rec, typename WordOf>
std::size_t append_word_runs(std::span<const Rec> a, std::size_t lo,
                             std::size_t hi, std::size_t w,
                             const WordOf& word_of,
                             std::span<std::size_t> cut_scratch,
                             std::span<wide_seg> out, std::size_t nout) {
  const std::size_t n = hi - lo;
  std::size_t ncuts = 0;
  if (n >= 2) {
    const std::size_t nblocks =
        n <= 8192 ? 1
                  : std::min<std::size_t>(
                        8 * static_cast<std::size_t>(par::num_workers()),
                        (n + 8191) / 8192);
    const std::size_t bsize = (n + nblocks - 1) / nblocks;
    const auto block_range = [&](std::size_t b) {
      return wide_seg{lo + std::max<std::size_t>(1, b * bsize),
                      lo + std::min(n, (b + 1) * bsize)};
    };
    std::vector<std::size_t> counts(nblocks + 1, 0);
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const auto [plo, phi] = block_range(b);
          std::size_t c = 0;
          for (std::size_t p = plo; p < phi; ++p)
            if (word_of(a[p - 1], w) != word_of(a[p], w)) ++c;
          counts[b + 1] = c;
        },
        1);
    for (std::size_t b = 0; b < nblocks; ++b) counts[b + 1] += counts[b];
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const auto [plo, phi] = block_range(b);
          std::size_t at = counts[b];
          for (std::size_t p = plo; p < phi; ++p)
            if (word_of(a[p - 1], w) != word_of(a[p], w))
              cut_scratch[at++] = p;
        },
        1);
    ncuts = counts[nblocks];
  }
  std::size_t prev = lo;
  const auto flush = [&](std::size_t end) {
    if (end - prev >= 2) out[nout++] = {prev, end};
    prev = end;
  };
  for (std::size_t i = 0; i < ncuts; ++i) flush(cut_scratch[i]);
  flush(hi);
  return nout;
}

// Continuation probe: what a still-tied segment's keys look like past a
// byte offset, decided BEFORE paying a re-encode + radix round for it.
// `probe(segment, byte_offset)` compares every key's suffix at the
// offset against the segment's FIRST key's (each comparison stops at its
// own first difference, so the whole probe is one pass over the shared
// bytes) and returns:
//   cont_probe_done — every key ends while still equal: the keys are
//       identical from the offset on; stability keeps their order.
//   0 — some keys differ inside the very next window: re-encode + sort.
//   k > 0 — every key shares the next k full windows and the first
//       difference (if any) lies beyond them: the driver may jump k
//       strides forward without sorting. This is the PARADIS-style
//       skip-common-prefix walk — a 256-byte shared prefix costs ONE
//       scan of the shared bytes, not a radix round per window.
inline constexpr std::size_t cont_probe_done = static_cast<std::size_t>(-1);

// Continuation hooks — the driver-side face of the offset-codec form
// (key_codec.hpp). `probe` as above; `reencode(segment, byte_offset)`
// repoints the word source of a segment the probe decided to split
// (rewriting materialized words on the encode-once path, or just moving
// a shared offset on the fused path); `tie_from(a, b, byte_offset)` is
// the true-key order restricted to the key suffixes at byte_offset —
// continuation rounds know their segments are key-equal through the
// current offset, so small-segment finishes compare only the bytes that
// can still differ (a duplicate-heavy corpus under a 256-byte prefix
// would otherwise re-scan the whole shared prefix on every comparison).
// `stride` is the bytes a continuation window consumes and `words` how
// many words the reencode fills per round — possibly FEWER than the
// materialized prefix (the string codecs continue one 7-byte word per
// round: the probe skips tied words wholesale, so a round only ever
// sorts a word known to differ). `prefix_bytes` is where the
// materialized prefix ends, i.e. the first continuation offset. The
// no_continuation tag keeps exhaustive codecs and the tie-break ablation
// on the pre-continuation path with zero overhead.
struct no_continuation {};

template <typename Reencode, typename Probe, typename TieFrom>
struct continuation_hooks {
  std::size_t stride;
  std::size_t words;
  std::size_t prefix_bytes;
  Reencode reencode;
  Probe probe;
  TieFrom tie_from;
};
template <typename R, typename P, typename T>
continuation_hooks(std::size_t, std::size_t, std::size_t, R, P, T)
    -> continuation_hooks<R, P, T>;

// True-key suffix order expressed in codec words: walk the continuation
// windows at byte `off` until a word differs (word order = suffix byte
// order by the offset-codec contract) or both keys end while equal.
// Exactly the order tie_from owes, with no byte-level access outside the
// codec.
template <typename WT, typename K>
bool suffix_words_less(const K& a, const K& b, std::size_t off) {
  constexpr std::size_t W = WT::continuation_words;
  for (std::size_t f = 0;; ++f) {
    const std::size_t woff = off + (f / W) * WT::continuation_stride;
    const std::uint64_t wa = WT::word_at(a, f % W, woff);
    const std::uint64_t wb = WT::word_at(b, f % W, woff);
    if (wa != wb) return wa < wb;
    if (!WT::word_continues(wa)) return false;  // equal to the end
  }
}

// Byte-level probe machinery for string-view-convertible keys. The
// generic word probe below is codec-correct for ANY offset codec, but
// for strings every word_at call rebuilds a 7-byte word a byte at a
// time — ~3x the cost of a flat memcmp-style scan, and the probe's scan
// over a segment's shared bytes is the single biggest continuation cost
// under deep prefixes. These helpers walk the raw bytes 8 at a time and
// translate the first divergence back into the window arithmetic the
// driver needs.
//
// first_divergence(a, b, from, cap): smallest byte index >= from where
// the two keys diverge — differing content bytes, or the end of the
// shorter key (a strict prefix diverges where it ends) — scanning no
// further than `cap` (returns cap when tied through it), npos when the
// keys are equal. Equivalence to the codec-word view: within
// [from, min_d) contents match and neither key ends, so every 7+1 word
// there is identical with count 7; the word covering min_d differs (in
// content or in the count byte).
inline std::size_t string_first_divergence(std::string_view a,
                                           std::string_view b,
                                           std::size_t from,
                                           std::size_t cap) {
  const std::size_t lim = std::min({a.size(), b.size(), cap});
  std::size_t i = from;
  if constexpr (std::endian::native == std::endian::little) {
    while (i + 8 <= lim) {
      std::uint64_t x;
      std::uint64_t y;
      std::memcpy(&x, a.data() + i, 8);
      std::memcpy(&y, b.data() + i, 8);
      if (x != y)
        return i + static_cast<std::size_t>(std::countr_zero(x ^ y)) / 8;
      i += 8;
    }
  }
  for (; i < lim; ++i)
    if (a[i] != b[i]) return i;
  if (lim == cap) return cap;  // verified tied through the cap
  return a.size() == b.size() ? std::string_view::npos : lim;
}

// Byte-level probe: same contract as probe_tied_windows below, memcmp
// speed. Each key's scan is capped at the earliest divergence seen so
// far, so the whole probe is one pass over the segment's shared bytes.
template <typename KeyViewOf>
std::size_t probe_tied_bytes(std::size_t count, std::size_t off,
                             std::size_t stride, const KeyViewOf& key_of) {
  const std::string_view k0 = key_of(std::size_t{0});
  std::size_t min_d = std::string_view::npos;
  for (std::size_t i = 1; i < count; ++i) {
    const std::string_view ki = key_of(i);
    const std::size_t d = string_first_divergence(k0, ki, off, min_d);
    if (d < min_d) {
      min_d = d;
      // Divergence inside the very next window: the answer is already
      // "split", no later key can change it.
      if (min_d < off + stride) return 0;
    }
  }
  return min_d == std::string_view::npos ? cont_probe_done
                                         : (min_d - off) / stride;
}

// Shared probe body: flat word-by-word comparison of each key against
// the segment's first key, via `key_of(i)` (the i-th true key of the
// segment) and `word_of_at(key, word, byte_offset)`; W words per window,
// `stride` bytes per window. Each key's scan stops at its own first
// difference — and never past the earliest difference seen so far — so
// the whole probe is one pass over the segment's shared bytes. Returns
// the cont_probe contract above.
template <std::size_t W, typename KeyOf, typename WordAt,
          typename Continues>
std::size_t probe_tied_windows(std::size_t count, std::size_t off,
                               std::size_t stride, const KeyOf& key_of,
                               const WordAt& word_of_at,
                               const Continues& word_continues) {
  auto&& k0 = key_of(std::size_t{0});
  // min_f: flat index (window * W + word) of the earliest word where any
  // key differs from key 0; cont_probe_done while none found.
  std::size_t min_f = cont_probe_done;
  for (std::size_t i = 1; i < count && min_f > 0; ++i) {
    auto&& ki = key_of(i);
    for (std::size_t f = 0; f < min_f; ++f) {
      const std::size_t woff = off + (f / W) * stride;
      const std::uint64_t a = word_of_at(k0, f % W, woff);
      const std::uint64_t b = word_of_at(ki, f % W, woff);
      if (a != b) {
        min_f = f;
        break;
      }
      if (!word_continues(a)) break;  // both keys end equal inside f
    }
  }
  return min_f == cont_probe_done ? cont_probe_done : min_f / W;
}

// The driver core. `word_of(rec, w)` yields word w of a record's key;
// `sort_seg(subspan, w, ws)` stably sorts a segment by word w through the
// front door using workspace `ws` (one in-flight sort per workspace, so
// concurrent segment sorts each get their own); `tie_less` is the true-key
// order, consulted only when `exhaustive` is false. Precondition of the
// codec contract: key order implies lexicographic word order (coarsening),
// so within an equal-prefix segment tie_less alone is a refinement of
// every remaining word.
//
// `pool` enables concurrent large-segment refinement: when non-null and
// more than one worker is available, the large segments of a round are
// sorted in parallel, each in-flight sort on a workspace checked out of
// the pool (warm after the first round: zero pool-level allocation).
// nullptr serializes them through the caller's workspace — the pre-pool
// behaviour, kept for ablation and for 1-worker runs where pool arenas
// would only duplicate the caller's warm arena.
template <typename Rec, typename WordOf, typename SortSeg, typename TieLess,
          typename Cont = no_continuation>
void wide_refine(std::span<Rec> data, std::size_t word_count,
                 bool exhaustive, std::size_t base_case,
                 const WordOf& word_of, const SortSeg& sort_seg,
                 const TieLess& tie_less, sort_workspace& ws,
                 workspace_pool* pool, sort_stats* stats,
                 const Cont& cont = {}) {
  constexpr bool kContinuation =
      !std::is_same_v<std::remove_cvref_t<Cont>, no_continuation>;
  const std::size_t n = data.size();
  std::uint64_t rounds = 0;
  std::uint64_t segments = 0;
  std::uint64_t cont_rounds = 0;
  std::uint64_t cont_segments = 0;
  std::uint64_t max_offset = 0;
  std::uint64_t tiebreak_fallbacks = 0;
  const auto note = [&] {
    if (stats != nullptr) {
      stats->refine_rounds.store(rounds, std::memory_order_relaxed);
      stats->wide_segments.store(segments, std::memory_order_relaxed);
      stats->wide_continuation_rounds.store(cont_rounds,
                                            std::memory_order_relaxed);
      stats->wide_continuation_segments.store(cont_segments,
                                              std::memory_order_relaxed);
      stats->wide_max_byte_offset.store(max_offset,
                                        std::memory_order_relaxed);
      stats->wide_tiebreak_fallbacks.store(tiebreak_fallbacks,
                                           std::memory_order_relaxed);
    }
  };
  sort_seg(data, std::size_t{0}, ws);  // word 0: full front-door dispatch
  if (n < 2 || (word_count <= 1 && exhaustive)) {
    note();
    return;
  }

  // Segment tables: disjoint segments of >= 2 records, so at most n/2;
  // plus the cut-position scratch for the split scans (< n cuts).
  const std::size_t seg_cap = n / 2 + 1;
  std::span<wide_seg> cur, next;
  std::span<std::size_t> cut_scratch;
  sort_workspace::lease cur_lease =
      ws.acquire_array<wide_seg>(seg_cap, cur, stats);
  sort_workspace::lease next_lease =
      ws.acquire_array<wide_seg>(seg_cap, next, stats);
  sort_workspace::lease cut_lease =
      ws.acquire_array<std::size_t>(n, cut_scratch, stats);
  std::size_t ncur =
      append_word_runs(std::span<const Rec>(data.data(), n), 0, n, 0,
                       word_of, cut_scratch, cur, 0);

  const auto seg_granularity = [](std::size_t count) {
    return std::max<std::size_t>(
        1, count / (8 * static_cast<std::size_t>(par::num_workers())));
  };

  // Indices into `cur` of this round's above-base-case segments: at most
  // n / base_case entries, so the vector stays tiny next to the O(n)
  // workspace tables above.
  std::vector<std::size_t> large;

  // Sort every `large` segment by word w and split it on that word; the
  // surviving runs become the new `cur` table. Shared by the prefix rounds
  // and the continuation rounds — append order is identical on both
  // schedules below, so the next round's table (and therefore the output)
  // does not depend on the pool.
  const auto sort_split_large = [&](std::size_t w) {
    std::size_t nnext = 0;
    if (pool != nullptr && large.size() > 1 && par::effective_workers() > 1) {
      // Concurrent in-flight sorts, one pool workspace each (the caller's
      // `ws` cannot serve them all: one in-flight sort per workspace).
      // Each segment sort still parallelises internally — work stealing
      // balances rounds whose segments differ wildly in size. The splits
      // run as a second phase, sequential in segment order.
      par::parallel_for(
          0, large.size(),
          [&](std::size_t j) {
            const auto [lo, hi] = cur[large[j]];
            workspace_pool::handle h = pool->checkout();
            sort_seg(data.subspan(lo, hi - lo), w, *h);
          },
          1);
      for (const std::size_t i : large) {
        const auto [lo, hi] = cur[i];
        nnext = append_word_runs(std::span<const Rec>(data.data(), n), lo,
                                 hi, w, word_of, cut_scratch, next, nnext);
      }
    } else {
      // Serial: one segment at a time through the caller's warm arena,
      // splitting each immediately after its sort while its records are
      // still cache-hot (a deferred split phase re-reads the segment cold
      // — measurably slower on fat segments).
      for (const std::size_t i : large) {
        const auto [lo, hi] = cur[i];
        sort_seg(data.subspan(lo, hi - lo), w, ws);
        nnext = append_word_runs(std::span<const Rec>(data.data(), n), lo,
                                 hi, w, word_of, cut_scratch, next, nnext);
      }
    }
    std::swap(cur, next);
    ncur = nnext;
  };

  // One refinement round of the current table at word w. Small segments:
  // one stable comparison sort finishes ALL remaining words (and the
  // true-key tie-break when the codec is a prefix), in parallel across
  // segments; they never re-enter the refinement. Words are compared
  // first even for prefix codecs — word reads are a cached array access
  // on the encode-once path, while tie_less may chase a pointer into
  // variable-length key storage; the coarsening contract makes (words,
  // then tie) equal to the true key order. Large segments (at most
  // n / base_case, so the index list stays small even when the segment
  // table is huge) go back through the front door.
  const auto refine_round = [&](std::size_t w) {
    ++rounds;
    segments += ncur;
    const auto finish_less = [&](const Rec& a, const Rec& b) {
      for (std::size_t j = w; j < word_count; ++j) {
        const std::uint64_t wa = word_of(a, j);
        const std::uint64_t wb = word_of(b, j);
        if (wa != wb) return wa < wb;
      }
      return exhaustive ? false : tie_less(a, b);
    };
    par::parallel_for(
        0, ncur,
        [&](std::size_t i) {
          const auto [lo, hi] = cur[i];
          if (hi - lo <= base_case)
            stable_segment_sort(data.subspan(lo, hi - lo), finish_less);
        },
        seg_granularity(ncur));
    large.clear();
    for (std::size_t i = 0; i < ncur; ++i)
      if (cur[i].hi - cur[i].lo > base_case) large.push_back(i);
    sort_split_large(w);
  };

  for (std::size_t w = 1; w < word_count && ncur > 0; ++w) refine_round(w);

  // Residual segments are equal on every word so far. An exhaustive codec
  // is done (equal words == equal keys); a non-exhaustive codec owes the
  // order beyond the words.
  if constexpr (kContinuation) {
    // MSD continuation (the offset-codec form): keep refining by radix on
    // the next slice of the true keys, window after window. Each round:
    // still-tied segments at or below the base case finish with the
    // true-key comparison sort (their window words are all equal — only
    // tie_less can order them); larger ones are PROBED at the next
    // window first. A window every key shares costs exactly that scan:
    // segments whose keys continue past it are deferred to the next
    // offset untouched (long shared prefixes walk forward one cheap scan
    // per window, never paying a radix round that would not split
    // anything), and segments whose keys end inside it are dropped (all
    // equal, stability keeps their order). Only windows where keys
    // actually differ re-encode and re-enter the word rounds. Distinct
    // keys differ at some byte or end at different lengths, so every
    // segment eventually splits or ends: the loop terminates, and no
    // above-base-case segment ever meets a comparison sort
    // (tiebreak_fallbacks stays 0 by construction).
    std::span<wide_seg> deferred;
    sort_workspace::lease def_lease =
        ws.acquire_array<wide_seg>(seg_cap, deferred, stats);
    std::size_t offset = cont.prefix_bytes;
    while (ncur > 0) {
      std::size_t nsmall = 0;
      for (std::size_t i = 0; i < ncur; ++i)
        if (cur[i].hi - cur[i].lo <= base_case) ++nsmall;
      if (nsmall > 0) {
        ++rounds;
        segments += nsmall;
        // Every segment here is key-equal through byte `offset` (actives
        // re-enter one stride past the window they sorted; deferred
        // segments were verified tied at least that far), so the finish
        // compares suffixes only — under a long shared prefix, tie_less
        // from byte 0 would re-scan the whole prefix per comparison.
        par::parallel_for(
            0, ncur,
            [&](std::size_t i) {
              const auto [lo, hi] = cur[i];
              if (hi - lo <= base_case)
                stable_segment_sort(data.subspan(lo, hi - lo),
                                    [&](const Rec& a, const Rec& b) {
                                      return cont.tie_from(a, b, offset);
                                    });
            },
            seg_granularity(ncur));
      }
      // Probe each large segment's next window BEFORE re-encoding:
      // skip == 0 splits (sort it now), k > 0 defers k whole windows,
      // cont_probe_done drops the segment (keys equal to the end).
      std::size_t m = 0;
      std::size_t ndef = 0;
      std::size_t min_skip = cont_probe_done;
      for (std::size_t i = 0; i < ncur; ++i) {
        const auto [lo, hi] = cur[i];
        if (hi - lo <= base_case) continue;
        const std::size_t skip = cont.probe(
            std::span<const Rec>(data.data() + lo, hi - lo), offset);
        if (skip == cont_probe_done) continue;
        if (skip == 0) {
          next[m++] = cur[i];
        } else {
          deferred[ndef++] = cur[i];
          min_skip = std::min(min_skip, skip);
        }
      }
      std::swap(cur, next);
      ncur = m;
      if (m + ndef == 0) break;
      ++cont_rounds;
      cont_segments += m + ndef;
      max_offset = static_cast<std::uint64_t>(offset + cont.stride);
      if (m > 0) {
        for (std::size_t i = 0; i < ncur; ++i) {
          const auto [lo, hi] = cur[i];
          cont.reencode(data.subspan(lo, hi - lo), offset);
        }
        // The re-encoded window runs the same machinery as the prefix:
        // word 0 through the front door per segment (every survivor is
        // above the base case by construction), then the regular refine
        // rounds for the window's remaining words — none for the
        // one-word-per-round string codecs, whose probe already skipped
        // every tied word.
        ++rounds;
        segments += ncur;
        large.clear();
        for (std::size_t i = 0; i < ncur; ++i) large.push_back(i);
        sort_split_large(0);
        for (std::size_t w = 1; w < cont.words && ncur > 0; ++w)
          refine_round(w);
      }
      // Deferred segments rejoin the table for the next window's probe.
      // When every surviving segment is deferred, jump the smallest
      // verified-tied distance in one step instead of re-probing window
      // by window (a round with active segments advances one stride, so
      // actives re-enter at the very next window).
      for (std::size_t j = 0; j < ndef; ++j) cur[ncur++] = deferred[j];
      offset += cont.stride * ((m == 0 && ndef > 0) ? min_skip : 1);
    }
  } else if (ncur > 0 && !exhaustive) {
    // The comparison tie-break: segments here share their whole prefix,
    // so each is one sequential comparison sort — parallel across
    // segments only. For offset-capable codecs this is now the
    // dispatch_policy::wide_continuation = false ablation; for other
    // non-exhaustive codecs it is still the only route. Above-base-case
    // segments finished here are the degenerate case the continuation
    // exists to remove — counted so tests and benchmarks can assert the
    // continuation path reports zero.
    ++rounds;
    segments += ncur;
    for (std::size_t i = 0; i < ncur; ++i)
      if (cur[i].hi - cur[i].lo > base_case) ++tiebreak_fallbacks;
    par::parallel_for(
        0, ncur,
        [&](std::size_t i) {
          const auto [lo, hi] = cur[i];
          stable_segment_sort(data.subspan(lo, hi - lo), tie_less);
        },
        seg_granularity(ncur));
  }
  note();
}

// Run the refine driver with every segment sorted through the adaptive
// front door (sort_unsigned keyed on word_of), returning the word-0
// dispatch's kernel — the shared scaffolding of the fused and
// encode-once paths below.
template <typename Rec, typename WordOf, typename TieLess,
          typename Cont = no_continuation>
sort_kernel refine_through_front_door(std::span<Rec> data,
                                      std::size_t word_count,
                                      bool exhaustive, const WordOf& word_of,
                                      const TieLess& tie_less,
                                      const auto_sort_options& opt,
                                      sort_workspace& ws,
                                      const Cont& cont = {}) {
  sort_kernel root = sort_kernel::std_sort;
  bool first = true;
  // chosen_kernel and the sketch_* fields are last-write-wins snapshots,
  // so the per-segment dispatches of later rounds would leave them
  // describing the LAST refined segment. The wide contract is that they
  // describe the ROOT (word-0, whole-input) dispatch — the kernel this
  // function returns — so the word-0 values are captured here and
  // restored after the refine rounds.
  std::atomic<std::uint64_t> sort_stats::*const snap_fields[] = {
      &sort_stats::chosen_kernel,          &sort_stats::sketch_key_bits,
      &sort_stats::sketch_distinct_permille, &sort_stats::sketch_top_permille,
      &sort_stats::sketch_desc_permille,   &sort_stats::sketch_heavy_keys,
      &sort_stats::sketch_runs,            &sort_stats::chosen_parallelism,
      &sort_stats::effective_workers};
  constexpr std::size_t kNumSnap = std::size(snap_fields);
  std::uint64_t snap[kNumSnap] = {};
  const auto sort_seg = [&](std::span<Rec> seg, std::size_t w,
                            sort_workspace& seg_ws) {
    auto_sort_options seg_opt = opt;
    seg_opt.workspace = &seg_ws;
    const sort_kernel k = sort_unsigned(
        seg, [&word_of, w](const Rec& r) { return word_of(r, w); }, seg_opt);
    if (first) {
      root = k;
      first = false;
      if (opt.stats != nullptr)
        for (std::size_t f = 0; f < kNumSnap; ++f)
          snap[f] = (opt.stats->*snap_fields[f])
                        .load(std::memory_order_relaxed);
    }
  };
  // Pool for the concurrent large-segment sorts: the caller's, else the
  // process-wide shared pool; disabled entirely (serial pre-pool path)
  // when the policy's ablation toggle says so.
  workspace_pool* pool =
      opt.policy.parallel_wide_refine
          ? (opt.pool != nullptr ? opt.pool : &workspace_pool::shared())
          : nullptr;
  wide_refine(data, word_count, exhaustive,
              opt.policy.wide_segment_base_case, word_of, sort_seg,
              tie_less, ws, pool, opt.stats, cont);
  if (opt.stats != nullptr && !first)
    for (std::size_t f = 0; f < kNumSnap; ++f)
      (opt.stats->*snap_fields[f]).store(snap[f],
                                         std::memory_order_relaxed);
  return root;
}

// ---------------------------------------------------------------------------
// Entry helpers wired from the public front door (auto_sort.hpp forward-
// declares these and branches to them for wide key types).

// Stable sorted permutation of [0, n) under the wide keys key_at(i).
// One workspace-leased array of (ALL encoded words, index) records: every
// word is materialised up front with one sequential read of each key, so
// the refine rounds and the word half of every comparison run over a
// cache-resident array — the true key is touched again only by a prefix
// codec's tie-break and by the caller's final gather. emit(pos, src)
// receives the permutation. The shared machinery behind the wide
// sort_by_key / rank / non-trivially-copyable sort paths.
template <typename K, typename KeyAt, typename Emit>
sort_kernel wide_ranked_permutation(std::size_t n, const KeyAt& key_at,
                                    const auto_sort_options& opt,
                                    sort_workspace& ws, const Emit& emit) {
  using WT = wide_key_traits<std::remove_cvref_t<K>>;
  constexpr std::size_t W = WT::word_count;
  struct wrec {
    std::uint64_t word[W];
    std::uint64_t idx;
  };
  std::span<wrec> recs;
  sort_workspace::lease rl = ws.acquire_array<wrec>(n, recs, opt.stats);
  par::parallel_for(0, n, [&](std::size_t i) {
    auto&& k = key_at(i);
    for (std::size_t w = 0; w < W; ++w) recs[i].word[w] = WT::word(k, w);
    recs[i].idx = static_cast<std::uint64_t>(i);
  });
  const auto word_of = [](const wrec& p, std::size_t w) {
    return p.word[w];
  };
  const auto tie = [&](const wrec& a, const wrec& b) {
    if constexpr (WT::exhaustive) {
      (void)a;
      (void)b;
      return false;
    } else {
      return key_at(a.idx) < key_at(b.idx);
    }
  };
  sort_kernel root = sort_kernel::std_sort;
  bool routed = false;
  if constexpr (WT::offset_encodable) {
    if (opt.policy.wide_continuation) {
      // Continuation hooks, encode-once shape: the probe walks each
      // key's suffix straight from the true keys (no store) — at memcmp
      // speed when the key reads as raw bytes, via the codec words
      // otherwise; reencode refreshes the materialized words from the
      // true keys at the chosen offset (one parallel pass per segment;
      // every later word read is back to a cache-resident array hit).
      constexpr bool kByteKeys =
          std::is_convertible_v<decltype(key_at(std::size_t{0})),
                                std::string_view>;
      const auto probe = [&](std::span<const wrec> seg,
                             std::size_t off) -> std::size_t {
        if constexpr (kByteKeys) {
          return probe_tied_bytes(
              seg.size(), off, WT::continuation_stride, [&](std::size_t i) {
                return std::string_view(
                    key_at(static_cast<std::size_t>(seg[i].idx)));
              });
        } else {
          return probe_tied_windows<WT::continuation_words>(
              seg.size(), off, WT::continuation_stride,
              [&](std::size_t i) -> decltype(auto) {
                return key_at(static_cast<std::size_t>(seg[i].idx));
              },
              [](const auto& k, std::size_t w, std::size_t o) {
                return WT::word_at(k, w, o);
              },
              [](std::uint64_t wd) { return WT::word_continues(wd); });
        }
      };
      const auto reencode = [&](std::span<wrec> seg, std::size_t off) {
        par::parallel_for(0, seg.size(), [&](std::size_t i) {
          auto&& k = key_at(static_cast<std::size_t>(seg[i].idx));
          for (std::size_t w = 0; w < WT::continuation_words; ++w)
            seg[i].word[w] = WT::word_at(k, w, off);
        });
      };
      const auto tie_from = [&](const wrec& a, const wrec& b,
                                std::size_t off) {
        if constexpr (kByteKeys) {
          // string_view order IS the codec's true order (char_traits
          // compares unsigned), restricted to the suffixes past the
          // verified-tied bytes.
          std::string_view sa(key_at(static_cast<std::size_t>(a.idx)));
          std::string_view sb(key_at(static_cast<std::size_t>(b.idx)));
          sa.remove_prefix(std::min(off, sa.size()));
          sb.remove_prefix(std::min(off, sb.size()));
          return sa < sb;
        } else {
          return suffix_words_less<WT>(
              key_at(static_cast<std::size_t>(a.idx)),
              key_at(static_cast<std::size_t>(b.idx)), off);
        }
      };
      // Materialized prefix bytes: the continuation picks up where the
      // prefix words end (bytes-per-word x word_count).
      constexpr std::size_t prefix_bytes =
          WT::continuation_stride / WT::continuation_words * W;
      root = refine_through_front_door(
          recs, W, WT::exhaustive, word_of, tie, opt, ws,
          continuation_hooks{WT::continuation_stride, WT::continuation_words,
                             prefix_bytes, reencode, probe, tie_from});
      routed = true;
    }
  }
  if (!routed)
    root = refine_through_front_door(recs, W, WT::exhaustive, word_of, tie,
                                     opt, ws);
  par::parallel_for(0, n, [&](std::size_t i) {
    emit(i, static_cast<std::size_t>(recs[i].idx));
  });
  return root;
}

template <typename Rec, typename KeyFn>
sort_kernel sort_wide(std::span<Rec> data, const KeyFn& key,
                      const auto_sort_options& opt) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  using WT = wide_key_traits<K>;
  note_entry(opt.stats, sort_entry::sort, WT::kind, WT::encoded_bits);
  // The per-call cap must wrap the refine driver and the gather passes,
  // not just the per-segment sort_unsigned calls (which install their own
  // nested cap): the refine rounds run between those calls and would
  // otherwise see the full pool even under num_threads == 1.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  if constexpr (std::is_trivially_copyable_v<Rec> && WT::cheap &&
                WT::offset_encodable) {
    // Fused, offset-capable (std::string_view records): there are no
    // materialized words to refresh, so the continuation offset lives in
    // one shared variable read by every word access. The driver writes it
    // (reencode) strictly between parallel phases — the fork of the next
    // segment sort publishes the store to its workers — and every
    // continuing segment of a round shares the same offset (the rounds
    // are globally lockstep), so a single variable is enough.
    std::size_t cont_off = 0;
    const auto word_of = [&key, &cont_off](const Rec& r, std::size_t w) {
      return WT::word_at(key(r), w, cont_off);
    };
    const auto tie = [&key](const Rec& a, const Rec& b) {
      return key(a) < key(b);
    };
    if (inner.policy.wide_continuation) {
      constexpr bool kByteKeys =
          std::is_convertible_v<std::invoke_result_t<const KeyFn&,
                                                     const Rec&>,
                                std::string_view>;
      const auto probe = [&key](std::span<const Rec> seg,
                                std::size_t off) -> std::size_t {
        if constexpr (kByteKeys) {
          return probe_tied_bytes(
              seg.size(), off, WT::continuation_stride,
              [&](std::size_t i) { return std::string_view(key(seg[i])); });
        } else {
          return probe_tied_windows<WT::continuation_words>(
              seg.size(), off, WT::continuation_stride,
              [&](std::size_t i) { return key(seg[i]); },
              [](const auto& k, std::size_t w, std::size_t o) {
                return WT::word_at(k, w, o);
              },
              [](std::uint64_t wd) { return WT::word_continues(wd); });
        }
      };
      const auto reencode = [&cont_off](std::span<Rec>, std::size_t off) {
        cont_off = off;
      };
      const auto tie_from = [&key](const Rec& a, const Rec& b,
                                   std::size_t off) {
        if constexpr (kByteKeys) {
          std::string_view sa(key(a));
          std::string_view sb(key(b));
          sa.remove_prefix(std::min(off, sa.size()));
          sb.remove_prefix(std::min(off, sb.size()));
          return sa < sb;
        } else {
          return suffix_words_less<WT>(key(a), key(b), off);
        }
      };
      constexpr std::size_t prefix_bytes = WT::continuation_stride /
                                           WT::continuation_words *
                                           WT::word_count;
      return refine_through_front_door(
          data, WT::word_count, WT::exhaustive, word_of, tie, inner, ws,
          continuation_hooks{WT::continuation_stride, WT::continuation_words,
                             prefix_bytes, reencode, probe, tie_from});
    }
    return refine_through_front_door(data, WT::word_count, WT::exhaustive,
                                     word_of, tie, inner, ws);
  } else if constexpr (std::is_trivially_copyable_v<Rec> && WT::cheap) {
    // Fused: records are scattered as-is, each word pass re-derives its
    // radix key from the record — no extra memory beyond the front door's
    // own scratch.
    const auto word_of = [&key](const Rec& r, std::size_t w) {
      return WT::word(key(r), w);
    };
    const auto tie = [&key](const Rec& a, const Rec& b) {
      if constexpr (WT::exhaustive) {
        (void)a;
        (void)b;
        return false;
      } else {
        return key(a) < key(b);
      }
    };
    return refine_through_front_door(data, WT::word_count, WT::exhaustive,
                                     word_of, tie, inner, ws);
  } else {
    // Encode-once shape: sort (encoded words, index) records, then gather
    // once — the only route for non-trivially-copyable records
    // (std::string and friends). The gather MOVES each record (emit is a
    // permutation, so every source is consumed exactly once, and
    // write_back overwrites every slot afterwards) — a string never pays
    // a heap copy for being sorted.
    const std::size_t n = data.size();
    scratch_array<Rec> tmp(n, ws, opt.stats);
    const std::span<Rec> t = tmp.get();
    const sort_kernel k = wide_ranked_permutation<K>(
        n,
        [&](std::size_t i) -> decltype(auto) { return key(data[i]); },
        inner, ws, [&](std::size_t pos, std::size_t src) {
          t[pos] = std::move(data[src]);
        });
    write_back(t, data);
    return k;
  }
}

template <typename K, typename V>
sort_kernel sort_by_key_wide(std::span<K> keys, std::span<V> values,
                             const auto_sort_options& opt) {
  using traits = wide_key_traits<K>;
  const std::size_t n = keys.size();
  note_entry(opt.stats, sort_entry::sort_by_key, traits::kind,
             traits::encoded_bits);
  // Same scope rationale as sort_wide: cover refine + gathers, not just
  // the nested sort_unsigned calls.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  scratch_array<K> tk(n, ws, opt.stats);
  scratch_array<V> tv(n, ws, opt.stats);
  const std::span<K> sk = tk.get();
  const std::span<V> sv = tv.get();
  // The gather moves (see sort_wide): each source index is consumed once
  // and both arrays are fully overwritten by the write_back below.
  const sort_kernel k = wide_ranked_permutation<K>(
      n, [&](std::size_t i) -> const K& { return keys[i]; }, inner, ws,
      [&](std::size_t pos, std::size_t src) {
        sk[pos] = std::move(keys[src]);
        sv[pos] = std::move(values[src]);
      });
  write_back(sk, keys);
  write_back(sv, values);
  return k;
}

template <typename Rec, typename KeyFn>
std::vector<index_t> rank_wide(std::span<Rec> data, const KeyFn& key,
                               const auto_sort_options& opt) {
  using R = std::remove_const_t<Rec>;
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const R&>>;
  using traits = wide_key_traits<K>;
  const std::size_t n = data.size();
  note_entry(opt.stats, sort_entry::rank, traits::kind,
             traits::encoded_bits);
  // Same scope rationale as sort_wide: cover refine + gathers, not just
  // the nested sort_unsigned calls.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  std::vector<index_t> out(n);
  wide_ranked_permutation<K>(
      n, [&](std::size_t i) -> decltype(auto) { return key(data[i]); },
      inner, ws, [&](std::size_t pos, std::size_t src) { out[pos] = src; });
  return out;
}

}  // namespace detail

}  // namespace dovetail
