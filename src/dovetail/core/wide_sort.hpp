// Segmented-MSD refine driver for wide (multi-word) keys — the layer that
// lifts the front door's 64-bit encoded-key ceiling.
//
// A key wider than one radix word (key_codec.hpp's multi-word form:
// pair<u64, u64>, __int128, fixed-prefix strings, >64-bit composites) is a
// lexicographic sequence of u64 words. Multi-round distribution over such
// words is the classic answer in the multicore integer-sorting literature
// (Gerbessiotis, "Integer sorting on multicores"); the paper's DTSort
// already embodies the per-word half of it — distribute on high digits,
// recurse within equal groups. This driver stacks that idea one level up:
//
//   1. Sort the whole array by word 0 through the EXISTING front door
//      (detail::sort_unsigned): the input sketch, the dispatch policy and
//      every kernel apply unchanged, per word.
//   2. Split into maximal equal-word segments. Only segments with >= 2
//      records survive; a word-0 pass that separates every key (the common
//      case for hashed high words) ends the sort right here.
//   3. Refine each segment on the next word — large segments go back
//      through the front door one at a time (each call is internally
//      parallel, and serialising them honours the one-in-flight-sort-per-
//      workspace contract of record_buffer); segments at or below
//      dispatch_policy::wide_segment_base_case finish with ONE stable
//      comparison sort over all remaining words, in parallel across
//      segments. Repeat per word.
//   4. Non-exhaustive codecs (the fixed-prefix string codecs) still owe a
//      tie-break: segments equal on every word get a stable comparison
//      sort on the TRUE keys, so dovetail::sort on strings returns full
//      lexicographic order, not just prefix order.
//
// Stability: every pass is stable and confined to one segment, so the
// whole sort is stable. Scratch: the segment tables and the encode-once
// (encoded words, index) record array lease workspace slabs — warm calls
// allocate nothing from the workspace. The refine work lands in sort_stats as
// refine_rounds / wide_segments snapshots.
//
// This header is included from the bottom of auto_sort.hpp (which forward-
// declares the entry helpers defined here); including either header gives
// you both, and dovetail::sort / sort_by_key / rank accept wide keys
// transparently.
#pragma once

#include "dovetail/core/auto_sort.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"

namespace dovetail {

namespace detail {

// A half-open segment [lo, hi) of the array being refined. A plain struct
// (not std::pair, which libstdc++ makes non-trivially-copyable) so the
// segment tables can live in workspace slabs.
struct wide_seg {
  std::size_t lo;
  std::size_t hi;
};

// Stable sort for the comparison-finished segments: insertion sort below
// the allocation-free threshold (thousands of tiny segments finish per
// round; std::stable_sort's temporary buffer would be malloc churn),
// std::stable_sort above it — preceded by one linear sortedness scan,
// because the large residual segments of duplicate-heavy inputs are
// usually runs of EQUAL keys, already in stable order, and n comparisons
// beat n log n comparisons that all answer "false".
template <typename Rec, typename Less>
void stable_segment_sort(std::span<Rec> a, const Less& less) {
  if (a.size() <= 32) {
    for (std::size_t i = 1; i < a.size(); ++i) {
      Rec x = std::move(a[i]);
      std::size_t j = i;
      for (; j > 0 && less(x, a[j - 1]); --j) a[j] = std::move(a[j - 1]);
      a[j] = std::move(x);
    }
  } else {
    for (std::size_t i = 1; i < a.size(); ++i) {
      if (less(a[i], a[i - 1])) {
        std::stable_sort(a.begin(), a.end(), less);
        return;
      }
    }
  }
}

// Append the maximal runs of equal word `w` within [lo, hi) — already
// sorted by that word — that have >= 2 records to out[nout...]; returns
// the new count. Cut positions land in the workspace-leased `cut_scratch`
// (capacity >= hi - lo) via a chunked count-then-emit scan, so the hot
// zero-refinement case (word 0 separates nearly every key) costs no heap
// traffic proportional to n; the only per-call allocation is one
// O(workers) block-count vector.
template <typename Rec, typename WordOf>
std::size_t append_word_runs(std::span<const Rec> a, std::size_t lo,
                             std::size_t hi, std::size_t w,
                             const WordOf& word_of,
                             std::span<std::size_t> cut_scratch,
                             std::span<wide_seg> out, std::size_t nout) {
  const std::size_t n = hi - lo;
  std::size_t ncuts = 0;
  if (n >= 2) {
    const std::size_t nblocks =
        n <= 8192 ? 1
                  : std::min<std::size_t>(
                        8 * static_cast<std::size_t>(par::num_workers()),
                        (n + 8191) / 8192);
    const std::size_t bsize = (n + nblocks - 1) / nblocks;
    const auto block_range = [&](std::size_t b) {
      return wide_seg{lo + std::max<std::size_t>(1, b * bsize),
                      lo + std::min(n, (b + 1) * bsize)};
    };
    std::vector<std::size_t> counts(nblocks + 1, 0);
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const auto [plo, phi] = block_range(b);
          std::size_t c = 0;
          for (std::size_t p = plo; p < phi; ++p)
            if (word_of(a[p - 1], w) != word_of(a[p], w)) ++c;
          counts[b + 1] = c;
        },
        1);
    for (std::size_t b = 0; b < nblocks; ++b) counts[b + 1] += counts[b];
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const auto [plo, phi] = block_range(b);
          std::size_t at = counts[b];
          for (std::size_t p = plo; p < phi; ++p)
            if (word_of(a[p - 1], w) != word_of(a[p], w))
              cut_scratch[at++] = p;
        },
        1);
    ncuts = counts[nblocks];
  }
  std::size_t prev = lo;
  const auto flush = [&](std::size_t end) {
    if (end - prev >= 2) out[nout++] = {prev, end};
    prev = end;
  };
  for (std::size_t i = 0; i < ncuts; ++i) flush(cut_scratch[i]);
  flush(hi);
  return nout;
}

// The driver core. `word_of(rec, w)` yields word w of a record's key;
// `sort_seg(subspan, w, ws)` stably sorts a segment by word w through the
// front door using workspace `ws` (one in-flight sort per workspace, so
// concurrent segment sorts each get their own); `tie_less` is the true-key
// order, consulted only when `exhaustive` is false. Precondition of the
// codec contract: key order implies lexicographic word order (coarsening),
// so within an equal-prefix segment tie_less alone is a refinement of
// every remaining word.
//
// `pool` enables concurrent large-segment refinement: when non-null and
// more than one worker is available, the large segments of a round are
// sorted in parallel, each in-flight sort on a workspace checked out of
// the pool (warm after the first round: zero pool-level allocation).
// nullptr serializes them through the caller's workspace — the pre-pool
// behaviour, kept for ablation and for 1-worker runs where pool arenas
// would only duplicate the caller's warm arena.
template <typename Rec, typename WordOf, typename SortSeg, typename TieLess>
void wide_refine(std::span<Rec> data, std::size_t word_count,
                 bool exhaustive, std::size_t base_case,
                 const WordOf& word_of, const SortSeg& sort_seg,
                 const TieLess& tie_less, sort_workspace& ws,
                 workspace_pool* pool, sort_stats* stats) {
  const std::size_t n = data.size();
  std::uint64_t rounds = 0;
  std::uint64_t segments = 0;
  const auto note = [&] {
    if (stats != nullptr) {
      stats->refine_rounds.store(rounds, std::memory_order_relaxed);
      stats->wide_segments.store(segments, std::memory_order_relaxed);
    }
  };
  sort_seg(data, std::size_t{0}, ws);  // word 0: full front-door dispatch
  if (n < 2 || (word_count <= 1 && exhaustive)) {
    note();
    return;
  }

  // Segment tables: disjoint segments of >= 2 records, so at most n/2;
  // plus the cut-position scratch for the split scans (< n cuts).
  const std::size_t seg_cap = n / 2 + 1;
  std::span<wide_seg> cur, next;
  std::span<std::size_t> cut_scratch;
  sort_workspace::lease cur_lease =
      ws.acquire_array<wide_seg>(seg_cap, cur, stats);
  sort_workspace::lease next_lease =
      ws.acquire_array<wide_seg>(seg_cap, next, stats);
  sort_workspace::lease cut_lease =
      ws.acquire_array<std::size_t>(n, cut_scratch, stats);
  std::size_t ncur =
      append_word_runs(std::span<const Rec>(data.data(), n), 0, n, 0,
                       word_of, cut_scratch, cur, 0);

  const auto seg_granularity = [](std::size_t count) {
    return std::max<std::size_t>(
        1, count / (8 * static_cast<std::size_t>(par::num_workers())));
  };

  // Indices into `cur` of this round's above-base-case segments: at most
  // n / base_case entries, so the vector stays tiny next to the O(n)
  // workspace tables above.
  std::vector<std::size_t> large;

  for (std::size_t w = 1; w < word_count && ncur > 0; ++w) {
    ++rounds;
    segments += ncur;
    // Small segments: one stable comparison sort finishes ALL remaining
    // words (and the true-key tie-break when the codec is a prefix), in
    // parallel across segments; they never re-enter the refinement.
    // Words are compared first even for prefix codecs — word reads are a
    // cached array access on the encode-once path, while tie_less may
    // chase a pointer into variable-length key storage; the coarsening
    // contract makes (words, then tie) equal to the true key order.
    const auto finish_less = [&](const Rec& a, const Rec& b) {
      for (std::size_t j = w; j < word_count; ++j) {
        const std::uint64_t wa = word_of(a, j);
        const std::uint64_t wb = word_of(b, j);
        if (wa != wb) return wa < wb;
      }
      return exhaustive ? false : tie_less(a, b);
    };
    par::parallel_for(
        0, ncur,
        [&](std::size_t i) {
          const auto [lo, hi] = cur[i];
          if (hi - lo <= base_case)
            stable_segment_sort(data.subspan(lo, hi - lo), finish_less);
        },
        seg_granularity(ncur));
    // Large segments: back through the front door. There are at most
    // n / base_case of them, so the index list is small even when the
    // segment table is huge (duplicate-heavy inputs).
    large.clear();
    for (std::size_t i = 0; i < ncur; ++i)
      if (cur[i].hi - cur[i].lo > base_case) large.push_back(i);
    std::size_t nnext = 0;
    if (pool != nullptr && large.size() > 1 && par::effective_workers() > 1) {
      // Concurrent in-flight sorts, one pool workspace each (the caller's
      // `ws` cannot serve them all: one in-flight sort per workspace).
      // Each segment sort still parallelises internally — work stealing
      // balances rounds whose segments differ wildly in size. The splits
      // run as a second phase, sequential in segment order (append order
      // defines the next round's table, and therefore the output).
      par::parallel_for(
          0, large.size(),
          [&](std::size_t j) {
            const auto [lo, hi] = cur[large[j]];
            workspace_pool::handle h = pool->checkout();
            sort_seg(data.subspan(lo, hi - lo), w, *h);
          },
          1);
      for (const std::size_t i : large) {
        const auto [lo, hi] = cur[i];
        nnext = append_word_runs(std::span<const Rec>(data.data(), n), lo,
                                 hi, w, word_of, cut_scratch, next, nnext);
      }
    } else {
      // Serial: one segment at a time through the caller's warm arena,
      // splitting each immediately after its sort while its records are
      // still cache-hot (a deferred split phase re-reads the segment cold
      // — measurably slower on fat segments). Append order is identical
      // to the pooled path's, so both schedules produce the same table.
      for (const std::size_t i : large) {
        const auto [lo, hi] = cur[i];
        sort_seg(data.subspan(lo, hi - lo), w, ws);
        nnext = append_word_runs(std::span<const Rec>(data.data(), n), lo,
                                 hi, w, word_of, cut_scratch, next, nnext);
      }
    }
    std::swap(cur, next);
    ncur = nnext;
  }

  // Residual segments are equal on every word. An exhaustive codec is done
  // (equal words == equal keys); a prefix codec owes the true-key
  // tie-break. Segments here share their whole prefix, so each is one
  // sequential comparison sort — parallel across segments only (full MSD
  // tie-break recursion beyond the prefix is the remaining ROADMAP item).
  if (ncur > 0 && !exhaustive) {
    ++rounds;
    segments += ncur;
    par::parallel_for(
        0, ncur,
        [&](std::size_t i) {
          const auto [lo, hi] = cur[i];
          stable_segment_sort(data.subspan(lo, hi - lo), tie_less);
        },
        seg_granularity(ncur));
  }
  note();
}

// Run the refine driver with every segment sorted through the adaptive
// front door (sort_unsigned keyed on word_of), returning the word-0
// dispatch's kernel — the shared scaffolding of the fused and
// encode-once paths below.
template <typename Rec, typename WordOf, typename TieLess>
sort_kernel refine_through_front_door(std::span<Rec> data,
                                      std::size_t word_count,
                                      bool exhaustive, const WordOf& word_of,
                                      const TieLess& tie_less,
                                      const auto_sort_options& opt,
                                      sort_workspace& ws) {
  sort_kernel root = sort_kernel::std_sort;
  bool first = true;
  // chosen_kernel and the sketch_* fields are last-write-wins snapshots,
  // so the per-segment dispatches of later rounds would leave them
  // describing the LAST refined segment. The wide contract is that they
  // describe the ROOT (word-0, whole-input) dispatch — the kernel this
  // function returns — so the word-0 values are captured here and
  // restored after the refine rounds.
  std::atomic<std::uint64_t> sort_stats::*const snap_fields[] = {
      &sort_stats::chosen_kernel,          &sort_stats::sketch_key_bits,
      &sort_stats::sketch_distinct_permille, &sort_stats::sketch_top_permille,
      &sort_stats::sketch_desc_permille,   &sort_stats::sketch_heavy_keys,
      &sort_stats::sketch_runs,            &sort_stats::chosen_parallelism,
      &sort_stats::effective_workers};
  constexpr std::size_t kNumSnap = std::size(snap_fields);
  std::uint64_t snap[kNumSnap] = {};
  const auto sort_seg = [&](std::span<Rec> seg, std::size_t w,
                            sort_workspace& seg_ws) {
    auto_sort_options seg_opt = opt;
    seg_opt.workspace = &seg_ws;
    const sort_kernel k = sort_unsigned(
        seg, [&word_of, w](const Rec& r) { return word_of(r, w); }, seg_opt);
    if (first) {
      root = k;
      first = false;
      if (opt.stats != nullptr)
        for (std::size_t f = 0; f < kNumSnap; ++f)
          snap[f] = (opt.stats->*snap_fields[f])
                        .load(std::memory_order_relaxed);
    }
  };
  // Pool for the concurrent large-segment sorts: the caller's, else the
  // process-wide shared pool; disabled entirely (serial pre-pool path)
  // when the policy's ablation toggle says so.
  workspace_pool* pool =
      opt.policy.parallel_wide_refine
          ? (opt.pool != nullptr ? opt.pool : &workspace_pool::shared())
          : nullptr;
  wide_refine(data, word_count, exhaustive,
              opt.policy.wide_segment_base_case, word_of, sort_seg,
              tie_less, ws, pool, opt.stats);
  if (opt.stats != nullptr && !first)
    for (std::size_t f = 0; f < kNumSnap; ++f)
      (opt.stats->*snap_fields[f]).store(snap[f],
                                         std::memory_order_relaxed);
  return root;
}

// ---------------------------------------------------------------------------
// Entry helpers wired from the public front door (auto_sort.hpp forward-
// declares these and branches to them for wide key types).

// Stable sorted permutation of [0, n) under the wide keys key_at(i).
// One workspace-leased array of (ALL encoded words, index) records: every
// word is materialised up front with one sequential read of each key, so
// the refine rounds and the word half of every comparison run over a
// cache-resident array — the true key is touched again only by a prefix
// codec's tie-break and by the caller's final gather. emit(pos, src)
// receives the permutation. The shared machinery behind the wide
// sort_by_key / rank / non-trivially-copyable sort paths.
template <typename K, typename KeyAt, typename Emit>
sort_kernel wide_ranked_permutation(std::size_t n, const KeyAt& key_at,
                                    const auto_sort_options& opt,
                                    sort_workspace& ws, const Emit& emit) {
  using WT = wide_key_traits<std::remove_cvref_t<K>>;
  constexpr std::size_t W = WT::word_count;
  struct wrec {
    std::uint64_t word[W];
    std::uint64_t idx;
  };
  std::span<wrec> recs;
  sort_workspace::lease rl = ws.acquire_array<wrec>(n, recs, opt.stats);
  par::parallel_for(0, n, [&](std::size_t i) {
    auto&& k = key_at(i);
    for (std::size_t w = 0; w < W; ++w) recs[i].word[w] = WT::word(k, w);
    recs[i].idx = static_cast<std::uint64_t>(i);
  });
  const auto word_of = [](const wrec& p, std::size_t w) {
    return p.word[w];
  };
  const auto tie = [&](const wrec& a, const wrec& b) {
    if constexpr (WT::exhaustive) {
      (void)a;
      (void)b;
      return false;
    } else {
      return key_at(a.idx) < key_at(b.idx);
    }
  };
  const sort_kernel root = refine_through_front_door(
      recs, W, WT::exhaustive, word_of, tie, opt, ws);
  par::parallel_for(0, n, [&](std::size_t i) {
    emit(i, static_cast<std::size_t>(recs[i].idx));
  });
  return root;
}

template <typename Rec, typename KeyFn>
sort_kernel sort_wide(std::span<Rec> data, const KeyFn& key,
                      const auto_sort_options& opt) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  using WT = wide_key_traits<K>;
  note_entry(opt.stats, sort_entry::sort, WT::kind, WT::encoded_bits);
  // The per-call cap must wrap the refine driver and the gather passes,
  // not just the per-segment sort_unsigned calls (which install their own
  // nested cap): the refine rounds run between those calls and would
  // otherwise see the full pool even under num_threads == 1.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  if constexpr (std::is_trivially_copyable_v<Rec> && WT::cheap) {
    // Fused: records are scattered as-is, each word pass re-derives its
    // radix key from the record — no extra memory beyond the front door's
    // own scratch.
    const auto word_of = [&key](const Rec& r, std::size_t w) {
      return WT::word(key(r), w);
    };
    const auto tie = [&key](const Rec& a, const Rec& b) {
      if constexpr (WT::exhaustive) {
        (void)a;
        (void)b;
        return false;
      } else {
        return key(a) < key(b);
      }
    };
    return refine_through_front_door(data, WT::word_count, WT::exhaustive,
                                     word_of, tie, inner, ws);
  } else {
    // Encode-once shape: sort (encoded words, index) records, then gather
    // once — the only route for non-trivially-copyable records
    // (std::string and friends). The gather MOVES each record (emit is a
    // permutation, so every source is consumed exactly once, and
    // write_back overwrites every slot afterwards) — a string never pays
    // a heap copy for being sorted.
    const std::size_t n = data.size();
    scratch_array<Rec> tmp(n, ws, opt.stats);
    const std::span<Rec> t = tmp.get();
    const sort_kernel k = wide_ranked_permutation<K>(
        n,
        [&](std::size_t i) -> decltype(auto) { return key(data[i]); },
        inner, ws, [&](std::size_t pos, std::size_t src) {
          t[pos] = std::move(data[src]);
        });
    write_back(t, data);
    return k;
  }
}

template <typename K, typename V>
sort_kernel sort_by_key_wide(std::span<K> keys, std::span<V> values,
                             const auto_sort_options& opt) {
  using traits = wide_key_traits<K>;
  const std::size_t n = keys.size();
  note_entry(opt.stats, sort_entry::sort_by_key, traits::kind,
             traits::encoded_bits);
  // Same scope rationale as sort_wide: cover refine + gathers, not just
  // the nested sort_unsigned calls.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  scratch_array<K> tk(n, ws, opt.stats);
  scratch_array<V> tv(n, ws, opt.stats);
  const std::span<K> sk = tk.get();
  const std::span<V> sv = tv.get();
  // The gather moves (see sort_wide): each source index is consumed once
  // and both arrays are fully overwritten by the write_back below.
  const sort_kernel k = wide_ranked_permutation<K>(
      n, [&](std::size_t i) -> const K& { return keys[i]; }, inner, ws,
      [&](std::size_t pos, std::size_t src) {
        sk[pos] = std::move(keys[src]);
        sv[pos] = std::move(values[src]);
      });
  write_back(sk, keys);
  write_back(sv, values);
  return k;
}

template <typename Rec, typename KeyFn>
std::vector<index_t> rank_wide(std::span<Rec> data, const KeyFn& key,
                               const auto_sort_options& opt) {
  using R = std::remove_const_t<Rec>;
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const R&>>;
  using traits = wide_key_traits<K>;
  const std::size_t n = data.size();
  note_entry(opt.stats, sort_entry::rank, traits::kind,
             traits::encoded_bits);
  // Same scope rationale as sort_wide: cover refine + gathers, not just
  // the nested sort_unsigned calls.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  std::vector<index_t> out(n);
  wide_ranked_permutation<K>(
      n, [&](std::size_t i) -> decltype(auto) { return key(data[i]); },
      inner, ws, [&](std::size_t pos, std::size_t src) { out[pos] = src; });
  return out;
}

}  // namespace detail

}  // namespace dovetail
