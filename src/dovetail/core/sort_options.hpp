// Tuning knobs for DovetailSort. Defaults follow the paper's Sec 6
// "Parameter Selection"; the ablation flags correspond to the experiments
// in Sec 6.3.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dovetail {

struct sort_stats;
class sort_workspace;

// How the distribution engine (distribute.hpp) scatters records to their
// bucket positions:
//   automatic — pick per call: `buffered` when the bucket count is large
//               enough that direct stores thrash the TLB/cache and the
//               record type is trivially copyable, else `direct`.
//   direct    — one store per record straight to the output cursor (the
//               classic blocked counting sort of Sec 2.4 / Appendix B).
//   buffered  — stage records in per-(block, bucket) cache-line-sized
//               software buffers and flush each buffer with one contiguous
//               memcpy burst (the RADULS trick). Stable, byte-identical
//               output to `direct`.
//   unstable  — one atomic fetch-and-add per record claims the output slot
//               (Thm 4.1 / Appendix B). Records of a bucket land in
//               arbitrary order; never chosen automatically, and treated as
//               `automatic` by the stable sorts (DTSort, LSD, MSD).
enum class scatter_strategy : std::uint8_t {
  automatic,
  direct,
  buffered,
  unstable,
};

// The stability contract a caller demands from the adaptive front door
// (dispatch_policy::stability_mode in auto_sort.hpp):
//   strict  — every auto-chosen kernel preserves input order of equal keys
//             (the default; all five classic kernels qualify).
//   relaxed — the caller certifies it cannot observe the order of equal
//             records, unlocking the unstable in-place kernel
//             (core/inplace_sort.hpp) for auto-dispatch under a memory
//             budget and for policy::always(sort_kernel::inplace) pinning
//             on records that carry payload. Pure-key records (equal keys
//             => byte-identical records, e.g. plain unsigned/signed/float
//             spans) never need it: instability is unobservable there and
//             the dispatcher proves it via the codec traits
//             (is_pure_key_fn_v in key_codec.hpp).
enum class stability : std::uint8_t {
  strict,
  relaxed,
};

// Tuning knobs for dovetail_sort/semisort. All combinations preserve the
// stability guarantee (equal keys keep input order) and the O(n sqrt(log r))
// work bound, except where a knob's comment says otherwise (the ablation
// flags exist to measure exactly those exceptions).
struct sort_options {
  // Digit width γ in bits. 0 = auto: log2(cbrt(n)) clamped to [8, 12],
  // the paper's theory-guided choice Θ(sqrt(log r)). Larger γ means fewer
  // recursion levels ((log r)/γ of them) but 2^γ-sized counting scratch
  // per subproblem; the bench_suite "params" family sweeps this.
  int gamma = 0;

  // Base-case threshold θ: subproblems at most this size are finished with
  // a stable comparison sort (paper: 2^14), bounding recursion overhead at
  // O(n' log θ) work per base case.
  std::size_t base_case = std::size_t{1} << 14;

  // Heavy-key detection via sampling (Alg 2 step 1). Disabling this yields
  // the "Plain" variant of the Fig 4(a,b) ablation.
  bool detect_heavy = true;

  // Dovetail merging (Alg 3) vs. the standard parallel-merge baseline
  // ("PLMerge") for step 4 — the Fig 4(c,d) ablation.
  bool use_dt_merge = true;

  // Overflow-bucket optimization (Sec 5): estimate the key range from the
  // samples and skip leading zero bits; out-of-range keys go to a final
  // comparison-sorted overflow bucket.
  bool skip_leading_bits = true;

  // Subsample stride (the paper's "every (log n)-th sample"); 0 = auto.
  std::size_t sample_stride = 0;

  // Seed for the deterministic sampling. Fixed seed => the whole sort is
  // internally deterministic (Appendix A).
  std::uint64_t seed = 42;

  // BENCHMARK-ONLY (Fig 4 c,d "Others" bar): skip the merging step in every
  // recursive call. The output is NOT fully sorted when heavy buckets
  // exist; this isolates the cost of the other steps as in Sec 6.3.
  bool ablate_skip_merge = false;

  // Per-call parallelism cap: at most this many scheduler workers execute
  // this sort (0 = all workers in the pool). 1 runs the whole call on the
  // calling thread — exact, via pardo's serial path — which is what N
  // request threads each sorting their own batch want: parallelism across
  // calls, none within. Values between 1 and the pool size cap forking and
  // granularity decisions; actual concurrency stays bounded by the shared
  // work-stealing pool, which cannot reserve workers per call. The cap is
  // scoped to the call (par::scoped_worker_limit) and composes with an
  // enclosing cap by taking the minimum.
  int num_threads = 0;

  // Scatter strategy for every distribution pass (see the enum above).
  // `unstable` would break DTSort's stability guarantee and is treated as
  // `automatic` here; request it only through distribute()/
  // unstable_counting_sort() directly.
  scatter_strategy scatter = scatter_strategy::automatic;

  // Staging bytes per bucket for the `buffered` scatter (per block). Rounded
  // down to whole records, minimum 4 records.
  std::size_t scatter_buffer_bytes = 256;

  // Reusable memory arena (see workspace.hpp). Pass the same workspace to
  // repeated sorts and every size-proportional scratch buffer is reused
  // instead of reallocated after the first run; nullptr = a private
  // ephemeral workspace per call (scratch slabs are still pooled within
  // the call, across recursion levels). A workspace may serve only one
  // sort at a time.
  sort_workspace* workspace = nullptr;

  // Optional work instrumentation (see sort_stats.hpp); nullptr = off.
  sort_stats* stats = nullptr;
};

}  // namespace dovetail
