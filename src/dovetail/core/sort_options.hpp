// Tuning knobs for DovetailSort. Defaults follow the paper's Sec 6
// "Parameter Selection"; the ablation flags correspond to the experiments
// in Sec 6.3.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dovetail {

struct sort_stats;

struct sort_options {
  // Digit width γ in bits. 0 = auto: log2(cbrt(n)) clamped to [8, 12],
  // the paper's theory-guided choice Θ(sqrt(log r)).
  int gamma = 0;

  // Base-case threshold θ: subproblems at most this size are finished with
  // a stable comparison sort (paper: 2^14).
  std::size_t base_case = std::size_t{1} << 14;

  // Heavy-key detection via sampling (Alg 2 step 1). Disabling this yields
  // the "Plain" variant of the Fig 4(a,b) ablation.
  bool detect_heavy = true;

  // Dovetail merging (Alg 3) vs. the standard parallel-merge baseline
  // ("PLMerge") for step 4 — the Fig 4(c,d) ablation.
  bool use_dt_merge = true;

  // Overflow-bucket optimization (Sec 5): estimate the key range from the
  // samples and skip leading zero bits; out-of-range keys go to a final
  // comparison-sorted overflow bucket.
  bool skip_leading_bits = true;

  // Subsample stride (the paper's "every (log n)-th sample"); 0 = auto.
  std::size_t sample_stride = 0;

  // Seed for the deterministic sampling. Fixed seed => the whole sort is
  // internally deterministic (Appendix A).
  std::uint64_t seed = 42;

  // BENCHMARK-ONLY (Fig 4 c,d "Others" bar): skip the merging step in every
  // recursive call. The output is NOT fully sorted when heavy buckets
  // exist; this isolates the cost of the other steps as in Sec 6.3.
  bool ablate_skip_merge = false;

  // Optional work instrumentation (see sort_stats.hpp); nullptr = off.
  sort_stats* stats = nullptr;
};

}  // namespace dovetail
