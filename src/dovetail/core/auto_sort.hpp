// dovetail::sort / sort_by_key / rank — the adaptive front door of the
// library, generalized over typed keys by the key-codec layer
// (key_codec.hpp).
//
// The paper's headline result (Tab 3 / Fig 1) is that no single integer
// sort wins everywhere: DTSort dominates on skewed and heavy-duplicate
// inputs, LSD-style radix sorts win on small dense keys, and for tiny or
// (near-)sorted inputs neither is the right tool. This header turns that
// observation into one entry point: sketch the input cheaply
// (input_sketch.hpp), then route through a pluggable dispatch_policy to the
// kernel the evidence says is fastest, with its parameters tuned from the
// same sketch.
//
// Kernels (all stable, all running through the shared sort_workspace):
//   std_sort  — sequential std::stable_sort; below the serial threshold the
//               parallel machinery costs more than it saves.
//   run_merge — detect maximal non-decreasing runs and merge adjacent runs
//               pairwise (O(n log R) for R runs): near-sorted inputs finish
//               in one or two passes, a fully sorted input in zero. A
//               strictly descending input is reversed in place first (no
//               equal keys can exist in a strictly descending sequence, so
//               the reversal is trivially stable).
//   counting  — one stable distribution pass over the exact key range
//               (counting sort): unbeatable when max-min is small, because
//               every other kernel pays at least one extra pass.
//   lsd       — classic LSD radix sort (baselines/lsd_radix_sort.hpp) with
//               a sketch-tuned scatter strategy: buffered RADULS-style
//               staging for uniform digits, direct stores when the sampled
//               low digit is heavily skewed (few hot buckets).
//   dtsort    — dovetail_sort with auto gamma and the overflow-bucket range
//               trick: the heavy-duplicate / wide-key workhorse.
//
// The default thresholds are derived from the committed BENCH_suite.json
// baseline and cross-checked by the bench_suite "auto" family; docs/
// TUNING.md walks through the evidence behind each one and how to re-derive
// them on your machine. policy::always(kernel) pins a kernel (parameter
// tuning still applies) — that is what the "auto" benchmarks use to compare
// the dispatcher against every hand-picked kernel.
//
// Typed keys (key_codec.hpp): every entry point accepts any codec-covered
// key type — signed integers, float/double, pair/tuple composites, or a
// user key_codec specialization — not just unsigned integers. Strategy:
//   * cheap codecs (all built-ins) on trivially copyable records FUSE the
//     encode into the key function, so every kernel, the sketch and the
//     dispatch operate on encoded keys with no extra pass and no extra
//     memory — records are scattered as-is and never decoded;
//   * expensive codecs, and records that are not trivially copyable (e.g.
//     a std::span<std::pair<...>> under libstdc++), ENCODE ONCE into a
//     workspace-leased (encoded key, index) array, sort that through the
//     same dispatcher, and apply the resulting stable permutation back to
//     the records with one gather pass.
//   * WIDE keys — multi-word codecs (pair<u64, u64>, __int128, strings,
//     >64-bit composites; key_codec.hpp) — route through the segmented-
//     MSD refine driver of core/wide_sort.hpp: sort by word 0 through
//     this same dispatcher, then refine equal-prefix segments word by
//     word. The single-word fast paths below are untouched.
// The encode-once machinery is also what powers the SoA entry points:
//   * sort_by_key(keys, values) sorts parallel key/value arrays without
//     ever dragging the value bytes through a radix pass (4-byte keys stop
//     hauling 32-byte rows through every scatter);
//   * rank(data, key) returns the stable sorted permutation (argsort)
//     without moving — or even being able to write — the records.
// Which entry point ran and which codec it used land in sort_stats
// (entry_point / codec_kind_id / codec_encoded_bits snapshots).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/inplace_sort.hpp"
#include "dovetail/core/input_sketch.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_options.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/merge.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"

namespace dovetail {

enum class sort_kernel : std::uint8_t {
  std_sort,
  run_merge,
  counting,
  lsd,
  dtsort,
  // In-place block-permutation MSD radix (core/inplace_sort.hpp): O(n)
  // ping-pong buffer replaced by O(buckets * block) scratch. UNSTABLE —
  // auto-chosen only under a memory budget when instability is
  // unobservable (pure-key records) or permitted (stability::relaxed);
  // policy::always(inplace) demands the same safety or throws.
  inplace,
};

inline constexpr int kNumSortKernels = 6;

inline const char* kernel_name(sort_kernel k) {
  switch (k) {
    case sort_kernel::std_sort: return "StdSort";
    case sort_kernel::run_merge: return "RunMerge";
    case sort_kernel::counting: return "Counting";
    case sort_kernel::lsd: return "LSD";
    case sort_kernel::dtsort: return "DTSort";
    case sort_kernel::inplace: return "InPlace";
  }
  return "?";
}

// Decode sort_stats::chosen_kernel (0 = no dispatch recorded).
inline std::optional<sort_kernel> chosen_kernel_of(const sort_stats& st) {
  const std::uint64_t v = st.chosen_kernel.load(std::memory_order_relaxed);
  if (v == 0 || v > static_cast<std::uint64_t>(kNumSortKernels))
    return std::nullopt;
  return static_cast<sort_kernel>(v - 1);
}

// Stable argsort / permutation index type returned by dovetail::rank.
using index_t = std::size_t;

// Which public front-door entry point ran last — recorded as
// 1 + static_cast<int>(sort_entry) in sort_stats::entry_point, next to the
// codec snapshots (codec_kind_id = 1 + codec_kind, codec_encoded_bits).
enum class sort_entry : std::uint8_t { sort, sort_by_key, rank };

inline constexpr int kNumSortEntries = 3;
inline constexpr int kNumCodecKinds =
    1 + static_cast<int>(codec_kind::custom);

inline const char* entry_name(sort_entry e) {
  switch (e) {
    case sort_entry::sort: return "sort";
    case sort_entry::sort_by_key: return "sort_by_key";
    case sort_entry::rank: return "rank";
  }
  return "?";
}

// Decode sort_stats::entry_point / codec_kind_id (0 = nothing recorded).
inline std::optional<sort_entry> entry_point_of(const sort_stats& st) {
  const std::uint64_t v = st.entry_point.load(std::memory_order_relaxed);
  if (v == 0 || v > static_cast<std::uint64_t>(kNumSortEntries))
    return std::nullopt;
  return static_cast<sort_entry>(v - 1);
}

inline std::optional<codec_kind> codec_kind_of(const sort_stats& st) {
  const std::uint64_t v = st.codec_kind_id.load(std::memory_order_relaxed);
  if (v == 0 || v > static_cast<std::uint64_t>(kNumCodecKinds))
    return std::nullopt;
  return static_cast<codec_kind>(v - 1);
}

// A dispatch decision: the kernel plus its sketch-tuned parameters.
struct kernel_plan {
  sort_kernel kernel = sort_kernel::dtsort;
  int gamma = 0;  // digit width for lsd/dtsort; 0 = the kernel's default
  scatter_strategy scatter = scatter_strategy::automatic;
  // Workers the kernel runs under (1 = serial; see parallel_crossover_n).
  // Recorded in sort_stats::chosen_parallelism next to chosen_kernel.
  int parallelism = 1;
  const char* reason = "";  // the rule that fired (for logs/debugging)
};

// The pluggable routing policy. Every threshold is a public field so a
// deployment can re-derive them for its hardware (docs/TUNING.md has the
// recipe); the defaults are fitted to the committed BENCH_suite.json
// baseline. `policy::always(k)` skips the kernel choice but keeps the
// sketch-driven parameter tuning, so pinned kernels in benchmarks run
// exactly what the dispatcher would run.
struct dispatch_policy {
  // Forced kernel (policy::always); kernel choice is skipped when set.
  bool forced = false;
  sort_kernel forced_kernel = sort_kernel::dtsort;

  // n at or below this sorts with sequential std::stable_sort. The radix
  // kernels overtake a comparison sort astonishingly early (measured
  // crossover ~2^9-2^10 records on the baseline box: LSD 7.6us vs
  // std::stable_sort 4.5us at n=512, and 2x ahead by n=1024), so this only
  // guards the regime where sketching + workspace setup are not worth it.
  std::size_t serial_threshold = 512;
  // The stability contract (sort_options.hpp): strict keeps every
  // auto-chosen kernel stable; relaxed certifies the caller cannot observe
  // the order of equal records, unlocking the unstable in-place kernel for
  // the memory-budget rule below and for policy::always(inplace) on
  // payload-carrying records. Pure-key records (detected from the key
  // functor, input_sketch::pure_key_records) never need relaxed.
  stability stability_mode = stability::strict;
  // Peak extra workspace the caller will tolerate, in bytes; 0 = no budget.
  // When the out-of-place kernels' O(n) record ping-pong lease
  // (n * sizeof(record)) would exceed this AND instability is safe (pure
  // keys or relaxed), the dispatcher routes to the in-place kernel, whose
  // scratch is O(2^gamma * block) — see core/inplace_sort.hpp and
  // sort_stats::peak_workspace_bytes for the measured high-water mark.
  std::size_t memory_budget_bytes = 0;
  // Try the run-merge kernel when no sampled adjacent pair descends (or
  // none ascends — reverse-sorted). Confirmed by an exact run scan; inputs
  // with more than run_merge_max_runs(n) runs fall through to the radix
  // kernels, where merging would cost more than O(n sqrt(log r)) work.
  // 0 = auto: max(64, 4 log2 n) runs, i.e. merge depth ≲ log2 log-ish n.
  std::size_t run_merge_max_runs = 0;
  // One-pass counting sort when the exact key range (max - min) is at most
  // this. The competitor is not a full-width radix sort but LSD over the
  // *detected* bits — two 8-bit passes for any range up to 2^16 — so the
  // single pass only wins while its bucket cursors stay cache-resident:
  // measured crossover ~2^12 (n=1e6: counting 7.9ms vs LSD 11.3ms at range
  // 2^10, 14.4 vs 11.2 by 2^13).
  std::size_t counting_max_range = std::size_t{1} << 12;
  // Duplicate regime => dtsort (heavy-key buckets skip all recursion,
  // Thm 4.6/4.7): fires when the most frequent sampled key exceeds
  // dtsort_top_freq, or when the sample is nearly all duplicates
  // (distinct_ratio below dtsort_distinct_ratio), or when key_bits is
  // large (see lsd_max_key_bits). Evidence: BENCH_suite.json table3-32
  // rows Unif-10 / BExp-100 / BExp-300 (DTSort 2-4x over LSD) vs
  // Zipf-1.5 / BExp-30 (LSD ahead; top_freq below the bar).
  double dtsort_top_freq = 0.45;
  double dtsort_distinct_ratio = 0.05;
  // Moderate-duplicate tier, consulted only after the digit-skew rule: a
  // top key above ~20% (Zipf s >= ~1.5) is worth a heavy bucket even on
  // 32-bit keys (BENCH_auto.json: Zipf-1.5/32 DTSort 22ms vs LSD 32ms),
  // but bitwise-skewed inputs with a moderate top key (BExp-30/32,
  // top ~34%) still belong to direct-scatter LSD — hence the ordering.
  double dtsort_mid_top_freq = 0.20;
  // Low-digit skew => LSD with direct stores: when one byte value owns
  // this share of the sampled low digit, few scatter cursors are hot and
  // buffered staging only adds copies (BENCH_suite.json: BExp-10/30 LSD
  // beats RD by 1.3-1.6x; hashed-uniform digits favour buffered).
  double direct_digit_share = 0.25;
  // Keys at most this wide with no duplicate/skew signal go to LSD: at
  // gamma=8 that is <= 4 fixed passes, which beat MSD recursion on every
  // 32-bit BENCH_suite.json instance outside the duplicate regime. Wider
  // keys default to dtsort (the paper's 64-bit headline, Tab 3 right).
  int lsd_max_key_bits = 32;
  // Parallelism cap consulted by plan_parallelism(); 0 = every worker the
  // surrounding scope allows (par::effective_workers(), itself capped by
  // auto_sort_options::num_threads / sort_options::num_threads).
  int num_threads = 0;
  // n at or below this runs the chosen kernel single-threaded even when
  // more workers are available: below the crossover, fork/join setup, the
  // per-block counting matrices and the extra cache traffic of a parallel
  // distribution cost more than they save. Like every threshold here the
  // default is fitted to the committed baselines (docs/TUNING.md has the
  // re-derivation recipe and the evidence); the serial/parallel decision
  // lands in sort_stats::chosen_parallelism, the kernel's twin snapshot.
  std::size_t parallel_crossover_n = std::size_t{1} << 15;
  // Wide (multi-word) keys only: equal-prefix segments at or below this
  // size finish with one stable comparison sort over the remaining words
  // instead of re-entering the radix front door (wide_sort.hpp). A
  // segment must amortise a full dispatch + distribution pass to be worth
  // radixing again; below ~2^15 records the comparison sort — run in
  // parallel ACROSS segments — wins on every wide BENCH_wide.json
  // instance.
  std::size_t wide_segment_base_case = std::size_t{1} << 15;
  // Order-statistics queries (core/order_stats.hpp) only: a rank-window
  // segment at or below this size finishes with one stable comparison
  // sort instead of another pruned distribution pass. Smaller than
  // wide_segment_base_case on purpose: a selection segment that recurses
  // gets to PRUNE most of its buckets (the next pass touches only the
  // window straddlers), so another distribution pass stays profitable on
  // segments far below the size where a full-sort refinement would give
  // up — the query-topk bench family is the evidence, same recipe as
  // every threshold here (docs/TUNING.md).
  std::size_t select_base_case = std::size_t{1} << 11;
  // Wide keys only: refine large equal-prefix segments CONCURRENTLY, each
  // in-flight sort on its own workspace_pool arena (wide_sort.hpp). Off =
  // the pre-pool behaviour (segments re-enter the front door one at a
  // time, parallel only inside each call) — kept as an ablation toggle so
  // the parallel-refine gain stays measurable (bench scenarios_parallel).
  bool parallel_wide_refine = true;
  // Offset-capable non-exhaustive codecs (std::string / std::string_view)
  // only: when a segment still ties after every materialized prefix word,
  // re-enter radix refinement on the next slice of the true keys (the
  // offset-codec form in key_codec.hpp) instead of finishing the whole
  // segment with one comparison sort. Off = the pre-continuation
  // behaviour (the PR-5 tie-break), kept as an ablation toggle: both
  // paths produce byte-identical output (asserted in
  // tests/test_string_engine.cpp) and the wide-str-lcp bench family
  // measures the gap on long-common-prefix corpora.
  bool wide_continuation = true;

  // The decision tree. `disallow` is a bitmask of sort_kernel values the
  // caller has ruled out (the dispatcher uses it when a cheap-branch
  // precondition fails its exact confirmation, e.g. the input was not
  // near-sorted after all).
  [[nodiscard]] kernel_plan choose(const input_sketch& s,
                                   unsigned disallow = 0) const {
    const auto allowed = [&](sort_kernel k) {
      return ((disallow >> static_cast<int>(k)) & 1U) == 0;
    };
    kernel_plan p;
    if (s.n <= serial_threshold && allowed(sort_kernel::std_sort)) {
      p.kernel = sort_kernel::std_sort;
      p.reason = "n below serial threshold";
    } else if (memory_budget_bytes != 0 && s.record_bytes != 0 &&
               (s.pure_key_records ||
                stability_mode == stability::relaxed) &&
               s.n * s.record_bytes > memory_budget_bytes &&
               allowed(sort_kernel::inplace)) {
      // The budget rule outranks every data-driven rule below: when the
      // O(n) ping-pong lease is off the table, only the in-place kernel
      // fits, and it is safe here (pure keys or an explicit relaxed
      // contract).
      p.kernel = sort_kernel::inplace;
      p.reason = "ping-pong lease exceeds memory budget";
    } else if ((s.maybe_sorted() || s.maybe_reverse_sorted()) &&
               allowed(sort_kernel::run_merge)) {
      p.kernel = sort_kernel::run_merge;
      p.reason = s.maybe_sorted() ? "no sampled adjacent pair descends"
                                  : "no sampled adjacent pair ascends";
    } else if (s.sample_range() <= counting_max_range &&
               allowed(sort_kernel::counting)) {
      p.kernel = sort_kernel::counting;
      p.reason = "sampled key range fits one counting pass";
    } else if ((s.top_freq() >= dtsort_top_freq ||
                s.distinct_ratio() <= dtsort_distinct_ratio) &&
               allowed(sort_kernel::dtsort)) {
      p.kernel = sort_kernel::dtsort;
      p.reason = "heavy duplicates (Thm 4.6/4.7 regime)";
    } else if (s.digit_top_share() >= direct_digit_share &&
               allowed(sort_kernel::lsd)) {
      p.kernel = sort_kernel::lsd;
      p.reason = "bitwise-skewed digits: LSD with direct stores";
    } else if (s.top_freq() >= dtsort_mid_top_freq &&
               allowed(sort_kernel::dtsort)) {
      p.kernel = sort_kernel::dtsort;
      p.reason = "moderate heavy key: worth a heavy bucket";
    } else if (s.key_bits <= lsd_max_key_bits && allowed(sort_kernel::lsd)) {
      p.kernel = sort_kernel::lsd;
      p.reason = "small dense keys: few fixed LSD passes";
    } else if (allowed(sort_kernel::dtsort)) {
      p.kernel = sort_kernel::dtsort;
      p.reason = "wide keys: DTSort default";
    } else {
      p.kernel = sort_kernel::lsd;  // dtsort ruled out: lsd handles anything
      p.reason = "fallback";
    }
    tune(p, s);
    return p;
  }

  // Sketch-driven parameter tuning, applied to chosen and forced kernels
  // alike (so policy::always benchmarks measure the kernel the dispatcher
  // would actually run).
  void tune(kernel_plan& p, const input_sketch& s) const {
    if (p.kernel == sort_kernel::lsd) {
      p.gamma = 8;
      p.scatter = s.digit_top_share() >= direct_digit_share
                      ? scatter_strategy::direct
                      : scatter_strategy::automatic;
    }
    p.parallelism =
        p.kernel == sort_kernel::std_sort ? 1 : plan_parallelism(s.n);
  }

  // The serial/parallel half of the dispatch: how many workers should a
  // sort of n records run under? 1 below the crossover (or for std_sort,
  // which is sequential regardless), else every worker the scope allows,
  // capped by this policy's num_threads.
  [[nodiscard]] int plan_parallelism(std::size_t n) const {
    if (n <= parallel_crossover_n) return 1;
    int avail = par::effective_workers();
    if (num_threads > 0 && num_threads < avail) avail = num_threads;
    return avail;
  }

  [[nodiscard]] std::size_t max_merge_runs(std::size_t n) const {
    if (run_merge_max_runs != 0) return run_merge_max_runs;
    return std::max<std::size_t>(
        64, 4 * static_cast<std::size_t>(
                    ceil_log2(std::max<std::size_t>(2, n))));
  }
};

namespace policy {

// The default data-driven routing.
inline dispatch_policy automatic() { return {}; }

// Pin a kernel, bypassing the decision tree (sketch-driven parameter
// tuning still applies). Precondition for always(counting): the exact key
// range (max - min) must be below 2^20, else dovetail::sort throws
// std::invalid_argument — a forced one-pass counting sort over a wider
// range would need an infeasibly large counting matrix.
inline dispatch_policy always(sort_kernel k) {
  dispatch_policy p;
  p.forced = true;
  p.forced_kernel = k;
  return p;
}

}  // namespace policy

// Options for dovetail::sort. The workspace/stats contract matches
// dovetail_sort: pass the same sort_workspace to repeated calls and every
// kernel's O(n) scratch is reused after warm-up; one in-flight sort per
// workspace.
struct auto_sort_options {
  dispatch_policy policy{};
  sketch_options sketch{};                // sample/probe budget and seed
  std::uint64_t seed = 42;                // dtsort kernel determinism seed
  // Per-call parallelism cap, same contract as sort_options::num_threads:
  // 0 = all scheduler workers; 1 = run the whole call on the calling
  // thread (exact); 2..p caps forking/granularity decisions while actual
  // concurrency stays bounded by the shared pool. Applied for the entire
  // call — sketch, dispatch, kernel, gather passes — and composes with
  // policy.num_threads and dispatch_policy::parallel_crossover_n (the
  // dispatcher may still choose FEWER workers than allowed; the choice is
  // recorded in sort_stats::chosen_parallelism).
  int num_threads = 0;
  sort_workspace* workspace = nullptr;
  // Workspace pool for concurrent in-flight sub-sorts (today: the wide-key
  // refine driver sorting large equal-prefix segments concurrently).
  // nullptr = workspace_pool::shared(), the process-wide default.
  workspace_pool* pool = nullptr;
  sort_stats* stats = nullptr;
};

namespace detail {

// Hard feasibility cap for a forced counting kernel (policy::always).
inline constexpr std::uint64_t kCountingHardCap = std::uint64_t{1} << 20;

// Boundaries of maximal non-decreasing runs: positions i with
// key(a[i-1]) > key(a[i]), bracketed by 0 and n.
template <typename Rec, typename KeyFn>
std::vector<std::size_t> run_boundaries(std::span<const Rec> a,
                                        const KeyFn& key) {
  const std::size_t n = a.size();
  std::vector<std::size_t> bounds{0};
  if (n >= 2) {
    const std::size_t nblocks =
        n <= 8192 ? 1
                  : std::min<std::size_t>(
                        8 * static_cast<std::size_t>(par::num_workers()),
                        (n + 8191) / 8192);
    const std::size_t bsize = (n + nblocks - 1) / nblocks;
    std::vector<std::vector<std::size_t>> local(nblocks);
    par::parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const std::size_t lo = std::max<std::size_t>(1, b * bsize);
          const std::size_t hi = std::min(n, (b + 1) * bsize);
          for (std::size_t i = lo; i < hi; ++i)
            if (static_cast<std::uint64_t>(key(a[i - 1])) >
                static_cast<std::uint64_t>(key(a[i])))
              local[b].push_back(i);
        },
        1);
    for (const auto& v : local)
      bounds.insert(bounds.end(), v.begin(), v.end());
  }
  bounds.push_back(n);
  return bounds;
}

// Bottom-up pairwise merging of the runs delimited by `bounds`, ping-pong
// between `a` and scratch `t`; the sorted result always ends in `a`.
template <typename Rec, typename KeyFn>
void merge_runs(std::span<Rec> a, const KeyFn& key, std::span<Rec> t,
                std::vector<std::size_t> bounds) {
  const auto comp = [&](const Rec& x, const Rec& y) {
    return static_cast<std::uint64_t>(key(x)) <
           static_cast<std::uint64_t>(key(y));
  };
  std::span<Rec> src = a, dst = t;
  while (bounds.size() > 2) {
    const std::size_t nr = bounds.size() - 1;
    par::parallel_for(
        0, nr / 2,
        [&](std::size_t i) {
          const std::size_t lo = bounds[2 * i], mid = bounds[2 * i + 1],
                            hi = bounds[2 * i + 2];
          par::merge(std::span<const Rec>(src.data() + lo, mid - lo),
                     std::span<const Rec>(src.data() + mid, hi - mid),
                     dst.subspan(lo, hi - lo), comp);
        },
        1);
    if (nr % 2 != 0) {  // odd run out: carry it over unchanged
      const std::size_t lo = bounds[nr - 1], hi = bounds[nr];
      par::copy(std::span<const Rec>(src.data() + lo, hi - lo),
                dst.subspan(lo, hi - lo));
    }
    std::vector<std::size_t> next;
    next.reserve(nr / 2 + 2);
    for (std::size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (next.back() != bounds.back()) next.push_back(bounds.back());
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src.data() != a.data())
    par::copy(std::span<const Rec>(src.data(), a.size()), a);
}

// One stable counting-sort pass over the exact key range [min_key, max_key].
template <typename Rec, typename KeyFn>
void counting_kernel(std::span<Rec> data, const KeyFn& key,
                     std::uint64_t min_key, std::uint64_t max_key,
                     sort_workspace& ws, sort_stats* stats) {
  const std::size_t n = data.size();
  const std::size_t buckets =
      static_cast<std::size_t>(max_key - min_key) + 1;
  std::span<Rec> t = ws.template record_buffer<Rec>(n, stats);
  sort_workspace::lease off_lease =
      ws.acquire((buckets + 1) * sizeof(std::size_t), stats);
  const std::span<std::size_t> offs =
      off_lease.template carve<std::size_t>(buckets + 1);
  distribute_options dopt;
  dopt.require_stable = true;
  dopt.workspace = &ws;
  dopt.stats = stats;
  distribute(std::span<const Rec>(data.data(), n), t, buckets,
             [&](const Rec& r) -> std::size_t {
               return static_cast<std::size_t>(
                   static_cast<std::uint64_t>(key(r)) - min_key);
             },
             offs, dopt);
  par::copy(std::span<const Rec>(t.data(), n), data);
  if (stats != nullptr) {
    stats->distributed_records.fetch_add(n, std::memory_order_relaxed);
    stats->num_distributions.fetch_add(1, std::memory_order_relaxed);
  }
}

// Exact (min, max) of the keys — one parallel reduce pass. Only run when a
// branch's precondition needs confirming; the sketch pays o(n) everywhere
// else.
template <typename Rec, typename KeyFn>
std::pair<std::uint64_t, std::uint64_t> exact_key_range(
    std::span<const Rec> data, const KeyFn& key) {
  using mm = std::pair<std::uint64_t, std::uint64_t>;
  return par::reduce_map(
      0, data.size(),
      mm{~std::uint64_t{0}, 0},
      [&](std::size_t i) {
        const auto k = static_cast<std::uint64_t>(key(data[i]));
        return mm{k, k};
      },
      [](mm x, mm y) {
        return mm{std::min(x.first, y.first), std::max(x.second, y.second)};
      });
}

// The dispatch core: sketch, route, run. `key` must return an unsigned
// integer here — the public entry points below fold any other key type
// through its key_codec before reaching this.
template <typename Rec, typename KeyFn>
sort_kernel sort_unsigned(std::span<Rec> data, const KeyFn& key,
                          const auto_sort_options& opt) {
  static_assert(std::is_trivially_copyable_v<Rec>,
                "dovetail::sort requires trivially copyable records");
  sort_stats* st = opt.stats;
  const std::size_t n = data.size();

  // The per-call cap bounds everything below — sketch, confirmation scans,
  // kernel — and is what dispatch_policy::plan_parallelism() sees as the
  // available worker count.
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  if (st != nullptr)
    st->effective_workers.store(
        static_cast<std::uint64_t>(par::effective_workers()),
        std::memory_order_relaxed);

  input_sketch sk =
      sketch_input(std::span<const Rec>(data.data(), n), key, opt.sketch);
  // Type-level facts the sampling pass cannot know: the record footprint
  // (drives the memory-budget rule) and whether equal encoded keys imply
  // byte-identical records (makes the unstable in-place kernel safe).
  sk.record_bytes = sizeof(Rec);
  sk.pure_key_records = is_pure_key_fn_v<KeyFn>;
  if (st != nullptr) {
    const auto permille = [](std::size_t part, std::size_t whole) {
      return whole == 0 ? std::uint64_t{0}
                        : static_cast<std::uint64_t>(1000 * part / whole);
    };
    st->sketch_key_bits.store(static_cast<std::uint64_t>(sk.key_bits),
                              std::memory_order_relaxed);
    st->sketch_distinct_permille.store(
        permille(sk.distinct_samples, sk.num_samples),
        std::memory_order_relaxed);
    st->sketch_top_permille.store(permille(sk.top_count, sk.num_samples),
                                  std::memory_order_relaxed);
    st->sketch_desc_permille.store(permille(sk.desc_probes, sk.probes),
                                   std::memory_order_relaxed);
    st->sketch_heavy_keys.store(sk.heavy_keys, std::memory_order_relaxed);
    st->sketch_runs.store(0, std::memory_order_relaxed);
  }

  sort_workspace local_ws;
  sort_workspace& ws =
      opt.workspace != nullptr ? *opt.workspace : local_ws;
  const auto record_choice = [&](const kernel_plan& p) {
    if (st != nullptr) {
      st->chosen_kernel.store(1 + static_cast<std::uint64_t>(p.kernel),
                              std::memory_order_relaxed);
      st->chosen_parallelism.store(static_cast<std::uint64_t>(p.parallelism),
                                   std::memory_order_relaxed);
    }
  };

  unsigned disallow = 0;
  for (;;) {
    kernel_plan plan;
    if (opt.policy.forced) {
      plan.kernel = opt.policy.forced_kernel;
      opt.policy.tune(plan, sk);
    } else {
      plan = opt.policy.choose(sk, disallow);
    }
    // Below the crossover the plan says "serial": cap the kernel (and its
    // confirmation scans) to one worker so the decision is enforced, not
    // advisory. The cap composes with worker_cap above by taking the min.
    const par::scoped_worker_limit plan_cap(plan.parallelism);

    switch (plan.kernel) {
      case sort_kernel::std_sort: {
        record_choice(plan);
        std::stable_sort(data.begin(), data.end(),
                         [&](const Rec& x, const Rec& y) {
                           return static_cast<std::uint64_t>(key(x)) <
                                  static_cast<std::uint64_t>(key(y));
                         });
        return plan.kernel;
      }

      case sort_kernel::run_merge: {
        std::vector<std::size_t> bounds = detail::run_boundaries(
            std::span<const Rec>(data.data(), n), key);
        std::size_t runs = bounds.size() - 1;
        if (n >= 2 && runs == n) {
          // Every adjacent pair descends: the input is strictly
          // descending, so no equal keys exist and a wholesale reversal
          // is trivially stable — and leaves exactly one run.
          par::reverse_inplace(data);
          bounds = {0, n};
          runs = 1;
        }
        if (st != nullptr)
          st->sketch_runs.store(runs, std::memory_order_relaxed);
        if (!opt.policy.forced && runs > opt.policy.max_merge_runs(n)) {
          // The probes lied (descents exist but were all missed, or the
          // reversal bailed): rule the branch out and re-dispatch.
          disallow |= 1U << static_cast<int>(sort_kernel::run_merge);
          continue;
        }
        record_choice(plan);
        if (runs > 1) {
          std::span<Rec> t = ws.template record_buffer<Rec>(n, st);
          detail::merge_runs(data, key, t, std::move(bounds));
        }
        return plan.kernel;
      }

      case sort_kernel::counting: {
        const auto [min_key, max_key] = detail::exact_key_range(
            std::span<const Rec>(data.data(), n), key);
        const std::uint64_t range =
            n == 0 ? 0 : max_key - min_key;
        if (opt.policy.forced) {
          if (range >= detail::kCountingHardCap)
            throw std::invalid_argument(
                "dovetail::sort: policy::always(counting) needs an exact "
                "key range below 2^20");
        } else if (range > opt.policy.counting_max_range) {
          // Rare keys above the sampled range (the overflow phenomenon of
          // Sec 5) made the estimate optimistic: re-dispatch without the
          // counting branch.
          disallow |= 1U << static_cast<int>(sort_kernel::counting);
          continue;
        }
        record_choice(plan);
        if (n >= 2 && range > 0)
          detail::counting_kernel(data, key, min_key, max_key, ws, st);
        return plan.kernel;
      }

      case sort_kernel::lsd: {
        record_choice(plan);
        baseline::lsd_options lopt;
        if (plan.gamma > 0) lopt.gamma = plan.gamma;
        lopt.scatter = plan.scatter;
        lopt.workspace = &ws;
        lopt.stats = st;
        baseline::lsd_radix_sort(data, key, lopt);
        return plan.kernel;
      }

      case sort_kernel::dtsort: {
        record_choice(plan);
        sort_options dopt;
        dopt.gamma = plan.gamma;  // 0 = dovetail_sort's own auto choice
        dopt.seed = opt.seed;
        dopt.workspace = &ws;
        dopt.stats = st;
        dovetail_sort(data, key, dopt);
        return plan.kernel;
      }

      case sort_kernel::inplace: {
        // Unstable kernel: reachable only when instability is unobservable
        // (pure-key records) or explicitly permitted. The auto rule already
        // guarantees this; a pinned policy::always(inplace) must prove it
        // here.
        if (!sk.pure_key_records &&
            opt.policy.stability_mode != stability::relaxed)
          throw std::invalid_argument(
              "dovetail::sort: policy::always(inplace) on records that "
              "carry payload needs dispatch_policy::stability_mode = "
              "stability::relaxed (the kernel is unstable)");
        record_choice(plan);
        inplace_sort_options iopt;
        if (plan.gamma > 0) iopt.gamma = plan.gamma;
        iopt.workspace = &ws;
        iopt.stats = st;
        inplace_sort(data, key, iopt);
        return plan.kernel;
      }
    }
    throw std::invalid_argument("dovetail::sort: unknown kernel");
  }
}

// --- typed-key machinery (the encode-once path) ---------------------------

// Snapshot the entry-point/codec stats fields (last write wins, matching
// chosen_kernel's contract).
inline void note_entry(sort_stats* st, sort_entry entry, codec_kind kind,
                       int encoded_bits) {
  if (st == nullptr) return;
  st->entry_point.store(1 + static_cast<std::uint64_t>(entry),
                        std::memory_order_relaxed);
  st->codec_kind_id.store(1 + static_cast<std::uint64_t>(kind),
                          std::memory_order_relaxed);
  st->codec_encoded_bits.store(static_cast<std::uint64_t>(encoded_bits),
                               std::memory_order_relaxed);
}

// (encoded key, source index) pair records for the encode-once path. The
// narrow pair is used whenever the encoded key and the index both fit 32
// bits — half the bytes per scatter pass.
struct enc_idx32 {
  std::uint32_t key;
  std::uint32_t value;
};
struct enc_idx64 {
  std::uint64_t key;
  std::uint64_t value;
};

template <typename PairRec, typename EncOf, typename Emit>
sort_kernel ranked_permutation_impl(std::size_t n, const EncOf& enc_of,
                                    const auto_sort_options& opt,
                                    sort_workspace& ws, const Emit& emit) {
  sort_workspace::lease pl = ws.acquire(n * sizeof(PairRec), opt.stats);
  const std::span<PairRec> pairs = pl.template carve<PairRec>(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    pairs[i] = PairRec{static_cast<decltype(PairRec::key)>(enc_of(i)),
                       static_cast<decltype(PairRec::value)>(i)};
  });
  // A stable sort of (encoded key, input index) pairs IS the stable
  // permutation: equal keys keep increasing indices.
  const sort_kernel k =
      sort_unsigned(pairs, [](const PairRec& p) { return p.key; }, opt);
  par::parallel_for(0, n, [&](std::size_t i) {
    emit(i, static_cast<std::size_t>(pairs[i].value));
  });
  return k;
}

// Stable sorted permutation of [0, n) under the (already unsigned) encoded
// keys enc_of(i): emit(pos, src) is called once per position (in parallel,
// unordered) with the source index ranking there. Runs the full adaptive dispatcher
// on the pair records, so presorted / tiny-range / tiny-n inputs keep
// their cheap kernels; all scratch is leased from `ws`.
template <typename EncOf, typename Emit>
sort_kernel ranked_permutation(std::size_t n, int encoded_bits,
                               const EncOf& enc_of,
                               const auto_sort_options& opt,
                               sort_workspace& ws, const Emit& emit) {
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  if (encoded_bits <= 32 && n <= 0xFFFFFFFFull)
    return ranked_permutation_impl<enc_idx32>(n, enc_of, inner, ws, emit);
  return ranked_permutation_impl<enc_idx64>(n, enc_of, inner, ws, emit);
}

// n elements of T, backed by a workspace lease when T is trivially
// copyable (warm calls: zero allocations) and by a plain vector otherwise
// (T must then be default-constructible and copy-assignable).
template <typename T>
class scratch_array {
 public:
  scratch_array(std::size_t n, sort_workspace& ws, sort_stats* stats) {
    if constexpr (std::is_trivially_copyable_v<T> &&
                  alignof(T) <= detail::kSlabAlign) {
      lease_ = ws.acquire(n * sizeof(T), stats);
      span_ = lease_.template carve<T>(n);
    } else {
      vec_.resize(n);
      span_ = std::span<T>(vec_);
    }
  }
  [[nodiscard]] std::span<T> get() noexcept { return span_; }

 private:
  sort_workspace::lease lease_;
  std::vector<T> vec_;
  std::span<T> span_;
};

// Copy (or move, for non-trivially-copyable types) scratch back into the
// caller's array.
template <typename T>
void write_back(std::span<T> from, std::span<T> to) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    par::copy(std::span<const T>(from.data(), from.size()), to);
  } else {
    par::parallel_for(0, from.size(),
                      [&](std::size_t i) { to[i] = std::move(from[i]); });
  }
}

// Wide (multi-word) key routes — defined in core/wide_sort.hpp, which is
// included at the bottom of this header so either include gives the whole
// front door. The public entry points below branch here whenever the key
// type's codec is multi-word (pair<u64, u64>, __int128, strings, >64-bit
// composites).
template <typename Rec, typename KeyFn>
sort_kernel sort_wide(std::span<Rec> data, const KeyFn& key,
                      const auto_sort_options& opt);
template <typename K, typename V>
sort_kernel sort_by_key_wide(std::span<K> keys, std::span<V> values,
                             const auto_sort_options& opt);
template <typename Rec, typename KeyFn>
std::vector<index_t> rank_wide(std::span<Rec> data, const KeyFn& key,
                               const auto_sort_options& opt);

}  // namespace detail

// Sort `data` in place by `key(record)` in non-decreasing key order,
// choosing the kernel adaptively (or as pinned by opt.policy). Returns the
// kernel that ran; the same value, the sketch behind the decision, and the
// entry-point/codec snapshot are recorded in opt.stats when provided.
//
// `key` may return ANY codec-covered type (key_codec.hpp): unsigned — the
// native path — or signed integers, float/double (IEEE total order; see
// the NaN policy in key_codec.hpp), pair/tuple composites of any packed
// width, 128-bit integers, std::string/string_view (full lexicographic
// order via the wide refine driver), or a user key_codec specialization
// (single- or multi-word). Cheap codecs on trivially
// copyable records fuse the encoding into every key access (no extra pass,
// no extra memory); expensive codecs and non-trivially-copyable records
// (e.g. std::pair elements under libstdc++) take the encode-once path:
// sort (encoded key, index) pairs, then gather the records once.
//
// Guarantees:
//   * Stable, whatever kernel runs (every kernel is stable; the dispatcher
//     never selects the unstable scatter).
//   * Deterministic for fixed seeds (opt.seed, opt.sketch.seed): the sketch,
//     the dispatch and every kernel are deterministic.
//   * Within a few percent of the best hand-picked kernel across the
//     BENCH_suite.json scenario matrix — measured, not promised: the
//     bench_suite "auto" family re-checks it on every run (see
//     docs/TUNING.md and the committed BENCH_auto.json).
//
// Space: O(n) extra from the workspace (the record ping-pong buffer plus
// per-pass scratch; the encode-once path adds the pair array and one
// gather buffer), except std_sort (std::stable_sort's own allocation) and
// a confirmed-sorted input on the fused path (no scratch touched at all).
//
// Throws std::invalid_argument if opt.policy forces the counting kernel on
// an input whose exact key range reaches 2^20 (see policy::always).
template <typename Rec, typename KeyFn>
sort_kernel sort(std::span<Rec> data, const KeyFn& key,
                 const auto_sort_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  static_assert(
      any_sortable_key<K>,
      "dovetail::sort: the key type has no key_codec — sort by an "
      "unsigned/signed integer, float/double, a pair/tuple of those (any "
      "packed width), a 128-bit integer, std::string/string_view, or "
      "specialize dovetail::key_codec<K> (see core/key_codec.hpp)");
  if constexpr (!sortable_key<K>) {
    // Multi-word codec: the segmented-MSD refine driver (wide_sort.hpp).
    return detail::sort_wide(data, key, opt);
  } else {
    using traits = codec_traits<K>;
    using codec = typename traits::codec;
    detail::note_entry(opt.stats, sort_entry::sort, traits::kind,
                       traits::encoded_bits);
    if constexpr (std::is_trivially_copyable_v<Rec> && traits::cheap) {
      // Fused: kernels, sketch and dispatch all see encoded keys; records
      // are scattered as-is and never decoded. Identity codecs (unsigned
      // keys) skip even the encode wrapper.
      if constexpr (traits::identity) {
        return detail::sort_unsigned(data, key, opt);
      } else {
        // The named wrapper (not a lambda) keeps the purity of the inner
        // functor visible to the dispatcher: encoded_key_fn over a
        // pure-key functor is itself pure-key (is_pure_key_fn_v), which is
        // what lets plain signed/float spans use the in-place kernel.
        return detail::sort_unsigned(
            data, encoded_key_fn<codec, KeyFn>{key}, opt);
      }
    } else {
      // Encode once, sort (encoded, index) pairs, gather the records —
      // also the route for non-trivially-copyable records regardless of
      // key type (the radix kernels cannot scatter them).
      const std::size_t n = data.size();
      sort_workspace local_ws;
      sort_workspace& ws =
          opt.workspace != nullptr ? *opt.workspace : local_ws;
      detail::scratch_array<Rec> tmp(n, ws, opt.stats);
      const std::span<Rec> t = tmp.get();
      const sort_kernel k = detail::ranked_permutation(
          n, traits::encoded_bits,
          [&](std::size_t i) {
            return static_cast<std::uint64_t>(codec::encode(key(data[i])));
          },
          opt, ws,
          [&](std::size_t pos, std::size_t src) { t[pos] = data[src]; });
      detail::write_back(t, data);
      return k;
    }
  }
}

// Convenience overload for spans of plain keys — unsigned (as before) or
// any other codec-covered type, wide keys included: sorts the values
// themselves. The key functor returns a reference so non-trivially-
// copyable keys (std::string) are never copied per key access.
template <typename K>
  requires any_sortable_key<K>
sort_kernel sort(std::span<K> data, const auto_sort_options& opt = {}) {
  // self_key (key_codec.hpp) rather than an identity lambda: the named
  // functor is recognizable as pure-key, marking these spans safe for the
  // unstable in-place kernel (equal keys are byte-identical records).
  return sort(data, self_key{}, opt);
}

// Sort parallel key/value arrays (SoA): stably sort `keys` in place by
// their codec order and apply the same permutation to `values`. The value
// bytes never ride through a radix pass — the dispatcher sorts (encoded
// key, index) pairs, then each array is gathered exactly once — so 4-byte
// keys stop dragging 32-byte rows through every scatter (the bench_suite
// codec-soa family measures the win against the equivalent AoS sort).
//
// Returns the kernel that sorted the pairs. Stable: equal keys keep their
// input order in both arrays. Workspace/stats contract as dovetail::sort;
// trivially copyable K/V lease all scratch (warm calls allocate nothing),
// other types must be default-constructible + copy-assignable and use
// per-call vectors.
//
// Throws std::invalid_argument when the spans' sizes differ.
template <typename K, typename V>
sort_kernel sort_by_key(std::span<K> keys, std::span<V> values,
                        const auto_sort_options& opt = {}) {
  static_assert(any_sortable_key<K>,
                "dovetail::sort_by_key: the key type has no key_codec "
                "(see core/key_codec.hpp)");
  if (keys.size() != values.size())
    throw std::invalid_argument(
        "dovetail::sort_by_key: keys and values differ in size");
  if constexpr (!sortable_key<K>) {
    return detail::sort_by_key_wide(keys, values, opt);
  } else {
    using traits = codec_traits<K>;
    using codec = typename traits::codec;
    const std::size_t n = keys.size();
    detail::note_entry(opt.stats, sort_entry::sort_by_key, traits::kind,
                       traits::encoded_bits);
    sort_workspace local_ws;
    sort_workspace& ws =
        opt.workspace != nullptr ? *opt.workspace : local_ws;
    detail::scratch_array<K> tk(n, ws, opt.stats);
    detail::scratch_array<V> tv(n, ws, opt.stats);
    const std::span<K> sk = tk.get();
    const std::span<V> sv = tv.get();
    const sort_kernel k = detail::ranked_permutation(
        n, traits::encoded_bits,
        [&](std::size_t i) {
          return static_cast<std::uint64_t>(codec::encode(keys[i]));
        },
        opt, ws,
        [&](std::size_t pos, std::size_t src) {
          sk[pos] = keys[src];
          sv[pos] = values[src];
        });
    detail::write_back(sk, keys);
    detail::write_back(sv, values);
    return k;
  }
}

// Stable argsort: the permutation p with data[p[0]], data[p[1]], ... in
// non-decreasing (stable) key order — computed without moving, or even
// being able to write, the records. p[i] is the input index of the record
// ranking i-th; records with equal keys keep increasing input indices.
// Accepts const and non-const spans; `key` may return any codec-covered
// type. The pair sort runs through the same adaptive dispatcher and
// workspace as dovetail::sort (the returned vector is the only per-call
// allocation on warm workspaces).
template <typename Rec, typename KeyFn>
std::vector<index_t> rank(std::span<Rec> data, const KeyFn& key,
                          const auto_sort_options& opt = {}) {
  using R = std::remove_const_t<Rec>;
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const R&>>;
  static_assert(any_sortable_key<K>,
                "dovetail::rank: the key type has no key_codec "
                "(see core/key_codec.hpp)");
  if constexpr (!sortable_key<K>) {
    return detail::rank_wide(data, key, opt);
  } else {
    using traits = codec_traits<K>;
    using codec = typename traits::codec;
    const std::size_t n = data.size();
    detail::note_entry(opt.stats, sort_entry::rank, traits::kind,
                       traits::encoded_bits);
    sort_workspace local_ws;
    sort_workspace& ws =
        opt.workspace != nullptr ? *opt.workspace : local_ws;
    std::vector<index_t> out(n);
    detail::ranked_permutation(
        n, traits::encoded_bits,
        [&](std::size_t i) {
          return static_cast<std::uint64_t>(codec::encode(key(data[i])));
        },
        opt, ws, [&](std::size_t pos, std::size_t src) { out[pos] = src; });
    return out;
  }
}

// rank over a span of plain keys, wide keys included.
template <typename K>
  requires any_sortable_key<K>
std::vector<index_t> rank(std::span<K> data,
                          const auto_sort_options& opt = {}) {
  using P = std::remove_const_t<K>;
  return rank(data, [](const P& k) -> const P& { return k; }, opt);
}

}  // namespace dovetail

// The wide-key half of the front door (the segmented-MSD refine driver
// plus the detail::*_wide helpers forward-declared above). Included last
// so either header pulls in the other; see wide_sort.hpp.
#include "dovetail/core/wide_sort.hpp"  // NOLINT(misc-header-include-cycle)
