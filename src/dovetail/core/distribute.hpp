// The unified distribution engine: one stable blocked counting-sort kernel
// (Sec 2.4 / Appendix B) serving every radix layer in the library — DTSort's
// recursive distribution, the LSD/MSD/buffered baselines, semisort, and the
// unstable Thm 4.1 variant — parameterized by a scatter strategy and backed
// by a reusable sort_workspace so the hot path performs no allocations.
//
// Phases of one distribute() call on n records and B buckets:
//   0. bucket ids are evaluated once per record into a leased id array
//      (uint16 when B <= 2^16, halving the footprint — bucket_of may be a
//      hash-table probe in DTSort, so one evaluation per pass matters);
//   1. the input is split into L blocks; each block counts its records per
//      bucket into a row of a leased L x B counting matrix;
//   2. column-major exclusive prefix sums yield global bucket offsets and
//      per-(block, bucket) output cursors — bucket-major then block-major,
//      which is exactly the stable order;
//   3. scatter, per strategy (scatter_strategy in sort_options.hpp):
//        direct    one store per record to its cursor;
//        buffered  records staged in per-(block, bucket) software buffers,
//                  flushed in contiguous memcpy bursts (the RADULS trick,
//                  generalized from the former one-off buffered LSD
//                  baseline) — stable and byte-identical to `direct`;
//        unstable  one atomic fetch-and-add per record (Thm 4.1); skips the
//                  cursor conversion, order within a bucket unspecified.
//
// Work O(n + L*B), span O(B + n/L + log n). All scratch (ids, matrix,
// staging buffers) is leased from a sort_workspace; after warm-up every
// lease is a freelist hit (see workspace.hpp and test_workspace.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "dovetail/core/sort_options.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/simd.hpp"

namespace dovetail {

struct distribute_options {
  scatter_strategy strategy = scatter_strategy::automatic;
  // Set by stable sorts: downgrades an `unstable` strategy request to
  // `automatic` so a pass can never silently break a stability guarantee.
  bool require_stable = false;
  // Staging bytes per (block, bucket) for the buffered scatter; rounded
  // down to whole records, minimum 4 records.
  std::size_t buffer_bytes = 256;
  // Scratch arena; nullptr = a private ephemeral workspace per call (slabs
  // are still pooled across the phases of the call, then freed).
  sort_workspace* workspace = nullptr;
  sort_stats* stats = nullptr;
};

namespace detail {

struct block_geometry {
  std::size_t nblocks;
  std::size_t bsize;
};

// Appendix B: keep the counting matrix around L1/L2 size — blocks of at
// least max(8*B, 16384) records, at most 8 blocks per worker.
inline block_geometry distribution_blocks(std::size_t n,
                                          std::size_t num_buckets) {
  const auto p = static_cast<std::size_t>(par::num_workers());
  const std::size_t min_block = std::max<std::size_t>(8 * num_buckets, 16384);
  const std::size_t nblocks = std::clamp<std::size_t>(n / min_block, 1, 8 * p);
  return {nblocks, (n + nblocks - 1) / nblocks};
}

// Phase 1 of the engine: zero and fill the L x B counting matrix, one row
// per block. `bucket_at(i)` is the bucket of record i (an id-array read or
// a direct bucket_of evaluation).
template <typename GetBucket>
void count_blocks(std::size_t n, std::size_t num_buckets,
                  const block_geometry& g, const GetBucket& bucket_at,
                  std::span<std::size_t> counts) {
  par::parallel_for(
      0, g.nblocks,
      [&, bsize = g.bsize](std::size_t b) {
        const std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * num_buckets;
        std::fill(row, row + num_buckets, 0);
        for (std::size_t i = lo; i < hi; ++i) ++row[bucket_at(i)];
      },
      1);
}

// count_blocks over a materialized id array. The 16-bit id case — every
// engine pass with B <= 2^16, i.e. all of them in practice — routes through
// simd::histogram_u16: 8-lane AVX2 widening with four interleaved
// sub-histograms when the CPU has it, the identical scalar loop otherwise
// (util/simd.hpp; counts are exact sums either way).
template <typename IdT>
void count_blocks_ids(std::size_t n, std::size_t num_buckets,
                      const block_geometry& g, const IdT* ids,
                      std::span<std::size_t> counts) {
  par::parallel_for(
      0, g.nblocks,
      [&, bsize = g.bsize](std::size_t b) {
        const std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * num_buckets;
        std::fill(row, row + num_buckets, 0);
        if constexpr (std::is_same_v<IdT, std::uint16_t>) {
          simd::histogram_u16(ids + lo, hi - lo, row, num_buckets);
        } else {
          for (std::size_t i = lo; i < hi; ++i) ++row[ids[i]];
        }
      },
      1);
}

// Column sums of the counting matrix: totals[k] = bucket k's size.
inline void column_totals(std::span<const std::size_t> counts,
                          std::size_t nblocks, std::size_t num_buckets,
                          std::span<std::size_t> totals) {
  par::parallel_for(0, num_buckets, [&](std::size_t k) {
    std::size_t c = 0;
    for (std::size_t b = 0; b < nblocks; ++b) c += counts[b * num_buckets + k];
    totals[k] = c;
  });
}

template <typename Rec>
scatter_strategy resolve_scatter(scatter_strategy s, std::size_t n,
                                 std::size_t num_buckets) {
  if (s == scatter_strategy::automatic) {
    // Buffered staging pays once there are enough cursors that direct
    // stores walk a working set wider than the TLB/cache reach, and enough
    // records per bucket to fill bursts. Above ~8k buckets the staging
    // buffers themselves outgrow L2 and the trick backfires (measured in
    // bench_suite engine-distribute: B=65536 buffered ~1.3x slower than
    // direct).
    if (std::is_trivially_copyable_v<Rec> && num_buckets >= 256 &&
        num_buckets <= 8192 && n >= 64 * num_buckets)
      return scatter_strategy::buffered;
    return scatter_strategy::direct;
  }
  if (s == scatter_strategy::buffered && !std::is_trivially_copyable_v<Rec>)
    return scatter_strategy::direct;  // memcpy bursts need trivial copies
  return s;
}

// Engine body, monomorphized on the id width.
template <typename IdT, typename Rec, typename BucketFn>
void distribute_ids(std::span<const Rec> in, std::span<Rec> out,
                    std::size_t num_buckets, const BucketFn& bucket_of,
                    std::span<std::size_t> offsets, sort_workspace& ws,
                    scatter_strategy strategy, std::size_t buffer_bytes,
                    sort_stats* stats) {
  const std::size_t n = in.size();
  const block_geometry g = distribution_blocks(n, num_buckets);
  const std::size_t nblocks = g.nblocks, bsize = g.bsize;

  // Phase 0: bucket ids, one bucket_of evaluation per record.
  sort_workspace::lease id_lease = ws.acquire(n * sizeof(IdT), stats);
  std::span<IdT> ids = id_lease.carve<IdT>(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    ids[i] = static_cast<IdT>(bucket_of(in[i]));
  });

  // Phase 1: L x B counting matrix (+ bucket totals) from one leased slab.
  // Leased memory is stale; count_blocks zeroes each row before counting.
  sort_workspace::lease cm_lease = ws.acquire(
      (nblocks + 1) * num_buckets * sizeof(std::size_t) + kSlabAlign, stats);
  std::span<std::size_t> counts =
      cm_lease.carve<std::size_t>(nblocks * num_buckets);
  std::span<std::size_t> totals = cm_lease.carve<std::size_t>(num_buckets);
  count_blocks_ids(n, num_buckets, g, ids.data(), counts);

  // Phase 2: bucket totals, then global bucket starts (small, sequential).
  column_totals(counts, nblocks, num_buckets, totals);
  std::size_t acc = 0;
  for (std::size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = acc;
    acc += totals[k];
  }
  offsets[num_buckets] = acc;

  if (strategy == scatter_strategy::unstable) {
    // Thm 4.1 scatter: per-bucket cursors claimed with fetch-and-add. The
    // totals row doubles as cursor storage.
    par::parallel_for(0, num_buckets,
                      [&](std::size_t k) { totals[k] = offsets[k]; });
    par::parallel_for(0, n, [&](std::size_t i) {
      const std::size_t pos = std::atomic_ref<std::size_t>(totals[ids[i]])
                                  .fetch_add(1, std::memory_order_relaxed);
      out[pos] = in[i];
    });
    return;
  }

  // Turn counts into per-(block, bucket) output cursors; each cell is then
  // owned by exactly one block, so the scatter is race-free and stable.
  par::parallel_for(0, num_buckets, [&](std::size_t k) {
    std::size_t cur = offsets[k];
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t c = counts[b * num_buckets + k];
      counts[b * num_buckets + k] = cur;
      cur += c;
    }
  });

  // resolve_scatter never selects `buffered` for non-trivially-copyable
  // records; the constexpr guard keeps the memcpy path uninstantiated so
  // such record types (accepted by the direct and unstable scatters, which
  // only copy-assign) still compile.
  if (strategy == scatter_strategy::direct ||
      !std::is_trivially_copyable_v<Rec>) {
    par::parallel_for(
        0, nblocks,
        [&, bsize = bsize](std::size_t b) {
          const std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
          std::size_t* row = counts.data() + b * num_buckets;
          for (std::size_t i = lo; i < hi; ++i) out[row[ids[i]]++] = in[i];
        },
        1);
    return;
  }

  // Buffered scatter: stage per (block, bucket), flush in memcpy bursts.
  if constexpr (std::is_trivially_copyable_v<Rec>) {
    const std::size_t buf_records =
        std::max<std::size_t>(4, buffer_bytes / sizeof(Rec));
    par::parallel_for(
        0, nblocks,
        [&, bsize = bsize, buf_records](std::size_t b) {
          sort_workspace::lease stage_lease =
              ws.acquire(num_buckets * (buf_records * sizeof(Rec) +
                                        sizeof(std::uint32_t)) +
                             2 * kSlabAlign,
                         stats);
          std::span<Rec> stage =
              stage_lease.carve<Rec>(num_buckets * buf_records);
          std::span<std::uint32_t> fill =
              stage_lease.carve<std::uint32_t>(num_buckets);
          std::fill(fill.begin(), fill.end(), 0);
          const std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
          std::size_t* row = counts.data() + b * num_buckets;
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t z = ids[i];
            stage[z * buf_records + fill[z]] = in[i];
            if (++fill[z] == buf_records) {
              std::memcpy(out.data() + row[z], stage.data() + z * buf_records,
                          buf_records * sizeof(Rec));
              row[z] += buf_records;
              fill[z] = 0;
            }
          }
          for (std::size_t z = 0; z < num_buckets; ++z) {
            if (fill[z] != 0)
              std::memcpy(out.data() + row[z], stage.data() + z * buf_records,
                          fill[z] * sizeof(Rec));
          }
        },
        1);
  }
}

}  // namespace detail

// Distribute `in` into `out` by bucket id. `bucket_of(rec)` must return a
// value in [0, num_buckets); `in` and `out` must not alias and must have
// equal size; `offsets` must have size num_buckets + 1 and is filled so
// that offsets[k] is the first index of bucket k in `out` and
// offsets[num_buckets] == in.size(). Stable unless the `unstable` strategy
// is requested explicitly; `direct` and `buffered` produce byte-identical
// output.
template <typename Rec, typename BucketFn>
void distribute(std::span<const Rec> in, std::span<Rec> out,
                std::size_t num_buckets, const BucketFn& bucket_of,
                std::span<std::size_t> offsets,
                const distribute_options& opt = {}) {
  assert(offsets.size() == num_buckets + 1);
  assert(in.size() == out.size());
  const std::size_t n = in.size();
  if (n == 0) {
    std::fill(offsets.begin(), offsets.end(), 0);
    return;
  }
  assert(in.data() != static_cast<const Rec*>(out.data()));
  if (num_buckets == 1) {
    // Single bucket: the permutation is the identity — one parallel copy,
    // no id array, no counting matrix.
    offsets[0] = 0;
    offsets[1] = n;
    par::copy(in, out);
    return;
  }
  sort_workspace local_ws;  // used only when no workspace was passed
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  scatter_strategy requested = opt.strategy;
  if (opt.require_stable && requested == scatter_strategy::unstable)
    requested = scatter_strategy::automatic;
  const scatter_strategy s =
      detail::resolve_scatter<Rec>(requested, n, num_buckets);
  if (sort_stats* st = opt.stats; st != nullptr) {
    switch (s) {
      case scatter_strategy::direct:
        st->scatter_direct_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      case scatter_strategy::buffered:
        st->scatter_buffered_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      case scatter_strategy::unstable:
        st->scatter_unstable_calls.fetch_add(1, std::memory_order_relaxed);
        break;
      case scatter_strategy::automatic:
        break;  // unreachable after resolution
    }
  }
  if (num_buckets <= (std::size_t{1} << 16)) {
    detail::distribute_ids<std::uint16_t>(in, out, num_buckets, bucket_of,
                                          offsets, ws, s, opt.buffer_bytes,
                                          opt.stats);
  } else {
    detail::distribute_ids<std::uint32_t>(in, out, num_buckets, bucket_of,
                                          offsets, ws, s, opt.buffer_bytes,
                                          opt.stats);
  }
}

// Counting phase of the engine without the scatter: per-block histogram
// reduced into `counts_out` (size num_buckets). Used by in-place sorts that
// permute records within the input array instead of scattering out-of-place.
template <typename Rec, typename BucketFn>
void distribute_histogram(std::span<const Rec> in, std::size_t num_buckets,
                          const BucketFn& bucket_of,
                          std::span<std::size_t> counts_out,
                          const distribute_options& opt = {}) {
  assert(counts_out.size() == num_buckets);
  const std::size_t n = in.size();
  if (n == 0 || num_buckets == 1) {
    std::fill(counts_out.begin(), counts_out.end(), 0);
    if (num_buckets == 1) counts_out[0] = n;
    return;
  }
  sort_workspace local_ws;  // used only when no workspace was passed
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  const detail::block_geometry g =
      detail::distribution_blocks(n, num_buckets);
  sort_workspace::lease cm_lease =
      ws.acquire(g.nblocks * num_buckets * sizeof(std::size_t), opt.stats);
  std::span<std::size_t> counts =
      cm_lease.carve<std::size_t>(g.nblocks * num_buckets);
  detail::count_blocks(n, num_buckets, g,
                       [&](std::size_t i) { return bucket_of(in[i]); },
                       counts);
  detail::column_totals(counts, g.nblocks, num_buckets, counts_out);
}

// Digit-histogram variant of distribute_histogram for raw unsigned keys:
// bucket_of is fixed to (key >> shift) & mask, which lets each block row
// fill through simd::histogram_digit (vector shift+mask on AVX2, the same
// scalar loop otherwise). The in-place kernel's counting pass on pure-key
// records; counts are byte-identical to the generic path.
template <typename K>
  requires(std::is_same_v<K, std::uint32_t> || std::is_same_v<K, std::uint64_t>)
void distribute_histogram_digits(std::span<const K> keys, int shift, K mask,
                                 std::span<std::size_t> counts_out,
                                 const distribute_options& opt = {}) {
  const std::size_t num_buckets = static_cast<std::size_t>(mask) + 1;
  assert(counts_out.size() == num_buckets);
  const std::size_t n = keys.size();
  if (n == 0 || num_buckets == 1) {
    std::fill(counts_out.begin(), counts_out.end(), 0);
    if (num_buckets == 1) counts_out[0] = n;
    return;
  }
  sort_workspace local_ws;  // used only when no workspace was passed
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  const detail::block_geometry g =
      detail::distribution_blocks(n, num_buckets);
  sort_workspace::lease cm_lease =
      ws.acquire(g.nblocks * num_buckets * sizeof(std::size_t), opt.stats);
  std::span<std::size_t> counts =
      cm_lease.carve<std::size_t>(g.nblocks * num_buckets);
  par::parallel_for(
      0, g.nblocks,
      [&, bsize = g.bsize](std::size_t b) {
        const std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * num_buckets;
        std::fill(row, row + num_buckets, 0);
        simd::histogram_digit(keys.data() + lo, hi - lo, shift, mask, row);
      },
      1);
  detail::column_totals(counts, g.nblocks, num_buckets, counts_out);
}

}  // namespace dovetail
