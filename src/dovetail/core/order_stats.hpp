// Order-statistics queries — rank-pruned top-k / nth_element /
// partial_sort / percentiles over the typed front door.
//
// A full sort does strictly more work than most production queries need:
// a leaderboard wants the smallest (or largest) k records, a latency
// monitor wants a handful of percentile ranks, a scheduler wants the
// median. All of these are RANK WINDOWS — half-open ranges [lo, hi) of
// positions in the stable sorted order — and the distribution machinery
// the paper builds (histogram, stable scatter, recurse per bucket) prunes
// them almost for free: after one counting pass the bucket offsets pin
// every record's rank to its bucket's global range, so any bucket wholly
// OUTSIDE every requested window is already "done" — its records are
// placed, partitioned correctly against the window, and never looked at
// again. Only buckets that straddle or lie inside a window recurse. For
// k << n that prunes ~all of the input after the first pass — and when
// the counting pass shows most of a segment pruning, the driver does not
// even pay the scatter: the carve fast path copies only the active
// buckets' records aside (stably) and moves just the misplaced pruned
// records into the gaps between them (rank_selector::try_carve), so top-k
// costs one counting pass, one classify pass, and work proportional to k,
// not n log n — the bench_suite query-topk family measures the gap
// against a full dovetail::sort (speedup_vs_fullsort in BENCH_query.json).
//
// The driver (detail::rank_selector) is the MSD mirror of the engine's
// recursion: distribute on the current radix byte through the SAME
// stable engine (core/distribute.hpp, workspace-leased, scatter-strategy
// aware), then recurse only into window-intersecting buckets —
// byte by byte within a word, word by word across wide keys.
// Pruning decisions land in sort_stats (buckets_pruned /
// records_pruned, cumulative) and the query entry point in
// sort_stats::query_kind (snapshot; decode with query_kind_of).
//
// Semantics are defined by ONE reference: every query result is exactly a
// slice of the stable full sort. top_k == stable_sort(data)[0..k) byte
// for byte (ties resolved to the earliest input records), nth_element
// puts the stable-sort resident of position nth there, percentiles reads
// nearest ranks out of the stable order. The selection is stable by
// construction — every distribution pass is stable and confined to one
// bucket, exactly as in the full sort.
//
// Codec coverage matches dovetail::sort: unsigned/signed integers,
// float/double (IEEE total order), composites, 128-bit integers,
// std::string/string_view — single-word codecs fuse or take the
// encode-once (encoded key, index) route, wide codecs select word 0
// first and refine only surviving segments on later words (equal-prefix
// segments that still tie after the materialized words finish with one
// true-key comparison sort, the same contract as wide_sort.hpp).
// Workspace/stats contract as dovetail::sort: all O(n) scratch is leased,
// warm repeated queries on one workspace allocate nothing.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"

namespace dovetail {

// A half-open window [lo, hi) of positions in the stable sorted order.
// The selection driver guarantees that after a query, every requested
// window holds exactly the records a stable full sort would put there,
// in that order; records outside the windows are bucket-partitioned
// consistently (everything before a window ranks below it, everything
// after ranks above) but not internally sorted.
struct rank_window {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const noexcept { return hi - lo; }
};

// Which query entry point ran last — recorded as 1 + static_cast<int>(..)
// in sort_stats::query_kind (snapshot, last-write-wins like chosen_kernel).
enum class query_kind : std::uint8_t {
  top_k,
  nth_element,
  partial_sort,
  percentiles,
  group_by,
};

inline constexpr int kNumQueryKinds = 5;

inline const char* query_kind_name(query_kind q) {
  switch (q) {
    case query_kind::top_k: return "top_k";
    case query_kind::nth_element: return "nth_element";
    case query_kind::partial_sort: return "partial_sort";
    case query_kind::percentiles: return "percentiles";
    case query_kind::group_by: return "group_by";
  }
  return "?";
}

// Decode sort_stats::query_kind (0 = no query recorded).
inline std::optional<query_kind> query_kind_of(const sort_stats& st) {
  const std::uint64_t v = st.query_kind.load(std::memory_order_relaxed);
  if (v == 0 || v > static_cast<std::uint64_t>(kNumQueryKinds))
    return std::nullopt;
  return static_cast<query_kind>(v - 1);
}

// Which end of the sorted order top_k selects.
enum class rank_side : std::uint8_t { smallest, largest };

namespace detail {

// Snapshot the query/codec stats fields (last write wins; the pruning
// counters are cumulative and bumped by the driver itself).
inline void note_query(sort_stats* st, query_kind q, codec_kind kind,
                       int encoded_bits) {
  if (st == nullptr) return;
  st->query_kind.store(1 + static_cast<std::uint64_t>(q),
                       std::memory_order_relaxed);
  st->codec_kind_id.store(1 + static_cast<std::uint64_t>(kind),
                          std::memory_order_relaxed);
  st->codec_encoded_bits.store(static_cast<std::uint64_t>(encoded_bits),
                               std::memory_order_relaxed);
}

inline constexpr std::size_t kSelectRadixBits = 8;
inline constexpr std::size_t kSelectBuckets = std::size_t{1}
                                              << kSelectRadixBits;
// Below this the carve fast path's bookkeeping (zone tables, per-block
// cursor matrix) costs more than the scatter it avoids.
inline constexpr std::size_t kCarveMin = std::size_t{1} << 15;
// Below this a 16-bit first digit (65536 buckets) is not worth its counting
// matrix; above it, one wide fanout replaces two 8-bit levels — decisive on
// skewed inputs whose smallest-byte bucket holds a large slice of the input.
inline constexpr std::size_t kCarve16Min = std::size_t{1} << 19;

// Tag for selections with no whole-segment re-dispatch (the wide path:
// covered segments keep radix-recursing instead).
struct no_covered_sort {};

// The rank-window MSD selection driver. One instance per query call;
// recursion is serial ACROSS buckets (only a handful intersect the
// windows per level) while each distribution pass is internally parallel
// through the shared engine. `word_of(rec, w)` is word w of the record's
// encoded key (single-word keys: word_count == 1); `tie` is the true-key
// order consulted only when `exhaustive` is false (prefix string codecs);
// `covered_sort(lo, hi)`, when provided, fully sorts a segment that lies
// wholly inside one window — the narrow path routes those back through
// the adaptive dispatcher so an in-window segment still gets the best
// kernel for its shape.
template <typename Rec, typename WordOf, typename TieLess,
          typename CoveredSort = no_covered_sort>
class rank_selector {
 public:
  rank_selector(std::span<Rec> all, std::size_t word_count, bool exhaustive,
                const WordOf& word_of, const TieLess& tie,
                std::span<const rank_window> windows, std::size_t base_case,
                sort_workspace& ws, sort_stats* st,
                const CoveredSort& covered_sort = {})
      : all_(all),
        word_count_(word_count),
        exhaustive_(exhaustive),
        word_of_(word_of),
        tie_(tie),
        windows_(windows),
        base_case_(std::max<std::size_t>(1, base_case)),
        ws_(ws),
        st_(st),
        covered_sort_(covered_sort) {}

  void run() {
    if (all_.size() >= 2 && !windows_.empty())
      select_word(0, all_.size(), 0);
    if (st_ != nullptr) {
      st_->buckets_pruned.fetch_add(buckets_pruned_,
                                    std::memory_order_relaxed);
      st_->records_pruned.fetch_add(records_pruned_,
                                    std::memory_order_relaxed);
      st_->base_case_records.fetch_add(base_case_records_,
                                       std::memory_order_relaxed);
      st_->distributed_records.fetch_add(distributed_records_,
                                         std::memory_order_relaxed);
      st_->num_distributions.fetch_add(num_distributions_,
                                       std::memory_order_relaxed);
    }
  }

 private:
  static constexpr bool kHasCoveredSort =
      !std::is_same_v<std::remove_cvref_t<CoveredSort>, no_covered_sort>;

  // Windows are sorted and disjoint, so the scan can stop at the first
  // window starting at or past `hi`.
  [[nodiscard]] bool intersects(std::size_t lo, std::size_t hi) const {
    for (const rank_window& w : windows_) {
      if (w.lo >= hi) break;
      if (w.hi > lo) return true;
    }
    return false;
  }

  [[nodiscard]] bool covered(std::size_t lo, std::size_t hi) const {
    for (const rank_window& w : windows_) {
      if (w.lo >= hi) break;
      if (w.lo <= lo && hi <= w.hi) return true;
    }
    return false;
  }

  // Comparison finish from word w: the remaining words, then the true-key
  // tie-break — the same (words, then tie) order wide_sort.hpp proves
  // equal to the true key order. stable_segment_sort keeps equal keys in
  // their (stable) arrival order.
  void finish(std::size_t lo, std::size_t hi, std::size_t w) {
    const auto less = [&](const Rec& a, const Rec& b) {
      for (std::size_t j = w; j < word_count_; ++j) {
        const std::uint64_t wa = word_of_(a, j);
        const std::uint64_t wb = word_of_(b, j);
        if (wa != wb) return wa < wb;
      }
      return exhaustive_ ? false : tie_(a, b);
    };
    stable_segment_sort(all_.subspan(lo, hi - lo), less);
    base_case_records_ += hi - lo;
  }

  // Select within [lo, hi), all records tied on words [0, w). Precondition
  // of every call below the root: the segment intersects a window.
  void select_word(std::size_t lo, std::size_t hi, std::size_t w) {
    const std::size_t n = hi - lo;
    if (n <= 1) return;
    if (w >= word_count_) {
      // Tied on every materialized word: an exhaustive codec is done
      // (equal words imply equal keys; the stable arrival order is the
      // answer), a prefix codec owes the tail one true-key sort.
      if (!exhaustive_) finish(lo, hi, w);
      return;
    }
    if (n <= base_case_) {
      finish(lo, hi, w);
      return;
    }
    if constexpr (kHasCoveredSort) {
      if (covered(lo, hi)) {
        covered_sort_(lo, hi);
        return;
      }
    }
    const auto [mn, mx] = exact_key_range(
        std::span<const Rec>(all_.data() + lo, n),
        [&](const Rec& r) { return word_of_(r, w); });
    if (mn == mx) {
      // The whole segment ties on this word too — skip to the next one
      // without paying a distribution pass (long shared prefixes cost one
      // min/max scan per constant word, not one scatter).
      select_word(lo, hi, w + 1);
      return;
    }
    // Unaligned shift: the top byte of the RANGE (width - 8), not the
    // byte-aligned digit of the word. Selection has no LSD pass to stay
    // compatible with, so every level gets a full 8-bit fanout — a range
    // whose aligned top digit spans 2 values (width = 25) would otherwise
    // waste an entire distribution level on a 2-way split.
    const int width = 64 - std::countl_zero(mn ^ mx);
    select_span(lo, hi, w, width);
  }

  // Select within [lo, hi) given that only the low `width` bits of word w
  // vary across the segment. Large segments try the carve fast path first
  // — with a 16-bit digit when the segment is big enough to amortize the
  // wider counting matrix (one wide fanout instead of two levels, and the
  // active bucket stays tiny even on skewed byte distributions), else the
  // regular 8-bit digit — and fall back to the full stable scatter.
  void select_span(std::size_t lo, std::size_t hi, std::size_t w,
                   int width) {
    if (width > static_cast<int>(kSelectRadixBits) &&
        hi - lo >= kCarve16Min) {
      if (try_carve(lo, hi, w, std::max(0, width - 16), std::size_t{1} << 16))
        return;
    }
    const int shift =
        std::max(0, width - static_cast<int>(kSelectRadixBits));
    if (try_carve(lo, hi, w, shift, kSelectBuckets)) return;
    select_digit(lo, hi, w, shift);
  }

  // Continue below one window-intersecting bucket [blo, bhi): finish it,
  // hand it to the covered-segment sorter, or keep selecting on the next
  // digit/word. Shared by the carve fast path and the scatter fallback.
  void descend(std::size_t blo, std::size_t bhi, std::size_t w, int shift) {
    if (bhi - blo < 2) return;
    if (bhi - blo <= base_case_) {
      finish(blo, bhi, w);
      return;
    }
    if constexpr (kHasCoveredSort) {
      if (covered(blo, bhi)) {
        covered_sort_(blo, bhi);
        return;
      }
    }
    if (shift > 0)
      select_span(blo, bhi, w, shift);
    else
      select_word(blo, bhi, w + 1);
  }

  // Carve fast path: when only a small fraction of [lo, hi) lands in
  // window-intersecting ("active") buckets — the normal shape for k << n —
  // a full stable scatter plus copy-back moves every record twice to
  // place a handful. Instead:
  //
  //   1. counting pass only (per-block histograms, no scatter);
  //   2. carve the active-bucket records out to a leased side array,
  //      stably (per-(block, bucket) cursors, same construction as the
  //      engine's stable scatter);
  //   3. pruned records owe the windows nothing but SIDE: group maximal
  //      runs of pruned buckets into zones (the gaps between active
  //      buckets' global rank ranges) and move only the records sitting
  //      outside their own zone's span into slots vacated within it. The
  //      contract leaves order inside a pruned region unspecified, so the
  //      moves claim slots with a fetch-and-add (Thm 4.1's unstable
  //      scatter, confined to records no window will ever see);
  //   4. copy the carved records back to their buckets' rank ranges —
  //      still in stable order — and recurse on those buckets only.
  //
  // Traffic drops from ~2 full rewrites of the segment to one counting
  // read, one classify read, and writes proportional to the active set
  // plus the misplaced pruned records — at n = 1e7, k <= 1024 this is the
  // difference between ~4x and >5x over a full sort (BENCH_query.json).
  //
  // `nb` is the fanout (256, or 65536 for large segments — the wide first
  // digit keeps the active bucket tiny even when the key distribution
  // piles most records onto one byte value); the digit is the nb-ary
  // value at `shift`, clamped against the segment's key width by the
  // caller (select_span).
  bool try_carve(std::size_t lo, std::size_t hi, std::size_t w, int shift,
                 std::size_t nb) {
    const std::size_t n = hi - lo;
    if (n < kCarveMin) return false;
    const auto digit_of = [&](const Rec& r) -> std::size_t {
      return static_cast<std::size_t>((word_of_(r, w) >> shift) & (nb - 1));
    };
    const block_geometry g = distribution_blocks(n, nb);
    const std::size_t nblocks = g.nblocks, bsize = g.bsize;
    // Active-bucket rank ranges survive the lease scope: the recursion
    // below re-leases freely once the carve scratch is returned.
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    {
      // Counting matrix + per-bucket tables in one lease. totals doubles
      // as the scratch-offset table once the bucket starts are computed.
      sort_workspace::lease cm = ws_.acquire(
          (nblocks + 2) * nb * sizeof(std::size_t) + nb * sizeof(std::size_t) +
              nb * (sizeof(std::uint16_t) + 1) + 6 * kSlabAlign,
          st_);
      const std::span<std::size_t> counts =
          cm.template carve<std::size_t>(nblocks * nb);
      const std::span<std::size_t> totals = cm.template carve<std::size_t>(nb);
      const std::span<std::size_t> offs =
          cm.template carve<std::size_t>(nb + 1);
      const std::span<std::uint16_t> zone_of =
          cm.template carve<std::uint16_t>(nb);
      const std::span<std::uint8_t> active = cm.template carve<std::uint8_t>(nb);
      count_blocks(n, nb, g,
                   [&](std::size_t i) { return digit_of(all_[lo + i]); },
                   counts);
      column_totals(counts, nblocks, nb, totals);
      std::size_t acc = 0;
      for (std::size_t b = 0; b < nb; ++b) {
        offs[b] = acc;
        acc += totals[b];
      }
      offs[nb] = acc;

      std::size_t a = 0;
      for (std::size_t b = 0; b < nb; ++b) {
        const std::size_t blo = lo + offs[b], bhi = lo + offs[b + 1];
        active[b] = bhi > blo && intersects(blo, bhi) ? 1 : 0;
        if (active[b] != 0) a += bhi - blo;
      }
      // Carve pays when it skips most of the segment; otherwise the plain
      // stable scatter (with its buffered-burst cursor engine) wins.
      if (a == 0 || a * 4 > n) return false;
      const std::size_t m = n - a;

      // Zones: maximal runs of non-active buckets, as absolute rank spans.
      // Empty buckets are never active (an empty range intersects no
      // window), so runs merge across them for free. zone_of maps a pruned
      // digit to its run.
      std::vector<std::size_t> zlo, zhi, zstart;
      for (std::size_t b = 0; b < nb; ++b) {
        if (active[b] != 0) {
          spans.emplace_back(lo + offs[b], lo + offs[b + 1]);
          continue;
        }
        if (zhi.empty() || zhi.back() != lo + offs[b]) {
          zlo.push_back(lo + offs[b]);
          zhi.push_back(lo + offs[b]);
        }
        zone_of[b] = static_cast<std::uint16_t>(zhi.size() - 1);
        zhi.back() = lo + offs[b + 1];
        if (offs[b + 1] > offs[b]) {
          ++buckets_pruned_;
          records_pruned_ += offs[b + 1] - offs[b];
        }
      }
      const std::size_t nz = zlo.size();
      zstart.resize(nz + 1, 0);
      for (std::size_t z = 0; z < nz; ++z)
        zstart[z + 1] = zstart[z] + (zhi[z] - zlo[z]);

      // Scratch for the carved active records (stable), worst-case room
      // for the misplaced pruned records and the slots they fill, and the
      // per-digit action tables: one row per zone plus a trailing row for
      // positions covered by no zone (inside active buckets' spans).
      // 0 = stays put (a zone record already inside its own span),
      // 1 = active (carved to scratch), 2 = moves to its zone. The hot
      // classify loop below then does one key read, one byte-table read,
      // and a branch that almost always takes the stay case.
      std::span<Rec> scratch, moves;
      std::span<std::size_t> frees;
      std::span<std::uint8_t> act;
      sort_workspace::lease side = ws_.acquire(
          (a + m) * sizeof(Rec) + m * sizeof(std::size_t) + (nz + 1) * nb +
              5 * kSlabAlign,
          st_);
      scratch = side.template carve<Rec>(a);
      moves = side.template carve<Rec>(m);
      frees = side.template carve<std::size_t>(m);
      act = side.template carve<std::uint8_t>((nz + 1) * nb);
      par::parallel_for(0, nz + 1, [&](std::size_t z) {
        std::uint8_t* arow = act.data() + z * nb;
        for (std::size_t d = 0; d < nb; ++d)
          arow[d] = active[d] != 0
                        ? std::uint8_t{1}
                        : (z < nz && zone_of[d] == z ? std::uint8_t{0}
                                                     : std::uint8_t{2});
      });

      // Per-(block, active-bucket) scratch cursors: bucket-major then
      // block-major, the stable order (same construction as distribute's).
      // totals is re-purposed as the active buckets' scratch starts.
      {
        std::size_t sa = 0;
        for (std::size_t b = 0; b < nb; ++b) {
          if (active[b] == 0) continue;
          totals[b] = sa;
          sa += offs[b + 1] - offs[b];
        }
        par::parallel_for(0, nb, [&](std::size_t b) {
          if (active[b] == 0) return;
          std::size_t cur = totals[b];
          for (std::size_t blk = 0; blk < nblocks; ++blk) {
            std::size_t& cell = counts[blk * nb + b];
            const std::size_t c = cell;
            cell = cur;
            cur += c;
          }
        });
      }

      // Classify pass: active records to scratch (stable), pruned records
      // outside their zone's span to the move buffer, and every in-zone
      // slot whose occupant belongs elsewhere to the free list. Each block
      // walks its range as runs that lie within one zone's span (or within
      // none), so the POSITION's zone is loop-invariant and the action row
      // is picked once per run. Per-zone claim counters are plain size_t
      // bumped through atomic_ref, exactly like the engine's unstable
      // scatter.
      std::vector<std::size_t> mcnt(nz, 0), fcnt(nz, 0);
      par::parallel_for(
          0, nblocks,
          [&, bsize = bsize](std::size_t blk) {
            const std::size_t i0 = blk * bsize, i1 = std::min(n, i0 + bsize);
            std::size_t* row = counts.data() + blk * nb;
            std::size_t zi = 0;  // zone at/after pos, advanced monotonically
            while (zi < nz && zhi[zi] <= lo + i0) ++zi;
            std::size_t i = i0;
            while (i < i1) {
              const bool in_zone = zi < nz && lo + i >= zlo[zi];
              const std::size_t seg_end =
                  in_zone ? std::min(i1, zhi[zi] - lo)
                          : std::min(i1, (zi < nz ? zlo[zi] : hi) - lo);
              const std::uint8_t* arow =
                  act.data() + (in_zone ? zi : nz) * nb;
              for (; i < seg_end; ++i) {
                const Rec& r = all_[lo + i];
                const std::size_t d = digit_of(r);
                const std::uint8_t tag = arow[d];
                if (tag == 0) continue;  // in its own zone's span: stays
                if (tag == 1) {
                  scratch[row[d]++] = r;
                } else {
                  const std::size_t z = zone_of[d];
                  const std::size_t at =
                      std::atomic_ref<std::size_t>(mcnt[z]).fetch_add(
                          1, std::memory_order_relaxed);
                  moves[zstart[z] + at] = r;
                }
                if (in_zone) {
                  const std::size_t at =
                      std::atomic_ref<std::size_t>(fcnt[zi]).fetch_add(
                          1, std::memory_order_relaxed);
                  frees[zstart[zi] + at] = lo + i;
                }
              }
              if (in_zone) ++zi;
            }
          },
          1);

      // Per zone, vacated slots and misplaced records pair off exactly:
      // a zone's span is the sum of its buckets, so (records of the zone
      // outside the span) == (span slots holding someone else's record).
      for (std::size_t z = 0; z < nz; ++z) {
        assert(mcnt[z] == fcnt[z]);
        par::parallel_for(0, mcnt[z], [&, z](std::size_t i) {
          all_[frees[zstart[z] + i]] = moves[zstart[z] + i];
        });
      }

      // Carved records return to their buckets' global rank ranges, still
      // in stable order.
      {
        std::size_t sa = 0;
        for (const auto& [blo, bhi] : spans) {
          const std::size_t sz = bhi - blo;
          par::copy(std::span<const Rec>(scratch.data() + sa, sz),
                    all_.subspan(blo, sz));
          sa += sz;
        }
      }
      distributed_records_ += a + m;
      ++num_distributions_;
    }  // leases released: recursion re-leases freely
    for (const auto& [blo, bhi] : spans) descend(blo, bhi, w, shift);
    return true;
  }

  // One stable distribution pass on the byte at `shift` of word w, then
  // recurse only into buckets that intersect a window. Buckets wholly
  // outside every window are DONE the moment the scatter places them:
  // their records' final ranks are pinned to the bucket's global range,
  // which no requested window overlaps. Large segments that prune most of
  // their records take the carve fast path above instead of paying the
  // full scatter + copy-back.
  void select_digit(std::size_t lo, std::size_t hi, std::size_t w,
                    int shift) {
    const std::size_t n = hi - lo;
    std::array<std::size_t, kSelectBuckets + 1> offs{};
    {
      const std::span<Rec> t = ws_.template record_buffer<Rec>(n, st_);
      sort_workspace::lease ol =
          ws_.acquire((kSelectBuckets + 1) * sizeof(std::size_t), st_);
      const std::span<std::size_t> po =
          ol.template carve<std::size_t>(kSelectBuckets + 1);
      distribute_options dopt;
      dopt.require_stable = true;
      dopt.workspace = &ws_;
      dopt.stats = st_;
      distribute(std::span<const Rec>(all_.data() + lo, n), t,
                 kSelectBuckets,
                 [&](const Rec& r) -> std::size_t {
                   return static_cast<std::size_t>(
                       (word_of_(r, w) >> shift) & (kSelectBuckets - 1));
                 },
                 po, dopt);
      par::copy(std::span<const Rec>(t.data(), n), all_.subspan(lo, n));
      std::copy(po.begin(), po.end(), offs.begin());
      distributed_records_ += n;
      ++num_distributions_;
    }  // offsets copied out, leases released: recursion re-leases freely
    for (std::size_t b = 0; b < kSelectBuckets; ++b) {
      const std::size_t blo = lo + offs[b];
      const std::size_t bhi = lo + offs[b + 1];
      if (bhi == blo) continue;
      if (!intersects(blo, bhi)) {
        ++buckets_pruned_;
        records_pruned_ += bhi - blo;
        continue;
      }
      descend(blo, bhi, w, shift);
    }
  }

  std::span<Rec> all_;
  std::size_t word_count_;
  bool exhaustive_;
  const WordOf& word_of_;
  const TieLess& tie_;
  std::span<const rank_window> windows_;
  std::size_t base_case_;
  sort_workspace& ws_;
  sort_stats* st_;
  CoveredSort covered_sort_;
  std::uint64_t buckets_pruned_ = 0;
  std::uint64_t records_pruned_ = 0;
  std::uint64_t base_case_records_ = 0;
  std::uint64_t distributed_records_ = 0;
  std::uint64_t num_distributions_ = 0;
};

// Single-word selection: enc(rec) is the (already codec-encoded) unsigned
// key. Covered segments re-enter the adaptive dispatcher — the rank
// window threading through dispatch: a segment wholly inside a window is
// a full sub-sort, and sort_unsigned picks its kernel from the segment's
// own sketch.
template <typename Rec, typename EncFn>
void select_unsigned(std::span<Rec> data, const EncFn& enc,
                     std::span<const rank_window> windows,
                     const auto_sort_options& opt, sort_workspace& ws) {
  const auto word_of = [&enc](const Rec& r, std::size_t) {
    return static_cast<std::uint64_t>(enc(r));
  };
  const auto tie = [](const Rec&, const Rec&) { return false; };
  const auto covered_sort = [&](std::size_t lo, std::size_t hi) {
    auto_sort_options inner = opt;
    inner.workspace = &ws;
    sort_unsigned(std::span<Rec>(data.data() + lo, hi - lo),
                  [&enc](const Rec& r) { return enc(r); }, inner);
  };
  rank_selector<Rec, decltype(word_of), decltype(tie),
                decltype(covered_sort)>
      sel(data, 1, true, word_of, tie, windows,
          opt.policy.select_base_case, ws, opt.stats, covered_sort);
  sel.run();
}

// Encode-once selection: build (encoded key, index) pairs, select on the
// pairs, then let the caller gather. The pair records inherit the stable
// arrival order, so equal encoded keys keep increasing indices without a
// tie-break — same argument as ranked_permutation.
template <typename PairRec, typename EncOf, typename Emit>
void selected_permutation_impl(std::size_t n, const EncOf& enc_of,
                               std::span<const rank_window> windows,
                               const auto_sort_options& opt,
                               sort_workspace& ws, const Emit& emit) {
  sort_workspace::lease pl = ws.acquire(n * sizeof(PairRec), opt.stats);
  const std::span<PairRec> pairs = pl.template carve<PairRec>(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    pairs[i] = PairRec{static_cast<decltype(PairRec::key)>(enc_of(i)),
                       static_cast<decltype(PairRec::value)>(i)};
  });
  select_unsigned(pairs, [](const PairRec& p) { return p.key; }, windows,
                  opt, ws);
  par::parallel_for(0, n, [&](std::size_t i) {
    emit(i, static_cast<std::size_t>(pairs[i].value));
  });
}

template <typename EncOf, typename Emit>
void selected_permutation(std::size_t n, int encoded_bits,
                          const EncOf& enc_of,
                          std::span<const rank_window> windows,
                          const auto_sort_options& opt, sort_workspace& ws,
                          const Emit& emit) {
  if (encoded_bits <= 32 && n <= 0xFFFFFFFFull)
    selected_permutation_impl<enc_idx32>(n, enc_of, windows, opt, ws, emit);
  else
    selected_permutation_impl<enc_idx64>(n, enc_of, windows, opt, ws, emit);
}

// Wide selection: materialize (all encoded words, index) records exactly
// like wide_ranked_permutation, select word by word — word 0 prunes most
// of the input for small windows; only surviving segments ever touch
// later words — and emit the permutation.
template <typename K, typename KeyAt, typename Emit>
void select_wide(std::size_t n, const KeyAt& key_at,
                 std::span<const rank_window> windows,
                 const auto_sort_options& opt, sort_workspace& ws,
                 const Emit& emit) {
  using WT = wide_key_traits<std::remove_cvref_t<K>>;
  constexpr std::size_t W = WT::word_count;
  struct wrec {
    std::uint64_t word[W];
    std::uint64_t idx;
  };
  std::span<wrec> recs;
  sort_workspace::lease rl = ws.acquire_array<wrec>(n, recs, opt.stats);
  par::parallel_for(0, n, [&](std::size_t i) {
    auto&& k = key_at(i);
    for (std::size_t w = 0; w < W; ++w) recs[i].word[w] = WT::word(k, w);
    recs[i].idx = static_cast<std::uint64_t>(i);
  });
  const auto word_of = [](const wrec& p, std::size_t w) {
    return p.word[w];
  };
  const auto tie = [&](const wrec& a, const wrec& b) {
    if constexpr (WT::exhaustive) {
      (void)a;
      (void)b;
      return false;
    } else {
      return key_at(static_cast<std::size_t>(a.idx)) <
             key_at(static_cast<std::size_t>(b.idx));
    }
  };
  rank_selector<wrec, decltype(word_of), decltype(tie)> sel(
      recs, W, WT::exhaustive, word_of, tie, windows,
      opt.policy.select_base_case, ws, opt.stats);
  sel.run();
  par::parallel_for(0, n, [&](std::size_t i) {
    emit(i, static_cast<std::size_t>(recs[i].idx));
  });
}

// The shared orchestrator behind every public query: rearrange `data` so
// each requested window holds its slice of the stable sorted order.
// `windows` must be sorted, disjoint, and clipped to [0, data.size()).
// Branching mirrors dovetail::sort — fused / encode-once / wide.
template <typename Rec, typename KeyFn>
void select_by_rank(std::span<Rec> data, const KeyFn& key,
                    std::span<const rank_window> windows,
                    const auto_sort_options& opt) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  static_assert(any_sortable_key<K>,
                "dovetail order-statistics: the key type has no key_codec "
                "(see core/key_codec.hpp)");
  const std::size_t n = data.size();
  if (windows.empty() || n <= 1) return;
  if (windows.size() == 1 && windows[0].lo == 0 && windows[0].hi >= n) {
    // The window IS the whole array: a full sort through the front door
    // (partial_sort with m == n, percentile sets hitting every rank).
    dovetail::sort(data, key, opt);
    return;
  }
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  if (opt.stats != nullptr)
    opt.stats->effective_workers.store(
        static_cast<std::uint64_t>(par::effective_workers()),
        std::memory_order_relaxed);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  if constexpr (!sortable_key<K>) {
    // Wide keys: selection over the materialized word records, then one
    // gather (moves, like the wide sort's encode-once path).
    scratch_array<Rec> tmp(n, ws, opt.stats);
    const std::span<Rec> t = tmp.get();
    select_wide<K>(
        n, [&](std::size_t i) -> decltype(auto) { return key(data[i]); },
        windows, inner, ws, [&](std::size_t pos, std::size_t src) {
          t[pos] = std::move(data[src]);
        });
    write_back(t, data);
  } else {
    using traits = codec_traits<K>;
    using codec = typename traits::codec;
    if constexpr (std::is_trivially_copyable_v<Rec> && traits::cheap) {
      // Fused: the selection passes scatter the records as-is, encoding
      // per key access — no extra pass, no extra memory.
      if constexpr (traits::identity) {
        select_unsigned(
            data,
            [&key](const Rec& r) {
              return static_cast<std::uint64_t>(key(r));
            },
            windows, inner, ws);
      } else {
        select_unsigned(
            data,
            [&key](const Rec& r) {
              return static_cast<std::uint64_t>(codec::encode(key(r)));
            },
            windows, inner, ws);
      }
    } else {
      // Encode once, select the (encoded, index) pairs, gather once.
      scratch_array<Rec> tmp(n, ws, opt.stats);
      const std::span<Rec> t = tmp.get();
      selected_permutation(
          n, traits::encoded_bits,
          [&](std::size_t i) {
            return static_cast<std::uint64_t>(codec::encode(key(data[i])));
          },
          windows, inner, ws,
          [&](std::size_t pos, std::size_t src) { t[pos] = data[src]; });
      write_back(t, data);
    }
  }
}

// Codec identity of a key type, uniform across narrow and wide keys.
template <typename K>
inline constexpr codec_kind query_codec_kind = wide_key_traits<K>::kind;
template <typename K>
inline constexpr int query_codec_bits = wide_key_traits<K>::encoded_bits;

}  // namespace detail

// The k smallest (or largest) records by key(record), stable: the result
// is byte-identical to the first (last) k entries of a stable full sort —
// ties go to the earliest input records for rank_side::smallest and the
// latest for rank_side::largest, exactly as the stable order dictates.
// `data` is rearranged in place; the returned span views the results
// WITHIN data (the front for smallest, the tail for largest), in
// ascending key order. k is clamped to data.size().
//
// Work: one distribution pass over n plus work proportional to the
// surviving buckets — for k << n the driver prunes nearly everything
// after the first pass (sort_stats::buckets_pruned / records_pruned
// count it). Workspace/stats contract as dovetail::sort: warm repeated
// queries on one workspace allocate nothing.
template <typename Rec, typename KeyFn>
  requires std::invocable<const KeyFn&, const Rec&>
std::span<Rec> top_k(std::span<Rec> data, std::size_t k, const KeyFn& key,
                     rank_side side = rank_side::smallest,
                     const auto_sort_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  static_assert(any_sortable_key<K>,
                "dovetail::top_k: the key type has no key_codec (see "
                "core/key_codec.hpp)");
  detail::note_query(opt.stats, query_kind::top_k,
                     detail::query_codec_kind<K>, detail::query_codec_bits<K>);
  const std::size_t n = data.size();
  k = std::min(k, n);
  if (k > 0) {
    const rank_window w = side == rank_side::smallest
                              ? rank_window{0, k}
                              : rank_window{n - k, n};
    detail::select_by_rank(data, key, std::span<const rank_window>(&w, 1),
                           opt);
  }
  return side == rank_side::smallest ? data.first(k) : data.last(k);
}

// top_k over a span of plain keys (any codec-covered type, wide included).
template <typename K>
  requires any_sortable_key<K>
std::span<K> top_k(std::span<K> data, std::size_t k,
                   rank_side side = rank_side::smallest,
                   const auto_sort_options& opt = {}) {
  return top_k(data, k, [](const K& v) -> const K& { return v; }, side, opt);
}

// Place the record a stable full sort would put at position nth there,
// partitioning the rest around it (keys before nth are <=, keys after are
// >=). Returns a reference to data[nth]. Throws std::out_of_range when
// nth >= data.size().
template <typename Rec, typename KeyFn>
  requires std::invocable<const KeyFn&, const Rec&>
Rec& nth_element(std::span<Rec> data, std::size_t nth, const KeyFn& key,
                 const auto_sort_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  static_assert(any_sortable_key<K>,
                "dovetail::nth_element: the key type has no key_codec (see "
                "core/key_codec.hpp)");
  detail::note_query(opt.stats, query_kind::nth_element,
                     detail::query_codec_kind<K>, detail::query_codec_bits<K>);
  if (nth >= data.size())
    throw std::out_of_range("dovetail::nth_element: nth out of range");
  const rank_window w{nth, nth + 1};
  detail::select_by_rank(data, key, std::span<const rank_window>(&w, 1),
                         opt);
  return data[nth];
}

template <typename K>
  requires any_sortable_key<K>
K& nth_element(std::span<K> data, std::size_t nth,
               const auto_sort_options& opt = {}) {
  return nth_element(data, nth, [](const K& v) -> const K& { return v; },
                     opt);
}

// Stable std::partial_sort: the first m positions end up byte-identical
// to the first m entries of a stable full sort; the tail is partitioned
// above them. m is clamped to data.size() (m == n is a full sort through
// the front door).
template <typename Rec, typename KeyFn>
  requires std::invocable<const KeyFn&, const Rec&>
void partial_sort(std::span<Rec> data, std::size_t m, const KeyFn& key,
                  const auto_sort_options& opt = {}) {
  using K =
      std::remove_cvref_t<std::invoke_result_t<const KeyFn&, const Rec&>>;
  static_assert(any_sortable_key<K>,
                "dovetail::partial_sort: the key type has no key_codec "
                "(see core/key_codec.hpp)");
  detail::note_query(opt.stats, query_kind::partial_sort,
                     detail::query_codec_kind<K>, detail::query_codec_bits<K>);
  m = std::min(m, data.size());
  if (m == 0) return;
  const rank_window w{0, m};
  detail::select_by_rank(data, key, std::span<const rank_window>(&w, 1),
                         opt);
}

template <typename K>
  requires any_sortable_key<K>
void partial_sort(std::span<K> data, std::size_t m,
                  const auto_sort_options& opt = {}) {
  partial_sort(data, m, [](const K& v) -> const K& { return v; }, opt);
}

// Percentile extraction by the nearest-rank rule: quantile q in [0, 1]
// reads the key a stable full sort would leave at position
// round(q * (n - 1)) — q = 0 the minimum, q = 0.5 the lower median,
// q = 1 the maximum. The input is NOT modified: the keys are copied into
// workspace-leased scratch (a per-call vector for non-trivially-copyable
// keys like std::string) and one multi-window selection resolves every
// requested rank in a single pruned pass — asking for {0.5, 0.9, 0.99}
// costs one query, not three.
//
// Returns the values in the order the quantiles were given. Throws
// std::invalid_argument for an empty input (with non-empty qs) or a
// quantile outside [0, 1].
template <typename K>
  requires any_sortable_key<K>
std::vector<K> percentiles(std::span<const K> data,
                           std::span<const double> qs,
                           const auto_sort_options& opt = {}) {
  detail::note_query(opt.stats, query_kind::percentiles,
                     detail::query_codec_kind<K>, detail::query_codec_bits<K>);
  if (qs.empty()) return {};
  if (data.empty())
    throw std::invalid_argument("dovetail::percentiles: empty input");
  const std::size_t n = data.size();
  std::vector<std::size_t> ranks;
  ranks.reserve(qs.size());
  for (const double q : qs) {
    if (!(q >= 0.0 && q <= 1.0))
      throw std::invalid_argument(
          "dovetail::percentiles: quantile outside [0, 1]");
    ranks.push_back(static_cast<std::size_t>(
        std::llround(q * static_cast<double>(n - 1))));
  }
  // Coalesce the ranks into sorted disjoint singleton windows (adjacent
  // ranks merge into one window).
  std::vector<std::size_t> sorted_ranks = ranks;
  std::sort(sorted_ranks.begin(), sorted_ranks.end());
  sorted_ranks.erase(
      std::unique(sorted_ranks.begin(), sorted_ranks.end()),
      sorted_ranks.end());
  std::vector<rank_window> windows;
  for (const std::size_t r : sorted_ranks) {
    if (!windows.empty() && windows.back().hi == r)
      windows.back().hi = r + 1;
    else
      windows.push_back({r, r + 1});
  }
  const par::scoped_worker_limit worker_cap(opt.num_threads);
  sort_workspace local_ws;
  sort_workspace& ws = opt.workspace != nullptr ? *opt.workspace : local_ws;
  auto_sort_options inner = opt;
  inner.workspace = &ws;
  detail::scratch_array<K> tmp(n, ws, opt.stats);
  const std::span<K> t = tmp.get();
  par::parallel_for(0, n, [&](std::size_t i) { t[i] = data[i]; });
  detail::select_by_rank(t, [](const K& v) -> const K& { return v; },
                         std::span<const rank_window>(windows), inner);
  std::vector<K> out;
  out.reserve(qs.size());
  for (const std::size_t r : ranks) out.push_back(t[r]);
  return out;
}

template <typename K>
  requires any_sortable_key<K>
std::vector<K> percentiles(std::span<const K> data,
                           std::initializer_list<double> qs,
                           const auto_sort_options& opt = {}) {
  return percentiles(data, std::span<const double>(qs.begin(), qs.size()),
                     opt);
}

}  // namespace dovetail
