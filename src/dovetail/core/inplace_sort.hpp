// In-place MSD radix sort with IPS2Ra-style block permutation — the
// dispatchable kernel behind sort_kernel::inplace (ISSUE 10 tentpole a).
//
// The out-of-place kernels ping-pong through a record_buffer arena, so their
// peak footprint is >= 2x the data. This kernel permutes records within the
// input array; its scratch is O(buckets * block) per active node, bounded by
// the blocked-regime gate below to <= n/8 bytes-of-records per node — and
// because simultaneously active nodes own disjoint subranges, the same bound
// holds for the whole sort (<= n/4 after power-of-two slab rounding),
// asserted via sort_stats::peak_workspace_bytes by tests/test_inplace_sort.cpp.
//
// One node, n records over B = 2^digit buckets:
//   1. histogram   — the engine's parallel counting pass
//                    (distribute_histogram, or the SIMD digit variant
//                    distribute_histogram_digits when the records ARE raw
//                    u32/u64 keys) => bucket sizes + final boundaries.
//   2. classify    — serial scan appending each record to a per-bucket
//                    staging block (block_bytes each, leased); every full
//                    block is flushed back into the consumed prefix of the
//                    array, which always has room: after i+1 reads at most
//                    floor((i+1)/blk) blocks have been flushed.
//   3. permute     — American-flag cycle-chasing at BLOCK granularity: one
//                    block in hand, each memcpy moves a whole block to the
//                    first unfinalized slot of its bucket (cache-line bursts
//                    instead of the legacy baseline's record-at-a-time
//                    swaps — the constant-factor win of IPS2Ra/RegionsSort).
//   4. shift       — blocks of bucket z occupy slots [c[z], c[z+1]); their
//                    final record range starts at start[z] >= c[z]*blk.
//                    Moving in decreasing z order never clobbers an unmoved
//                    source (start[z]+nblk[z]*blk <= start[z+1]).
//   5. residues    — each bucket's partial staging block tops up its region.
//   6. recurse     — parallel over buckets on the next digit; nodes below
//                    the blocked gate use the plain record-at-a-time flag
//                    loop (their working set is cache-resident), and
//                    base-case spans finish with std::sort or the in-register
//                    sorting network (util/simd.hpp) for raw-key tinies.
//
// UNSTABLE: equal keys land in arbitrary order. The front door only selects
// it when that is unobservable (pure-key records) or explicitly permitted
// (stability::relaxed) — see dispatch_policy in auto_sort.hpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "dovetail/core/distribute.hpp"
#include "dovetail/core/key_codec.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/primitives.hpp"
#include "dovetail/util/bits.hpp"
#include "dovetail/util/simd.hpp"

namespace dovetail {

struct inplace_sort_options {
  // Digit width per MSD level (2^gamma buckets). 0 (default) auto-picks
  // from the detected key bits (min(bits, 10) — see inplace_sort).
  // Explicit values are clamped to [1, 16] (the block-label array is
  // 16-bit); 10 is the practical ceiling before the staging area
  // (2^gamma * block_bytes) falls out of L2.
  int gamma = 0;
  // Subproblems at most this size finish with a comparison sort (or the
  // sorting network when the records are raw keys).
  std::size_t base_case = std::size_t{1} << 12;
  // Staging block per bucket. Also the permutation granularity: larger
  // blocks mean fewer, longer memcpy bursts but more scratch (B * block).
  std::size_t block_bytes = 2048;
  sort_workspace* workspace = nullptr;  // reuse across sorts; may be null
  sort_stats* stats = nullptr;          // engine counters; may be null
};

namespace detail {

// Blocked permutation only when its staging scratch (B * block_bytes) is at
// most 1/8 of the node's records; smaller nodes run the record-at-a-time
// flag loop with zero staging. This is what bounds the sort's peak extra
// memory (see the header comment).
inline constexpr std::size_t kInplaceBlockedFactor = 8;

template <typename Rec, typename BucketFn>
void inplace_flag_permute(std::span<Rec> a, const BucketFn& bucket_of,
                          std::span<const std::size_t> start,
                          std::span<std::size_t> cur, std::size_t B) {
  for (std::size_t z = 0; z < B; ++z) cur[z] = start[z];
  for (std::size_t z = 0; z < B; ++z) {
    while (cur[z] < start[z + 1]) {
      Rec r = a[cur[z]];
      std::size_t d = bucket_of(r);
      if (d == z) {
        ++cur[z];
        continue;
      }
      // Chase the cycle with one record in hand; every swap finalizes one
      // record at its bucket cursor.
      do {
        using std::swap;
        swap(r, a[cur[d]]);
        ++cur[d];
        d = bucket_of(r);
      } while (d != z);
      a[cur[z]++] = r;
    }
  }
}

template <typename Rec, typename BucketFn>
void inplace_blocked_permute(std::span<Rec> a, const BucketFn& bucket_of,
                             std::span<const std::size_t> counts,
                             std::span<const std::size_t> start,
                             std::span<std::size_t> cur,
                             std::span<std::size_t> cblk, std::size_t B,
                             std::size_t blk, sort_workspace& ws,
                             sort_stats* stats) {
  const std::size_t n = a.size();
  const std::size_t nb = n / blk;  // upper bound on flushed full blocks
  const std::size_t bytes = blk * sizeof(Rec);
  sort_workspace::lease stage_lease =
      ws.acquire((B + 2) * bytes + B * sizeof(std::uint32_t) +
                     nb * sizeof(std::uint16_t) + 3 * kSlabAlign,
                 stats);
  std::span<Rec> bufs = stage_lease.carve<Rec>((B + 2) * blk);
  Rec* hand0 = bufs.data() + B * blk;
  Rec* hand1 = hand0 + blk;
  std::span<std::uint32_t> fill = stage_lease.carve<std::uint32_t>(B);
  std::span<std::uint16_t> bb = stage_lease.carve<std::uint16_t>(nb);
  std::fill(fill.begin(), fill.end(), 0);

  // 2. classify: append to the bucket's staging block; flush full blocks
  // into the consumed prefix. The flush target [wb*blk, (wb+1)*blk) is
  // always <= i+1 records in: the buffers hold (i+1) - wb*blk records and
  // the flushing one alone holds blk of them.
  std::size_t wb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = bucket_of(a[i]);
    bufs[d * blk + fill[d]] = a[i];
    if (++fill[d] == blk) {
      std::memcpy(a.data() + wb * blk, bufs.data() + d * blk, bytes);
      bb[wb] = static_cast<std::uint16_t>(d);
      ++wb;
      fill[d] = 0;
    }
  }

  // Slot prefix c[z]: where bucket z's full blocks live after the block
  // permutation (cur doubles as the per-bucket block tally, then cursor).
  for (std::size_t z = 0; z < B; ++z) cur[z] = 0;
  for (std::size_t s = 0; s < wb; ++s) ++cur[bb[s]];
  cblk[0] = 0;
  for (std::size_t z = 0; z < B; ++z) cblk[z + 1] = cblk[z] + cur[z];

  // 3. block-granular American flag with one block in hand.
  for (std::size_t z = 0; z < B; ++z) cur[z] = cblk[z];
  for (std::size_t z = 0; z < B; ++z) {
    while (cur[z] < cblk[z + 1]) {
      std::size_t d = bb[cur[z]];
      if (d == z) {
        ++cur[z];
        continue;
      }
      std::memcpy(hand0, a.data() + cur[z] * blk, bytes);
      while (d != z) {
        const std::size_t s = cur[d]++;
        std::memcpy(hand1, a.data() + s * blk, bytes);
        std::memcpy(a.data() + s * blk, hand0, bytes);
        const std::size_t db = bb[s];
        bb[s] = static_cast<std::uint16_t>(d);
        d = db;
        std::swap(hand0, hand1);
      }
      std::memcpy(a.data() + cur[z] * blk, hand0, bytes);
      bb[cur[z]] = static_cast<std::uint16_t>(z);
      ++cur[z];
    }
  }

  // 4. shift each bucket's block run from slot space to its final record
  // boundary. start[z] >= cblk[z]*blk (every earlier bucket has at least
  // its full blocks' worth of records), so moves go rightward, and in
  // decreasing z order a later bucket's write region [start[z'],
  // start[z'+1]) never overlaps an unread source (it begins at or after
  // cblk[z'+1... z]*blk >= this source's end).
  for (std::size_t zz = B; zz-- > 0;) {
    const std::size_t nfull = cblk[zz + 1] - cblk[zz];
    if (nfull == 0) continue;
    const std::size_t src = cblk[zz] * blk;
    if (start[zz] != src)
      std::memmove(a.data() + start[zz], a.data() + src, nfull * bytes);
  }

  // 5. residues: the partial staging blocks complete each bucket's region.
  for (std::size_t z = 0; z < B; ++z) {
    const std::size_t nfull = cblk[z + 1] - cblk[z];
    assert(fill[z] == counts[z] - nfull * blk);
    if (fill[z] != 0)
      std::memcpy(a.data() + start[z] + nfull * blk, bufs.data() + z * blk,
                  fill[z] * sizeof(Rec));
  }
  (void)counts;
}

template <bool RawKeys, typename Rec, typename KeyFn>
void inplace_base_case(std::span<Rec> a, const KeyFn& key,
                       const inplace_sort_options& opt) {
  if (opt.stats != nullptr)
    opt.stats->base_case_records.fetch_add(a.size(),
                                           std::memory_order_relaxed);
  if constexpr (RawKeys) {
    // Tiny raw-key spans: the in-register sorting network (pure keys have a
    // unique sorted byte sequence, so unstable is unobservable here too).
    if (simd::network_sort(a)) return;
  }
  std::sort(a.begin(), a.end(),
            [&](const Rec& x, const Rec& y) { return key(x) < key(y); });
}

template <bool RawKeys, typename Rec, typename KeyFn>
void inplace_rec(std::span<Rec> a, const KeyFn& key, int bits,
                 const inplace_sort_options& opt, sort_workspace& ws) {
  const std::size_t n = a.size();
  if (n <= 1 || bits <= 0) return;
  if (n <= opt.base_case) {
    inplace_base_case<RawKeys>(a, key, opt);
    return;
  }
  const int digit = std::min(opt.gamma, bits);
  const int shift = bits - digit;
  const std::size_t B = std::size_t{1} << digit;
  const std::uint64_t zmask = B - 1;
  auto keyof = [&](const Rec& r) { return static_cast<std::uint64_t>(key(r)); };
  auto bucket_of = [&](const Rec& r) -> std::size_t {
    return (keyof(r) >> shift) & zmask;
  };

  // 1. histogram + boundaries. The tables lease stays live across the
  // recursion (start[] carries the bucket bounds) but is O(B) — the big
  // staging lease below is released before any child runs.
  sort_workspace::lease tab =
      ws.acquire((4 * B + 2) * sizeof(std::size_t) + kSlabAlign, opt.stats);
  std::span<std::size_t> counts = tab.carve<std::size_t>(B);
  std::span<std::size_t> start = tab.carve<std::size_t>(B + 1);
  std::span<std::size_t> cur = tab.carve<std::size_t>(B);
  std::span<std::size_t> cblk = tab.carve<std::size_t>(B + 1);
  distribute_options dopt;
  dopt.workspace = &ws;
  dopt.stats = opt.stats;
  if constexpr (RawKeys) {
    distribute_histogram_digits(std::span<const Rec>(a.data(), n), shift,
                                static_cast<Rec>(zmask), counts, dopt);
  } else {
    distribute_histogram(std::span<const Rec>(a.data(), n), B, bucket_of,
                         counts, dopt);
  }
  start[0] = 0;
  for (std::size_t z = 0; z < B; ++z) start[z + 1] = start[z] + counts[z];

  // Single-populated-digit chain: no permutation needed, descend directly.
  if (counts[bucket_of(a[0])] == n) {
    inplace_rec<RawKeys>(a, key, shift, opt, ws);
    return;
  }

  if (sort_stats* st = opt.stats; st != nullptr) {
    st->inplace_passes.fetch_add(1, std::memory_order_relaxed);
    st->num_distributions.fetch_add(1, std::memory_order_relaxed);
    st->distributed_records.fetch_add(n, std::memory_order_relaxed);
  }

  // 2-5. permute within the array.
  const std::size_t blk =
      std::max<std::size_t>(1, opt.block_bytes / sizeof(Rec));
  if (blk >= 4 &&
      n * sizeof(Rec) >= kInplaceBlockedFactor * B * opt.block_bytes) {
    inplace_blocked_permute(a, bucket_of, counts, start, cur, cblk, B, blk,
                            ws, opt.stats);
  } else {
    inplace_flag_permute(a, bucket_of, start, cur, B);
  }

  // 6. recurse per bucket on the next digit.
  if (shift == 0) return;
  par::parallel_for(
      0, B,
      [&](std::size_t z) {
        const std::size_t lo = start[z], sz = start[z + 1] - lo;
        if (sz > 1) inplace_rec<RawKeys>(a.subspan(lo, sz), key, shift, opt, ws);
      },
      1);
}

}  // namespace detail

// Unstable in-place MSD radix sort; records stay within `data`, scratch is
// O(2^gamma * block_bytes) per active node (<= 1/8 of the node's bytes).
// `key(r)` must yield an unsigned value. See the header comment for the
// stability contract.
template <typename Rec, typename KeyFn>
void inplace_sort(std::span<Rec> data, const KeyFn& key,
                  const inplace_sort_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = data.size();
  if (n <= 1) return;
  inplace_sort_options o = opt;
  o.base_case = std::max<std::size_t>(o.base_case, 32);
  o.block_bytes = std::clamp<std::size_t>(o.block_bytes, 4 * sizeof(Rec),
                                          std::size_t{1} << 20);
  // Skip leading zero bits, like every MSD driver here.
  const std::uint64_t maxk = par::reduce_map(
      0, n, std::uint64_t{0},
      [&](std::size_t i) { return static_cast<std::uint64_t>(key(data[i])); },
      [](std::uint64_t x, std::uint64_t y) { return x < y ? y : x; });
  const int bits = bit_width_u64(maxk);
  if (o.gamma == 0) {
    // Auto digit width: 10-bit digits (1024 buckets, trailing digit takes
    // the remainder). Measured against 8-bit digits at n = 1e7 this wins
    // 1.5-2x on wide-range keys — fewer passes on <= 30-bit keys, and even
    // at the same pass count the 1024-way fan-out pushes second-level nodes
    // near the base case, where raw keys finish in the sorting network.
    // Wider than 10 the staging area falls out of L2 and classification
    // thrashes (measured ~1.6x slower at 11).
    o.gamma = std::min(bits, 10);
  }
  o.gamma = std::clamp(o.gamma, 1, 16);
  sort_workspace local_ws;
  sort_workspace& ws = o.workspace != nullptr ? *o.workspace : local_ws;
  // Raw-key mode: the records ARE the radix keys (identity functor on a
  // u32/u64 span), so the histogram can read digits straight off the array
  // (SIMD) and tiny base cases can use the in-register network.
  constexpr bool raw = (std::is_same_v<Rec, std::uint32_t> ||
                        std::is_same_v<Rec, std::uint64_t>) &&
                       std::is_same_v<std::remove_cvref_t<KeyFn>, self_key>;
  detail::inplace_rec<raw>(data, key, bits, o, ws);
}

template <typename K>
  requires std::is_unsigned_v<K>
void inplace_sort(std::span<K> data, const inplace_sort_options& opt = {}) {
  inplace_sort(data, self_key{}, opt);
}

}  // namespace dovetail
