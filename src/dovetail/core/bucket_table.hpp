// Bucket-id assignment for DTSort (Alg 2, lines 5-14).
//
// The key range of the current digit is divided into 2^γ "MSD zones". Every
// zone gets exactly one light bucket; each heavy key gets a private bucket
// placed immediately after the light bucket of its zone, ordered by key
// (so buckets of a zone are consecutive and globally ordered — the property
// the dovetail-merging step relies on). A final overflow bucket holds keys
// above the sampled range (Sec 5).
//
// Lookup is O(1): a per-zone array `L` for light buckets and a small
// open-addressing hash table `H` for heavy keys (GetBucketId, Alg 2 line 21).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dovetail/parallel/random.hpp"
#include "dovetail/util/bits.hpp"

namespace dovetail {

class bucket_table {
 public:
  static constexpr std::uint32_t kEmpty =
      std::numeric_limits<std::uint32_t>::max();

  // `heavy_keys` must be sorted ascending; every key must satisfy
  // (key >> shift) < zones.
  bucket_table(std::span<const std::uint64_t> heavy_keys, int shift,
               std::size_t zones)
      : light_(zones), shift_(shift) {
    const std::size_t nh = heavy_keys.size();
    const std::size_t cap = next_pow2(std::max<std::size_t>(8, 2 * nh));
    hkeys_.assign(cap, 0);
    hids_.assign(cap, kEmpty);
    hmask_ = cap - 1;
    nheavy_ = nh;

    std::uint32_t id = 0;
    std::size_t j = 0;
    for (std::size_t z = 0; z < zones; ++z) {
      light_[z] = id++;
      while (j < nh && (heavy_keys[j] >> shift_) == z) {
        insert(heavy_keys[j], id++);
        ++j;
      }
    }
    overflow_ = id;
  }

  [[nodiscard]] std::uint32_t light_id(std::size_t zone) const {
    return light_[zone];
  }
  [[nodiscard]] std::uint32_t overflow_id() const { return overflow_; }
  [[nodiscard]] std::size_t num_buckets() const {
    return static_cast<std::size_t>(overflow_) + 1;
  }
  [[nodiscard]] std::size_t num_zones() const { return light_.size(); }
  [[nodiscard]] std::size_t num_heavy() const { return nheavy_; }

  // Bucket id for an in-range masked key (zone = key >> shift < zones).
  [[nodiscard]] std::uint32_t lookup(std::uint64_t key) const {
    if (nheavy_ != 0) {
      std::size_t h = par::hash64(key) & hmask_;
      while (hids_[h] != kEmpty) {
        if (hkeys_[h] == key) return hids_[h];
        h = (h + 1) & hmask_;
      }
    }
    return light_[key >> shift_];
  }

 private:
  void insert(std::uint64_t key, std::uint32_t id) {
    std::size_t h = par::hash64(key) & hmask_;
    while (hids_[h] != kEmpty) h = (h + 1) & hmask_;
    hkeys_[h] = key;
    hids_[h] = id;
  }

  std::vector<std::uint32_t> light_;
  std::vector<std::uint64_t> hkeys_;
  std::vector<std::uint32_t> hids_;
  std::size_t hmask_ = 0;
  std::size_t nheavy_ = 0;
  int shift_ = 0;
  std::uint32_t overflow_ = 0;
};

}  // namespace dovetail
