// Stable parallel counting sort (the "distribution" primitive, Sec 2.4 and
// Appendix B of the paper).
//
// Reorders `in` into `out` by bucket id. Blocked algorithm:
//   1. split the input into L contiguous blocks; each block counts its
//      records per bucket into a row of an L x B counting matrix;
//   2. column-major exclusive prefix sums over the matrix yield, for every
//      (block, bucket) pair, the output offset of that block's first record
//      of that bucket — in bucket-major, then block-major order, which is
//      exactly the stable order;
//   3. each block scatters its records to the computed offsets.
//
// Work O(n + L*B), span O(B + n/L + log n). L is chosen so the counting
// matrix stays small (Appendix B: fewer, larger blocks are cache-friendlier
// than the theoretical Θ(n/B) blocks).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/scheduler.hpp"

namespace dovetail {

namespace detail {

// Core blocked counting sort over precomputed bucket ids (IdT is uint16_t
// when the bucket count permits, halving the id-array footprint).
template <typename Rec, typename IdT>
std::vector<std::size_t> counting_sort_ids(std::span<const Rec> in,
                                           std::span<Rec> out,
                                           std::size_t num_buckets,
                                           const IdT* ids) {
  const std::size_t n = in.size();
  std::vector<std::size_t> offsets(num_buckets + 1, 0);

  const auto p = static_cast<std::size_t>(par::num_workers());
  // Keep the counting matrix around L1/L2 size: blocks of at least
  // max(8*B, 16384) records, at most 8 blocks per worker.
  const std::size_t min_block = std::max<std::size_t>(8 * num_buckets, 16384);
  const std::size_t nblocks =
      std::clamp<std::size_t>(n / min_block, 1, 8 * p);
  const std::size_t bsize = (n + nblocks - 1) / nblocks;

  // counts[b * num_buckets + k] = #records of bucket k in block b.
  std::vector<std::size_t> counts(nblocks * num_buckets, 0);
  par::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * num_buckets;
        for (std::size_t i = lo; i < hi; ++i) ++row[ids[i]];
      },
      1);

  // Bucket totals, then global bucket starts (small, sequential scan).
  std::vector<std::size_t> totals(num_buckets, 0);
  par::parallel_for(0, num_buckets, [&](std::size_t k) {
    std::size_t c = 0;
    for (std::size_t b = 0; b < nblocks; ++b) c += counts[b * num_buckets + k];
    totals[k] = c;
  });
  std::size_t acc = 0;
  for (std::size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = acc;
    acc += totals[k];
  }
  offsets[num_buckets] = acc;

  // Turn counts into per-(block,bucket) output cursors.
  par::parallel_for(0, num_buckets, [&](std::size_t k) {
    std::size_t cur = offsets[k];
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::size_t c = counts[b * num_buckets + k];
      counts[b * num_buckets + k] = cur;
      cur += c;
    }
  });

  // Scatter. Each (block, bucket) cursor cell is owned by exactly one block.
  par::parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        std::size_t lo = b * bsize, hi = std::min(n, lo + bsize);
        std::size_t* row = counts.data() + b * num_buckets;
        for (std::size_t i = lo; i < hi; ++i) out[row[ids[i]]++] = in[i];
      },
      1);
  return offsets;
}

}  // namespace detail

// `bucket_of(rec)` must return a value in [0, num_buckets).
// `in` and `out` must not alias and must have equal size.
// Returns bucket offsets: offsets[k] is the first index of bucket k in
// `out`; offsets[num_buckets] == in.size().
//
// Bucket ids are precomputed into a side array so `bucket_of` — which may
// involve a hash-table probe in DTSort (GetBucketId) — is evaluated once
// per record instead of once per pass.
template <typename Rec, typename BucketFn>
std::vector<std::size_t> counting_sort(std::span<const Rec> in,
                                       std::span<Rec> out,
                                       std::size_t num_buckets,
                                       const BucketFn& bucket_of) {
  const std::size_t n = in.size();
  if (n == 0) return std::vector<std::size_t>(num_buckets + 1, 0);
  if (num_buckets <= (std::size_t{1} << 16)) {
    std::vector<std::uint16_t> ids(n);
    par::parallel_for(0, n, [&](std::size_t i) {
      ids[i] = static_cast<std::uint16_t>(bucket_of(in[i]));
    });
    return detail::counting_sort_ids(in, out, num_buckets, ids.data());
  }
  std::vector<std::uint32_t> ids(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    ids[i] = static_cast<std::uint32_t>(bucket_of(in[i]));
  });
  return detail::counting_sort_ids(in, out, num_buckets, ids.data());
}

}  // namespace dovetail
