// Stable parallel counting sort (the "distribution" primitive, Sec 2.4 and
// Appendix B of the paper) — now a thin wrapper over the unified
// distribution engine in distribute.hpp, which owns the blocked algorithm:
//   1. bucket ids are evaluated once per record into a leased id array;
//   2. an L x B counting matrix and column-major prefix sums yield, for
//      every (block, bucket) pair, the stable output offset;
//   3. each block scatters its records (direct stores or buffered memcpy
//      bursts, see scatter_strategy in sort_options.hpp).
//
// Work O(n + L*B), span O(B + n/L + log n). Scratch memory is leased from a
// sort_workspace — pass one via distribute_options to make repeated calls
// allocation-free; callers on the hot path (dovetail_sort.hpp, the radix
// baselines) use distribute() directly with leased offsets instead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dovetail/core/distribute.hpp"

namespace dovetail {

// Distribute `in` into `out` grouped by bucket id, preserving input order
// within each bucket (stable, unless distribute_options::strategy requests
// the unstable scatter — see unstable_counting_sort.hpp for that variant).
//
// Requirements: Rec is trivially copyable; `bucket_of(rec)` is a pure
// function returning a value in [0, num_buckets); `in` and `out` must not
// alias and must have equal size.
//
// Complexity: O(n + L*B) work, O(B + n/L + log n) span (L = number of
// blocks, B = num_buckets). Space: O(L*B) counting scratch leased from
// opt.workspace — pass the same workspace to repeated calls and warm calls
// allocate nothing (the offsets vector returned here is the one remaining
// per-call allocation; hot paths use distribute() with leased offsets).
//
// Returns bucket offsets: offsets[k] is the first index of bucket k in
// `out`; offsets[num_buckets] == in.size().
template <typename Rec, typename BucketFn>
std::vector<std::size_t> counting_sort(std::span<const Rec> in,
                                       std::span<Rec> out,
                                       std::size_t num_buckets,
                                       const BucketFn& bucket_of,
                                       const distribute_options& opt = {}) {
  std::vector<std::size_t> offsets(num_buckets + 1);
  distribute(in, out, num_buckets, bucket_of,
             std::span<std::size_t>(offsets), opt);
  return offsets;
}

}  // namespace dovetail
