// Graph generators for the transpose benchmark (Tab 4, top). The paper uses
// real social networks / web graphs (skewed in-degrees => heavy keys) and a
// kNN graph (even degrees). We generate synthetic graphs that reproduce the
// sorting-relevant property — the in-degree distribution of edge
// destinations:
//   * power-law: destinations drawn Zipfian (social/web-like, heavy keys)
//   * uniform:   destinations uniform (light duplicates)
//   * knn-like:  each vertex points to `degree` near neighbours (even
//                in-degrees, like the Cosmo50 kNN graph)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dovetail/apps/graph.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail::gen {

inline std::vector<app::edge> powerlaw_graph(std::uint32_t num_vertices,
                                             std::size_t num_edges, double s,
                                             std::uint64_t seed = 11) {
  std::vector<app::edge> edges(num_edges);
  par::parallel_for(0, num_edges, [&](std::size_t i) {
    const auto src = static_cast<std::uint32_t>(
        par::rand_range(seed, 2 * i, num_vertices));
    // Zipfian rank -> vertex id (hashed so popular vertices are spread out).
    const std::uint64_t z =
        zipf_key(seed + 1, i, s, num_vertices, 64) % num_vertices;
    edges[i] = {src, static_cast<std::uint32_t>(z)};
  });
  return edges;
}

inline std::vector<app::edge> uniform_graph(std::uint32_t num_vertices,
                                            std::size_t num_edges,
                                            std::uint64_t seed = 12) {
  std::vector<app::edge> edges(num_edges);
  par::parallel_for(0, num_edges, [&](std::size_t i) {
    edges[i] = {static_cast<std::uint32_t>(
                    par::rand_range(seed, 2 * i, num_vertices)),
                static_cast<std::uint32_t>(
                    par::rand_range(seed, 2 * i + 1, num_vertices))};
  });
  return edges;
}

inline std::vector<app::edge> knn_graph(std::uint32_t num_vertices,
                                        std::uint32_t degree,
                                        std::uint64_t seed = 13) {
  const std::size_t m =
      static_cast<std::size_t>(num_vertices) * degree;
  std::vector<app::edge> edges(m);
  par::parallel_for(0, m, [&](std::size_t i) {
    const auto v = static_cast<std::uint32_t>(i / degree);
    // Neighbour at a small random offset: in-degrees stay near `degree`.
    const auto off = static_cast<std::uint32_t>(
        1 + par::rand_range(seed, i, 2 * degree));
    edges[i] = {v, (v + off) % num_vertices};
  });
  return edges;
}

}  // namespace dovetail::gen
