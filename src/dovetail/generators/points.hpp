// Point-set generators for the Morton-sort benchmark (Tab 4, bottom).
//
// Varden [24] produces point sets with *varying density* (dense clusters of
// very different sizes inside sparse regions). We reproduce that shape:
// cluster centers are uniform, cluster populations are Zipfian (so a few
// clusters are huge), and each cluster has its own radius — giving z-values
// with heavy local duplication at coarse Morton prefixes, which is what
// makes the instance interesting for integer sorting. A uniform generator
// plays the role of the lighter real-world sets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dovetail/apps/morton.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail::gen {

inline std::vector<app::point2d> uniform_points_2d(std::size_t n,
                                                   std::uint32_t coord_bits,
                                                   std::uint64_t seed = 21) {
  const std::uint64_t range = 1ull << coord_bits;
  std::vector<app::point2d> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    pts[i] = {static_cast<std::uint32_t>(par::rand_range(seed, 2 * i, range)),
              static_cast<std::uint32_t>(
                  par::rand_range(seed, 2 * i + 1, range))};
  });
  return pts;
}

inline std::vector<app::point2d> varden_points_2d(std::size_t n,
                                                  std::size_t num_clusters,
                                                  std::uint32_t coord_bits,
                                                  std::uint64_t seed = 22) {
  const std::uint64_t range = 1ull << coord_bits;
  if (num_clusters == 0) num_clusters = 1;
  std::vector<app::point2d> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    // Zipfian cluster choice: a few clusters dominate (varying density).
    const std::uint64_t c =
        zipf_key(seed, i, 1.1, num_clusters, 64) % num_clusters;
    const std::uint64_t cx = par::rand_range(seed + 1, 2 * c, range);
    const std::uint64_t cy = par::rand_range(seed + 1, 2 * c + 1, range);
    // Cluster-specific radius between range/2^12 and range/2^4.
    const int rbits = static_cast<int>(
        par::rand_range(seed + 2, c, 9)) + static_cast<int>(coord_bits) - 12;
    const std::uint64_t radius = 1ull << std::max(1, rbits);
    const std::uint64_t dx = par::rand_range(seed + 3, 2 * i, 2 * radius);
    const std::uint64_t dy = par::rand_range(seed + 3, 2 * i + 1, 2 * radius);
    pts[i] = {static_cast<std::uint32_t>((cx + dx) % range),
              static_cast<std::uint32_t>((cy + dy) % range)};
  });
  return pts;
}

inline std::vector<app::point3d> uniform_points_3d(std::size_t n,
                                                   std::uint32_t coord_bits,
                                                   std::uint64_t seed = 23) {
  const std::uint64_t range = 1ull << coord_bits;
  std::vector<app::point3d> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    pts[i] = {static_cast<std::uint32_t>(par::rand_range(seed, 3 * i, range)),
              static_cast<std::uint32_t>(
                  par::rand_range(seed, 3 * i + 1, range)),
              static_cast<std::uint32_t>(
                  par::rand_range(seed, 3 * i + 2, range))};
  });
  return pts;
}

inline std::vector<app::point3d> varden_points_3d(std::size_t n,
                                                  std::size_t num_clusters,
                                                  std::uint32_t coord_bits,
                                                  std::uint64_t seed = 24) {
  const std::uint64_t range = 1ull << coord_bits;
  if (num_clusters == 0) num_clusters = 1;
  std::vector<app::point3d> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const std::uint64_t c =
        zipf_key(seed, i, 1.1, num_clusters, 64) % num_clusters;
    const int rbits = static_cast<int>(
        par::rand_range(seed + 2, c, 9)) + static_cast<int>(coord_bits) - 12;
    const std::uint64_t radius = 1ull << std::max(1, rbits);
    std::uint32_t xyz[3];
    for (int d = 0; d < 3; ++d) {
      const std::uint64_t cd = par::rand_range(seed + 1, 3 * c + static_cast<std::uint64_t>(d), range);
      const std::uint64_t dd = par::rand_range(seed + 3, 3 * i + static_cast<std::uint64_t>(d), 2 * radius);
      xyz[d] = static_cast<std::uint32_t>((cd + dd) % range);
    }
    pts[i] = {xyz[0], xyz[1], xyz[2]};
  });
  return pts;
}

}  // namespace dovetail::gen
