// Synthetic input distributions from Sec 6 of the paper:
//   Unif-μ : uniform over μ distinct keys, spread over the full key range
//   Exp-λ  : key frequencies follow an exponential distribution with rate
//            1e-5·λ (larger λ => heavier duplicates)
//   Zipf-s : Zipfian with exponent s (larger s => heavier duplicates)
//   BExp-t : "bit-exponential" adversarial input — every bit of the key is
//            0 with probability 1/t, else 1 (controls the *bitwise*
//            encoding, producing wildly uneven MSD zones; Sec 6.1)
//
// All generators are deterministic functions of (seed, index), so data can
// be generated in parallel with no races. Unif/Exp/Zipf keys are passed
// through a 64-bit bijective hash and masked to the target width, which
// spreads them over the full range [r] while preserving the duplicate
// structure (the paper: "we map the keys to larger ranges, up to 2^32 or
// 2^64"). BExp keys are used raw since their bit pattern is the point.
//
// Zipf uses the bounded-Pareto inverse-CDF approximation of the discrete
// Zipf distribution (O(1) per sample): rank = x rounded down where x has
// density ∝ x^-s on [1, U]. This preserves the rank-frequency skew the
// experiments depend on.
#pragma once

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "dovetail/core/key_codec.hpp"
#include "dovetail/parallel/parallel_for.hpp"
#include "dovetail/parallel/random.hpp"
#include "dovetail/util/bits.hpp"
#include "dovetail/util/record.hpp"

namespace dovetail::gen {

enum class dist_kind { uniform, exponential, zipfian, bexp };

struct distribution {
  dist_kind kind;
  double param;      // μ for uniform, λ-multiplier for exp, s for zipf, t for bexp
  std::string name;  // e.g. "Unif-1e5"
};

// The 20 instances of Tab 3 (5 per family, light -> heavy duplicates).
inline std::vector<distribution> paper_distributions() {
  return {
      {dist_kind::uniform, 1e9, "Unif-1e9"},
      {dist_kind::uniform, 1e7, "Unif-1e7"},
      {dist_kind::uniform, 1e5, "Unif-1e5"},
      {dist_kind::uniform, 1e3, "Unif-1e3"},
      {dist_kind::uniform, 10, "Unif-10"},
      {dist_kind::exponential, 1, "Exp-1"},
      {dist_kind::exponential, 2, "Exp-2"},
      {dist_kind::exponential, 5, "Exp-5"},
      {dist_kind::exponential, 7, "Exp-7"},
      {dist_kind::exponential, 10, "Exp-10"},
      {dist_kind::zipfian, 0.6, "Zipf-0.6"},
      {dist_kind::zipfian, 0.8, "Zipf-0.8"},
      {dist_kind::zipfian, 1.0, "Zipf-1"},
      {dist_kind::zipfian, 1.2, "Zipf-1.2"},
      {dist_kind::zipfian, 1.5, "Zipf-1.5"},
      {dist_kind::bexp, 10, "BExp-10"},
      {dist_kind::bexp, 30, "BExp-30"},
      {dist_kind::bexp, 50, "BExp-50"},
      {dist_kind::bexp, 100, "BExp-100"},
      {dist_kind::bexp, 300, "BExp-300"},
  };
}

inline std::vector<distribution> standard_distributions() {
  auto all = paper_distributions();
  return {all.begin(), all.begin() + 15};
}

// One-line family descriptions, shared by error messages and catalogs
// (bench_suite --list, dtsort_cli).
struct family_info {
  dist_kind kind;
  std::string_view prefix;     // the canonical "Family-param" prefix
  std::string_view param;      // what the parameter means
  std::string_view description;
};

inline std::span<const family_info> distribution_families() {
  static const family_info families[] = {
      {dist_kind::uniform, "Unif", "mu",
       "uniform over mu distinct keys, hashed over the full key range"},
      {dist_kind::exponential, "Exp", "lambda",
       "exponential key frequencies with rate 1e-5*lambda (larger = "
       "heavier duplicates)"},
      {dist_kind::zipfian, "Zipf", "s",
       "Zipfian with exponent s (larger = heavier duplicates)"},
      {dist_kind::bexp, "BExp", "t",
       "bit-exponential: each key bit is 0 with probability 1/t "
       "(adversarially uneven MSD zones)"},
  };
  return families;
}

// Named-distribution lookup: parse a "Family-param" name — "Unif-1e7",
// "Exp-5", "Zipf-1.2", "BExp-30" — into a distribution, so benchmarks and
// CLI tools can take instances by the names the paper (and our tables) use.
// Any parameter value is accepted, not just the 20 instances of Tab 3.
//
// Returns nullopt when the name does not parse; if `error` is non-null it
// then receives a message naming the exact failure (missing dash, unknown
// family, bad parameter) — callers surface it so a --dist typo fails loudly
// instead of silently matching nothing.
inline std::optional<distribution> find_distribution(
    std::string_view name, std::string* error = nullptr) {
  const auto fail = [&](std::string why) -> std::optional<distribution> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  const std::size_t dash = name.find('-');
  if (dash == std::string_view::npos || dash + 1 >= name.size())
    return fail("'" + std::string(name) +
                "' is not of the form Family-param (e.g. Unif-1e7, Exp-5, "
                "Zipf-1.2, BExp-30)");
  const std::string_view family = name.substr(0, dash);
  const family_info* match = nullptr;
  for (const family_info& f : distribution_families()) {
    // Case-insensitive prefix match ("unif" and "Unif" both work).
    if (family.size() == f.prefix.size() &&
        std::equal(family.begin(), family.end(), f.prefix.begin(),
                   [](char a, char b) {
                     return std::tolower(static_cast<unsigned char>(a)) ==
                            std::tolower(static_cast<unsigned char>(b));
                   })) {
      match = &f;
      break;
    }
  }
  if (match == nullptr) {
    std::string known;
    for (const family_info& f : distribution_families())
      known += (known.empty() ? "" : ", ") + std::string(f.prefix);
    return fail("unknown distribution family '" + std::string(family) +
                "' (known: " + known + ")");
  }
  const std::string param_str(name.substr(dash + 1));
  char* end = nullptr;
  const double param = std::strtod(param_str.c_str(), &end);
  if (end == param_str.c_str() || *end != '\0' || !(param > 0))
    return fail("bad parameter '" + param_str + "' for family '" +
                std::string(match->prefix) +
                "' (need a positive number, e.g. " +
                std::string(match->prefix) + "-10)");
  return distribution{match->kind, param, std::string(name)};
}

// ---------------------------------------------------------------------------
// Per-index key generators. `key_bits` is 32 or 64.

inline std::uint64_t uniform_key(std::uint64_t seed, std::uint64_t i,
                                 std::uint64_t mu, int key_bits) {
  const std::uint64_t v = par::rand_range(seed, i, mu == 0 ? 1 : mu);
  return par::hash64(v + 1) & low_mask(key_bits);
}

inline std::uint64_t exponential_key(std::uint64_t seed, std::uint64_t i,
                                     double lambda_mult, int key_bits) {
  const double lambda = 1e-5 * lambda_mult;
  const double u = par::rand_double(seed, i);
  const double x = -std::log1p(-u) / lambda;
  const auto v = static_cast<std::uint64_t>(x);
  return par::hash64(v + 1) & low_mask(key_bits);
}

inline std::uint64_t zipf_key(std::uint64_t seed, std::uint64_t i, double s,
                              std::uint64_t universe, int key_bits) {
  const double u = par::rand_double(seed, i);
  const auto umax = static_cast<double>(universe);
  double x;
  if (s > 0.999 && s < 1.001) {
    x = std::pow(umax, u);  // s == 1: inverse CDF of 1/x on [1, U]
  } else {
    const double one_minus_s = 1.0 - s;
    const double t = std::pow(umax, one_minus_s);
    x = std::pow((t - 1.0) * u + 1.0, 1.0 / one_minus_s);
  }
  auto rank = static_cast<std::uint64_t>(x);
  if (rank < 1) rank = 1;
  if (rank > universe) rank = universe;
  return par::hash64(rank) & low_mask(key_bits);
}

inline std::uint64_t bexp_key(std::uint64_t seed, std::uint64_t i, double t,
                              int key_bits) {
  // Bit is 0 with probability 1/t. 16-bit thresholds give < 0.01% error for
  // the paper's t in [10, 300]; 4 bits are drawn per hash call.
  const auto threshold =
      static_cast<std::uint32_t>(65536.0 / t + 0.5);
  std::uint64_t key = 0;
  int produced = 0;
  std::uint64_t chunk_idx = 0;
  while (produced < key_bits) {
    std::uint64_t r = par::rand_at(seed ^ 0xBE9Full, i * 16 + chunk_idx++);
    for (int c = 0; c < 4 && produced < key_bits; ++c) {
      const auto v = static_cast<std::uint32_t>((r >> (16 * c)) & 0xFFFF);
      const std::uint64_t bit = v < threshold ? 0 : 1;
      key |= bit << produced;
      ++produced;
    }
  }
  return key;
}

inline std::uint64_t make_key(const distribution& d, std::uint64_t seed,
                              std::uint64_t i, std::uint64_t n,
                              int key_bits) {
  switch (d.kind) {
    case dist_kind::uniform:
      return uniform_key(seed, i, static_cast<std::uint64_t>(d.param),
                         key_bits);
    case dist_kind::exponential:
      return exponential_key(seed, i, d.param, key_bits);
    case dist_kind::zipfian:
      return zipf_key(seed, i, d.param, n == 0 ? 1 : n, key_bits);
    case dist_kind::bexp:
      return bexp_key(seed, i, d.param, key_bits);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Bulk generation into records (keys only, or key+value pairs where the
// value records the input index — handy for stability checks).

template <typename K>
std::vector<K> generate_keys(const distribution& d, std::size_t n,
                             std::uint64_t seed = 1) {
  static_assert(std::is_unsigned_v<K>);
  constexpr int kb = static_cast<int>(sizeof(K) * 8);
  std::vector<K> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i] = static_cast<K>(make_key(d, seed, i, n, kb));
  });
  return out;
}

template <typename Rec>
std::vector<Rec> generate_records(const distribution& d, std::size_t n,
                                  std::uint64_t seed = 1) {
  using K = decltype(Rec{}.key);
  constexpr int kb = static_cast<int>(sizeof(K) * 8);
  std::vector<Rec> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i].key = static_cast<K>(make_key(d, seed, i, n, kb));
    out[i].value = static_cast<decltype(Rec{}.value)>(i);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Typed-key generation (the codec families of key_codec.hpp): every
// frequency family above, pushed into signed, floating-point or composite
// key domains. The unsigned key stream is mapped through an injective
// transform (the codec's decode where possible), so the family's duplicate
// structure carries over unchanged — a Zipf-1.2 stream of floats has the
// same rank-frequency skew as the Zipf-1.2 stream of uint32s.
//
// Floats: a hashed key's raw bit pattern can be an Inf or NaN; the map
// clamps the exponent below all-ones so every generated float is FINITE
// (benchmark comparators stay a strict weak order under operator<; the
// merged patterns cost a negligible sliver of the distribution). Property
// tests build their own NaN inputs to exercise the documented NaN policy.

template <typename T>
T typed_key_from(std::uint64_t u) {
  if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    using enc = typename key_codec<T>::encoded_t;
    return key_codec<T>::decode(static_cast<enc>(u));
  } else if constexpr (std::is_same_v<T, float>) {
    auto b = static_cast<std::uint32_t>(u);
    if (((b >> 23) & 0xFFu) == 0xFFu) b &= ~(std::uint32_t{1} << 30);
    return std::bit_cast<float>(b);
  } else if constexpr (std::is_same_v<T, double>) {
    std::uint64_t b = u;
    if (((b >> 52) & 0x7FFull) == 0x7FFull) b &= ~(std::uint64_t{1} << 62);
    return std::bit_cast<double>(b);
  } else if constexpr (std::is_same_v<
                           T, std::pair<std::uint32_t, std::uint32_t>>) {
    return {static_cast<std::uint32_t>(u >> 32),
            static_cast<std::uint32_t>(u)};
  } else {
    static_assert(std::is_unsigned_v<T>,
                  "typed_key_from: unsupported key domain");
    return static_cast<T>(u);
  }
}

// sizeof(T) in bits doubles as the width of the underlying unsigned stream
// for every supported domain (pair<u32,u32> = 8 bytes = the 64-bit stream).
template <typename T>
std::vector<T> generate_typed_keys(const distribution& d, std::size_t n,
                                   std::uint64_t seed = 1) {
  constexpr int kb = static_cast<int>(sizeof(T) * 8);
  std::vector<T> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i] = typed_key_from<T>(make_key(d, seed, i, n, kb));
  });
  return out;
}

// (typed key, value = input index) records — the stability witness shape
// of generate_records for any codec-covered key domain.
template <typename T>
std::vector<tkv<T>> generate_typed_records(const distribution& d,
                                           std::size_t n,
                                           std::uint64_t seed = 1) {
  constexpr int kb = static_cast<int>(sizeof(T) * 8);
  std::vector<tkv<T>> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i].key = typed_key_from<T>(make_key(d, seed, i, n, kb));
    out[i].value = static_cast<std::uint32_t>(i);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Wide-key generation (the wide families of core/wide_sort.hpp): the u64
// frequency stream mapped INJECTIVELY into >64-bit domains, so the
// family's duplicate structure carries over unchanged. `hi_bits` controls
// how much of the stream's entropy reaches the most significant encoded
// word: word 0 is a hash of the value's top hi_bits bits, so ~2^(64 -
// hi_bits) distinct stream values share each word-0 value and the refine
// driver must actually recurse into equal-prefix segments (hi_bits = 0
// makes word 0 constant — one all-equal top-level segment; 64 separates
// every key at word 0 — singleton segments, no refinement). The low word
// is a bijective hash of the full value, which keeps the map injective.

template <typename K>
K wide_key_from(std::uint64_t u, int hi_bits = 16) {
  const std::uint64_t top =
      hi_bits >= 64 ? u : hi_bits <= 0 ? 0 : (u >> (64 - hi_bits));
  const std::uint64_t hi = par::hash64(top + 1);
  const std::uint64_t lo = par::hash64(u + 0x9E37u);
  if constexpr (std::is_same_v<K,
                               std::pair<std::uint64_t, std::uint64_t>>) {
    return {hi, lo};
  } else {
#if defined(__SIZEOF_INT128__)
    static_assert(std::is_same_v<K, unsigned __int128>,
                  "wide_key_from: unsupported wide key domain");
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
#else
    static_assert(sizeof(K) == 0, "wide_key_from: no 128-bit integer type");
#endif
  }
}

// (wide key, value = input index) records — the stability witness shape
// for the wide entry points. K is pair<u64, u64> or unsigned __int128.
template <typename K>
std::vector<tkv<K>> generate_wide_records(const distribution& d,
                                          std::size_t n,
                                          std::uint64_t seed = 1,
                                          int hi_bits = 16) {
  std::vector<tkv<K>> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i].key = wide_key_from<K>(make_key(d, seed, i, n, 64), hi_bits);
    out[i].value = static_cast<std::uint32_t>(i);
  });
  return out;
}

// String keys with the same injective-map discipline, shaped to exercise
// every stage of the prefix codec (key_codec.hpp):
//   bytes 0-7   "key-XXX-" — a tag from the value's top `tag_bits` bits,
//               so word 0 discriminates only coarsely (default 2^12
//               distinct word-0 values);
//   bytes 8-23  16 hex digits of the full value — injective; the later
//               digits lie BEYOND the materialized prefix window, so
//               values sharing their top bits tie on the whole prefix and
//               exercise the driver's beyond-the-prefix machinery
//               (continuation or tie-break);
//   tail        0-4 extra characters (value-dependent), so equal-prefix
//               groups mix lengths.
inline std::string string_key_from(std::uint64_t u, int tag_bits = 12) {
  constexpr char hexd[] = "0123456789abcdef";
  std::string s;
  s.reserve(28);
  s += "key-";
  const std::uint64_t tag = tag_bits <= 0 ? 0 : u >> (64 - tag_bits);
  for (int sh = 8; sh >= 0; sh -= 4)
    s += hexd[(tag >> sh) & 0xF];
  s += '-';
  for (int sh = 60; sh >= 0; sh -= 4)
    s += hexd[(u >> sh) & 0xF];
  const std::size_t tail = u % 5;
  for (std::size_t t = 0; t < tail; ++t)
    s += static_cast<char>('a' + ((u >> (4 * t)) & 0xF));
  return s;
}

inline std::vector<std::string> generate_string_keys(const distribution& d,
                                                     std::size_t n,
                                                     std::uint64_t seed = 1,
                                                     int tag_bits = 12) {
  std::vector<std::string> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    out[i] = string_key_from(make_key(d, seed, i, n, 64), tag_bits);
  });
  return out;
}

// Long-common-prefix string keys — the URL/file-path/log-key shape that
// degenerates a prefix-only engine to per-key comparisons, and the input
// of the wide-str-lcp bench family and the string engine's continuation
// tests. Every key starts with the SAME `common_prefix`-byte printable
// prefix (deterministic in `seed`), followed by 16 hex digits of the u64
// frequency stream (injective, so the distribution's duplicate structure
// carries over) and a 0-4 character value-dependent tail that mixes
// lengths. A ~1-in-64 slice of keys instead STOPS at a value-dependent
// point inside the FIRST 16 bytes of the shared prefix — each a strict
// prefix of every full key (the adversarial NUL-extension shape), with
// lengths straddling the 7-byte word and 14-byte window boundaries, so
// equal-prefix segments mix ended and continuing keys right where the
// codec arithmetic is trickiest. Truncation stays shallow on purpose:
// real long-prefix corpora (a shared directory path, a URL host) almost
// never contain the prefix cut at arbitrary depths, so beyond the first
// window the corpus exercises the continuation's tied-window walk rather
// than forcing a splitting radix round per window (arbitrary-depth
// truncation is covered by the string test battery and the LCP fuzz
// arm). common_prefix = 0 degenerates to untagged generate_string_keys.
inline std::vector<std::string> generate_lcp_string_keys(
    const distribution& d, std::size_t n, std::uint64_t seed = 1,
    std::size_t common_prefix = 64) {
  std::string prefix(common_prefix, 'x');
  for (std::size_t i = 0; i < common_prefix; ++i)
    prefix[i] =
        static_cast<char>('a' + par::hash64(seed ^ (0xC0FFEEull + i)) % 26);
  std::vector<std::string> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    constexpr char hexd[] = "0123456789abcdef";
    const std::uint64_t u = make_key(d, seed, i, n, 64);
    std::string& s = out[i];
    if (common_prefix > 0 && (par::hash64(u + 0x51ull) & 63) == 0) {
      const std::size_t cut = std::min<std::size_t>(common_prefix, 16);
      s.assign(prefix, 0, par::hash64(u + 0x1157ull) % cut);
      return;
    }
    s.reserve(common_prefix + 21);
    s = prefix;
    for (int sh = 60; sh >= 0; sh -= 4) s += hexd[(u >> sh) & 0xF];
    const std::size_t tail = u % 5;
    for (std::size_t t = 0; t < tail; ++t)
      s += static_cast<char>('a' + ((u >> (4 * t)) & 0xF));
  });
  return out;
}

// Realistic URL corpus — scheme://host/path keys whose shared-prefix
// structure comes from the DATA rather than a synthetic constant prefix
// (generate_lcp_string_keys): every key starts with one of two schemes
// (word 0 of the prefix codec is nearly constant across the corpus), the
// host is drawn from `num_hosts` names with the distribution's frequency
// skew (a hot host under Zipf puts thousands of keys behind one ~30-byte
// shared prefix — the natural LCP-group shape of real web logs), the
// path opens with vocabulary segments (/v1/users/...) and ends in 16 hex
// digits of the u64 frequency stream plus a resource suffix. Equal
// stream values yield equal URLs and distinct values distinct URLs, so
// the distribution's duplicate structure carries over exactly, like
// every generator above. Lengths mix via the suffix. This is the input
// of the wide-str-url bench row (scenarios_wide.hpp).
inline std::vector<std::string> generate_url_keys(const distribution& d,
                                                  std::size_t n,
                                                  std::uint64_t seed = 1,
                                                  std::size_t num_hosts = 512) {
  static constexpr std::string_view kSubs[] = {"www", "api", "cdn", "img"};
  static constexpr std::string_view kSegs[] = {"users",  "items", "orders",
                                               "assets", "feed",  "search",
                                               "docs",   "static"};
  static constexpr std::string_view kSuffix[] = {"", ".json", ".html", "/"};
  if (num_hosts == 0) num_hosts = 1;
  std::vector<std::string> out(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    constexpr char hexd[] = "0123456789abcdef";
    const std::uint64_t u = make_key(d, seed, i, n, 64);
    // Every field below is a pure function of u (and the fixed seed), so
    // the whole URL is too — duplicates collapse, distinct keys stay
    // distinct via the hex id.
    const std::uint64_t h = par::hash64(u ^ (seed + 0x02bull));
    const std::uint64_t host = h % num_hosts;
    std::string& s = out[i];
    s.reserve(80);
    s += ((h >> 61) & 7) == 0 ? "http://" : "https://";
    s += kSubs[(host >> 7) & 3];
    s += '-';
    for (int sh = 12; sh >= 0; sh -= 4)
      s += hexd[(host >> sh) & 0xF];
    s += ".example.com/v";
    s += static_cast<char>('1' + ((h >> 9) & 1));
    s += '/';
    s += kSegs[(h >> 32) & 7];
    s += '/';
    for (int sh = 60; sh >= 0; sh -= 4) s += hexd[(u >> sh) & 0xF];
    s += kSuffix[(h >> 34) & 3];
  });
  return out;
}

}  // namespace dovetail::gen
