// Public verification helpers: cheap parallel checks that a sort output is
// ordered, and an order-independent fingerprint to confirm the output is a
// permutation of the input. Used by the CLI, the examples and downstream
// users who want a fast post-sort sanity check without a reference sort.
#pragma once

#include <cstdint>
#include <span>

#include "dovetail/parallel/primitives.hpp"
#include "dovetail/parallel/random.hpp"

namespace dovetail {

// True iff key(a[i-1]) <= key(a[i]) for all i. O(n) work, parallel.
template <typename Rec, typename KeyFn>
bool is_sorted_by_key(std::span<const Rec> a, const KeyFn& key) {
  if (a.size() < 2) return true;
  const std::size_t violations = par::reduce_map(
      1, a.size(), std::size_t{0},
      [&](std::size_t i) -> std::size_t {
        return key(a[i - 1]) > key(a[i]) ? 1 : 0;
      },
      [](std::size_t x, std::size_t y) { return x + y; });
  return violations == 0;
}

// Order-independent multiset fingerprint over (key, salt(i)) pairs is NOT
// possible without order; this fingerprints keys only. Two arrays with the
// same key multiset collide deliberately — exactly the permutation check a
// sorter needs. Collisions between different multisets are ~2^-64.
template <typename Rec, typename KeyFn>
std::uint64_t key_multiset_fingerprint(std::span<const Rec> a,
                                       const KeyFn& key) {
  return par::reduce_map(
      0, a.size(), std::uint64_t{0},
      [&](std::size_t i) {
        return par::hash64(static_cast<std::uint64_t>(key(a[i])) ^
                           0x5851F42D4C957F2Dull);
      },
      [](std::uint64_t x, std::uint64_t y) { return x + y; });
}

// Convenience: verify that `after` is a sorted permutation of `before`.
template <typename Rec, typename KeyFn>
bool is_sorted_permutation_of(std::span<const Rec> before,
                              std::span<const Rec> after, const KeyFn& key) {
  return before.size() == after.size() && is_sorted_by_key(after, key) &&
         key_multiset_fingerprint(before, key) ==
             key_multiset_fingerprint(after, key);
}

}  // namespace dovetail
