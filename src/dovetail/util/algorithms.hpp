// Registry of the sorting algorithms compared in the paper (Tab 2), mapped
// to this reproduction's implementations. Used by tests, benchmarks and
// examples to sweep "all algorithms" uniformly.
//
//   dtsort      — DovetailSort (Ours)
//   plis        — plain stable MSD radix (ParlayLib integer sort stand-in)
//   ips2ra      — in-place unstable MSD radix (IPS2Ra / RegionsSort role)
//   lsd         — classic stable LSD radix
//   rd          — buffered LSD radix (RADULS role; paper runs it 64-bit
//                 only, we run it everywhere)
//   plss        — samplesort, unstable variant (PLSS role)
//   ips4o       — samplesort, stable variant w/ equality buckets (IPS4o is
//                 unstable in the paper; our stable variant plays the
//                 "comparison sort that exploits duplicates" role)
//   std_stable  — sequential std::stable_sort (reference)
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dovetail/baselines/buffered_lsd_radix_sort.hpp"
#include "dovetail/baselines/inplace_radix_sort.hpp"
#include "dovetail/baselines/lsd_radix_sort.hpp"
#include "dovetail/baselines/msd_radix_sort.hpp"
#include "dovetail/baselines/sample_sort.hpp"
#include "dovetail/core/dovetail_sort.hpp"

namespace dovetail {

enum class algo {
  dtsort,
  plis,
  ips2ra,
  lsd,
  rd,
  plss,
  ips4o,
  std_stable,
};

inline const char* algo_name(algo a) {
  switch (a) {
    case algo::dtsort: return "DTSort";
    case algo::plis: return "PLIS";
    case algo::ips2ra: return "IPS2Ra";
    case algo::lsd: return "LSD";
    case algo::rd: return "RD";
    case algo::plss: return "PLSS";
    case algo::ips4o: return "IPS4o";
    case algo::std_stable: return "StdStable";
  }
  return "?";
}

inline bool algo_is_stable(algo a) {
  return a == algo::dtsort || a == algo::plis || a == algo::lsd ||
         a == algo::rd || a == algo::ips4o || a == algo::std_stable;
}

inline std::vector<algo> all_parallel_algos() {
  return {algo::dtsort, algo::plis, algo::ips2ra, algo::lsd,
          algo::rd,     algo::plss, algo::ips4o};
}

// Every registered sorter, including the sequential std::stable_sort
// reference — the benchmark suite's sorter axis.
inline std::vector<algo> all_algos() {
  auto v = all_parallel_algos();
  v.push_back(algo::std_stable);
  return v;
}

// Shared execution context for run_sorter: a reusable scratch arena and a
// stats sink, threaded into every implementation that supports them (the
// samplesort variants and std::stable_sort manage their own memory and run
// uninstrumented). Null members are allowed and mean "none".
struct sorter_context {
  sort_workspace* workspace = nullptr;
  sort_stats* stats = nullptr;
};

template <typename Rec, typename KeyFn>
void run_sorter(algo a, std::span<Rec> data, const KeyFn& key,
                const sorter_context& ctx) {
  switch (a) {
    case algo::dtsort: {
      sort_options opt;
      opt.workspace = ctx.workspace;
      opt.stats = ctx.stats;
      dovetail_sort(data, key, opt);
      return;
    }
    case algo::plis: {
      baseline::radix_options opt;
      opt.workspace = ctx.workspace;
      opt.stats = ctx.stats;
      baseline::msd_radix_sort(data, key, opt);
      return;
    }
    case algo::ips2ra: {
      baseline::inplace_radix_options opt;
      opt.workspace = ctx.workspace;
      opt.stats = ctx.stats;
      baseline::inplace_radix_sort(data, key, opt);
      return;
    }
    case algo::lsd: {
      baseline::lsd_options opt;
      opt.workspace = ctx.workspace;
      opt.stats = ctx.stats;
      baseline::lsd_radix_sort(data, key, opt);
      return;
    }
    case algo::rd: {
      baseline::buffered_lsd_options opt;
      opt.workspace = ctx.workspace;
      opt.stats = ctx.stats;
      baseline::buffered_lsd_radix_sort(data, key, opt);
      return;
    }
    case algo::plss: {
      baseline::sample_sort_by_key(data, key, {.stable = false});
      return;
    }
    case algo::ips4o: {
      baseline::sample_sort_by_key(data, key, {.stable = true});
      return;
    }
    case algo::std_stable:
      std::stable_sort(data.begin(), data.end(),
                       [&](const Rec& x, const Rec& y) {
                         return key(x) < key(y);
                       });
      return;
  }
  throw std::invalid_argument("unknown algorithm");
}

template <typename Rec, typename KeyFn>
void run_sorter(algo a, std::span<Rec> data, const KeyFn& key) {
  run_sorter(a, data, key, sorter_context{});
}

}  // namespace dovetail
