// Runtime-dispatched SIMD inner loops (AVX2) with scalar fallbacks that are
// always compiled — one binary runs everywhere (ISSUE 10 tentpole b).
//
// Everything here is keyed off a single `simd::level()` switch:
//   * the base translation unit is compiled for the baseline ISA; the AVX2
//     bodies carry __attribute__((target("avx2"))) so the compiler may emit
//     them without raising the binary's ISA floor, and they are only ever
//     *called* after a runtime __builtin_cpu_supports("avx2") check;
//   * -DDOVETAIL_DISABLE_SIMD removes the AVX2 bodies entirely (the CI job
//     that keeps the scalar fallbacks honest);
//   * force_scalar(true) is the test hook: it flips level() to scalar at
//     runtime so the byte-identity pins (scalar vs SIMD output) can compare
//     both paths inside one process.
//
// Three families of helpers, matching the two hottest loops named by the
// ROADMAP item plus the in-place kernel's histogram:
//   * histogram_u16 / histogram_digit — bucket counting. The vector paths
//     widen 8/16 lanes per load and split the `++count[bucket]` increments
//     across four interleaved sub-histograms (the serial dependency on a
//     repeated bucket is the scalar loop's bottleneck, not the address
//     arithmetic). Counts are exact integer sums, so the result is
//     byte-identical to the scalar loop by construction.
//   * network_sort(u32/u64 span) — in-register Batcher/bitonic sorting
//     networks for tiny pure-key base cases (<= 32 x u32, <= 16 x u64).
//     Pure keys have a unique sorted byte sequence, so any correct network
//     is byte-identical to any correct sort.
//   * stable_network_sort(records, less) — a fixed Batcher schedule over
//     (record, input position): position breaks ties, making the comparator
//     a strict total order, so the network's output is exactly the stable
//     permutation — byte-identical to insertion sort — while executing a
//     data-independent comparator schedule (no branch misprediction on the
//     shuffled segments wide_refine feeds it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#if !defined(DOVETAIL_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DOVETAIL_SIMD_AVX2 1
#include <immintrin.h>
#else
#define DOVETAIL_SIMD_AVX2 0
#endif

namespace dovetail::simd {

enum class isa : std::uint8_t { scalar, avx2 };

inline const char* isa_name(isa l) {
  return l == isa::avx2 ? "avx2" : "scalar";
}

namespace detail {
inline std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> f{false};
  return f;
}
inline bool cpu_has_avx2() {
#if DOVETAIL_SIMD_AVX2
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
#else
  return false;
#endif
}
}  // namespace detail

// Test hook: pretend the CPU has no vector units. Affects level() only —
// cheap enough to flip per test case.
inline void force_scalar(bool on) {
  detail::force_scalar_flag().store(on, std::memory_order_relaxed);
}
inline bool scalar_forced() {
  return detail::force_scalar_flag().load(std::memory_order_relaxed);
}

// The one switch every vector path keys off.
inline isa level() {
  if (scalar_forced()) return isa::scalar;
  return detail::cpu_has_avx2() ? isa::avx2 : isa::scalar;
}

// ---------------------------------------------------------------------------
// Histograms. Contract: ADD into `counts` (callers zero their row first);
// every id / extracted digit must be < num_buckets. Byte-identical to the
// scalar loop on any level().

namespace detail {

// Sub-histogram splitting pays for its zero+merge only when the block is
// long relative to the bucket count, and the stack footprint (4 rows) is
// only acceptable for engine-sized radixes.
inline constexpr std::size_t kSubHistMaxBuckets = 2048;

inline bool want_subhist(std::size_t n, std::size_t num_buckets) {
  return num_buckets <= kSubHistMaxBuckets && n >= 4 * num_buckets;
}

#if DOVETAIL_SIMD_AVX2

__attribute__((target("avx2"))) inline void histogram_u16_avx2(
    const std::uint16_t* ids, std::size_t n, std::size_t* counts,
    std::size_t num_buckets) {
  if (!want_subhist(n, num_buckets)) {
    for (std::size_t i = 0; i < n; ++i) ++counts[ids[i]];
    return;
  }
  std::size_t sub[4][kSubHistMaxBuckets];
  for (auto& row : sub) std::memset(row, 0, num_buckets * sizeof(std::size_t));
  alignas(32) std::uint32_t lane[16];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Widen 2 x 8 u16 lanes to u32, then bump four interleaved rows so a
    // run of equal ids does not serialize on one memory location.
    const __m128i h0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m128i h1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i + 8));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                       _mm256_cvtepu16_epi32(h0));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane + 8),
                       _mm256_cvtepu16_epi32(h1));
    for (int j = 0; j < 16; j += 4) {
      ++sub[0][lane[j + 0]];
      ++sub[1][lane[j + 1]];
      ++sub[2][lane[j + 2]];
      ++sub[3][lane[j + 3]];
    }
  }
  for (; i < n; ++i) ++sub[0][ids[i]];
  for (std::size_t k = 0; k < num_buckets; ++k)
    counts[k] += sub[0][k] + sub[1][k] + sub[2][k] + sub[3][k];
}

__attribute__((target("avx2"))) inline void histogram_digit_u32_avx2(
    const std::uint32_t* keys, std::size_t n, int shift, std::uint32_t mask,
    std::size_t* counts) {
  const std::size_t num_buckets = static_cast<std::size_t>(mask) + 1;
  if (!want_subhist(n, num_buckets)) {
    for (std::size_t i = 0; i < n; ++i) ++counts[(keys[i] >> shift) & mask];
    return;
  }
  std::size_t sub[4][kSubHistMaxBuckets];
  for (auto& row : sub) std::memset(row, 0, num_buckets * sizeof(std::size_t));
  const __m128i sh = _mm_cvtsi32_si128(shift);
  const __m256i msk = _mm256_set1_epi32(static_cast<int>(mask));
  alignas(32) std::uint32_t lane[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                       _mm256_and_si256(_mm256_srl_epi32(v, sh), msk));
    ++sub[0][lane[0]];
    ++sub[1][lane[1]];
    ++sub[2][lane[2]];
    ++sub[3][lane[3]];
    ++sub[0][lane[4]];
    ++sub[1][lane[5]];
    ++sub[2][lane[6]];
    ++sub[3][lane[7]];
  }
  for (; i < n; ++i) ++sub[0][(keys[i] >> shift) & mask];
  for (std::size_t k = 0; k < num_buckets; ++k)
    counts[k] += sub[0][k] + sub[1][k] + sub[2][k] + sub[3][k];
}

__attribute__((target("avx2"))) inline void histogram_digit_u64_avx2(
    const std::uint64_t* keys, std::size_t n, int shift, std::uint64_t mask,
    std::size_t* counts) {
  const std::size_t num_buckets = static_cast<std::size_t>(mask) + 1;
  if (!want_subhist(n, num_buckets)) {
    for (std::size_t i = 0; i < n; ++i) ++counts[(keys[i] >> shift) & mask];
    return;
  }
  std::size_t sub[4][kSubHistMaxBuckets];
  for (auto& row : sub) std::memset(row, 0, num_buckets * sizeof(std::size_t));
  const __m128i sh = _mm_cvtsi32_si128(shift);
  const __m256i msk = _mm256_set1_epi64x(static_cast<long long>(mask));
  alignas(32) std::uint64_t lane[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                       _mm256_and_si256(_mm256_srl_epi64(v0, sh), msk));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane + 4),
                       _mm256_and_si256(_mm256_srl_epi64(v1, sh), msk));
    ++sub[0][lane[0]];
    ++sub[1][lane[1]];
    ++sub[2][lane[2]];
    ++sub[3][lane[3]];
    ++sub[0][lane[4]];
    ++sub[1][lane[5]];
    ++sub[2][lane[6]];
    ++sub[3][lane[7]];
  }
  for (; i < n; ++i) ++sub[0][(keys[i] >> shift) & mask];
  for (std::size_t k = 0; k < num_buckets; ++k)
    counts[k] += sub[0][k] + sub[1][k] + sub[2][k] + sub[3][k];
}

#endif  // DOVETAIL_SIMD_AVX2

}  // namespace detail

// Add one count per id: counts[ids[i]] += 1. The engine's phase-1 loop over
// the materialized bucket-id array (distribute.hpp).
inline void histogram_u16(const std::uint16_t* ids, std::size_t n,
                          std::size_t* counts, std::size_t num_buckets) {
#if DOVETAIL_SIMD_AVX2
  if (level() == isa::avx2) {
    detail::histogram_u16_avx2(ids, n, counts, num_buckets);
    return;
  }
#endif
  (void)num_buckets;
  for (std::size_t i = 0; i < n; ++i) ++counts[ids[i]];
}

// Add one count per extracted digit: counts[(keys[i] >> shift) & mask] += 1.
// The in-place kernel's histogram pass over raw unsigned keys.
inline void histogram_digit(const std::uint32_t* keys, std::size_t n,
                            int shift, std::uint32_t mask,
                            std::size_t* counts) {
#if DOVETAIL_SIMD_AVX2
  if (level() == isa::avx2) {
    detail::histogram_digit_u32_avx2(keys, n, shift, mask, counts);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) ++counts[(keys[i] >> shift) & mask];
}

inline void histogram_digit(const std::uint64_t* keys, std::size_t n,
                            int shift, std::uint64_t mask,
                            std::size_t* counts) {
#if DOVETAIL_SIMD_AVX2
  if (level() == isa::avx2) {
    detail::histogram_digit_u64_avx2(keys, n, shift, mask, counts);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) ++counts[(keys[i] >> shift) & mask];
}

// ---------------------------------------------------------------------------
// Batcher odd-even mergesort comparator schedule, truncated to n wires.
// The network is generated for next_pow2(n) wires; a comparator whose upper
// wire is >= n is a provable no-op against the implicit +infinity padding
// (the max would stay on the missing wire), so it is simply skipped —
// truncation preserves correctness for every n.

namespace detail {

template <typename Emit>
inline void batcher_merge(std::size_t lo, std::size_t cnt, std::size_t r,
                          std::size_t n, const Emit& emit) {
  const std::size_t step = r * 2;
  if (step < cnt) {
    batcher_merge(lo, cnt, step, n, emit);
    batcher_merge(lo + r, cnt, step, n, emit);
    for (std::size_t i = lo + r; i + r < lo + cnt; i += step)
      if (i + r < n) emit(i, i + r);
  } else if (lo + r < n) {
    emit(lo, lo + r);
  }
}

// cnt must be a power of two (the wire count); n is the live prefix.
template <typename Emit>
inline void batcher_sort(std::size_t lo, std::size_t cnt, std::size_t n,
                         const Emit& emit) {
  if (cnt <= 1) return;
  const std::size_t m = cnt / 2;
  batcher_sort(lo, m, n, emit);
  batcher_sort(lo + m, m, n, emit);
  batcher_merge(lo, cnt, 1, n, emit);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// In-register sorting networks for tiny pure-key spans. Return true iff the
// span was sorted here; false means "fall back to the comparison sort"
// (span too long, or level() == scalar). Padding lanes carry the max key
// value: pads sort to the tail, past any real copies of the max, so the
// first n outputs are exactly the sorted input.

#if DOVETAIL_SIMD_AVX2

namespace detail {

template <int Blend>
__attribute__((target("avx2"))) inline __m256i coex_u32(__m256i v,
                                                        __m256i perm) {
  const __m256i ex = _mm256_permutevar8x32_epi32(v, perm);
  const __m256i mn = _mm256_min_epu32(v, ex);
  const __m256i mx = _mm256_max_epu32(v, ex);
  return _mm256_blend_epi32(mn, mx, Blend);
}

// Batcher network for 8 lanes: (0,1)(2,3)(4,5)(6,7) / (0,2)(1,3)(4,6)(5,7)
// / (1,2)(5,6) / (0,4)(1,5)(2,6)(3,7) / (2,4)(3,5) / (1,2)(3,4)(5,6).
__attribute__((target("avx2"))) inline __m256i sort8_u32(__m256i v) {
  v = coex_u32<0xAA>(v, _mm256_setr_epi32(1, 0, 3, 2, 5, 4, 7, 6));
  v = coex_u32<0xCC>(v, _mm256_setr_epi32(2, 3, 0, 1, 6, 7, 4, 5));
  v = coex_u32<0x44>(v, _mm256_setr_epi32(0, 2, 1, 3, 4, 6, 5, 7));
  v = coex_u32<0xF0>(v, _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3));
  v = coex_u32<0x30>(v, _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7));
  v = coex_u32<0x54>(v, _mm256_setr_epi32(0, 2, 1, 4, 3, 6, 5, 7));
  return v;
}

// Clean-up of a bitonic 8-sequence: compare-exchange at distances 4, 2, 1.
__attribute__((target("avx2"))) inline __m256i clean8_u32(__m256i v) {
  v = coex_u32<0xF0>(v, _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3));
  v = coex_u32<0xCC>(v, _mm256_setr_epi32(2, 3, 0, 1, 6, 7, 4, 5));
  v = coex_u32<0xAA>(v, _mm256_setr_epi32(1, 0, 3, 2, 5, 4, 7, 6));
  return v;
}

__attribute__((target("avx2"))) inline __m256i reverse8_u32(__m256i v) {
  return _mm256_permutevar8x32_epi32(
      v, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
}

// Bitonic merge of two sorted vectors: a ++ reverse(b) is bitonic.
__attribute__((target("avx2"))) inline void merge16_u32(__m256i& a,
                                                        __m256i& b) {
  const __m256i rb = reverse8_u32(b);
  const __m256i mn = _mm256_min_epu32(a, rb);
  const __m256i mx = _mm256_max_epu32(a, rb);
  a = clean8_u32(mn);
  b = clean8_u32(mx);
}

__attribute__((target("avx2"))) inline void network_sort_u32_avx2(
    std::uint32_t* buf, std::size_t words) {
  __m256i v0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  if (words == 1) {
    v0 = sort8_u32(v0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), v0);
    return;
  }
  __m256i v1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 8));
  v0 = sort8_u32(v0);
  v1 = sort8_u32(v1);
  merge16_u32(v0, v1);
  if (words > 2) {
    __m256i v2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 16));
    __m256i v3 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 24));
    v2 = sort8_u32(v2);
    v3 = sort8_u32(v3);
    merge16_u32(v2, v3);
    // Merge the two sorted 16s: [v0 v1 rev(v3) rev(v2)] is bitonic; the
    // distance-16 compare is vertical, then each bitonic half merges with
    // a vertical distance-8 compare plus an in-vector clean-up.
    const __m256i r3 = reverse8_u32(v3);
    const __m256i r2 = reverse8_u32(v2);
    const __m256i x0 = _mm256_min_epu32(v0, r3);
    const __m256i ux0 = _mm256_max_epu32(v0, r3);
    const __m256i x1 = _mm256_min_epu32(v1, r2);
    const __m256i ux1 = _mm256_max_epu32(v1, r2);
    v0 = clean8_u32(_mm256_min_epu32(x0, x1));
    v1 = clean8_u32(_mm256_max_epu32(x0, x1));
    v2 = clean8_u32(_mm256_min_epu32(ux0, ux1));
    v3 = clean8_u32(_mm256_max_epu32(ux0, ux1));
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 16), v2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 24), v3);
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf), v0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), v1);
}

// u64: 4 lanes per vector. AVX2 has no unsigned 64-bit min/max, so the
// compare goes through a sign-bit flip + cmpgt_epi64 + blend.
__attribute__((target("avx2"))) inline void minmax_u64(__m256i a, __m256i b,
                                                       __m256i& mn,
                                                       __m256i& mx) {
  const __m256i sgn = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sgn),
                                        _mm256_xor_si256(b, sgn));
  mn = _mm256_blendv_epi8(a, b, gt);
  mx = _mm256_blendv_epi8(b, a, gt);
}

template <int Perm, int Blend>
__attribute__((target("avx2"))) inline __m256i coex_u64(__m256i v) {
  const __m256i ex = _mm256_permute4x64_epi64(v, Perm);
  __m256i mn;
  __m256i mx;
  minmax_u64(v, ex, mn, mx);
  return _mm256_blend_epi32(mn, mx, Blend);
}

// Network for 4 lanes: (0,1)(2,3) / (0,2)(1,3) / (1,2).
__attribute__((target("avx2"))) inline __m256i sort4_u64(__m256i v) {
  v = coex_u64<0xB1, 0xCC>(v);  // perm [1,0,3,2]
  v = coex_u64<0x4E, 0xF0>(v);  // perm [2,3,0,1]
  v = coex_u64<0xD8, 0x30>(v);  // perm [0,2,1,3]
  return v;
}

__attribute__((target("avx2"))) inline __m256i clean4_u64(__m256i v) {
  v = coex_u64<0x4E, 0xF0>(v);  // distance 2
  v = coex_u64<0xB1, 0xCC>(v);  // distance 1
  return v;
}

__attribute__((target("avx2"))) inline __m256i reverse4_u64(__m256i v) {
  return _mm256_permute4x64_epi64(v, 0x1B);  // [3,2,1,0]
}

__attribute__((target("avx2"))) inline void merge8_u64(__m256i& a,
                                                       __m256i& b) {
  const __m256i rb = reverse4_u64(b);
  __m256i mn;
  __m256i mx;
  minmax_u64(a, rb, mn, mx);
  a = clean4_u64(mn);
  b = clean4_u64(mx);
}

__attribute__((target("avx2"))) inline void network_sort_u64_avx2(
    std::uint64_t* buf, std::size_t words) {
  __m256i v0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  if (words == 1) {
    v0 = sort4_u64(v0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), v0);
    return;
  }
  __m256i v1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 4));
  v0 = sort4_u64(v0);
  v1 = sort4_u64(v1);
  merge8_u64(v0, v1);
  if (words > 2) {
    __m256i v2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 8));
    __m256i v3 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 12));
    v2 = sort4_u64(v2);
    v3 = sort4_u64(v3);
    merge8_u64(v2, v3);
    const __m256i r3 = reverse4_u64(v3);
    const __m256i r2 = reverse4_u64(v2);
    __m256i x0;
    __m256i ux0;
    __m256i x1;
    __m256i ux1;
    minmax_u64(v0, r3, x0, ux0);
    minmax_u64(v1, r2, x1, ux1);
    __m256i mn;
    __m256i mx;
    minmax_u64(x0, x1, mn, mx);
    v0 = clean4_u64(mn);
    v1 = clean4_u64(mx);
    minmax_u64(ux0, ux1, mn, mx);
    v2 = clean4_u64(mn);
    v3 = clean4_u64(mx);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), v2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 12), v3);
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf), v0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 4), v1);
}

}  // namespace detail

#endif  // DOVETAIL_SIMD_AVX2

inline bool network_sort(std::span<std::uint32_t> a) {
  const std::size_t n = a.size();
  if (n > 32 || level() != isa::avx2) return false;
  if (n < 2) return true;
#if DOVETAIL_SIMD_AVX2
  alignas(32) std::uint32_t buf[32];
  const std::size_t words = (n + 7) / 8;
  // Pad the whole buffer: the kernel's words > 2 branch runs all four
  // vectors, so words == 3 still reads buf[24..31].
  std::memset(buf, 0xFF, sizeof(buf));
  std::memcpy(buf, a.data(), n * sizeof(std::uint32_t));
  detail::network_sort_u32_avx2(buf, words);
  std::memcpy(a.data(), buf, n * sizeof(std::uint32_t));
  return true;
#else
  return false;
#endif
}

inline bool network_sort(std::span<std::uint64_t> a) {
  const std::size_t n = a.size();
  if (n > 16 || level() != isa::avx2) return false;
  if (n < 2) return true;
#if DOVETAIL_SIMD_AVX2
  alignas(32) std::uint64_t buf[16];
  const std::size_t words = (n + 3) / 4;
  // Pad the whole buffer (see the u32 overload: words == 3 reads all four).
  std::memset(buf, 0xFF, sizeof(buf));
  std::memcpy(buf, a.data(), n * sizeof(std::uint64_t));
  detail::network_sort_u64_avx2(buf, words);
  std::memcpy(a.data(), buf, n * sizeof(std::uint64_t));
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Stable sorting network over generic records: a fixed Batcher schedule on
// an index permutation with position-breaks-ties ordering. Returns true iff
// it sorted (n <= 16, trivially-copyable records, SIMD level on); the
// caller keeps its insertion sort as the fallback — and because the
// tie-broken comparator is a strict total order, both paths produce the
// identical byte sequence.
template <typename Rec, typename Less>
inline bool stable_network_sort(std::span<Rec> a, const Less& less) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  const std::size_t n = a.size();
  if (n > 16 || level() == isa::scalar) return false;
  if (n < 2) return true;
  // Fast path: wide_refine's segments are usually runs of equal keys — a
  // sortedness scan is n-1 compares vs the network's fixed ~4n.
  bool sorted = true;
  for (std::size_t i = 1; i < n; ++i)
    if (less(a[i], a[i - 1])) {
      sorted = false;
      break;
    }
  if (sorted) return true;
  std::uint8_t idx[16];
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint8_t>(i);
  std::size_t p2 = 1;
  while (p2 < n) p2 <<= 1;
  detail::batcher_sort(0, p2, n, [&](std::size_t i, std::size_t j) {
    const std::uint8_t x = idx[i];
    const std::uint8_t y = idx[j];
    // Strict total order: key order, then original position.
    const bool y_first = less(a[y], a[x]) || (!less(a[x], a[y]) && y < x);
    if (y_first) {
      idx[i] = y;
      idx[j] = x;
    }
  });
  alignas(alignof(Rec)) unsigned char raw[16 * sizeof(Rec)];
  Rec* tmp = reinterpret_cast<Rec*>(raw);
  for (std::size_t k = 0; k < n; ++k)
    std::memcpy(tmp + k, &a[idx[k]], sizeof(Rec));
  std::memcpy(a.data(), tmp, n * sizeof(Rec));
  return true;
}

}  // namespace dovetail::simd
