// Record types used throughout tests, benchmarks and examples: the paper
// evaluates on (32-bit key, 32-bit value) and (64-bit key, 64-bit value)
// pairs (Tab 3).
#pragma once

#include <cstdint>

namespace dovetail {

struct kv32 {
  std::uint32_t key;
  std::uint32_t value;
  friend bool operator==(const kv32&, const kv32&) = default;
};

struct kv64 {
  std::uint64_t key;
  std::uint64_t value;
  friend bool operator==(const kv64&, const kv64&) = default;
};

static_assert(sizeof(kv32) == 8);
static_assert(sizeof(kv64) == 16);

inline constexpr auto key_of_kv32 = [](const kv32& r) { return r.key; };
inline constexpr auto key_of_kv64 = [](const kv64& r) { return r.key; };

}  // namespace dovetail
