// Record types used throughout tests, benchmarks and examples: the paper
// evaluates on (32-bit key, 32-bit value) and (64-bit key, 64-bit value)
// pairs (Tab 3); kv32w adds a wide "database row" shape so the benchmark
// suite can sweep payload size (record bytes moved per key compared).
#pragma once

#include <cstdint>

namespace dovetail {

struct kv32 {
  std::uint32_t key;
  std::uint32_t value;
  friend bool operator==(const kv32&, const kv32&) = default;
};

struct kv64 {
  std::uint64_t key;
  std::uint64_t value;
  friend bool operator==(const kv64&, const kv64&) = default;
};

// Wide record: 32-bit key, 32-bit value, 24 bytes of inert payload — a
// 32-byte row. Same key/value layout contract as kv32 (generators fill
// key + value; value = input index), 4x the bytes per scatter.
struct kv32w {
  std::uint32_t key;
  std::uint32_t value;
  std::uint32_t payload[6];
  friend bool operator==(const kv32w&, const kv32w&) = default;
};

static_assert(sizeof(kv32) == 8);
static_assert(sizeof(kv64) == 16);
static_assert(sizeof(kv32w) == 32);

inline constexpr auto key_of_kv32 = [](const kv32& r) { return r.key; };
inline constexpr auto key_of_kv64 = [](const kv64& r) { return r.key; };
inline constexpr auto key_of_kv32w = [](const kv32w& r) { return r.key; };

// Generic typed-key record for the codec entry points (core/key_codec.hpp):
// any codec-covered key type plus the 32-bit stability-witness value
// (generators fill value = input index, like the kv* shapes).
template <typename K>
struct tkv {
  K key;
  std::uint32_t value;
  friend bool operator==(const tkv&, const tkv&) = default;
};

template <typename K>
inline constexpr auto key_of_tkv = [](const tkv<K>& r) { return r.key; };

// The value side of a kv32w row split SoA-style: everything but the key
// (28 bytes). sort_by_key(u32 keys, row28 values) is the SoA counterpart
// of sorting kv32w records, measured by the bench_suite codec-soa family.
struct row28 {
  std::uint32_t value;
  std::uint32_t payload[6];
  friend bool operator==(const row28&, const row28&) = default;
};

static_assert(sizeof(row28) == 28);

}  // namespace dovetail
