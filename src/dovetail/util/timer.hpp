// Wall-clock timer used by examples and the benchmark harness.
#pragma once

#include <chrono>

namespace dovetail {

class timer {
 public:
  timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dovetail
