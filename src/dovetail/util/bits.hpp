// Small bit-manipulation helpers shared by the radix sorts.
#pragma once

#include <bit>
#include <cstdint>

namespace dovetail {

// Number of bits needed to represent x (0 for x == 0).
constexpr int bit_width_u64(std::uint64_t x) noexcept {
  return std::bit_width(x);
}

// Mask with the low `bits` bits set; bits in [0, 64].
constexpr std::uint64_t low_mask(int bits) noexcept {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

constexpr std::uint64_t floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : static_cast<std::uint64_t>(std::bit_width(x) - 1);
}

constexpr std::uint64_t ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : static_cast<std::uint64_t>(std::bit_width(x - 1));
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : 1ull << ceil_log2(x);
}

}  // namespace dovetail
