#!/usr/bin/env python3
"""CI gate for the repo's documentation (docs job in ci.yml).

Verifies, over every Markdown file at the repo root and under docs/:

  * intra-repo markdown links `[text](path)` resolve — the target file or
    directory exists (external http(s)/mailto links and pure #anchors are
    skipped; a #fragment on a local target is stripped before checking);
  * `file:line`-style code references in backticks (e.g.
    `src/dovetail/core/auto_sort.hpp:42`) resolve — the file exists,
    relative to the repo root, and has at least that many lines;
  * bare backticked file references to source/doc files (e.g.
    `bench/harness.hpp`) resolve.

Exit status 0 iff every reference resolves; otherwise each failure is
printed as file:line: message and the exit status is 1.

Usage: python3 tools/check_docs_links.py [repo_root]
"""
import re
import sys
from pathlib import Path

# [text](target) — non-greedy target up to the first closing paren.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/to/file.ext:123` inside backticks.
CODE_LINE_REF = re.compile(
    r"`([A-Za-z0-9_./-]+\.(?:hpp|cpp|h|c|py|md|json|yml|yaml|txt)):(\d+)`")
# `path/to/file.ext` inside backticks (no :line). Only multi-component
# paths: a bare `file.hpp` is prose shorthand, not a checkable reference.
CODE_FILE_REF = re.compile(
    r"`([A-Za-z0-9_-]+(?:/[A-Za-z0-9_.-]+)+\."
    r"(?:hpp|cpp|h|c|py|md|json|yml|yaml))`")

EXTERNAL = ("http://", "https://", "mailto:")

# Append-only history and driver artifacts: their references describe past
# states of the tree and are allowed to rot.
SKIP = {"CHANGES.md", "ISSUE.md"}


def doc_files(root: Path):
    yield from (p for p in sorted(root.glob("*.md")) if p.name not in SKIP)
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def resolve_code_path(root: Path, path: str):
    """Resolve a code reference: repo-relative, or the established
    `core/...` / `baselines/...` shorthand for src/dovetail/...; None if
    neither exists."""
    for base in (root, root / "src" / "dovetail"):
        candidate = (base / path).resolve()
        if candidate.exists():
            return candidate
    return None


def check_file(root: Path, md: Path):
    failures = []
    text = md.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        # Fenced code blocks hold illustrative examples, not references;
        # checking them would fail CI on hypothetical paths in snippets.
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in MD_LINK.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    (md, lineno, f"broken link '{target}' "
                                 f"(resolved to {resolved})"))
        for m in CODE_LINE_REF.finditer(line):
            path, ref_line = m.group(1), int(m.group(2))
            resolved = resolve_code_path(root, path)
            if resolved is None or not resolved.is_file():
                failures.append(
                    (md, lineno, f"code reference '{path}:{ref_line}': "
                                 f"file does not exist"))
                continue
            n_lines = len(resolved.read_text(
                encoding="utf-8", errors="replace").splitlines())
            if ref_line < 1 or ref_line > n_lines:
                failures.append(
                    (md, lineno,
                     f"code reference '{path}:{ref_line}': file has only "
                     f"{n_lines} lines"))
        # Strip :line refs first so the bare-file pattern does not re-match.
        bare = CODE_LINE_REF.sub("", line)
        for m in CODE_FILE_REF.finditer(bare):
            path = m.group(1)
            if resolve_code_path(root, path) is None:
                failures.append(
                    (md, lineno, f"file reference '{path}' does not exist"))
    return failures


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    failures = []
    checked = 0
    for md in doc_files(root):
        checked += 1
        failures.extend(check_file(root, md))
    for md, lineno, msg in failures:
        print(f"{md.relative_to(root)}:{lineno}: {msg}")
    print(f"check_docs_links: {checked} files checked, "
          f"{len(failures)} broken reference(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
