// dtsort — command-line front end for the library.
//
// Subcommands:
//   gen  --dist <name> --n <count> [--bits 32|64] [--seed S] -o file.bin
//        Generate a synthetic key/value dataset to a binary file.
//        <name>: unif-<mu> | exp-<lambda> | zipf-<s> | bexp-<t>
//   sort -i file.bin [--bits 32|64] [--algo dtsort|plis|ips2ra|lsd|rd|plss|ips4o]
//        [--verify] [--stats] [-o out.bin]
//        Sort a dataset file; optionally verify, print work stats, write out.
//   bench -i file.bin [--bits 32|64] [--reps R]
//        Time every algorithm on the file and print a comparison table.
//
// File format: u64 record count, u32 key bits, then packed kv32/kv64
// records (key, value).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "dovetail/core/sort_stats.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/parallel/scheduler.hpp"
#include "dovetail/util/algorithms.hpp"
#include "dovetail/util/record.hpp"
#include "dovetail/util/timer.hpp"

namespace {

using namespace dovetail;
namespace gen = dovetail::gen;

struct args_map {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  [[nodiscard]] const char* get(const std::string& key,
                                const char* dflt = nullptr) const {
    for (const auto& [k, v] : options)
      if (k == key) return v.c_str();
    return dflt;
  }
};

bool is_flag(const std::string& key) {
  return key == "verify" || key == "stats";
}

args_map parse_args(int argc, char** argv) {
  args_map out;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0 || (a.size() == 2 && a[0] == '-')) {
      std::string key = a.substr(a.rfind('-') + 1);
      if (is_flag(key)) {
        out.options.emplace_back(key, "1");
      } else {
        std::string val = i + 1 < argc ? argv[i + 1] : "";
        out.options.emplace_back(key, val);
        ++i;
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

bool parse_dist(const std::string& s, gen::distribution& out) {
  // The shared name lookup (case-insensitive families, per-failure error
  // messages — the same catalog bench_suite --list prints).
  std::string err;
  const auto d = gen::find_distribution(s, &err);
  if (!d.has_value()) {
    std::fprintf(stderr, "bad --dist: %s\n", err.c_str());
    return false;
  }
  out = *d;
  return true;
}

bool parse_algo(const std::string& s, algo& out) {
  for (algo a : all_parallel_algos())
    if (s == algo_name(a) || (s == "dtsort" && a == algo::dtsort) ||
        (s == "plis" && a == algo::plis) ||
        (s == "ips2ra" && a == algo::ips2ra) || (s == "lsd" && a == algo::lsd) ||
        (s == "rd" && a == algo::rd) || (s == "plss" && a == algo::plss) ||
        (s == "ips4o" && a == algo::ips4o)) {
      out = a;
      return true;
    }
  return false;
}

template <typename Rec>
bool write_file(const std::string& path, std::span<const Rec> recs,
                std::uint32_t key_bits) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::uint64_t n = recs.size();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(&key_bits), sizeof(key_bits));
  f.write(reinterpret_cast<const char*>(recs.data()),
          static_cast<std::streamsize>(n * sizeof(Rec)));
  return static_cast<bool>(f);
}

bool read_header(std::ifstream& f, std::uint64_t& n, std::uint32_t& bits) {
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  f.read(reinterpret_cast<char*>(&bits), sizeof(bits));
  return static_cast<bool>(f) && (bits == 32 || bits == 64);
}

template <typename Rec>
std::vector<Rec> read_records(std::ifstream& f, std::uint64_t n) {
  std::vector<Rec> recs(n);
  f.read(reinterpret_cast<char*>(recs.data()),
         static_cast<std::streamsize>(n * sizeof(Rec)));
  return recs;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dtsort gen  --dist unif-1e5|exp-5|zipf-1.2|bexp-100 --n N\n"
      "              [--bits 32|64] [--seed S] -o file.bin\n"
      "  dtsort sort -i file.bin [--algo dtsort|plis|ips2ra|lsd|rd|plss|ips4o]\n"
      "              [--verify] [--stats] [-o out.bin]\n"
      "  dtsort bench -i file.bin [--reps R]\n");
  return 2;
}

template <typename Rec, typename KeyFn>
int do_sort(std::vector<Rec> recs, const KeyFn& key, const args_map& args,
            std::uint32_t bits) {
  algo a = algo::dtsort;
  if (const char* s = args.get("algo"); s != nullptr && !parse_algo(s, a)) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", s);
    return 2;
  }
  sort_stats st;
  timer t;
  if (a == algo::dtsort && args.get("stats") != nullptr) {
    sort_options opt;
    opt.stats = &st;
    dovetail_sort(std::span<Rec>(recs), key, opt);
  } else {
    run_sorter(a, std::span<Rec>(recs), key);
  }
  const double secs = t.seconds();
  std::printf("%s: sorted %zu records (%u-bit keys) in %.3fs (%.1f M/s)\n",
              algo_name(a), recs.size(), bits, secs,
              static_cast<double>(recs.size()) / secs / 1e6);
  if (args.get("stats") != nullptr && a == algo::dtsort) {
    const double n = static_cast<double>(recs.size());
    std::printf("  levels=%.2f heavy=%.1f%% base=%.1f%% depth=%llu\n",
                static_cast<double>(st.distributed_records.load()) / n,
                100.0 * static_cast<double>(st.heavy_records.load()) / n,
                100.0 * static_cast<double>(st.base_case_records.load()) / n,
                static_cast<unsigned long long>(st.max_depth.load()));
  }
  if (args.get("verify") != nullptr) {
    for (std::size_t i = 1; i < recs.size(); ++i) {
      if (key(recs[i - 1]) > key(recs[i])) {
        std::printf("  VERIFY FAILED at %zu\n", i);
        return 1;
      }
    }
    std::printf("  verified sorted\n");
  }
  if (const char* out = args.get("o"); out != nullptr) {
    if (!write_file<Rec>(out, recs, bits)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 1;
    }
    std::printf("  wrote %s\n", out);
  }
  return 0;
}

template <typename Rec, typename KeyFn>
int do_bench(const std::vector<Rec>& recs, const KeyFn& key,
             const args_map& args, std::uint32_t bits) {
  const int reps = std::max(1, std::atoi(args.get("reps", "3")));
  std::printf("benchmarking %zu records (%u-bit keys), %d reps, %d threads\n",
              recs.size(), bits, reps, par::num_workers());
  std::vector<Rec> work(recs.size());
  for (algo a : all_parallel_algos()) {
    std::vector<double> times;
    for (int r = 0; r < reps; ++r) {
      std::copy(recs.begin(), recs.end(), work.begin());
      timer t;
      run_sorter(a, std::span<Rec>(work), key);
      times.push_back(t.seconds());
    }
    std::sort(times.begin(), times.end());
    std::printf("  %-8s %.3fs\n", algo_name(a), times[times.size() / 2]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const args_map args = parse_args(argc, argv);

  if (cmd == "gen") {
    gen::distribution d{};
    const char* ds = args.get("dist");
    const char* ns = args.get("n");
    const char* out = args.get("o");
    if (ds == nullptr || ns == nullptr || out == nullptr ||
        !parse_dist(ds, d))
      return usage();
    const auto n = static_cast<std::size_t>(std::strtod(ns, nullptr));
    const auto seed =
        static_cast<std::uint64_t>(std::strtoull(args.get("seed", "1"),
                                                 nullptr, 10));
    const int bits = std::atoi(args.get("bits", "32"));
    bool ok = false;
    if (bits == 32) {
      auto recs = gen::generate_records<dovetail::kv32>(d, n, seed);
      ok = write_file<dovetail::kv32>(out, recs, 32);
    } else if (bits == 64) {
      auto recs = gen::generate_records<dovetail::kv64>(d, n, seed);
      ok = write_file<dovetail::kv64>(out, recs, 64);
    } else {
      return usage();
    }
    if (!ok) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 1;
    }
    std::printf("wrote %zu %d-bit records (%s) to %s\n", n, bits, ds, out);
    return 0;
  }

  if (cmd == "sort" || cmd == "bench") {
    const char* in = args.get("i");
    if (in == nullptr) return usage();
    std::ifstream f(in, std::ios::binary);
    std::uint64_t n = 0;
    std::uint32_t bits = 0;
    if (!f || !read_header(f, n, bits)) {
      std::fprintf(stderr, "cannot read %s\n", in);
      return 1;
    }
    if (bits == 32) {
      auto recs = read_records<dovetail::kv32>(f, n);
      return cmd == "sort"
                 ? do_sort(std::move(recs), dovetail::key_of_kv32, args, bits)
                 : do_bench(recs, dovetail::key_of_kv32, args, bits);
    }
    auto recs = read_records<dovetail::kv64>(f, n);
    return cmd == "sort"
               ? do_sort(std::move(recs), dovetail::key_of_kv64, args, bits)
               : do_bench(recs, dovetail::key_of_kv64, args, bits);
  }

  return usage();
}
