// check_bench_json — CI gate for benchmark reports. Parses a JSON file
// emitted by bench_suite (--json) and validates it against the
// BENCH_suite.json schema (bench/bench_json.hpp): required context fields,
// well-formed result entries with ordered min/median/max, unique names,
// and no entry whose correctness check failed. Service-family entries
// (bench starting with "service") additionally need a positive-integer
// 'concurrency' label, and service-batch entries the req_per_s / p50_ms /
// p99_ms load stats with p50 <= p99. Exit 0 = valid.
//
// Usage: check_bench_json FILE.json [FILE2.json ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_json.hpp"

namespace {

int check_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  dtb::json::value root;
  std::string err;
  if (!dtb::json::parse(text, root, err)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path, err.c_str());
    return 1;
  }
  if (!dtb::json::validate_bench_schema(root, err)) {
    std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
    return 1;
  }
  const std::size_t num_results = root.find("results")->as_array().size();
  std::printf("%s: ok (%zu results)\n", path, num_results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE.json [FILE2.json ...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= check_file(argv[i]);
  return rc;
}
