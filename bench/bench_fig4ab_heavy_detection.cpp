// Fig 4(a,b): ablation of heavy-key detection. DTSort vs "Plain" (the same
// algorithm with sampling-based heavy-key detection disabled) on the
// lightest and heaviest instance of each distribution family, for 32- and
// 64-bit keys.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dovetail/core/dovetail_sort.hpp"

using dovetail::dovetail_sort;
using dovetail::kv32;
using dovetail::kv64;
using dovetail::sort_options;
namespace gen = dovetail::gen;

namespace {

const std::vector<gen::distribution>& instances() {
  static const std::vector<gen::distribution> d = {
      {gen::dist_kind::uniform, 1e9, "Unif-1e9"},
      {gen::dist_kind::uniform, 10, "Unif-10"},
      {gen::dist_kind::exponential, 1, "Exp-1"},
      {gen::dist_kind::exponential, 10, "Exp-10"},
      {gen::dist_kind::zipfian, 0.6, "Zipf-0.6"},
      {gen::dist_kind::zipfian, 1.5, "Zipf-1.5"},
      {gen::dist_kind::bexp, 10, "BExp-10"},
      {gen::dist_kind::bexp, 300, "BExp-300"},
  };
  return d;
}

template <typename Rec>
void register_variant(const gen::distribution& d, std::size_t n,
                      bool detect_heavy, const char* tag,
                      const char* width) {
  const std::string name = std::string("Fig4ab/") + width + "/" + d.name +
                           "/" + tag;
  const std::string row = d.name + std::string("/") + width;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [d, n, detect_heavy, row, tag](benchmark::State& st) {
        const auto& input = dtb::cached_input<Rec>(d, n);
        sort_options opt;
        opt.detect_heavy = detect_heavy;
        dtb::run_timed_iterations(
            st, input,
            [&](std::span<Rec> s) {
              dovetail_sort(s, [](const Rec& r) { return r.key; }, opt);
            },
            row, tag);
      })
      ->UseManualTime()
      ->Iterations(dtb::bench_reps())
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::size_t n = dtb::bench_n();
  for (const auto& d : instances()) {
    register_variant<kv32>(d, n, true, "DTSort", "32bit");
    register_variant<kv32>(d, n, false, "Plain", "32bit");
    register_variant<kv64>(d, n, true, "DTSort", "64bit");
    register_variant<kv64>(d, n, false, "Plain", "64bit");
  }
  benchmark::RunSpecifiedBenchmarks();
  dtb::global_results().print(
      "Fig 4(a,b): heavy-key detection ablation (DTSort vs Plain), n=" +
      std::to_string(n));
  benchmark::Shutdown();
  return 0;
}
