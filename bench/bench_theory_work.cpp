// Empirical validation of the Sec 4 work bounds (Thms 4.4-4.7), using the
// sort_stats instrumentation rather than wall-clock time.
//
// For each synthetic instance it reports, per input record:
//   levels  = distributed_records / n  (effective counting-sort passes; the
//             paper's O(n sqrt(log r)) distribution work term)
//   heavy%  = records parked in heavy buckets (skip all further levels)
//   base%   = records finished by the comparison base case
//   depth   = deepest recursion level
// Expected shapes: `levels` drops toward 1.0 as duplicates get heavier
// (Thm 4.6/4.7 linear-work regimes), and stays near (log r)/γ on
// duplicate-free uniform input (Thm 4.4/4.5).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/sort_stats.hpp"

using dovetail::dovetail_sort;
using dovetail::kv32;
using dovetail::kv64;
using dovetail::sort_options;
using dovetail::sort_stats;
namespace gen = dovetail::gen;

namespace {

template <typename Rec>
void run_family(const char* title, std::size_t n) {
  std::printf("\n=== %s (n=%zu) ===\n", title, n);
  std::printf("%-12s %8s %8s %8s %8s %8s %8s\n", "Instance", "levels",
              "heavy%", "base%", "ovf%", "depth", "hbkts");
  for (const auto& d : gen::paper_distributions()) {
    const auto& input = dtb::cached_input<Rec>(d, n);
    std::vector<Rec> work(input.begin(), input.end());
    sort_stats st;
    sort_options opt;
    opt.stats = &st;
    dovetail_sort(std::span<Rec>(work), [](const Rec& r) { return r.key; },
                  opt);
    const double dn = static_cast<double>(n);
    std::printf("%-12s %8.2f %8.1f %8.1f %8.2f %8llu %8llu\n", d.name.c_str(),
                static_cast<double>(st.distributed_records.load()) / dn,
                100.0 * static_cast<double>(st.heavy_records.load()) / dn,
                100.0 * static_cast<double>(st.base_case_records.load()) / dn,
                100.0 * static_cast<double>(st.overflow_records.load()) / dn,
                static_cast<unsigned long long>(st.max_depth.load()),
                static_cast<unsigned long long>(st.num_heavy_buckets.load()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::size_t n = dtb::bench_n();
  run_family<kv32>("Work bounds (Thm 4.4-4.7), 32-bit keys", n);
  run_family<kv64>("Work bounds (Thm 4.4-4.7), 64-bit keys", n);
  std::printf(
      "\nInterpretation: Thm 4.4/4.5 predict levels ~ (log r)/gamma on\n"
      "duplicate-free input; Thm 4.6 (Exp) and Thm 4.7 (few distinct keys)\n"
      "predict levels -> ~1 as heavy%% grows (linear-work regimes).\n");
  benchmark::Shutdown();
  return 0;
}
