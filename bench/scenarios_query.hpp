// The order-statistics / grouped-query families (core/order_stats.hpp and
// core/group_by.hpp through the public typed entry points):
//   query-topk — dovetail::top_k (stable smallest-k) on u64 records over
//       Tab-3 distribution instances at k = 10 / 1000 / n/100, against TWO
//       baselines timed on the same reps with rotating in-rep order:
//       std::partial_sort (ms_StdPartial / speedup_vs_std) and the full
//       dovetail::sort on the same records (ms_FullSort /
//       speedup_vs_fullsort). The committed BENCH_query.json is the
//       evidence for the rank-pruning acceptance bar: at n = 1e7 and
//       k <= 1024 the selection must be >= 5x faster than paying for the
//       whole sort, and buckets_pruned / records_pruned document how much
//       of the key space each counting pass discarded without recursing.
//   query-select — dovetail::nth_element at the median and p99 ranks vs
//       std::nth_element (unstable, the classic quickselect), plus the
//       same full-sort yardstick. The check demands the *stable* answer:
//       the record left at the rank must be byte-identical (key and
//       stability witness) to the stable_sort reference, which
//       std::nth_element itself does not guarantee.
//   query-groupby — dovetail::group_by(keys, values) vs the obvious
//       sort-then-scan (std::stable_sort on (key, value) pairs + boundary
//       scan), byte-identity checked on keys, values AND offsets; the fp
//       column times the hash-permuted fingerprint mode (group_order::
//       fingerprint), whose check demands exact contiguous groups without
//       demanding sorted key order.
// All cells lease from the shared suite workspace (warm-path selection is
// the product surface: the same arena the sort families reuse).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dovetail/core/group_by.hpp"
#include "dovetail/core/order_stats.hpp"
#include "dovetail/generators/synthetic.hpp"
#include "dovetail/util/record.hpp"
#include "harness.hpp"

namespace dtb {

// ---------------------------------------------------------------------------
// Shared cached inputs + stable references (pristine per instance / n).

inline const std::vector<dovetail::kv64>& cached_query_input(
    const dovetail::gen::distribution& d, std::size_t n) {
  return cached_input<dovetail::kv64>(d, n);
}

// The stable-sort reference, computed once per instance and shared by all
// k / rank cells on that input (it is the definition of every query
// result: top_k/nth_element/partial_sort are slices of this array).
inline const std::vector<dovetail::kv64>& cached_query_reference(
    const dovetail::gen::distribution& d, std::size_t n) {
  return memoize_input(d.name + "/" + std::to_string(n) + "/stable-ref", [&] {
    std::vector<dovetail::kv64> ref = cached_query_input(d, n);
    std::stable_sort(ref.begin(), ref.end(),
                     [](const dovetail::kv64& a, const dovetail::kv64& b) {
                       return a.key < b.key;
                     });
    return ref;
  });
}

// ---------------------------------------------------------------------------
// query-topk cells: three timed variants per rep (top_k primary,
// std::partial_sort, full dovetail::sort), rotating the in-rep order by
// rep index — the 3-way analogue of run_interleaved_reps' alternation, so
// no variant always pays the cold-predecessor penalty.

inline scenario_result run_topk_cell(const run_config& rc,
                                     const dovetail::gen::distribution& d,
                                     std::size_t k) {
  const auto& input = cached_query_input(d, rc.n);
  scenario_result res;
  res.n = input.size();
  k = std::min(k, input.size());

  std::vector<dovetail::kv64> work(input.size());
  dovetail::sort_stats stats;
  const auto run_topk = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::top_k(std::span<dovetail::kv64>(work), k, dovetail::key_of_kv64,
                    dovetail::rank_side::smallest, opt);
    return t.seconds();
  };
  const auto run_partial = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    std::partial_sort(work.begin(), work.begin() + static_cast<long>(k),
                      work.end(),
                      [](const dovetail::kv64& a, const dovetail::kv64& b) {
                        return a.key < b.key;
                      });
    return t.seconds();
  };
  const auto run_fullsort = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::sort(std::span<dovetail::kv64>(work), dovetail::key_of_kv64,
                   opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_topk);
  if (rc.check) {
    const auto& ref = cached_query_reference(d, rc.n);
    res.check = "pass";
    for (std::size_t i = 0; i < k; ++i) {
      if (work[i].key != ref[i].key || work[i].value != ref[i].value) {
        res.check = "fail";
        res.check_detail =
            "top_k record at index " + std::to_string(i) +
            " differs from the stable_sort reference slice";
        return res;
      }
    }
  }

  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  const std::uint64_t pruned_b0 =
      stats.buckets_pruned.load(std::memory_order_relaxed);
  const std::uint64_t pruned_r0 =
      stats.records_pruned.load(std::memory_order_relaxed);
  const int reps = std::max(rc.reps, rc.quick ? rc.reps : 3);
  std::vector<double> partial_times, full_times;
  const auto primary = [&] {
    const double s = run_topk();
    res.times_s.push_back(s);
    stats.note_timed_run(s, res.n);
  };
  for (int r = 0; r < reps; ++r) {
    switch (r % 3) {
      case 0:
        primary();
        partial_times.push_back(run_partial());
        full_times.push_back(run_fullsort());
        break;
      case 1:
        partial_times.push_back(run_partial());
        full_times.push_back(run_fullsort());
        primary();
        break;
      default:
        full_times.push_back(run_fullsort());
        primary();
        partial_times.push_back(run_partial());
        break;
    }
  }

  res.stats["k"] = static_cast<double>(k);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  // Per-timed-run averages: the full-sort reps share the stats object but
  // never touch the pruning counters, so the delta is the selection's own.
  res.stats["buckets_pruned"] =
      static_cast<double>(stats.buckets_pruned.load(std::memory_order_relaxed) -
                          pruned_b0) /
      reps;
  res.stats["records_pruned"] =
      static_cast<double>(stats.records_pruned.load(std::memory_order_relaxed) -
                          pruned_r0) /
      reps;
  scenario_result ps;
  ps.times_s = std::move(partial_times);
  res.stats["ms_StdPartial"] = ps.median_s() * 1e3;
  scenario_result fs;
  fs.times_s = std::move(full_times);
  res.stats["ms_FullSort"] = fs.median_s() * 1e3;
  if (res.median_s() > 0) {
    res.stats["speedup_vs_std"] = ps.median_s() / res.median_s();
    res.stats["speedup_vs_fullsort"] = fs.median_s() / res.median_s();
  }
  return res;
}

// query-select cells: nth_element at a rank fraction, same 3-variant
// rotation with std::nth_element as the comparison baseline.
inline scenario_result run_select_cell(const run_config& rc,
                                       const dovetail::gen::distribution& d,
                                       double rank_frac) {
  const auto& input = cached_query_input(d, rc.n);
  scenario_result res;
  res.n = input.size();
  const std::size_t nth = std::min(
      input.size() - 1,
      static_cast<std::size_t>(rank_frac * static_cast<double>(input.size())));

  std::vector<dovetail::kv64> work(input.size());
  dovetail::sort_stats stats;
  const auto run_select = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::nth_element(std::span<dovetail::kv64>(work), nth,
                          dovetail::key_of_kv64, opt);
    return t.seconds();
  };
  const auto run_std_nth = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    std::nth_element(work.begin(), work.begin() + static_cast<long>(nth),
                     work.end(),
                     [](const dovetail::kv64& a, const dovetail::kv64& b) {
                       return a.key < b.key;
                     });
    return t.seconds();
  };
  const auto run_fullsort = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::sort(std::span<dovetail::kv64>(work), dovetail::key_of_kv64,
                   opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_select);
  if (rc.check) {
    const auto& ref = cached_query_reference(d, rc.n);
    // The stable answer, not just "a record with the right key": the
    // stability witness (value == input index) must match too.
    if (work[nth].key != ref[nth].key || work[nth].value != ref[nth].value) {
      res.check = "fail";
      res.check_detail =
          "nth_element record is not the stable_sort reference record";
      return res;
    }
    res.check = "pass";
    for (std::size_t i = 0; i < nth && res.check == "pass"; ++i)
      if (work[i].key > work[nth].key) {
        res.check = "fail";
        res.check_detail = "partition property violated before the rank";
      }
    for (std::size_t i = nth + 1; i < work.size() && res.check == "pass"; ++i)
      if (work[i].key < work[nth].key) {
        res.check = "fail";
        res.check_detail = "partition property violated after the rank";
      }
    if (res.check == "fail") return res;
  }

  const std::uint64_t pruned_b0 =
      stats.buckets_pruned.load(std::memory_order_relaxed);
  const std::uint64_t pruned_r0 =
      stats.records_pruned.load(std::memory_order_relaxed);
  const int reps = std::max(rc.reps, rc.quick ? rc.reps : 3);
  std::vector<double> nth_times, full_times;
  const auto primary = [&] {
    const double s = run_select();
    res.times_s.push_back(s);
    stats.note_timed_run(s, res.n);
  };
  for (int r = 0; r < reps; ++r) {
    switch (r % 3) {
      case 0:
        primary();
        nth_times.push_back(run_std_nth());
        full_times.push_back(run_fullsort());
        break;
      case 1:
        nth_times.push_back(run_std_nth());
        full_times.push_back(run_fullsort());
        primary();
        break;
      default:
        full_times.push_back(run_fullsort());
        primary();
        nth_times.push_back(run_std_nth());
        break;
    }
  }

  res.stats["rank"] = static_cast<double>(nth);
  res.stats["buckets_pruned"] =
      static_cast<double>(stats.buckets_pruned.load(std::memory_order_relaxed) -
                          pruned_b0) /
      reps;
  res.stats["records_pruned"] =
      static_cast<double>(stats.records_pruned.load(std::memory_order_relaxed) -
                          pruned_r0) /
      reps;
  scenario_result ns;
  ns.times_s = std::move(nth_times);
  res.stats["ms_StdNth"] = ns.median_s() * 1e3;
  scenario_result fs;
  fs.times_s = std::move(full_times);
  res.stats["ms_FullSort"] = fs.median_s() * 1e3;
  if (res.median_s() > 0) {
    res.stats["speedup_vs_std"] = ns.median_s() / res.median_s();
    res.stats["speedup_vs_fullsort"] = fs.median_s() / res.median_s();
  }
  return res;
}

// ---------------------------------------------------------------------------
// query-groupby cells: group_by(keys, values) vs stable_sort-then-scan on
// (key, value) pairs. The sorted column demands BYTE-IDENTITY with the
// baseline (keys, values and offsets); the fp column demands exact
// contiguous groups under the hash permutation without sorted key order.

inline const std::vector<dovetail::kv32>& cached_groupby_input(
    const dovetail::gen::distribution& d, std::size_t n) {
  return cached_input<dovetail::kv32>(d, n);
}

inline const std::vector<dovetail::kv32>& cached_groupby_reference(
    const dovetail::gen::distribution& d, std::size_t n) {
  return memoize_input(d.name + "/" + std::to_string(n) + "/gb-ref", [&] {
    std::vector<dovetail::kv32> ref = cached_groupby_input(d, n);
    std::stable_sort(ref.begin(), ref.end(),
                     [](const dovetail::kv32& a, const dovetail::kv32& b) {
                       return a.key < b.key;
                     });
    return ref;
  });
}

inline scenario_result run_groupby_cell(const run_config& rc,
                                        const dovetail::gen::distribution& d,
                                        dovetail::group_order order) {
  const auto& input = cached_groupby_input(d, rc.n);
  scenario_result res;
  res.n = input.size();

  std::vector<std::uint32_t> keys(input.size()), values(input.size());
  std::vector<dovetail::kv32> pairs(input.size());
  dovetail::sort_stats stats;
  std::size_t num_groups = 0;
  const auto run_gb = [&]() -> double {
    for (std::size_t i = 0; i < input.size(); ++i) {
      keys[i] = input[i].key;
      values[i] = input[i].value;
    }
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    const auto gv =
        dovetail::group_by(std::span<std::uint32_t>(keys),
                           std::span<std::uint32_t>(values), opt, order);
    num_groups = gv.num_groups();
    return t.seconds();
  };
  std::size_t scan_groups = 0;  // sink: keeps the baseline scan observable
  const auto run_sort_scan = [&]() -> double {
    std::copy(input.begin(), input.end(), pairs.begin());
    dovetail::timer t;
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const dovetail::kv32& a, const dovetail::kv32& b) {
                       return a.key < b.key;
                     });
    // The scan half of sort-then-scan: materialize the group offsets the
    // grouped_view hands back for free.
    std::vector<std::size_t> offs;
    for (std::size_t i = 0; i < pairs.size(); ++i)
      if (i == 0 || pairs[i - 1].key != pairs[i].key) offs.push_back(i);
    offs.push_back(pairs.size());
    scan_groups = offs.size() - 1;
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_gb);
  if (rc.check) {
    const auto& ref = cached_groupby_reference(d, rc.n);
    res.check = "pass";
    if (order == dovetail::group_order::sorted) {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (keys[i] != ref[i].key || values[i] != ref[i].value) {
          res.check = "fail";
          res.check_detail =
              "group_by output at index " + std::to_string(i) +
              " is not byte-identical to stable_sort-then-scan";
          return res;
        }
      }
    } else {
      // Fingerprint mode: every key forms exactly one contiguous group of
      // the right size, values increasing inside it (stability), but the
      // group order is the hash permutation, not key order.
      const auto& ref2 = cached_groupby_reference(d, rc.n);
      std::vector<std::pair<std::uint32_t, std::size_t>> counts;
      for (std::size_t i = 0; i < ref2.size();) {
        std::size_t j = i;
        while (j < ref2.size() && ref2[j].key == ref2[i].key) ++j;
        counts.emplace_back(ref2[i].key, j - i);
        i = j;
      }
      std::size_t runs = 0;
      for (std::size_t i = 0; i < keys.size();) {
        std::size_t j = i;
        while (j < keys.size() && keys[j] == keys[i]) {
          if (j > i && !(values[j - 1] < values[j])) {
            res.check = "fail";
            res.check_detail = "fingerprint group not stable at index " +
                               std::to_string(j);
            return res;
          }
          ++j;
        }
        const auto it = std::lower_bound(
            counts.begin(), counts.end(),
            std::make_pair(keys[i], std::size_t{0}),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        if (it == counts.end() || it->first != keys[i] ||
            it->second != j - i) {
          res.check = "fail";
          res.check_detail = "fingerprint group for key " +
                             std::to_string(keys[i]) +
                             " is split or has the wrong size";
          return res;
        }
        ++runs;
        i = j;
      }
      if (runs != counts.size()) {
        res.check = "fail";
        res.check_detail = "fingerprint mode produced the wrong group count";
        return res;
      }
    }
  }

  const int reps = std::max(rc.reps, rc.quick ? rc.reps : 3);
  const std::vector<double> std_times =
      run_interleaved_reps(reps, res, run_gb, run_sort_scan, &stats);
  res.stats["groups"] = static_cast<double>(num_groups);
  res.stats["baseline_groups"] = static_cast<double>(scan_groups);
  scenario_result ss;
  ss.times_s = std_times;
  res.stats["ms_SortScan"] = ss.median_s() * 1e3;
  if (res.median_s() > 0)
    res.stats["speedup_vs_std"] = ss.median_s() / res.median_s();
  return res;
}

// ---------------------------------------------------------------------------

inline void register_topk_cell(const run_config& cfg,
                               const dovetail::gen::distribution& d,
                               std::size_t k, const std::string& ktag) {
  scenario s;
  s.bench = "query-topk";
  s.name = s.bench + "/" + d.name + "/" + ktag;
  s.paper = "rank-pruned stable top-k: counting passes skip every bucket "
            "wholly outside [0, k) instead of recursing";
  s.row = d.name;
  s.col = ktag;
  s.labels = {{"dist", d.name},
              {"algo", "TopK"},
              {"width", "64"},
              {"k", std::to_string(k)},
              {"threads", std::to_string(cfg.max_threads())}};
  s.run = [d, k](const run_config& rc) { return run_topk_cell(rc, d, k); };
  scenario_registry::instance().add(std::move(s));
}

inline void register_select_cell(const run_config& cfg,
                                 const dovetail::gen::distribution& d,
                                 double frac, const std::string& tag) {
  scenario s;
  s.bench = "query-select";
  s.name = s.bench + "/" + d.name + "/" + tag;
  s.paper = "rank-pruned stable nth_element: a single-rank window prunes "
            "every bucket on both sides of the rank";
  s.row = d.name;
  s.col = tag;
  s.labels = {{"dist", d.name},
              {"algo", "NthElement"},
              {"width", "64"},
              {"rank", tag},
              {"threads", std::to_string(cfg.max_threads())}};
  s.run = [d, frac](const run_config& rc) {
    return run_select_cell(rc, d, frac);
  };
  scenario_registry::instance().add(std::move(s));
}

inline void register_groupby_cell(const run_config& cfg,
                                  const dovetail::gen::distribution& d,
                                  dovetail::group_order order) {
  scenario s;
  s.bench = "query-groupby";
  const char* col =
      order == dovetail::group_order::sorted ? "sorted" : "fp";
  s.name = s.bench + "/" + d.name + "/" + col;
  s.paper = "first-class group_by(keys, values) vs stable_sort-then-scan "
            "(sorted mode is byte-identical to the baseline)";
  s.row = d.name;
  s.col = col;
  s.labels = {{"dist", d.name},
              {"algo", "GroupBy"},
              {"width", "32"},
              {"order", col},
              {"threads", std::to_string(cfg.max_threads())}};
  s.run = [d, order](const run_config& rc) {
    return run_groupby_cell(rc, d, order);
  };
  scenario_registry::instance().add(std::move(s));
}

inline void register_query_scenarios(const run_config& cfg) {
  using gen_d = dovetail::gen::distribution;
  // Tab-3 coverage without the full 14-instance catalog: high-entropy
  // uniform, a tiny-range degenerate (every bucket straddles the window —
  // pruning's worst case), and the exponential / zipfian skew families.
  const gen_d dists[] = {
      {dovetail::gen::dist_kind::uniform, 1e9, "Unif-1e9"},
      {dovetail::gen::dist_kind::uniform, 10, "Unif-10"},
      {dovetail::gen::dist_kind::exponential, 7, "Exp-7"},
      {dovetail::gen::dist_kind::zipfian, 1.0, "Zipf-1"},
  };
  for (const auto& d : dists) {
    // Unif-10 is excluded from the topk family on purpose: with 10
    // distinct keys the full sort dispatches to the counting kernel (1-2
    // passes, no scatter) and a rank-window selection cannot beat a sort
    // that never sorts — speedup_vs_fullsort hovers at ~1x by
    // construction, which says nothing about pruning. The degenerate
    // regime is still measured: query-select keeps Unif-10 (every bucket
    // straddles the window — pruning's worst case), and BENCHMARKS.md
    // records the analysis.
    if (d.param != 10) {
      register_topk_cell(cfg, d, 10, "k-10");
      register_topk_cell(cfg, d, 1000, "k-1000");
      register_topk_cell(cfg, d, std::max<std::size_t>(1, cfg.n / 100),
                         "k-n100");
    }
    register_select_cell(cfg, d, 0.5, "median");
    register_select_cell(cfg, d, 0.99, "p99");
  }
  // group_by wants duplicate-heavy keys: the 1e3-range uniform and the two
  // skewed families give small, medium and huge group-count regimes.
  const gen_d gb_dists[] = {
      {dovetail::gen::dist_kind::uniform, 1e3, "Unif-1e3"},
      {dovetail::gen::dist_kind::zipfian, 1.0, "Zipf-1"},
      {dovetail::gen::dist_kind::exponential, 7, "Exp-7"},
  };
  for (const auto& d : gb_dists) {
    register_groupby_cell(cfg, d, dovetail::group_order::sorted);
    register_groupby_cell(cfg, d, dovetail::group_order::fingerprint);
  }
}

}  // namespace dtb
