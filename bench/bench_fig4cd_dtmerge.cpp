// Fig 4(c,d): ablation of the dovetail-merging step. For seven
// representative instances (32- and 64-bit), time DTSort with (1) DTMerge,
// (2) the standard parallel-merge baseline (PLMerge), and (3) the merge
// step skipped entirely ("Others" — not a correct sort; isolates the cost
// of the remaining steps, exactly as in Sec 6.3).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dovetail/core/dovetail_sort.hpp"

using dovetail::dovetail_sort;
using dovetail::kv32;
using dovetail::kv64;
using dovetail::sort_options;
namespace gen = dovetail::gen;

namespace {

const std::vector<gen::distribution>& instances() {
  static const std::vector<gen::distribution> d = {
      {gen::dist_kind::uniform, 1e3, "Unif-1e3"},
      {gen::dist_kind::exponential, 1, "Exp-1"},
      {gen::dist_kind::exponential, 10, "Exp-10"},
      {gen::dist_kind::zipfian, 0.6, "Zipf-0.6"},
      {gen::dist_kind::zipfian, 1.5, "Zipf-1.5"},
      {gen::dist_kind::bexp, 10, "BExp-10"},
      {gen::dist_kind::bexp, 300, "BExp-300"},
  };
  return d;
}

template <typename Rec>
void register_variant(const gen::distribution& d, std::size_t n,
                      const sort_options& opt, const char* tag,
                      const char* width) {
  const std::string name =
      std::string("Fig4cd/") + width + "/" + d.name + "/" + tag;
  const std::string row = d.name + std::string("/") + width;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [d, n, opt, row, tag](benchmark::State& st) {
        const auto& input = dtb::cached_input<Rec>(d, n);
        dtb::run_timed_iterations(
            st, input,
            [&](std::span<Rec> s) {
              dovetail_sort(s, [](const Rec& r) { return r.key; }, opt);
            },
            row, tag);
      })
      ->UseManualTime()
      ->Iterations(dtb::bench_reps())
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::size_t n = dtb::bench_n();
  sort_options dt, pl, none;
  pl.use_dt_merge = false;
  none.ablate_skip_merge = true;
  for (const auto& d : instances()) {
    register_variant<kv32>(d, n, dt, "DTMerge", "32bit");
    register_variant<kv32>(d, n, pl, "PLMerge", "32bit");
    register_variant<kv32>(d, n, none, "Others", "32bit");
    register_variant<kv64>(d, n, dt, "DTMerge", "64bit");
    register_variant<kv64>(d, n, pl, "PLMerge", "64bit");
    register_variant<kv64>(d, n, none, "Others", "64bit");
  }
  benchmark::RunSpecifiedBenchmarks();
  dtb::global_results().print(
      "Fig 4(c,d): dovetail-merging ablation (DTMerge vs PLMerge; 'Others' "
      "= merge skipped), n=" + std::to_string(n),
      /*heatmap=*/false);
  benchmark::Shutdown();
  return 0;
}
