// The parallel-* families: evidence for the parallel-by-default front door.
//
// Unlike fig4e (scenarios_scaling.hpp), which resizes the GLOBAL scheduler
// pool per sweep point, these cells keep the pool at --threads' maximum and
// sweep the per-call `num_threads` override (sort_options / auto_sort_options
// → par::scoped_worker_limit) — the mechanism a library embedder actually
// uses, since set_num_workers cannot be called with sorts in flight.
//
//   parallel-auto  — dovetail::sort on 64-bit keys (kv64) over representative
//       frequency families × n ∈ {--n/10, --n} × p ∈ --threads. Reports the
//       dispatcher's recorded decision (chosen_parallelism, effective_workers
//       from sort_stats) and speedup_vs_1t against the p=1 cell of the same
//       (dist, n) — the committed BENCH_parallel.json is the multi-thread
//       baseline the acceptance gate reads.
//   parallel-codec — the same sweep through the typed-key front door
//       (tkv<double>, encode → radix → decode), proving the per-call limit
//       composes with codec dispatch.
//   parallel-wide  — 128-bit (wkv128) and string keys through the
//       refine-by-segment driver, each rep interleaved against the
//       policy.parallel_wide_refine=false ablation: refine_gain is the
//       serial-refine/pool-refine median ratio (> 1 iff the workspace_pool
//       path wins), and the pool counters (checkouts / hits / creations,
//       delta over the timed reps) prove the pool actually engaged — hits
//       without creations on warm reps is the zero-steady-state-allocation
//       property in the report.
//
// Every cell at p=1 must match the serial engine exactly: the scoped limit
// makes pardo take its serial path, parallel_for runs inline, and the wide
// driver keeps its ws-reuse loop — so the p=1 rows double as the no-serial-
// regression baseline for the existing families.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "harness.hpp"
#include "scenarios_codec.hpp"
#include "scenarios_wide.hpp"

namespace dtb {

// ---------------------------------------------------------------------------
// 1-thread medians, keyed by the cell id without the /p= suffix. The p=1
// scenario of each cell registers (and therefore runs) first; later sweep
// points look their baseline up here. Guarded: if --bench/--dist filtering
// dropped the p=1 cell, speedup_vs_1t is simply omitted.

inline std::map<std::string, double>& parallel_1t_medians() {
  static std::map<std::string, double> m;
  return m;
}

inline void note_parallel_speedup(const std::string& cell_key, int p,
                                  scenario_result& res) {
  if (p == 1) {
    parallel_1t_medians()[cell_key] = res.median_s();
    return;
  }
  const auto it = parallel_1t_medians().find(cell_key);
  if (it != parallel_1t_medians().end() && res.median_s() > 0)
    res.stats["speedup_vs_1t"] = it->second / res.median_s();
}

// ---------------------------------------------------------------------------
// Generic cell: dovetail::sort under a per-call worker limit. Hand-rolls
// the check against a natural-order std::stable_sort (run_timed_sort's
// u64-cast reference would mis-order typed keys), so one runner serves the
// unsigned, codec and wide families alike.

template <typename Rec, typename KeyFn>
scenario_result run_parallel_cell(const run_config& rc,
                                  const std::vector<Rec>& input, KeyFn key,
                                  int p, const std::string& cell_key) {
  scenario_result res;
  res.n = input.size();

  std::vector<Rec> work(input.size());
  dovetail::sort_stats stats;
  const auto one_run = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    opt.num_threads = p;
    dovetail::sort(std::span<Rec>(work), key, opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), one_run);
  if (rc.check) {
    std::vector<Rec> ref = input;
    std::stable_sort(ref.begin(), ref.end(),
                     [&](const Rec& a, const Rec& b) {
                       return key(a) < key(b);
                     });
    res.check = "pass";
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!(key(work[i]) == key(ref[i])) || work[i].value != ref[i].value) {
        res.check = "fail";
        res.check_detail = "record at index " + std::to_string(i) +
                           " differs from the stable reference at p=" +
                           std::to_string(p);
        return res;
      }
    }
  }

  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  run_timed_reps(rc.reps, res, one_run, &stats);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  res.stats["chosen_kernel"] = static_cast<double>(
      stats.chosen_kernel.load(std::memory_order_relaxed));
  res.stats["chosen_parallelism"] = static_cast<double>(
      stats.chosen_parallelism.load(std::memory_order_relaxed));
  res.stats["effective_workers"] = static_cast<double>(
      stats.effective_workers.load(std::memory_order_relaxed));
  note_parallel_speedup(cell_key, p, res);
  return res;
}

// ---------------------------------------------------------------------------
// Wide cells: pool-backed refine vs the parallel_wide_refine=false ablation,
// interleaved rep by rep like every A-vs-B pair in the suite. The shared
// workspace_pool's counters are sampled around the timed reps.

struct pool_counter_snapshot {
  std::uint64_t checkouts, hits, creations;
};

inline pool_counter_snapshot snap_pool() {
  auto& pool = dovetail::workspace_pool::shared();
  return {pool.checkouts(), pool.pool_hits(), pool.creations()};
}

template <typename Rec, typename KeyFn>
scenario_result run_parallel_wide_cell(const run_config& rc,
                                       const std::vector<Rec>& input,
                                       KeyFn key, int p,
                                       const std::string& cell_key) {
  scenario_result res;
  res.n = input.size();

  std::vector<Rec> work(input.size());
  dovetail::sort_stats stats;
  const auto run_pooled = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    opt.num_threads = p;
    dovetail::sort(std::span<Rec>(work), key, opt);
    return t.seconds();
  };
  const auto run_serial_refine = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.num_threads = p;
    opt.policy.parallel_wide_refine = false;
    dovetail::sort(std::span<Rec>(work), key, opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_pooled);
  if (rc.check) {
    std::vector<Rec> ref = input;
    std::stable_sort(ref.begin(), ref.end(),
                     [&](const Rec& a, const Rec& b) {
                       return key(a) < key(b);
                     });
    res.check = "pass";
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!(key(work[i]) == key(ref[i])) || work[i].value != ref[i].value) {
        res.check = "fail";
        res.check_detail = "record at index " + std::to_string(i) +
                           " differs from the stable reference at p=" +
                           std::to_string(p);
        return res;
      }
    }
  }

  const pool_counter_snapshot c0 = snap_pool();
  const std::vector<double> serial_times = run_interleaved_reps(
      rc.reps, res, run_pooled, run_serial_refine, &stats);
  const pool_counter_snapshot c1 = snap_pool();

  res.stats["pool_checkouts_timed"] =
      static_cast<double>(c1.checkouts - c0.checkouts);
  res.stats["pool_hits_timed"] = static_cast<double>(c1.hits - c0.hits);
  res.stats["pool_creations_timed"] =
      static_cast<double>(c1.creations - c0.creations);
  res.stats["refine_rounds"] = static_cast<double>(
      stats.refine_rounds.load(std::memory_order_relaxed));
  res.stats["wide_segments"] = static_cast<double>(
      stats.wide_segments.load(std::memory_order_relaxed));
  res.stats["chosen_parallelism"] = static_cast<double>(
      stats.chosen_parallelism.load(std::memory_order_relaxed));
  scenario_result ser;
  ser.times_s = serial_times;
  res.stats["ms_SerialRefine"] = ser.median_s() * 1e3;
  if (res.median_s() > 0)
    res.stats["refine_gain"] = ser.median_s() / res.median_s();
  note_parallel_speedup(cell_key, p, res);
  return res;
}

// String variant (no key functor / no .value member; full lexicographic
// check, like run_wide_string_cell).
inline scenario_result run_parallel_string_cell(
    const run_config& rc, const std::vector<std::string>& input, int p,
    const std::string& cell_key) {
  scenario_result res;
  res.n = input.size();

  std::vector<std::string> work(input.size());
  dovetail::sort_stats stats;
  const auto run_pooled = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    opt.num_threads = p;
    dovetail::sort(std::span<std::string>(work), opt);
    return t.seconds();
  };
  const auto run_serial_refine = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.num_threads = p;
    opt.policy.parallel_wide_refine = false;
    dovetail::sort(std::span<std::string>(work), opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_pooled);
  if (rc.check) {
    std::vector<std::string> ref = input;
    std::stable_sort(ref.begin(), ref.end());
    if (work != ref) {
      res.check = "fail";
      res.check_detail = "output is not the lexicographic stable order at "
                         "p=" + std::to_string(p);
      return res;
    }
    res.check = "pass";
  }

  const pool_counter_snapshot c0 = snap_pool();
  const std::vector<double> serial_times = run_interleaved_reps(
      rc.reps, res, run_pooled, run_serial_refine, &stats);
  const pool_counter_snapshot c1 = snap_pool();

  res.stats["pool_checkouts_timed"] =
      static_cast<double>(c1.checkouts - c0.checkouts);
  res.stats["pool_hits_timed"] = static_cast<double>(c1.hits - c0.hits);
  res.stats["pool_creations_timed"] =
      static_cast<double>(c1.creations - c0.creations);
  res.stats["refine_rounds"] = static_cast<double>(
      stats.refine_rounds.load(std::memory_order_relaxed));
  res.stats["wide_segments"] = static_cast<double>(
      stats.wide_segments.load(std::memory_order_relaxed));
  res.stats["chosen_parallelism"] = static_cast<double>(
      stats.chosen_parallelism.load(std::memory_order_relaxed));
  scenario_result ser;
  ser.times_s = serial_times;
  res.stats["ms_SerialRefine"] = ser.median_s() * 1e3;
  if (res.median_s() > 0)
    res.stats["refine_gain"] = ser.median_s() / res.median_s();
  note_parallel_speedup(cell_key, p, res);
  return res;
}

// ---------------------------------------------------------------------------
// Registration. Sweep points come from --threads sorted ascending so every
// cell's p=1 scenario runs before its multi-thread siblings (the registry
// preserves registration order and the driver runs sequentially).

inline std::vector<int> parallel_sweep_points(const run_config& cfg) {
  std::vector<int> ps = cfg.thread_counts;
  std::sort(ps.begin(), ps.end());
  ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  return ps;
}

// n ∈ {--n/10, --n} (deduplicated; collapses to one size under --quick's
// small n) — the two-decade spread the acceptance baselines want without
// the full fig4f size ladder.
inline std::vector<std::size_t> parallel_sizes(const run_config& cfg) {
  std::vector<std::size_t> sizes;
  for (const std::size_t sz :
       {std::max<std::size_t>(1000, cfg.n / 10), cfg.n})
    if (std::find(sizes.begin(), sizes.end(), sz) == sizes.end())
      sizes.push_back(sz);
  return sizes;
}

inline void register_parallel_scenarios(const run_config& cfg) {
  using dovetail::gen::dist_kind;
  using dovetail::gen::distribution;
  const std::vector<int> ps = parallel_sweep_points(cfg);
  const std::vector<std::size_t> sizes = parallel_sizes(cfg);

  // --- parallel-auto: 64-bit keys through the adaptive front door ---
  static const std::vector<distribution> auto_dists = {
      {dist_kind::uniform, 1e7, "Unif-1e7"},
      {dist_kind::zipfian, 1.2, "Zipf-1.2"},
  };
  for (const auto& d : auto_dists) {
    for (const std::size_t n : sizes) {
      for (const int p : ps) {
        scenario s;
        s.bench = "parallel-auto";
        const std::string cell =
            s.bench + "/" + d.name + "/n=" + std::to_string(n);
        s.name = cell + "/p=" + std::to_string(p);
        s.paper = "parallel-by-default dispatch: per-call num_threads sweep";
        s.row = d.name + "/n=" + std::to_string(n);
        s.col = "p=" + std::to_string(p);
        s.labels = {{"dist", d.name},         {"algo", "Auto"},
                    {"width", "64"},          {"n", std::to_string(n)},
                    {"threads", std::to_string(p)}};
        s.run = [d, n, p, cell](const run_config& rc) {
          const auto& input = cached_input<dovetail::kv64>(d, n);
          return run_parallel_cell(rc, input, dovetail::key_of_kv64, p,
                                   cell);
        };
        scenario_registry::instance().add(std::move(s));
      }
    }
  }

  // --- parallel-codec: f64 keys, encode → radix → decode under the cap ---
  static const distribution codec_dist = {dist_kind::uniform, 1e7,
                                          "Unif-1e7"};
  for (const std::size_t n : sizes) {
    for (const int p : ps) {
      scenario s;
      s.bench = "parallel-codec";
      const std::string cell =
          s.bench + "/f64/" + codec_dist.name + "/n=" + std::to_string(n);
      s.name = cell + "/p=" + std::to_string(p);
      s.paper = "typed-key path under the per-call worker limit";
      s.row = "f64/" + codec_dist.name + "/n=" + std::to_string(n);
      s.col = "p=" + std::to_string(p);
      s.labels = {{"dist", codec_dist.name}, {"algo", "Auto"},
                  {"width", "64"},           {"key", "f64"},
                  {"n", std::to_string(n)},  {"threads", std::to_string(p)}};
      s.run = [n, p, cell](const run_config& rc) {
        const auto& input = cached_typed_input<double>(codec_dist, n);
        return run_parallel_cell(rc, input, dovetail::key_of_tkv<double>, p,
                                 cell);
      };
      scenario_registry::instance().add(std::move(s));
    }
  }

  // --- parallel-wide: pool-backed segment refine vs the serial ablation ---
  static const distribution wide_dist = {dist_kind::zipfian, 1.2,
                                         "Zipf-1.2"};
  for (const std::size_t n : sizes) {
    for (const int p : ps) {
      scenario s;
      s.bench = "parallel-wide";
      const std::string cell =
          s.bench + "/u128/" + wide_dist.name + "/n=" + std::to_string(n);
      s.name = cell + "/p=" + std::to_string(p);
      s.paper = "workspace_pool refine vs serial-refine ablation (128-bit)";
      s.row = "u128/" + wide_dist.name + "/n=" + std::to_string(n);
      s.col = "p=" + std::to_string(p);
      s.labels = {{"dist", wide_dist.name},  {"algo", "Auto"},
                  {"width", "128"},          {"key", "u128"},
                  {"n", std::to_string(n)},  {"threads", std::to_string(p)}};
      s.run = [n, p, cell](const run_config& rc) {
        // 4 entropy bits in word 0: a handful of large segments per round —
        // exactly the shape the pooled refine is for.
        const auto& input = cached_wkv128_input(wide_dist, n, 4);
        return run_parallel_wide_cell(rc, input, key_of_wkv128, p, cell);
      };
      scenario_registry::instance().add(std::move(s));
    }
  }
  for (const std::size_t n : sizes) {
    for (const int p : ps) {
      scenario s;
      s.bench = "parallel-wide";
      const std::string cell =
          s.bench + "/str/" + wide_dist.name + "/n=" + std::to_string(n);
      s.name = cell + "/p=" + std::to_string(p);
      s.paper = "workspace_pool refine vs serial-refine ablation (strings)";
      s.row = "str/" + wide_dist.name + "/n=" + std::to_string(n);
      s.col = "p=" + std::to_string(p);
      s.labels = {{"dist", wide_dist.name},  {"algo", "Auto"},
                  {"width", "var"},          {"key", "str"},
                  {"n", std::to_string(n)},  {"threads", std::to_string(p)}};
      s.run = [n, p, cell](const run_config& rc) {
        const auto& input = cached_string_input(wide_dist, n);
        return run_parallel_string_cell(rc, input, p, cell);
      };
      scenario_registry::instance().add(std::move(s));
    }
  }
}

}  // namespace dtb
