// The typed-key / SoA families (core/key_codec.hpp entry points):
//   codec-32 / codec-64 — dovetail::sort on signed (i32/i64), floating
//       (f32/f64) and composite (pair of u32, via a key functor) keys over
//       representative frequency families, cross-checked record-exactly
//       against a std::stable_sort reference ordered by the ENCODED key,
//       with the comparison sort itself timed on the same reps
//       (ms_StdStable / speedup_vs_std) — the committed BENCH_codec.json
//       is the evidence that radix-through-a-codec beats a comparison sort
//       on typed keys, not just on unsigned ones.
//   codec-soa — the SoA claim: sort_by_key(u32 keys, 28-byte rows) vs the
//       equivalent AoS dovetail::sort of 32-byte kv32w records on the same
//       data, interleaved rep by rep (stats: ms_AoS, soa_speedup — the
//       acceptance gate wants soa_speedup > 1), plus rank on the same rows
//       (argsort without moving a single record; verified non-mutating and
//       equal to the std::stable_sort permutation).
#pragma once

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/key_codec.hpp"
#include "harness.hpp"

namespace dtb {

// Bench-local trivially-copyable record whose key is a (hi, lo) composite
// delivered by the key functor — the PBBS-style projection shape.
struct pkv {
  std::uint32_t hi;
  std::uint32_t lo;
  std::uint32_t value;
};

inline constexpr auto key_of_pkv = [](const pkv& r) {
  return std::pair<std::uint32_t, std::uint32_t>{r.hi, r.lo};
};

// ---------------------------------------------------------------------------
// Cached typed inputs (one pristine copy per type/instance/n, like
// cached_input in bench_common.hpp).

template <typename T>
const std::vector<dovetail::tkv<T>>& cached_typed_input(
    const dovetail::gen::distribution& d, std::size_t n) {
  return memoize_input(d.name + "/" + std::to_string(n), [&] {
    return dovetail::gen::generate_typed_records<T>(d, n, 1);
  });
}

inline const std::vector<pkv>& cached_pkv_input(
    const dovetail::gen::distribution& d, std::size_t n) {
  return memoize_input(d.name + "/" + std::to_string(n), [&] {
    std::vector<pkv> a(n);
    dovetail::par::parallel_for(0, n, [&](std::size_t i) {
      const std::uint64_t u = dovetail::gen::make_key(d, 1, i, n, 64);
      a[i] = {static_cast<std::uint32_t>(u >> 32),
              static_cast<std::uint32_t>(u),
              static_cast<std::uint32_t>(i)};
    });
    return a;
  });
}

// ---------------------------------------------------------------------------
// codec-32 / codec-64 cells.

template <typename Rec, typename KeyFn>
scenario_result run_codec_cell(const run_config& rc,
                               const std::vector<Rec>& input, KeyFn key) {
  using K = std::remove_cvref_t<std::invoke_result_t<KeyFn, const Rec&>>;
  const auto enc = [&](const Rec& r) {
    return static_cast<std::uint64_t>(dovetail::key_codec<K>::encode(key(r)));
  };
  scenario_result res;
  res.n = input.size();

  std::vector<Rec> work(input.size());
  dovetail::sort_stats stats;
  const auto run_auto = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::sort(std::span<Rec>(work), key, opt);
    return t.seconds();
  };
  const auto run_std = [&]() -> double {
    // The TIMED baseline compares keys naturally (one projection per
    // side, no encode): on these inputs — integers, finite-only floats,
    // pairs — natural order equals encoded order, and handicapping the
    // comparator would inflate speedup_vs_std. enc() stays in the
    // correctness reference only, where the NaN/-0.0 total order matters.
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    std::stable_sort(work.begin(), work.end(),
                     [&](const Rec& a, const Rec& b) {
                       return key(a) < key(b);
                     });
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_auto);
  if (rc.check) {
    // The stable reference, ordered by the encoded key (NaN-safe for
    // float domains, matches the kernels' -0.0 < +0.0 total order).
    std::vector<Rec> ref = input;
    std::stable_sort(ref.begin(), ref.end(),
                     [&](const Rec& a, const Rec& b) {
                       return enc(a) < enc(b);
                     });
    res.check = "pass";
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (enc(work[i]) != enc(ref[i]) || work[i].value != ref[i].value) {
        res.check = "fail";
        res.check_detail =
            "record at index " + std::to_string(i) +
            " differs from the stable encoded-key reference";
        return res;
      }
    }
  }

  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  const int reps = std::max(rc.reps, rc.quick ? rc.reps : 3);
  const std::vector<double> std_times =
      run_interleaved_reps(reps, res, run_auto, run_std, &stats);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  res.stats["chosen_kernel"] = static_cast<double>(
      stats.chosen_kernel.load(std::memory_order_relaxed));
  res.stats["codec_kind"] = static_cast<double>(
      stats.codec_kind_id.load(std::memory_order_relaxed));
  res.stats["codec_bits"] = static_cast<double>(
      stats.codec_encoded_bits.load(std::memory_order_relaxed));
  scenario_result sr;
  sr.times_s = std_times;
  res.stats["ms_StdStable"] = sr.median_s() * 1e3;
  if (res.median_s() > 0)
    res.stats["speedup_vs_std"] = sr.median_s() / res.median_s();
  return res;
}

template <typename T>
void register_codec_cell(const run_config& cfg, const char* width_tag,
                         const char* key_tag,
                         const dovetail::gen::distribution& d) {
  scenario s;
  s.bench = std::string("codec-") + width_tag;
  s.name = s.bench + "/" + key_tag + "/" + d.name;
  s.paper = "typed keys through the codec front door (PBBS integer_sort(In, "
            "f) API shape)";
  s.row = d.name;
  s.col = key_tag;
  s.labels = {{"dist", d.name},  {"algo", "Auto"},
              {"width", width_tag}, {"key", key_tag},
              {"threads", std::to_string(cfg.max_threads())}};
  const std::size_t n = cfg.n;
  s.run = [d, n](const run_config& rc) {
    const auto& input = cached_typed_input<T>(d, n);
    return run_codec_cell(rc, input, dovetail::key_of_tkv<T>);
  };
  scenario_registry::instance().add(std::move(s));
}

inline void register_codec_pair_cell(const run_config& cfg,
                                     const dovetail::gen::distribution& d) {
  scenario s;
  s.bench = "codec-64";
  s.name = std::string("codec-64/pair-u32/") + d.name;
  // Same family caption as the other codec-64 cells (the driver's table
  // title is last-write-wins per family); the composite-key specifics
  // live in the key label and column.
  s.paper = "typed keys through the codec front door (PBBS integer_sort(In, "
            "f) API shape)";
  s.row = d.name;
  s.col = "pair-u32";
  s.labels = {{"dist", d.name},  {"algo", "Auto"},
              {"width", "64"},   {"key", "pair-u32"},
              {"threads", std::to_string(cfg.max_threads())}};
  const std::size_t n = cfg.n;
  s.run = [d, n](const run_config& rc) {
    const auto& input = cached_pkv_input(d, n);
    return run_codec_cell(rc, input, key_of_pkv);
  };
  scenario_registry::instance().add(std::move(s));
}

// ---------------------------------------------------------------------------
// codec-soa: SoA sort_by_key vs AoS wide-record sort, and rank.

inline scenario_result run_soa_cell(const run_config& rc,
                                    const std::vector<dovetail::kv32w>& aos) {
  const std::size_t n = aos.size();
  scenario_result res;
  res.n = n;

  std::vector<std::uint32_t> keys0(n);
  std::vector<dovetail::row28> rows0(n);
  dovetail::par::parallel_for(0, n, [&](std::size_t i) {
    keys0[i] = aos[i].key;
    rows0[i].value = aos[i].value;
    for (int j = 0; j < 6; ++j) rows0[i].payload[j] = aos[i].payload[j];
  });

  std::vector<std::uint32_t> keys(n);
  std::vector<dovetail::row28> rows(n);
  std::vector<dovetail::kv32w> work(n);
  dovetail::sort_stats stats;      // the SoA variant: this scenario's metrics
  dovetail::sort_stats aos_stats;  // baseline kept separate, or its
                                   // allocations/snapshots would pollute them
  const auto run_soa = [&]() -> double {
    std::copy(keys0.begin(), keys0.end(), keys.begin());
    std::copy(rows0.begin(), rows0.end(), rows.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    dovetail::sort_by_key(std::span<std::uint32_t>(keys),
                          std::span<dovetail::row28>(rows), opt);
    return t.seconds();
  };
  const auto run_aos = [&]() -> double {
    std::copy(aos.begin(), aos.end(), work.begin());
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &aos_stats;
    dovetail::sort(std::span<dovetail::kv32w>(work),
                   dovetail::key_of_kv32w, opt);
    return t.seconds();
  };

  const int warmups = std::max(rc.warmups, 1);
  run_warmups(warmups, run_soa);
  run_warmups(warmups, run_aos);
  if (rc.check) {
    // The AoS result against the harness reference...
    check_sorted_output(res, aos, std::span<const dovetail::kv32w>(work),
                        check_spec{});
    if (res.check != "pass") return res;
    // ...and the SoA arrays must agree with it field for field, payload
    // words included (a torn row copy in the gather must not pass).
    for (std::size_t i = 0; i < n; ++i) {
      dovetail::row28 expect;
      expect.value = work[i].value;
      for (int j = 0; j < 6; ++j) expect.payload[j] = work[i].payload[j];
      if (keys[i] != work[i].key || !(rows[i] == expect)) {
        res.check = "fail";
        res.check_detail = "SoA result diverges from the AoS sort at index " +
                           std::to_string(i);
        return res;
      }
    }
  }

  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  const int reps = std::max(rc.reps, rc.quick ? rc.reps : 3);
  const std::vector<double> aos_times =
      run_interleaved_reps(reps, res, run_soa, run_aos, &stats);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  scenario_result ar;
  ar.times_s = aos_times;
  res.stats["ms_AoS"] = ar.median_s() * 1e3;
  if (res.median_s() > 0)
    res.stats["soa_speedup"] = ar.median_s() / res.median_s();
  return res;
}

inline scenario_result run_rank_cell(const run_config& rc,
                                     const std::vector<dovetail::kv32w>& aos) {
  const std::size_t n = aos.size();
  scenario_result res;
  res.n = n;
  dovetail::sort_stats stats;
  std::vector<dovetail::index_t> got;
  const auto one_run = [&]() -> double {
    dovetail::timer t;
    dovetail::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.stats = &stats;
    got = dovetail::rank(std::span<const dovetail::kv32w>(aos),
                         dovetail::key_of_kv32w, opt);
    return t.seconds();
  };
  run_warmups(std::max(rc.warmups, 1), one_run);
  if (rc.check) {
    std::vector<dovetail::index_t> ref(n);
    std::iota(ref.begin(), ref.end(), dovetail::index_t{0});
    std::stable_sort(ref.begin(), ref.end(),
                     [&](dovetail::index_t a, dovetail::index_t b) {
                       return aos[a].key < aos[b].key;
                     });
    if (got != ref) {
      res.check = "fail";
      res.check_detail = "rank is not the stable std::stable_sort permutation";
      return res;
    }
    res.check = "pass";
  }
  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  run_timed_reps(std::max(rc.reps, rc.quick ? rc.reps : 3), res, one_run,
                 &stats);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  return res;
}

inline void register_soa_cell(const run_config& cfg,
                              const dovetail::gen::distribution& d,
                              bool rank_cell) {
  scenario s;
  s.bench = "codec-soa";
  s.name = std::string("codec-soa/") + d.name + "/" +
           (rank_cell ? "Rank" : "SoA-32B");
  s.paper = rank_cell
                ? "stable argsort without moving 32-byte records"
                : "SoA sort_by_key vs AoS: stop dragging 32-byte rows "
                  "through every scatter";
  s.row = d.name;
  s.col = rank_cell ? "Rank" : "SoA-32B";
  s.labels = {{"dist", d.name},
              {"algo", rank_cell ? "Rank" : "SortByKey"},
              {"width", "32"},
              {"bytes", "32"},
              {"threads", std::to_string(cfg.max_threads())}};
  const std::size_t n = cfg.n;
  s.run = [d, n, rank_cell](const run_config& rc) {
    const auto& input = cached_input<dovetail::kv32w>(d, n);
    return rank_cell ? run_rank_cell(rc, input) : run_soa_cell(rc, input);
  };
  scenario_registry::instance().add(std::move(s));
}

// ---------------------------------------------------------------------------

inline void register_codec_scenarios(const run_config& cfg) {
  using gen_d = dovetail::gen::distribution;
  const gen_d dists[] = {
      {dovetail::gen::dist_kind::uniform, 1e7, "Unif-1e7"},
      {dovetail::gen::dist_kind::zipfian, 1.2, "Zipf-1.2"},
      {dovetail::gen::dist_kind::exponential, 7, "Exp-7"},
  };
  for (const auto& d : dists) {
    register_codec_cell<std::int32_t>(cfg, "32", "i32", d);
    register_codec_cell<float>(cfg, "32", "f32", d);
    register_codec_cell<std::int64_t>(cfg, "64", "i64", d);
    register_codec_cell<double>(cfg, "64", "f64", d);
    register_codec_pair_cell(cfg, d);
  }
  const gen_d soa_dists[] = {
      {dovetail::gen::dist_kind::uniform, 1e7, "Unif-1e7"},
      {dovetail::gen::dist_kind::zipfian, 1.2, "Zipf-1.2"},
  };
  for (const auto& d : soa_dists) {
    register_soa_cell(cfg, d, /*rank_cell=*/false);
    register_soa_cell(cfg, d, /*rank_cell=*/true);
  }
}

}  // namespace dtb
