// Micro-benchmark of the unified distribution engine (distribute.hpp):
//
//  1. scatter strategies head-to-head — `direct` single stores vs the
//     `buffered` RADULS-style staging bursts vs the `unstable` Thm 4.1
//     atomic scatter — as a function of bucket count. The buffered
//     strategy's advantage should appear once the cursor working set
//     outgrows cache/TLB reach (large B); `automatic` is the engine's
//     per-call pick.
//  2. workspace reuse — DovetailSort with a warm (persistent) workspace vs
//     a cold one constructed per sort, isolating the cost of hot-path
//     allocation that the reusable arena eliminates. The workspace
//     allocation/reuse counters are printed alongside.
//
// Results feed BENCH_distribute.json (the perf trajectory baseline).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dovetail/core/distribute.hpp"
#include "dovetail/core/dovetail_sort.hpp"
#include "dovetail/core/sort_stats.hpp"
#include "dovetail/core/workspace.hpp"

using dovetail::distribute;
using dovetail::distribute_options;
using dovetail::kv32;
using dovetail::scatter_strategy;
using dovetail::sort_workspace;
namespace gen = dovetail::gen;

namespace {

const char* strategy_name(scatter_strategy s) {
  switch (s) {
    case scatter_strategy::automatic: return "Auto";
    case scatter_strategy::direct: return "Direct";
    case scatter_strategy::buffered: return "Buffered";
    case scatter_strategy::unstable: return "Unstable";
  }
  return "?";
}

void register_strategy_cell(std::size_t n, std::size_t buckets,
                            scatter_strategy strategy) {
  const std::string name = std::string("Distribute/") +
                           strategy_name(strategy) +
                           "/buckets:" + std::to_string(buckets);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [n, buckets, strategy](benchmark::State& st) {
        const gen::distribution d{gen::dist_kind::uniform, 1e9, "Unif-1e9"};
        const auto& input = dtb::cached_input<kv32>(d, n);
        std::vector<kv32> out(n);
        std::vector<std::size_t> offs(buckets + 1);
        const std::uint32_t mask = static_cast<std::uint32_t>(buckets - 1);
        auto bucket_of = [mask](const kv32& r) -> std::size_t {
          return r.key & mask;
        };
        static sort_workspace ws;  // persistent: steady-state engine perf
        distribute_options opt;
        opt.strategy = strategy;
        opt.workspace = &ws;
        std::vector<double> times;
        for (auto _ : st) {
          dovetail::timer t;
          distribute(std::span<const kv32>(input), std::span<kv32>(out),
                     buckets, bucket_of, std::span<std::size_t>(offs), opt);
          benchmark::DoNotOptimize(out.data());
          st.SetIterationTime(t.seconds());
          times.push_back(t.seconds());
        }
        if (!times.empty()) {
          std::sort(times.begin(), times.end());
          dtb::global_results().add("B=" + std::to_string(buckets),
                                    strategy_name(strategy),
                                    times[times.size() / 2]);
        }
        st.counters["MB/s"] = benchmark::Counter(
            static_cast<double>(n * sizeof(kv32)) / 1048576.0,
            benchmark::Counter::kIsIterationInvariantRate);
      })
      ->UseManualTime()
      ->Iterations(dtb::bench_reps())
      ->Unit(benchmark::kMillisecond);
}

void register_workspace_cell(std::size_t n, const gen::distribution& d,
                             bool warm) {
  const char* variant = warm ? "WarmWS" : "ColdWS";
  const std::string name =
      std::string("DTSortWorkspace/") + variant + "/" + d.name;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [n, d, warm, variant](benchmark::State& st) {
        const auto& input = dtb::cached_input<kv32>(d, n);
        static sort_workspace warm_ws;
        dovetail::sort_stats stats;
        std::vector<double> times;
        std::vector<kv32> work(n);
        for (auto _ : st) {
          std::copy(input.begin(), input.end(), work.begin());
          dovetail::sort_options opt;
          opt.stats = &stats;
          if (warm) opt.workspace = &warm_ws;  // else: ephemeral per sort
          dovetail::timer t;
          dovetail::dovetail_sort(std::span<kv32>(work), dovetail::key_of_kv32,
                                  opt);
          const double s = t.seconds();
          st.SetIterationTime(s);
          times.push_back(s);
        }
        if (!times.empty()) {
          std::sort(times.begin(), times.end());
          dtb::global_results().add("WS/" + d.name, variant,
                                    times[times.size() / 2]);
        }
        st.counters["ws_alloc"] =
            static_cast<double>(stats.workspace_allocations.load());
        st.counters["ws_reuse"] =
            static_cast<double>(stats.workspace_reuses.load());
      })
      ->UseManualTime()
      ->Iterations(dtb::bench_reps())
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::size_t n = dtb::bench_n();
  for (std::size_t b = 256; b <= 65536; b *= 16) {
    register_strategy_cell(n, b, scatter_strategy::direct);
    register_strategy_cell(n, b, scatter_strategy::buffered);
    register_strategy_cell(n, b, scatter_strategy::unstable);
    register_strategy_cell(n, b, scatter_strategy::automatic);
  }
  for (bool warm : {false, true}) {
    register_workspace_cell(n, {gen::dist_kind::uniform, 1e9, "Unif-1e9"},
                            warm);
    register_workspace_cell(n, {gen::dist_kind::zipfian, 1.2, "Zipf-1.2"},
                            warm);
  }
  benchmark::RunSpecifiedBenchmarks();
  dtb::global_results().print(
      "Distribution engine: scatter strategies and workspace reuse, n=" +
          std::to_string(n),
      /*heatmap=*/false);
  benchmark::Shutdown();
  return 0;
}
