// Application scenarios (Tab 4 of the paper, with generated stand-ins for
// its real-world inputs):
//   apps-transpose — graph transpose: one stable integer sort of the edge
//                    list by destination + CSR rebuild, per algorithm.
//                    Power-law graphs play the social/web roles, a kNN-like
//                    graph the simulation role.
//   apps-morton    — Morton (z-order) sort of 2D/3D point sets: z-value
//                    computation + integer sort + permutation.
// Correctness: outputs are compared against a reference computed once per
// case with std::stable_sort as the sorter; unstable algorithms are held to
// the order- and multiset-level properties instead of exact equality.
#pragma once

#include "dovetail/apps/graph.hpp"
#include "dovetail/apps/morton.hpp"
#include "dovetail/generators/graphs.hpp"
#include "dovetail/generators/points.hpp"
#include "dovetail/util/algorithms.hpp"
#include "harness.hpp"

namespace dtb {

namespace detail {

inline constexpr auto std_stable_sorter = [](auto span, auto key) {
  std::stable_sort(span.begin(), span.end(),
                   [&](const auto& x, const auto& y) {
                     return key(x) < key(y);
                   });
};

// Order-independent multiset fingerprint of a CSR graph's (vertex, source)
// incidence pairs: equal for two graphs iff (whp) they hold the same edges,
// regardless of the order of sources within a vertex's block.
inline std::uint64_t csr_fingerprint(const dovetail::app::csr_graph& g) {
  std::uint64_t fp = 0;
  for (std::uint32_t v = 0; v < g.num_vertices; ++v)
    for (const std::uint32_t t : g.neighbors(v))
      fp += dovetail::par::hash64((static_cast<std::uint64_t>(v) << 32) | t);
  return fp;
}

struct graph_case {
  std::string name;
  dovetail::app::csr_graph graph;
  dovetail::app::csr_graph reference;  // transpose via std::stable_sort
};

inline const std::vector<graph_case>& graph_cases(std::size_t m) {
  static std::map<std::size_t, std::vector<graph_case>> cache;
  auto it = cache.find(m);
  if (it != cache.end()) return it->second;
  namespace app = dovetail::app;
  namespace gen = dovetail::gen;
  const auto v = static_cast<std::uint32_t>(std::max<std::size_t>(1000, m / 16));
  std::vector<graph_case> out;
  const auto add = [&](std::string name, std::vector<app::edge> edges) {
    app::csr_graph g = app::build_csr(v, std::move(edges), std_stable_sorter);
    app::csr_graph ref = app::transpose(g, std_stable_sorter);
    out.push_back({std::move(name), std::move(g), std::move(ref)});
  };
  add("PowerLaw-1.2", gen::powerlaw_graph(v, m, 1.2, 61));  // TW/SD-like
  add("PowerLaw-0.8", gen::powerlaw_graph(v, m, 0.8, 62));  // LJ-like
  add("Uniform", gen::uniform_graph(v, m, 63));
  add("kNN-16", gen::knn_graph(v, 16, 64));                 // CM-like
  return cache.emplace(m, std::move(out)).first->second;
}

struct morton2d_case {
  std::string name;
  std::vector<dovetail::app::point2d> pts;
  std::vector<dovetail::app::point2d> reference;
};
struct morton3d_case {
  std::string name;
  std::vector<dovetail::app::point3d> pts;
  std::vector<dovetail::app::point3d> reference;
};

inline const std::vector<morton2d_case>& morton2d_cases(std::size_t n) {
  static std::map<std::size_t, std::vector<morton2d_case>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  namespace app = dovetail::app;
  namespace gen = dovetail::gen;
  std::vector<morton2d_case> out;
  const auto add = [&](std::string name, std::vector<app::point2d> pts) {
    auto ref = app::morton_sort_2d(std::span<const app::point2d>(pts),
                                   std_stable_sorter);
    out.push_back({std::move(name), std::move(pts), std::move(ref)});
  };
  add("Unif2d", gen::uniform_points_2d(n, 16, 71));
  add("Varden2d", gen::varden_points_2d(n, 1000, 16, 72));
  return cache.emplace(n, std::move(out)).first->second;
}

inline const std::vector<morton3d_case>& morton3d_cases(std::size_t n) {
  static std::map<std::size_t, std::vector<morton3d_case>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  namespace app = dovetail::app;
  namespace gen = dovetail::gen;
  std::vector<morton3d_case> out;
  const auto add = [&](std::string name, std::vector<app::point3d> pts) {
    auto ref = app::morton_sort_3d(std::span<const app::point3d>(pts),
                                   std_stable_sorter);
    out.push_back({std::move(name), std::move(pts), std::move(ref)});
  };
  add("Unif3d", gen::uniform_points_3d(n, 21, 74));
  add("Varden3d", gen::varden_points_3d(n, 1000, 21, 75));
  return cache.emplace(n, std::move(out)).first->second;
}

template <typename Zrec>
std::uint64_t z_fingerprint(const std::vector<Zrec>& recs) {
  std::uint64_t fp = 0;
  for (const auto& r : recs)
    fp += dovetail::par::hash64(static_cast<std::uint64_t>(r.key) ^
                                0xA24BAED4963EE407ull);
  return fp;
}

}  // namespace detail

inline void register_apps_scenarios(const run_config& cfg) {
  namespace app = dovetail::app;
  const std::size_t n = cfg.n;

  // Case name lists mirror the builders in detail:: — keep in sync. Named
  // here so registration (and --list) never builds the actual inputs.
  static const std::vector<std::string> graph_names = {
      "PowerLaw-1.2", "PowerLaw-0.8", "Uniform", "kNN-16"};
  static const std::vector<std::string> morton2d_names = {"Unif2d",
                                                          "Varden2d"};
  static const std::vector<std::string> morton3d_names = {"Unif3d",
                                                          "Varden3d"};

  // --- apps-transpose ---
  for (std::size_t ci = 0; ci < graph_names.size(); ++ci) {
    for (dovetail::algo a : dovetail::all_parallel_algos()) {
      const std::string& case_name = graph_names[ci];
      scenario s;
      s.bench = "apps-transpose";
      s.name = "apps/transpose/" + case_name + "/" + dovetail::algo_name(a);
      s.paper = "Tab 4 (top): graph transpose (generated stand-ins)";
      s.row = case_name;
      s.col = dovetail::algo_name(a);
      s.labels = {{"dist", case_name}, {"algo", dovetail::algo_name(a)},
                  {"width", "32"}};
      s.run = [n, ci, a, case_name](const run_config& rc) {
        const auto& gc = detail::graph_cases(n)[ci];
        scenario_result res;
        if (gc.name != case_name) {  // registration/builder lists in sync?
          res.check = "fail";
          res.check_detail = "case list mismatch: built '" + gc.name +
                             "', registered '" + case_name + "'";
          return res;
        }
        res.n = gc.graph.num_edges();
        const auto sorter = [a](auto sp, auto k) {
          dovetail::run_sorter(a, sp, k,
                               dovetail::sorter_context{&suite_workspace(),
                                                        nullptr});
        };
        app::csr_graph gt;
        const auto one_run = [&]() -> double {
          dovetail::timer t;
          gt = app::transpose(gc.graph, sorter);
          return t.seconds();
        };
        run_warmups(rc.warmups, one_run);
        run_timed_reps(rc.reps, res, one_run);
        if (!rc.check) return res;
        if (gt.offsets != gc.reference.offsets) {
          res.check = "fail";
          res.check_detail = "transposed offsets differ from reference";
        } else if (dovetail::algo_is_stable(a) &&
                   gt.targets != gc.reference.targets) {
          res.check = "fail";
          res.check_detail = "stable transpose targets differ from reference";
        } else if (detail::csr_fingerprint(gt) !=
                   detail::csr_fingerprint(gc.reference)) {
          res.check = "fail";
          res.check_detail = "transposed edge multiset differs from reference";
        } else {
          res.check = "pass";
        }
        return res;
      };
      scenario_registry::instance().add(std::move(s));
    }
  }

  // --- apps-morton (2D and 3D) ---
  const auto register_morton = [&](const std::string& case_name,
                                   std::size_t ci, bool is_2d) {
    for (dovetail::algo a : dovetail::all_parallel_algos()) {
      scenario s;
      s.bench = "apps-morton";
      s.name = "apps/morton/" + case_name + "/" + dovetail::algo_name(a);
      s.paper = "Tab 4 (bottom): Morton sort (generated stand-ins)";
      s.row = case_name;
      s.col = dovetail::algo_name(a);
      s.labels = {{"dist", case_name}, {"algo", dovetail::algo_name(a)},
                  {"width", is_2d ? "32" : "64"}};
      s.run = [n, ci, a, is_2d, case_name](const run_config& rc) {
        const auto sorter = [a](auto sp, auto k) {
          dovetail::run_sorter(a, sp, k,
                               dovetail::sorter_context{&suite_workspace(),
                                                        nullptr});
        };
        const auto run_case = [&](const auto& mc, auto sort_call,
                                  auto records_of) {
          scenario_result res;
          if (mc.name != case_name) {  // registration/builder lists in sync?
            res.check = "fail";
            res.check_detail = "case list mismatch: built '" + mc.name +
                               "', registered '" + case_name + "'";
            return res;
          }
          res.n = mc.pts.size();
          std::decay_t<decltype(mc.pts)> out;
          const auto one_run = [&]() -> double {
            dovetail::timer t;
            out = sort_call(mc.pts, sorter);
            return t.seconds();
          };
          run_warmups(rc.warmups, one_run);
          run_timed_reps(rc.reps, res, one_run);
          if (!rc.check) return res;
          if (dovetail::algo_is_stable(a)) {
            res.check = out == mc.reference ? "pass" : "fail";
            if (res.check == "fail")
              res.check_detail = "stable Morton order differs from reference";
            return res;
          }
          // Unstable: z-values must be non-decreasing and the z multiset
          // must match the input's.
          const auto zs = records_of(out);
          for (std::size_t i = 1; i < zs.size(); ++i) {
            if (zs[i - 1].key > zs[i].key) {
              res.check = "fail";
              res.check_detail = "z-values not sorted";
              return res;
            }
          }
          res.check = detail::z_fingerprint(zs) ==
                              detail::z_fingerprint(records_of(mc.pts))
                          ? "pass"
                          : "fail";
          if (res.check == "fail")
            res.check_detail = "z multiset differs from the input's";
          return res;
        };
        if (is_2d) {
          const auto& mc = detail::morton2d_cases(n)[ci];
          return run_case(
              mc,
              [](const auto& pts, const auto& srt) {
                return app::morton_sort_2d(
                    std::span<const app::point2d>(pts), srt);
              },
              [](const auto& pts) {
                return app::morton_records_2d32(
                    std::span<const app::point2d>(pts));
              });
        }
        const auto& mc = detail::morton3d_cases(n)[ci];
        return run_case(
            mc,
            [](const auto& pts, const auto& srt) {
              return app::morton_sort_3d(std::span<const app::point3d>(pts),
                                         srt);
            },
            [](const auto& pts) {
              return app::morton_records_3d(
                  std::span<const app::point3d>(pts));
            });
      };
      scenario_registry::instance().add(std::move(s));
    }
  };
  for (std::size_t ci = 0; ci < morton2d_names.size(); ++ci)
    register_morton(morton2d_names[ci], ci, true);
  for (std::size_t ci = 0; ci < morton3d_names.size(); ++ci)
    register_morton(morton3d_names[ci], ci, false);
}

}  // namespace dtb
