// The service-* families: evidence for the sort-as-a-service layer
// (core/sort_service.hpp + core/stream_sort.hpp) on top of the
// parallel-by-default front door.
//
//   service-batch  — an open-loop load generator: a deterministic stream of
//       independent kv64 sort requests whose sizes are drawn from a named
//       mix (tiny 64..1024, small 1k..16k, mixed log-uniform 64..64k),
//       submitted as one dovetail::sort_batch over a per-cell
//       workspace_pool, sweeping the batch concurrency cap across
//       --threads. Reports requests/sec (req_per_s) plus the p50/p99
//       per-request latency quantiles pooled over the timed reps — the
//       serving-layer headline numbers the BENCH_service.json baseline
//       commits — and the pool counter deltas (checkouts / hits /
//       creations over the timed reps) proving warm requests lease arenas
//       instead of allocating them.
//   service-stream — chunked ingestion through stream_sorter versus the
//       one-shot front door on the same input, interleaved rep by rep:
//       stream_overhead is the stream/one-shot median ratio (the price of
//       sort-on-arrival plus the k-way merge), with the stream_chunks /
//       stream_merge_records counter deltas from sort_stats.
//
// The request-size generator (service_request_sizes) is deliberately a
// standalone deterministic function: test_bench_harness pins its
// fixed-seed reproducibility, and the schema gate (bench_json.hpp)
// requires every service* entry to carry the 'concurrency' label and the
// batch family to report req_per_s / p50_ms / p99_ms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dovetail/core/sort_service.hpp"
#include "dovetail/core/stream_sort.hpp"
#include "dovetail/core/workspace.hpp"
#include "harness.hpp"
#include "scenarios_parallel.hpp"

namespace dtb {

// ---------------------------------------------------------------------------
// Open-loop request-size generator. Deterministic in (mix, total, seed):
// sizes are drawn from par::rand_range streams keyed by the request index,
// and the final request is clamped so the sizes sum to exactly
// total_records. Mixes:
//   "tiny"  — 64 .. 1024 uniformly (dispatcher stays serial per request;
//             throughput comes from batch concurrency alone)
//   "small" — 1k .. 16k uniformly (straddles the parallel crossover)
//   "mixed" — log-uniform 64 .. 64k (each size decade equally likely — the
//             heavy-tailed request mix a shared sorting service sees)

inline std::vector<std::size_t> service_request_sizes(const std::string& mix,
                                                      std::size_t total_records,
                                                      std::uint64_t seed) {
  namespace par = dovetail::par;
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  std::uint64_t i = 0;
  while (total < total_records) {
    std::size_t sz;
    if (mix == "tiny") {
      sz = 64 + par::rand_range(seed, i, 961);  // 64..1024
    } else if (mix == "small") {
      sz = 1024 + par::rand_range(seed, i, 15 * 1024 + 1);  // 1k..16k
    } else {  // "mixed": exponent first, then uniform within the decade
      const std::uint64_t e = 6 + par::rand_range(seed, 2 * i, 10);  // 6..15
      const std::size_t lo = std::size_t{1} << e;
      sz = lo + par::rand_range(seed, 2 * i + 1, lo);  // lo .. 2*lo-1
    }
    sz = std::min(sz, total_records - total);
    sizes.push_back(sz);
    total += sz;
    ++i;
  }
  return sizes;
}

// ---------------------------------------------------------------------------
// service-batch cell: one batch of mixed-size requests per rep, all data
// restored from pristine copies before the clock starts. Request inputs
// alternate uniform/zipfian so one batch mixes dispatcher decisions.

inline scenario_result run_service_batch_cell(const run_config& rc,
                                              const std::string& mix, int p,
                                              const std::string& cell_key) {
  using dovetail::gen::dist_kind;
  using dovetail::gen::distribution;
  namespace dt = dovetail;

  scenario_result res;
  const std::vector<std::size_t> sizes =
      service_request_sizes(mix, rc.n, /*seed=*/42);
  std::size_t total = 0;
  for (const std::size_t sz : sizes) total += sz;
  res.n = total;

  std::vector<std::vector<dt::kv64>> pristine(sizes.size());
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    const distribution d =
        r % 2 == 0 ? distribution{dist_kind::uniform, 1e7, "Unif-1e7"}
                   : distribution{dist_kind::zipfian, 1.2, "Zipf-1.2"};
    pristine[r] = dt::gen::generate_records<dt::kv64>(d, sizes[r], 1000 + r);
  }
  std::vector<std::vector<dt::kv64>> work = pristine;

  dt::workspace_pool pool(static_cast<std::size_t>(p));
  pool.prewarm();
  dt::sort_stats stats;
  std::vector<double> latencies_s;  // pooled over the timed reps only
  bool record_latencies = false;

  const auto one_run = [&]() -> double {
    for (std::size_t r = 0; r < work.size(); ++r)
      std::copy(pristine[r].begin(), pristine[r].end(), work[r].begin());
    std::vector<dt::sort_request<dt::kv64, decltype(dt::key_of_kv64)>> reqs(
        work.size());
    for (std::size_t r = 0; r < work.size(); ++r)
      reqs[r].data = std::span<dt::kv64>(work[r]);
    dt::service_options opt;
    opt.concurrency = p;
    opt.pool = &pool;
    opt.stats = &stats;
    dt::timer t;
    dt::sort_batch(reqs, opt);
    const double s = t.seconds();
    if (record_latencies)
      for (const auto& req : reqs) latencies_s.push_back(req.result.seconds);
    return s;
  };

  run_warmups(std::max(rc.warmups, 1), one_run);
  if (rc.check) {
    res.check = "pass";
    for (std::size_t r = 0; r < work.size(); ++r) {
      std::vector<dt::kv64> ref = pristine[r];
      std::stable_sort(ref.begin(), ref.end(),
                       [](const dt::kv64& a, const dt::kv64& b) {
                         return a.key < b.key;
                       });
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (work[r][i].key != ref[i].key ||
            work[r][i].value != ref[i].value) {
          res.check = "fail";
          res.check_detail = "request " + std::to_string(r) + " record " +
                             std::to_string(i) +
                             " differs from the serial one-shot at p=" +
                             std::to_string(p);
          return res;
        }
      }
    }
  }

  record_latencies = true;
  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  const std::uint64_t co0 = pool.checkouts(), hit0 = pool.pool_hits(),
                      cr0 = pool.creations();
  run_timed_reps(rc.reps, res, one_run, &stats);
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);
  res.stats["pool_checkouts_timed"] =
      static_cast<double>(pool.checkouts() - co0);
  res.stats["pool_hits_timed"] = static_cast<double>(pool.pool_hits() - hit0);
  res.stats["pool_creations_timed"] =
      static_cast<double>(pool.creations() - cr0);
  res.stats["requests"] = static_cast<double>(sizes.size());
  if (res.median_s() > 0)
    res.stats["req_per_s"] =
        static_cast<double>(sizes.size()) / res.median_s();
  std::sort(latencies_s.begin(), latencies_s.end());
  if (!latencies_s.empty()) {
    const std::size_t last = latencies_s.size() - 1;
    res.stats["p50_ms"] = latencies_s[last / 2] * 1e3;
    res.stats["p99_ms"] = latencies_s[last - last / 100] * 1e3;
  }
  note_parallel_speedup(cell_key, p, res);
  return res;
}

// ---------------------------------------------------------------------------
// service-stream cell: chunked ingestion vs the one-shot front door on the
// same pristine input, interleaved rep by rep like every A-vs-B pair in
// the suite.

inline scenario_result run_service_stream_cell(const run_config& rc,
                                               const std::vector<dovetail::kv64>& input,
                                               std::size_t chunk, int p) {
  namespace dt = dovetail;
  scenario_result res;
  res.n = input.size();

  dt::workspace_pool pool(static_cast<std::size_t>(p));
  pool.prewarm();
  dt::sort_stats stats;
  std::vector<dt::kv64> got;
  std::vector<dt::kv64> work(input.size());

  const auto run_stream = [&]() -> double {
    dt::timer t;
    dt::stream_options sopt;
    sopt.num_threads = p;
    sopt.pool = &pool;
    sopt.stats = &stats;
    dt::stream_sorter<dt::kv64, decltype(dt::key_of_kv64)> s(sopt,
                                                             dt::key_of_kv64);
    for (std::size_t off = 0; off < input.size(); off += chunk)
      s.push(std::span<const dt::kv64>(
          input.data() + off, std::min(chunk, input.size() - off)));
    got = s.finish();
    return t.seconds();
  };
  const auto run_one_shot = [&]() -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dt::timer t;
    dt::auto_sort_options opt;
    opt.workspace = &suite_workspace();
    opt.num_threads = p;
    dt::sort(std::span<dt::kv64>(work), dt::key_of_kv64, opt);
    return t.seconds();
  };

  run_warmups(std::max(rc.warmups, 1), run_stream);
  if (rc.check) {
    std::vector<dt::kv64> ref = input;
    std::stable_sort(ref.begin(), ref.end(),
                     [](const dt::kv64& a, const dt::kv64& b) {
                       return a.key < b.key;
                     });
    res.check = "pass";
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (got[i].key != ref[i].key || got[i].value != ref[i].value) {
        res.check = "fail";
        res.check_detail = "streamed record " + std::to_string(i) +
                           " differs from the stable reference (chunk=" +
                           std::to_string(chunk) + ")";
        return res;
      }
    }
  }

  const std::uint64_t ch0 =
      stats.stream_chunks.load(std::memory_order_relaxed);
  const std::uint64_t mr0 =
      stats.stream_merge_records.load(std::memory_order_relaxed);
  const std::uint64_t co0 = pool.checkouts(), hit0 = pool.pool_hits(),
                      cr0 = pool.creations();
  const std::vector<double> one_shot_times =
      run_interleaved_reps(rc.reps, res, run_stream, run_one_shot, &stats);
  res.stats["stream_chunks_timed"] = static_cast<double>(
      stats.stream_chunks.load(std::memory_order_relaxed) - ch0);
  res.stats["stream_merge_records_timed"] = static_cast<double>(
      stats.stream_merge_records.load(std::memory_order_relaxed) - mr0);
  res.stats["pool_checkouts_timed"] =
      static_cast<double>(pool.checkouts() - co0);
  res.stats["pool_hits_timed"] = static_cast<double>(pool.pool_hits() - hit0);
  res.stats["pool_creations_timed"] =
      static_cast<double>(pool.creations() - cr0);
  scenario_result one_shot;
  one_shot.times_s = one_shot_times;
  res.stats["ms_OneShot"] = one_shot.median_s() * 1e3;
  if (one_shot.median_s() > 0)
    res.stats["stream_overhead"] = res.median_s() / one_shot.median_s();
  return res;
}

// ---------------------------------------------------------------------------
// Registration: the batch family sweeps mix × concurrency (the matrix the
// committed baseline holds), the stream family sweeps chunk size at the
// full worker count.

inline void register_service_scenarios(const run_config& cfg) {
  using dovetail::gen::dist_kind;
  using dovetail::gen::distribution;
  const std::vector<int> ps = parallel_sweep_points(cfg);

  static const std::vector<std::string> mixes = {"tiny", "small", "mixed"};
  for (const std::string& mix : mixes) {
    for (const int p : ps) {
      scenario s;
      s.bench = "service-batch";
      const std::string cell =
          s.bench + "/" + mix + "/n=" + std::to_string(cfg.n);
      s.name = cell + "/c=" + std::to_string(p);
      s.paper = "open-loop batched sort service over the workspace pool";
      s.row = mix + "/n=" + std::to_string(cfg.n);
      s.col = "c=" + std::to_string(p);
      s.labels = {{"dist", mix},
                  {"algo", "Service"},
                  {"width", "64"},
                  {"n", std::to_string(cfg.n)},
                  {"concurrency", std::to_string(p)},
                  {"threads", std::to_string(p)}};
      s.run = [mix, p, cell](const run_config& rc) {
        return run_service_batch_cell(rc, mix, p, cell);
      };
      scenario_registry::instance().add(std::move(s));
    }
  }

  static const distribution stream_dist = {dist_kind::zipfian, 1.2,
                                           "Zipf-1.2"};
  const int p = cfg.max_threads();
  std::vector<std::size_t> chunks;
  for (const std::size_t c : {std::max<std::size_t>(1, cfg.n / 64),
                              std::max<std::size_t>(1, cfg.n / 8)})
    if (std::find(chunks.begin(), chunks.end(), c) == chunks.end())
      chunks.push_back(c);
  for (const std::size_t chunk : chunks) {
    scenario s;
    s.bench = "service-stream";
    s.name = s.bench + "/" + stream_dist.name + "/n=" +
             std::to_string(cfg.n) + "/chunk=" + std::to_string(chunk);
    s.paper = "chunked streaming ingestion vs the one-shot front door";
    s.row = stream_dist.name + "/n=" + std::to_string(cfg.n);
    s.col = "chunk=" + std::to_string(chunk);
    s.labels = {{"dist", stream_dist.name},
                {"algo", "Stream"},
                {"width", "64"},
                {"n", std::to_string(cfg.n)},
                {"chunk", std::to_string(chunk)},
                {"concurrency", "1"},
                {"threads", std::to_string(p)}};
    s.run = [chunk, p](const run_config& rc) {
      const auto& input = cached_input<dovetail::kv64>(stream_dist, rc.n);
      return run_service_stream_cell(rc, input, chunk, p);
    };
    scenario_registry::instance().add(std::move(s));
  }
}

}  // namespace dtb
