// Minimal JSON support for the benchmark suite: a value model + writer used
// by harness.hpp to emit BENCH_suite.json, a parser, and the schema
// validator shared by tools/check_bench_json.cpp (the CI gate) and
// tests/test_bench_harness.cpp. No third-party dependency; the parser
// accepts standard JSON (sufficient for everything the suite emits).
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dtb::json {

class value;
using array = std::vector<value>;
// std::map keeps emitted objects deterministically ordered by key.
using object = std::map<std::string, value>;

enum class kind { null, boolean, number, string, array, object };

class value {
 public:
  value() : kind_(kind::null) {}
  value(bool b) : kind_(kind::boolean), bool_(b) {}              // NOLINT
  value(double d) : kind_(kind::number), num_(d) {}              // NOLINT
  value(int i) : kind_(kind::number), num_(i) {}                 // NOLINT
  value(std::int64_t i)                                          // NOLINT
      : kind_(kind::number), num_(static_cast<double>(i)) {}
  value(std::uint64_t u)                                         // NOLINT
      : kind_(kind::number), num_(static_cast<double>(u)) {}
  value(const char* s) : kind_(kind::string), str_(s) {}         // NOLINT
  value(std::string s) : kind_(kind::string), str_(std::move(s)) {}  // NOLINT
  value(array a)                                                 // NOLINT
      : kind_(kind::array), arr_(std::make_shared<array>(std::move(a))) {}
  value(object o)                                                // NOLINT
      : kind_(kind::object), obj_(std::make_shared<object>(std::move(o))) {}

  // Deep copies: as_array()/as_object() hand out mutable references, so a
  // shared-pointer copy would let edits to a copy silently mutate the
  // original document.
  value(const value& o)
      : kind_(o.kind_), bool_(o.bool_), num_(o.num_), str_(o.str_) {
    if (o.arr_) arr_ = std::make_shared<array>(*o.arr_);
    if (o.obj_) obj_ = std::make_shared<object>(*o.obj_);
  }
  value& operator=(const value& o) {
    if (this != &o) {
      value tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }
  value(value&&) noexcept = default;
  value& operator=(value&&) noexcept = default;

  [[nodiscard]] kind type() const { return kind_; }
  [[nodiscard]] bool is_number() const { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == kind::object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const array& as_array() const { return *arr_; }
  [[nodiscard]] const object& as_object() const { return *obj_; }
  array& as_array() { return *arr_; }
  object& as_object() { return *obj_; }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const value* find(const std::string& key) const {
    if (kind_ != kind::object) return nullptr;
    auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }

  void dump(std::string& out, int indent = 0) const {
    switch (kind_) {
      case kind::null: out += "null"; return;
      case kind::boolean: out += bool_ ? "true" : "false"; return;
      case kind::number: dump_number(out); return;
      case kind::string: dump_string(str_, out); return;
      case kind::array: dump_array(out, indent); return;
      case kind::object: dump_object(out, indent); return;
    }
  }

  [[nodiscard]] std::string dump() const {
    std::string out;
    dump(out);
    out += '\n';
    return out;
  }

 private:
  void dump_number(std::string& out) const {
    if (std::isfinite(num_) && num_ == std::floor(num_) &&
        std::fabs(num_) < 9.0e15) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(num_));
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.6g", num_);
      out += buf;
    }
  }

  static void dump_string(const std::string& s, std::string& out) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void dump_array(std::string& out, int indent) const {
    if (arr_->empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < arr_->size(); ++i) {
      out.append(static_cast<std::size_t>(indent) + 2, ' ');
      (*arr_)[i].dump(out, indent + 2);
      if (i + 1 < arr_->size()) out += ',';
      out += '\n';
    }
    out.append(static_cast<std::size_t>(indent), ' ');
    out += ']';
  }

  void dump_object(std::string& out, int indent) const {
    if (obj_->empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    std::size_t i = 0;
    for (const auto& [k, v] : *obj_) {
      out.append(static_cast<std::size_t>(indent) + 2, ' ');
      dump_string(k, out);
      out += ": ";
      v.dump(out, indent + 2);
      if (++i < obj_->size()) out += ',';
      out += '\n';
    }
    out.append(static_cast<std::size_t>(indent), ' ');
    out += '}';
  }

  kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<array> arr_;
  std::shared_ptr<object> obj_;
};

// ---------------------------------------------------------------------------
// Parser. Returns false (with a message and offset) on malformed input.

class parser {
 public:
  parser(const std::string& text, value& out, std::string& err)
      : s_(text), out_(out), err_(err) {}

  bool run() {
    skip_ws();
    if (!parse_value(out_)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content after document");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    err_ = why + " (at byte " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool parse_value(value& out) {  // NOLINT(misc-no-recursion)
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(value& out) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '{'
    object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      out = value(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      value v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = value(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(value& out) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '['
    array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      out = value(std::move(arr));
      return true;
    }
    while (true) {
      skip_ws();
      value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = value(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_raw(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape digit");
            }
            // Basic-plane code points only (all the suite ever emits).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(value& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = value(std::move(s));
    return true;
  }

  bool parse_bool(value& out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = value(true);
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = value(false);
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(value& out) {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out = value();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool has_digits = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      has_digits = true;
    }
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        has_digits = true;
      }
    }
    if (!has_digits) return fail("expected a JSON value");
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      bool exp_digits = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return fail("malformed exponent");
    }
    try {
      out = value(std::stod(s_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      return fail("number out of range");
    }
    return true;
  }

  const std::string& s_;
  value& out_;
  std::string& err_;
  std::size_t pos_ = 0;
};

inline bool parse(const std::string& text, value& out, std::string& err) {
  return parser(text, out, err).run();
}

// ---------------------------------------------------------------------------
// BENCH_suite.json schema (version 1). The contract every perf PR's
// committed JSON must satisfy — validated in CI by check_bench_json.
//
//   {
//     "description":    string,
//     "schema_version": 1,
//     "context":        { "host_cpus": num, "n_records": num, "reps": num,
//                         "threads": num, ... },
//     "results": [
//       { "name": string (unique), "bench": string, "paper": string,
//         "iterations": num >= 1, "real_time_ms": num >= 0,
//         "time_unit": "ms",
//         "min_ms" <= "median_ms" <= "max_ms", "stddev_ms" >= 0,
//         "n": num >= 0, "throughput_mrec_s": num >= 0,
//         "check": "pass" | "skipped",          // "fail" is a schema error
//         "labels": object of strings ("threads", when present, must be a
//                   positive decimal integer — the scaling/parallel sweep
//                   key), "stats": object of nums (optional) }
//     ]
//   }
//
// Service-family addendum: entries whose "bench" starts with "service"
// must carry a "concurrency" label (positive decimal integer — the
// open-loop sweep key), and "service-batch" entries must report the load
// generator's headline stats: "req_per_s", "p50_ms" and "p99_ms"
// (non-negative, p50_ms <= p99_ms).
//
// Query-family addendum: "query-topk" and "query-select" entries must
// report the full-sort yardstick — non-negative "ms_FullSort" and
// "speedup_vs_fullsort" stats (the committed BENCH_query.json is the
// evidence for the rank-pruning acceptance bar) plus the pruning
// counters "buckets_pruned" / "records_pruned"; "query-groupby" entries
// must report a non-negative "groups" stat.
//
// In-place-family addendum: entries whose "bench" starts with "inplace"
// exist to prove the memory claim of the in-place kernel, so they must
// report a POSITIVE "peak_ws_bytes" stat (the kernel's leased high-water
// mark, from sort_stats::peak_workspace_bytes) plus the two rival
// yardsticks "ms_OutOfPlace" and "ms_Legacy" (non-negative medians).

inline bool check_number(const value& entry, const std::string& name,
                         const char* field, std::string& err,
                         double* out = nullptr) {
  const value* v = entry.find(field);
  if (v == nullptr || !v->is_number()) {
    err = name + ": missing or non-numeric field '" + field + "'";
    return false;
  }
  if (v->as_number() < 0) {
    err = name + ": field '" + field + "' is negative";
    return false;
  }
  if (out != nullptr) *out = v->as_number();
  return true;
}

inline bool validate_result_entry(const value& entry, std::string& err,
                                  std::set<std::string>& seen_names) {
  const value* name_v = entry.find("name");
  if (name_v == nullptr || !name_v->is_string() ||
      name_v->as_string().empty()) {
    err = "result entry: missing or empty 'name'";
    return false;
  }
  const std::string& name = name_v->as_string();
  if (!seen_names.insert(name).second) {
    err = name + ": duplicate scenario name";
    return false;
  }
  for (const char* field : {"bench", "paper"}) {
    const value* v = entry.find(field);
    if (v == nullptr || !v->is_string()) {
      err = name + ": missing string field '" + std::string(field) + "'";
      return false;
    }
  }
  double iters = 0, minv = 0, medv = 0, maxv = 0;
  if (!check_number(entry, name, "iterations", err, &iters) ||
      !check_number(entry, name, "real_time_ms", err) ||
      !check_number(entry, name, "min_ms", err, &minv) ||
      !check_number(entry, name, "median_ms", err, &medv) ||
      !check_number(entry, name, "max_ms", err, &maxv) ||
      !check_number(entry, name, "mean_ms", err) ||
      !check_number(entry, name, "stddev_ms", err) ||
      !check_number(entry, name, "n", err) ||
      !check_number(entry, name, "throughput_mrec_s", err))
    return false;
  if (iters < 1) {
    err = name + ": iterations < 1";
    return false;
  }
  if (!(minv <= medv && medv <= maxv)) {
    err = name + ": min/median/max not ordered";
    return false;
  }
  const value* unit = entry.find("time_unit");
  if (unit == nullptr || !unit->is_string() || unit->as_string() != "ms") {
    err = name + ": time_unit must be \"ms\"";
    return false;
  }
  const value* check = entry.find("check");
  if (check == nullptr || !check->is_string() ||
      (check->as_string() != "pass" && check->as_string() != "skipped")) {
    err = name + ": 'check' must be \"pass\" or \"skipped\" (a \"fail\" "
                 "result must never be committed)";
    return false;
  }
  const value* labels = entry.find("labels");
  if (labels == nullptr || !labels->is_object()) {
    err = name + ": missing 'labels' object";
    return false;
  }
  for (const auto& [k, v] : labels->as_object()) {
    if (!v.is_string()) {
      err = name + ": label '" + k + "' is not a string";
      return false;
    }
    // The scaling and parallel families key their sweeps on this label;
    // a non-numeric value would silently fall out of every per-thread
    // aggregation, so reject it at the gate.
    if (k == "threads") {
      const std::string& t = v.as_string();
      const bool numeric =
          !t.empty() && t.find_first_not_of("0123456789") == std::string::npos;
      if (!numeric || t == "0" || t[0] == '0') {
        err = name + ": label 'threads' must be a positive integer, got '" +
              t + "'";
        return false;
      }
    }
  }
  if (const value* stats = entry.find("stats"); stats != nullptr) {
    if (!stats->is_object()) {
      err = name + ": 'stats' is not an object";
      return false;
    }
    for (const auto& [k, v] : stats->as_object()) {
      if (!v.is_number()) {
        err = name + ": stat '" + k + "' is not a number";
        return false;
      }
    }
  }
  // Service-family contract (scenarios_service.hpp). Every "service*"
  // entry keys its sweep on a 'concurrency' label (positive decimal
  // integer, like 'threads'), and the batched load family must report the
  // open-loop generator's headline stats: requests/sec plus ordered
  // p50/p99 latency quantiles.
  const value* bench_v = entry.find("bench");
  if (bench_v != nullptr && bench_v->is_string() &&
      bench_v->as_string().rfind("service", 0) == 0) {
    const value* conc = labels->find("concurrency");
    if (conc == nullptr || !conc->is_string()) {
      err = name + ": service entry: missing 'concurrency' label";
      return false;
    }
    const std::string& c = conc->as_string();
    const bool numeric =
        !c.empty() && c.find_first_not_of("0123456789") == std::string::npos;
    if (!numeric || c == "0" || c[0] == '0') {
      err = name + ": label 'concurrency' must be a positive integer, got '" +
            c + "'";
      return false;
    }
    if (bench_v->as_string() == "service-batch") {
      const value* stats = entry.find("stats");
      if (stats == nullptr || !stats->is_object()) {
        err = name + ": service-batch entry: missing 'stats' object";
        return false;
      }
      double p50 = 0, p99 = 0;
      for (const char* field : {"req_per_s", "p50_ms", "p99_ms"}) {
        const value* v = stats->find(field);
        if (v == nullptr || !v->is_number() || v->as_number() < 0) {
          err = name + ": service-batch entry: missing non-negative stat '" +
                std::string(field) + "'";
          return false;
        }
        if (std::string(field) == "p50_ms") p50 = v->as_number();
        if (std::string(field) == "p99_ms") p99 = v->as_number();
      }
      if (p50 > p99) {
        err = name + ": service-batch entry: p50_ms exceeds p99_ms";
        return false;
      }
    }
  }
  // Query-family contract (scenarios_query.hpp). The top-k / select
  // families exist to prove selection is cheaper than sorting, so the
  // full-sort yardstick and the pruning counters are required, not
  // optional extras; group-by entries must say how many groups they
  // produced (zero groups would make the byte-identity check vacuous).
  if (bench_v != nullptr && bench_v->is_string() &&
      bench_v->as_string().rfind("query", 0) == 0) {
    const value* stats = entry.find("stats");
    if (stats == nullptr || !stats->is_object()) {
      err = name + ": query entry: missing 'stats' object";
      return false;
    }
    const std::string& fam = bench_v->as_string();
    std::vector<const char*> required;
    if (fam == "query-topk" || fam == "query-select") {
      required = {"ms_FullSort", "speedup_vs_fullsort", "buckets_pruned",
                  "records_pruned"};
    } else if (fam == "query-groupby") {
      required = {"groups"};
    }
    for (const char* field : required) {
      const value* v = stats->find(field);
      if (v == nullptr || !v->is_number() || v->as_number() < 0) {
        err = name + ": query entry: missing non-negative stat '" +
              std::string(field) + "'";
        return false;
      }
    }
  }
  // In-place-family contract (scenarios_inplace.hpp). The family's reason
  // to exist is the workspace high-water comparison, so a report without
  // the measured peak (or with a zero peak: the accounting broke) and the
  // rival timings is not evidence.
  if (bench_v != nullptr && bench_v->is_string() &&
      bench_v->as_string().rfind("inplace", 0) == 0) {
    const value* stats = entry.find("stats");
    if (stats == nullptr || !stats->is_object()) {
      err = name + ": inplace entry: missing 'stats' object";
      return false;
    }
    const value* peak = stats->find("peak_ws_bytes");
    if (peak == nullptr || !peak->is_number() || peak->as_number() <= 0) {
      err = name + ": inplace entry: missing positive stat 'peak_ws_bytes'";
      return false;
    }
    for (const char* field : {"ms_OutOfPlace", "ms_Legacy"}) {
      const value* v = stats->find(field);
      if (v == nullptr || !v->is_number() || v->as_number() < 0) {
        err = name + ": inplace entry: missing non-negative stat '" +
              std::string(field) + "'";
        return false;
      }
    }
  }
  return true;
}

inline bool validate_bench_schema(const value& root, std::string& err) {
  if (!root.is_object()) {
    err = "root is not an object";
    return false;
  }
  const value* desc = root.find("description");
  if (desc == nullptr || !desc->is_string() || desc->as_string().empty()) {
    err = "missing non-empty 'description'";
    return false;
  }
  const value* ver = root.find("schema_version");
  if (ver == nullptr || !ver->is_number() || ver->as_number() != 1) {
    err = "missing 'schema_version' == 1";
    return false;
  }
  const value* ctx = root.find("context");
  if (ctx == nullptr || !ctx->is_object()) {
    err = "missing 'context' object";
    return false;
  }
  for (const char* field : {"host_cpus", "n_records", "reps", "threads"}) {
    const value* v = ctx->find(field);
    if (v == nullptr || !v->is_number()) {
      err = std::string("context: missing numeric field '") + field + "'";
      return false;
    }
  }
  const value* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    err = "missing 'results' array";
    return false;
  }
  if (results->as_array().empty()) {
    err = "'results' array is empty";
    return false;
  }
  std::set<std::string> seen;
  for (const value& entry : results->as_array()) {
    if (!entry.is_object()) {
      err = "result entry is not an object";
      return false;
    }
    if (!validate_result_entry(entry, err, seen)) return false;
  }
  return true;
}

}  // namespace dtb::json
