// The adaptive-front-door families (core/auto_sort.hpp):
//   auto-32 / auto-64 — dovetail::sort on every Tab 3 distribution at both
//       key widths, timed against each hand-pinned candidate kernel
//       (policy::always) on the same cached input. Each scenario's primary
//       time is the dispatcher's; the pinned medians, the best of them and
//       the dispatcher's ratio to that best land in `stats`, so a committed
//       report is itself the evidence for the "within a few percent of the
//       best hand-picked kernel" claim (docs/TUNING.md; acceptance gate of
//       the auto-sort PR).
//   auto-sketch — inputs engineered to exercise the cheap-branch kernels
//       the Tab 3 matrix never triggers (sorted / reverse-sorted /
//       near-sorted => run_merge, tiny key range => counting, small n =>
//       serial std_sort), pinned against the same candidates.
//
// Verification per scenario, on top of the harness's std::sort cross-check
// for every timed kernel: the dispatcher's decision must be recorded
// (stats.chosen_kernel) and every pinned run must report exactly the kernel
// it was pinned to — a silently ignored policy::always fails the suite.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "dovetail/core/auto_sort.hpp"
#include "dovetail/core/input_sketch.hpp"
#include "harness.hpp"

namespace dtb {

// Sort-in-place closure for run_timed_sort routing through the front door;
// reports the kernel that actually ran via `*ran`.
template <typename Rec, typename KeyFn>
auto auto_sort_fn(std::optional<dovetail::sort_kernel> pin, KeyFn key,
                  dovetail::sort_kernel* ran) {
  return [pin, key, ran](std::span<Rec> s, dovetail::sort_stats* st,
                         dovetail::sort_workspace* ws) {
    dovetail::auto_sort_options opt;
    if (pin.has_value()) opt.policy = dovetail::policy::always(*pin);
    opt.workspace = ws;
    opt.stats = st;
    *ran = dovetail::sort(s, key, opt);
  };
}

// One auto scenario: time the dispatcher against every pinned candidate on
// the same input; record per-candidate medians and the ratio to the best.
//
// Timed runs are INTERLEAVED round-robin across the variants (auto, pin0,
// pin1, ...) rather than run as per-kernel blocks: on a shared box,
// machine drift (CPU steal, thermal dips) arrives in multi-second phases,
// and block timing attributes a whole phase to whichever kernel it landed
// on (observed: two runs of the *same* kernel 1.5-2.5x apart across
// blocks). Interleaving spreads each phase over all variants, so the
// ratios — this family's product — compare like with like.
template <typename Rec, typename KeyFn>
scenario_result run_auto_cell(
    const run_config& rc, const std::vector<Rec>& input, KeyFn key,
    std::span<const dovetail::sort_kernel> candidates) {
  // Ratios also need more than the default 3 medians-of reps; full runs
  // take at least 5 per variant. --quick keeps its own clamp: there the
  // checks, not the times, are the point.
  const int reps = rc.quick ? rc.reps : std::max(rc.reps, 5);
  const int warmups = std::max(rc.warmups, 1);

  struct variant {
    std::optional<dovetail::sort_kernel> pin;  // nullopt = the dispatcher
    dovetail::sort_kernel ran{};
    std::vector<double> times_s;
  };
  std::vector<variant> vars;
  vars.push_back({});
  for (const dovetail::sort_kernel pin : candidates)
    vars.push_back({pin, {}, {}});

  scenario_result res;
  res.n = input.size();
  std::vector<Rec> work(input.size());
  dovetail::sort_stats stats;
  const auto one_run = [&](variant& v) -> double {
    std::copy(input.begin(), input.end(), work.begin());
    dovetail::timer t;
    auto_sort_fn<Rec>(v.pin, key, &v.ran)(std::span<Rec>(work), &stats,
                                          &suite_workspace());
    return t.seconds();
  };

  // Warm-up each variant; verify its output and its pin while it is the
  // one sitting in `work`.
  for (variant& v : vars) {
    run_warmups(warmups, [&] { return one_run(v); });
    if (v.pin.has_value() && v.ran != *v.pin) {
      res.check = "fail";
      res.check_detail = std::string("policy::always(") +
                         dovetail::kernel_name(*v.pin) + ") ran " +
                         dovetail::kernel_name(v.ran);
      return res;
    }
    if (rc.check) {
      scenario_result chk;
      chk.n = res.n;
      check_sorted_output(chk, input, std::span<const Rec>(work),
                          check_spec{});
      if (chk.check != "pass") {
        res.check = "fail";
        res.check_detail =
            std::string(v.pin ? dovetail::kernel_name(*v.pin) : "Auto") +
            ": " + chk.check_detail;
        return res;
      }
      res.check = "pass";
    }
  }

  const std::uint64_t alloc0 =
      stats.workspace_allocations.load(std::memory_order_relaxed);
  // Shuffle the execution order each rep (deterministic Fisher-Yates):
  // whoever runs right after std::stable_sort's 8-16 MB allocation churn
  // inherits a different cache/TLB/heap state than whoever runs after a
  // workspace-resident radix pass, and any FIXED cycle order pins that
  // predecessor effect on one variant (measured: a systematic 5-15% on
  // LLC-resident inputs — rotating the start point alone does not help,
  // since the cyclic neighbor stays the same).
  std::vector<std::size_t> order(vars.size());
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[dovetail::par::rand_range(
                    0x0DDEC0DEull + static_cast<std::uint64_t>(r), i, i)]);
    for (const std::size_t idx : order) {
      variant& v = vars[idx];
      v.times_s.push_back(one_run(v));
    }
  }
  res.stats["ws_alloc_timed"] = static_cast<double>(
      stats.workspace_allocations.load(std::memory_order_relaxed) - alloc0);

  res.times_s = vars[0].times_s;  // the scenario's primary time = Auto's
  for (double s : res.times_s) stats.note_timed_run(s, res.n);
  res.stats["chosen_kernel"] = static_cast<double>(vars[0].ran);

  double best_pinned = 0, best_pinned_min = 0;
  for (const variant& v : vars) {
    if (!v.pin.has_value()) continue;
    scenario_result vr;
    vr.times_s = v.times_s;
    const double med = vr.median_s();
    res.stats[std::string("ms_") + dovetail::kernel_name(*v.pin)] =
        med * 1e3;
    if (best_pinned == 0 || med < best_pinned) best_pinned = med;
    if (best_pinned_min == 0 || vr.min_s() < best_pinned_min)
      best_pinned_min = vr.min_s();
  }
  if (best_pinned > 0) {
    res.stats["best_pinned_ms"] = best_pinned * 1e3;
    res.stats["ratio_to_best"] = res.median_s() / best_pinned;
    // Noise on a shared box is one-sided (CPU steal only ever adds time),
    // so best-of-reps is the robust cost estimate; the min ratio separates
    // real dispatch overhead from an unlucky median.
    res.stats["ratio_to_best_min"] = res.min_s() / best_pinned_min;
  }

  // The sketch behind the decision (recomputed here — deterministic, so it
  // is byte-for-byte what the dispatcher saw).
  const auto sk = dovetail::sketch_input(std::span<const Rec>(input), key);
  res.stats["sketch_key_bits"] = sk.key_bits;
  res.stats["sketch_distinct_pct"] = 100.0 * sk.distinct_ratio();
  res.stats["sketch_top_pct"] = 100.0 * sk.top_freq();
  res.stats["sketch_digit_top_pct"] = 100.0 * sk.digit_top_share();
  res.stats["sketch_desc_pct"] =
      sk.probes == 0 ? 0.0
                     : 100.0 * static_cast<double>(sk.desc_probes) /
                           static_cast<double>(sk.probes);
  return res;
}

// The Tab 3 matrix candidates: the two kernels that ever win there, plus
// the serial reference. run_merge/counting are structurally inapplicable to
// these instances (no presortedness, hashed full-range keys) and are
// exercised by the auto-sketch family instead.
inline std::span<const dovetail::sort_kernel> auto_matrix_candidates() {
  static const dovetail::sort_kernel c[] = {dovetail::sort_kernel::lsd,
                                            dovetail::sort_kernel::dtsort,
                                            dovetail::sort_kernel::std_sort};
  return c;
}

template <typename Rec, typename KeyFn>
void register_auto_cell(const run_config& cfg, const char* width_tag,
                        const dovetail::gen::distribution& d, KeyFn key) {
  scenario s;
  s.bench = std::string("auto-") + width_tag;
  s.name = s.bench + "/" + d.name;
  s.paper = "adaptive dispatch vs best hand-picked kernel (Tab 3 premise)";
  s.row = d.name;
  s.col = "Auto";
  s.labels = {{"dist", d.name},
              {"algo", "Auto"},
              {"width", width_tag},
              {"bytes", std::to_string(sizeof(Rec))},
              {"threads", std::to_string(cfg.max_threads())}};
  const std::size_t n = cfg.n;
  s.run = [d, n, key](const run_config& rc) {
    const auto& input = cached_input<Rec>(d, n);
    return run_auto_cell(rc, input, key, auto_matrix_candidates());
  };
  scenario_registry::instance().add(std::move(s));
}

// --- auto-sketch: engineered inputs for the cheap branches. ---

inline const std::vector<dovetail::kv32>& auto_showcase_input(
    const std::string& tag, std::size_t n) {
  static std::map<std::string, std::unique_ptr<std::vector<dovetail::kv32>>>
      cache;
  const std::string key = tag + "/" + std::to_string(n);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto v = std::make_unique<std::vector<dovetail::kv32>>(n);
  auto& a = *v;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t k = 0;
    if (tag == "sorted-asc") {
      k = static_cast<std::uint32_t>(i / 3);  // sorted, with duplicates
    } else if (tag == "reverse-desc") {
      k = static_cast<std::uint32_t>(n - i);  // strictly descending
    } else if (tag == "near-sorted") {
      k = static_cast<std::uint32_t>(i);      // rotated below: few runs
    } else if (tag == "tiny-range") {
      k = static_cast<std::uint32_t>(
          dovetail::par::rand_range(13, i, 3'000));
    } else {  // "serial-small": generic random keys, n is what matters
      k = static_cast<std::uint32_t>(dovetail::par::rand_at(17, i));
    }
    a[i] = {k, static_cast<std::uint32_t>(i)};
  }
  if (tag == "near-sorted" && n > 2)
    std::rotate(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n / 3),
                a.end());
  if (tag == "near-sorted")  // values must stay the stability witness
    for (std::size_t i = 0; i < n; ++i) a[i].value =
        static_cast<std::uint32_t>(i);
  it = cache.emplace(key, std::move(v)).first;
  return *it->second;
}

inline void register_auto_showcase(const run_config& cfg, const char* tag,
                                   dovetail::sort_kernel special,
                                   bool shrink_to_serial = false) {
  scenario s;
  s.bench = "auto-sketch";
  s.name = std::string("auto-sketch/") + tag;
  s.paper = "sketch branches beyond Tab 3: presortedness / tiny range / "
            "serial threshold";
  s.row = tag;
  s.col = "Auto";
  s.labels = {{"dist", tag}, {"algo", "Auto"},
              {"width", "32"},
              {"threads", std::to_string(cfg.max_threads())}};
  const std::size_t n =
      shrink_to_serial ? std::min<std::size_t>(cfg.n, 400) : cfg.n;
  const std::string tag_s = tag;
  s.run = [tag_s, n, special](const run_config& rc) {
    const auto& input = auto_showcase_input(tag_s, n);
    const dovetail::sort_kernel candidates[] = {
        special, dovetail::sort_kernel::lsd, dovetail::sort_kernel::dtsort};
    scenario_result res = run_auto_cell(
        rc, input, dovetail::key_of_kv32,
        std::span<const dovetail::sort_kernel>(candidates));
    // These inputs exist to prove their branch fires: a dispatcher that
    // routes them elsewhere regresses the front door.
    if (rc.check && res.check == "pass" &&
        res.stats["chosen_kernel"] != static_cast<double>(special)) {
      res.check = "fail";
      res.check_detail =
          std::string("expected dispatch to ") +
          dovetail::kernel_name(special) + ", got " +
          dovetail::kernel_name(static_cast<dovetail::sort_kernel>(
              static_cast<int>(res.stats["chosen_kernel"])));
    }
    return res;
  };
  scenario_registry::instance().add(std::move(s));
}

inline void register_auto_scenarios(const run_config& cfg) {
  for (const auto& d : dovetail::gen::paper_distributions()) {
    register_auto_cell<dovetail::kv32>(cfg, "32", d, dovetail::key_of_kv32);
    register_auto_cell<dovetail::kv64>(cfg, "64", d, dovetail::key_of_kv64);
  }
  register_auto_showcase(cfg, "sorted-asc", dovetail::sort_kernel::run_merge);
  register_auto_showcase(cfg, "reverse-desc",
                         dovetail::sort_kernel::run_merge);
  register_auto_showcase(cfg, "near-sorted",
                         dovetail::sort_kernel::run_merge);
  register_auto_showcase(cfg, "tiny-range", dovetail::sort_kernel::counting);
  register_auto_showcase(cfg, "serial-small",
                         dovetail::sort_kernel::std_sort,
                         /*shrink_to_serial=*/true);
}

}  // namespace dtb
