// Fig 4(e) and Appendix C Figs 5-20: self-speedup with varying thread
// counts. For each distribution family's representative instances, run
// every algorithm at 1..P threads and report times plus self-speedups.
//
// The paper sweeps 1..192 hyperthreads on a 96-core box; here the sweep is
// 1..hardware threads (override the ceiling with DTBENCH_MAXTHREADS).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using dovetail::algo;
using dovetail::kv32;
namespace gen = dovetail::gen;

namespace {

const std::vector<gen::distribution>& instances() {
  static const std::vector<gen::distribution> d = {
      {gen::dist_kind::zipfian, 0.8, "Zipf-0.8"},    // Fig 4(e) headline
      {gen::dist_kind::uniform, 1e7, "Unif-1e7"},    // Fig 5-like
      {gen::dist_kind::exponential, 7, "Exp-7"},     // Fig 8-like
      {gen::dist_kind::bexp, 100, "BExp-100"},       // Fig 12-like
  };
  return d;
}

std::vector<int> thread_counts() {
  const int maxp = static_cast<int>(dtb::env_size(
      "DTBENCH_MAXTHREADS",
      static_cast<std::size_t>(dovetail::par::scheduler::default_num_workers())));
  std::vector<int> out;
  for (int p = 1; p <= maxp; p *= 2) out.push_back(p);
  if (out.back() != maxp) out.push_back(maxp);
  return out;
}

void register_cell(const gen::distribution& d, std::size_t n, algo a,
                   int threads) {
  const std::string name = std::string("Fig4e/") + d.name + "/" +
                           dovetail::algo_name(a) + "/threads:" +
                           std::to_string(threads);
  const std::string row = d.name + "/p=" + std::to_string(threads);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [d, n, a, threads, row](benchmark::State& st) {
        dovetail::par::scheduler::set_num_workers(threads);
        const auto& input = dtb::cached_input<kv32>(d, n);
        dtb::run_timed_iterations(
            st, input,
            [a](std::span<kv32> s) {
              dovetail::run_sorter(a, s, dovetail::key_of_kv32);
            },
            row, dovetail::algo_name(a));
        dovetail::par::scheduler::set_num_workers(
            dovetail::par::scheduler::default_num_workers());
      })
      ->UseManualTime()
      ->Iterations(dtb::bench_reps())
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::size_t n = dtb::bench_n();
  for (const auto& d : instances())
    for (algo a : dovetail::all_parallel_algos())
      for (int p : thread_counts()) register_cell(d, n, a, p);
  benchmark::RunSpecifiedBenchmarks();
  dtb::global_results().print(
      "Fig 4(e) / Figs 5-20: running time by thread count (self-speedup = "
      "p=1 row divided by p=k row), n=" + std::to_string(n),
      /*heatmap=*/false);
  benchmark::Shutdown();
  return 0;
}
